"""Analysis layer: predicted complexity curves and experiment runners.

- :mod:`repro.analysis.complexity` — the paper's bounds as concrete
  functions of ``(n, p, i)``, plus optimality/efficiency helpers.
- :mod:`repro.analysis.experiments` — measurement harness shared by the
  benchmark suite: runs an algorithm over an ``(n, p)`` grid and
  returns structured rows.
- :mod:`repro.analysis.report` — plain-text table rendering used for
  the reproduced "tables" written to ``benchmarks/results/``.
"""

from .complexity import (
    efficiency,
    match1_time_bound,
    match2_time_bound,
    match3_time_bound,
    match4_time_bound,
    optimal_processor_bound,
    speedup,
)
from .experiments import measure_matching, sweep_grid
from .report import format_table
from .ascii_plot import ascii_plot

__all__ = [
    "efficiency",
    "match1_time_bound",
    "match2_time_bound",
    "match3_time_bound",
    "match4_time_bound",
    "optimal_processor_bound",
    "speedup",
    "measure_matching",
    "sweep_grid",
    "format_table",
    "ascii_plot",
]
