"""Plain-text table rendering for reproduced experiment tables.

The paper has no numeric tables (its evaluation is analytic), so the
"tables" EXPERIMENTS.md records are the measured step-count grids these
helpers render.  Kept dependency-free: rows are dicts, columns pick and
format keys.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

__all__ = ["format_table", "write_result"]

Formatter = Callable[[Any], str]


def _default_format(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str | tuple[str, str] | tuple[str, str, Formatter]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    ``columns`` entries are a key, a ``(key, header)`` pair, or a
    ``(key, header, formatter)`` triple.  Missing keys render as ``-``.
    """
    specs: list[tuple[str, str, Formatter]] = []
    for col in columns:
        if isinstance(col, str):
            specs.append((col, col, _default_format))
        elif len(col) == 2:
            specs.append((col[0], col[1], _default_format))
        else:
            specs.append(col)  # type: ignore[arg-type]
    headers = [header for _, header, _ in specs]
    body: list[list[str]] = []
    for row in rows:
        cells = []
        for key, _, fmt in specs:
            cells.append(fmt(row[key]) if key in row else "-")
        body.append(cells)
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in body)) if body else len(headers[j])
        for j in range(len(specs))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def write_result(path, text: str) -> None:
    """Write a reproduced table to ``benchmarks/results/`` (and echo it
    so ``pytest -s`` shows it inline)."""
    from pathlib import Path

    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(text + "\n")
    print(text)
