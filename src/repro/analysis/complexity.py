"""The paper's complexity bounds as concrete curve functions.

Each ``*_time_bound`` evaluates the paper's big-O expression with unit
constants — benches compare *measured / bound* ratios across sweeps,
asserting they stay within a constant band (the "shape" criterion of
EXPERIMENTS.md), never exact equality.
"""

from __future__ import annotations

import math

from .._util import ceil_div, require
from ..bits.iterated_log import G, ilog2, log_G

__all__ = [
    "match1_time_bound",
    "match2_time_bound",
    "match3_time_bound",
    "match4_time_bound",
    "optimal_processor_bound",
    "speedup",
    "efficiency",
]


def _log2c(n: int) -> int:
    """``ceil(log2 n)``, at least 1."""
    return max(1, (max(2, n) - 1).bit_length())


def _ilog_floor(n: int, i: int) -> float:
    """``log^(i) n`` clamped below at 1 (bounds never go sublinear in a
    denominator)."""
    try:
        return max(1.0, ilog2(n, i))
    except Exception:
        return 1.0


def match1_time_bound(n: int, p: int) -> float:
    """Lemma 3: ``O(n G(n)/p + G(n))``."""
    require(n >= 2 and p >= 1, "need n >= 2, p >= 1")
    g = G(n)
    return n * g / p + g


def match2_time_bound(n: int, p: int, *, sort_law: str = "erew") -> float:
    """Lemma 4 and its CRCW refinements: ``O(n/p + additive)`` where the
    additive term is the sort's (``log n``, ``log n / log^(3) n``, or
    ``log n / log^(2) n``)."""
    require(n >= 2 and p >= 1, "need n >= 2, p >= 1")
    log_n = _log2c(n)
    if sort_law == "erew":
        additive = float(log_n)
    elif sort_law == "reif":
        additive = log_n / _ilog_floor(n, 3)
    elif sort_law == "cole_vishkin":
        additive = log_n / _ilog_floor(n, 2)
    else:
        raise ValueError(f"unknown sort law {sort_law!r}")
    return n / p + additive


def match3_time_bound(n: int, p: int) -> float:
    """Lemma 5: ``O(n log G(n)/p + log G(n))``."""
    require(n >= 2 and p >= 1, "need n >= 2, p >= 1")
    lg = log_G(n)
    return n * lg / p + lg


def match4_time_bound(n: int, p: int, i: int) -> float:
    """Theorem 2: ``O(n log i/p + log^(i) n + log i)``."""
    require(n >= 2 and p >= 1 and i >= 1, "need n >= 2, p >= 1, i >= 1")
    log_i = max(1.0, math.log2(max(2, i)))
    return n * log_i / p + _ilog_floor(n, i) + log_i


def optimal_processor_bound(n: int, i: int) -> int:
    """Theorem 1's optimal regime: ``p <= n / log^(i) n``."""
    require(n >= 2 and i >= 1, "need n >= 2, i >= 1")
    return max(1, int(n / _ilog_floor(n, i)))


def speedup(t1: float, tp: float) -> float:
    """``T_1 / T_p``."""
    require(tp > 0 and t1 > 0, "times must be positive")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """``T_1 / (p * T_p)`` — equals Θ(1) iff the run is optimal in the
    paper's sense (``p T = O(T_1)``)."""
    require(p >= 1, "p must be >= 1")
    return speedup(t1, tp) / p
