"""Measurement harness shared by the benchmark suite.

The benches in ``benchmarks/`` all follow one pattern: generate a
workload, run one or more algorithms over an ``(n, p)`` grid, collect
PRAM-time rows, assert the paper's shape claims, and render a table.
This module holds the run-one-cell and run-a-grid pieces so every bench
stays declarative.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..core.maximal_matching import maximal_matching
from ..core.matching import verify_maximal_matching
from ..lists.linked_list import LinkedList

__all__ = ["measure_matching", "sweep_grid"]


def measure_matching(
    lst: LinkedList,
    *,
    algorithm: str,
    p: int,
    verify: bool = True,
    **kwargs: Any,
) -> dict[str, Any]:
    """Run one algorithm once and return a structured row.

    Row keys: ``n, p, algorithm, time, work, cost, matched, phases``
    (phase → time dict) plus the algorithm's stats object under
    ``stats``.
    """
    matching, report, stats = maximal_matching(
        lst, algorithm=algorithm, p=p, **kwargs
    )
    if verify:
        verify_maximal_matching(lst, matching.tails)
    return {
        "n": lst.n,
        "p": p,
        "algorithm": algorithm,
        "time": report.time,
        "work": report.work,
        "cost": report.cost,
        "matched": matching.size,
        "phases": {ph.name: ph.time for ph in report.phases},
        "stats": stats,
    }


def sweep_grid(
    make_list: Callable[[int], LinkedList],
    ns: Sequence[int],
    ps: Sequence[int] | Callable[[int], Iterable[int]],
    *,
    algorithm: str,
    verify: bool = True,
    **kwargs: Any,
) -> list[dict[str, Any]]:
    """Run an algorithm over an ``(n, p)`` grid.

    ``ps`` may be a fixed list or a callable ``n -> iterable of p`` (for
    sweeps like "p from 1 to n in powers of 4").  Lists are generated
    once per ``n`` and shared across the ``p`` axis (the cost model is
    the only thing that changes).
    """
    rows: list[dict[str, Any]] = []
    for n in ns:
        lst = make_list(int(n))
        p_values = ps(int(n)) if callable(ps) else ps
        for p in p_values:
            rows.append(
                measure_matching(
                    lst, algorithm=algorithm, p=int(p),
                    verify=verify, **kwargs,
                )
            )
    return rows


def powers_up_to(n: int, base: int = 4) -> list[int]:
    """``[1, base, base^2, ...]`` clipped at ``n`` (inclusive) — the
    standard processor axis used by the benches."""
    out = []
    p = 1
    while p < n:
        out.append(p)
        p *= base
    out.append(int(n))
    return out
