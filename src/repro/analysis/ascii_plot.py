"""Plain-text charts for the experiment "figures".

The paper's results are curves (time vs ``p``, efficiency vs ``p``);
since this repository keeps its artifacts greppable text, the benches
render those curves as ASCII scatter plots alongside the numeric
tables.  The renderer is deliberately small: log/linear axes, multiple
series (one glyph each), axis labels derived from the data.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from .._util import require

__all__ = ["ascii_plot"]

#: Glyphs assigned to series, in order.
GLYPHS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        require(value > 0, f"log axis needs positive values, got {value}")
        return math.log10(value)
    return float(value)


def ascii_plot(
    rows: Sequence[Mapping[str, float]],
    *,
    x: str,
    series: Sequence[str],
    title: str = "",
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render one or more ``y(x)`` series as an ASCII scatter plot.

    Parameters
    ----------
    rows:
        Dicts holding the ``x`` key and any subset of the series keys.
    x, series:
        Key names; each series gets a glyph from :data:`GLYPHS`.
    width, height:
        Plot area size in characters (axes add a margin).
    logx, logy:
        Logarithmic axes (base 10); values must then be positive.
    """
    require(len(series) >= 1, "need at least one series")
    require(len(series) <= len(GLYPHS), f"at most {len(GLYPHS)} series")
    pts: list[tuple[float, float, int]] = []
    for row in rows:
        if x not in row:
            continue
        for si, key in enumerate(series):
            if key in row and row[key] is not None:
                pts.append((
                    _transform(row[x], logx),
                    _transform(row[key], logy),
                    si,
                ))
    if not pts:
        return f"{title}\n(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for px, py, si in pts:
        col = round((px - x_lo) / (x_hi - x_lo) * (width - 1))
        row_i = round((py - y_lo) / (y_hi - y_lo) * (height - 1))
        r = height - 1 - row_i
        cell = grid[r][col]
        # collisions: later series win; mark multi-series overlap
        grid[r][col] = GLYPHS[si] if cell in (" ", GLYPHS[si]) else "?"

    def fmt_axis(v: float, log: bool) -> str:
        real = 10 ** v if log else v
        if abs(real) >= 1000 or (0 < abs(real) < 0.01):
            return f"{real:.2e}"
        return f"{real:g}"

    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{GLYPHS[i]}={key}" for i, key in enumerate(series))
    lines.append(f"[{legend}]" + ("  (log y)" if logy else ""))
    y_top = fmt_axis(y_hi, logy)
    y_bot = fmt_axis(y_lo, logy)
    margin = max(len(y_top), len(y_bot)) + 1
    for r, grid_row in enumerate(grid):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{label:>{margin}}|" + "".join(grid_row).rstrip())
    lines.append(" " * margin + "+" + "-" * width)
    x_left = fmt_axis(x_lo, logx)
    x_right = fmt_axis(x_hi, logx)
    pad = width - len(x_left) - len(x_right)
    lines.append(
        " " * (margin + 1) + x_left + " " * max(1, pad) + x_right
        + ("  (log x)" if logx else "")
    )
    return "\n".join(lines)
