"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses distinguish the three
broad failure domains: malformed inputs (:class:`InvalidListError`),
violations of PRAM execution rules detected by the simulator
(:class:`PRAMError` and its children), and internal invariant violations
surfaced by the verification layer (:class:`VerificationError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidListError(ReproError, ValueError):
    """An input linked list is structurally invalid.

    Raised when pointer arrays are malformed: out-of-range successors,
    nodes with two predecessors, cycles where a simple path is required,
    or unreachable nodes.
    """


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is outside its documented domain.

    Examples: a processor count ``p < 1``, an iteration parameter
    ``i < 1``, or a bit-crunch depth that would make a Match3 lookup
    table larger than the input size allows.
    """


class PRAMError(ReproError, RuntimeError):
    """Base class for errors raised by the PRAM simulator."""


class MemoryConflictError(PRAMError):
    """A memory access violated the machine's conflict-resolution rule.

    EREW machines raise this on *any* same-cell same-step collision;
    CREW machines on concurrent writes; CRCW-common machines on
    concurrent writes of *different* values.
    """


class DeadlockError(PRAMError):
    """All live processors are blocked and no progress is possible."""


class ProgramError(PRAMError):
    """A PRAM program yielded a malformed instruction."""


class ResilienceExhaustedError(ReproError, RuntimeError):
    """Every rung of the resilience degradation ladder failed.

    Raised by :func:`repro.resilience.runner.resilient_matching` when
    run → verify → repair → retry failed on every algorithm down to the
    sequential baseline.  The exception message carries the attempt
    log; seeing this means the fault process outran every recovery
    strategy, which the bounded-retry design makes possible by
    construction (it never loops forever).
    """


class VerificationError(ReproError, AssertionError):
    """A verified artifact (matching, partition, coloring) is invalid.

    Raised by the checkers in :mod:`repro.core.matching` and
    :mod:`repro.core.partition` when an algorithm's output violates the
    property it is supposed to guarantee.  Seeing this in the wild is a
    library bug, never a user error.
    """
