"""Package version and git revision, for run provenance.

Every persisted :class:`repro.telemetry.RunRecord` (and the selfcheck
header) stamps the producing build so regression comparisons can tell
*which* code produced a number.  The version comes from the installed
package metadata (falling back to the source tree's ``__version__``);
the git revision is read from the enclosing repository when there is
one and degrades to ``"unknown"`` in plain installs.
"""

from __future__ import annotations

import subprocess
from functools import lru_cache
from pathlib import Path

__all__ = ["package_version", "git_revision", "build_info", "version_string"]


@lru_cache(maxsize=1)
def package_version() -> str:
    """The installed ``repro`` version (metadata first, source fallback)."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # noqa: BLE001 - any metadata failure falls through
        pass
    try:
        from repro import __version__

        return __version__
    except Exception:  # noqa: BLE001 - partial import during bootstrap
        return "0.unknown"


@lru_cache(maxsize=1)
def git_revision() -> str:
    """Short git revision of the source checkout, or ``"unknown"``."""
    root = Path(__file__).resolve().parents[2]
    try:
        out = subprocess.run(
            ["git", "-C", str(root), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except Exception:  # noqa: BLE001 - no git, no repo, sandboxed, ...
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def build_info() -> dict[str, str]:
    """``{"version": ..., "git_rev": ...}`` — the provenance stamp."""
    return {"version": package_version(), "git_rev": git_revision()}


def version_string() -> str:
    """Human-readable one-liner, e.g. ``repro 1.0.0 (abc1234)``."""
    return f"repro {package_version()} ({git_revision()})"
