"""Algorithm Match1 (paper section 2).

Iterate the matching partition function ``G(n)`` times — after which
every label fits in a constant (values stay below 6 once they get
there, since ``f`` maps values below ``2^3`` to values below 6) — then
cut at local minima and walk the constant-length sublists.

Time: ``O(n G(n) / p + G(n))``.  The algorithm is *not* optimal — its
work is ``Theta(n G(n))`` against the sequential ``Theta(n)`` — which
is exactly what E3 measures and what Match4 repairs.
"""

from __future__ import annotations

import numpy as np

from .._util import require
from ..bits.iterated_log import G
from ..errors import VerificationError
from ..lists.linked_list import LinkedList
from ..pram.cost import CostModel, CostReport
from .cutwalk import CutWalkStats, cut_and_walk
from .functions import FunctionKind, iterate_f
from .matching import Matching

__all__ = ["match1"]

#: Labels are guaranteed below this constant after iteration-to-fixpoint;
#: it is the fixed point of ``m -> 2*ceil(log2 m)``.
CONSTANT_LABEL_BOUND = 6


def match1(
    lst: LinkedList,
    *,
    p: int = 1,
    kind: FunctionKind = "msb",
    rounds: int | None = None,
) -> tuple[Matching, CostReport, CutWalkStats]:
    """Compute a maximal matching by Algorithm Match1.

    Parameters
    ----------
    lst:
        Input list.
    p:
        Processor count for the cost accounting.
    kind:
        Matching partition function variant (``"msb"`` or ``"lsb"``).
    rounds:
        Number of ``f`` iterations; defaults to ``G(n)`` per the paper.
        If the supplied count leaves labels above the constant bound the
        run fails verification rather than return a wrong answer.

    Returns
    -------
    (matching, report, stats):
        The maximal matching, its Brent cost report (phases
        ``iterate``, ``cutwalk``), and cut/walk diagnostics.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    n = lst.n
    if rounds is None:
        rounds = G(n)
    cost = CostModel(p)
    with cost.phase("iterate"):
        labels = iterate_f(lst, rounds, kind=kind, cost=cost)
    if n > 1:
        max_label = int(labels.max())
        if max_label >= max(CONSTANT_LABEL_BOUND, 2 * CONSTANT_LABEL_BOUND):
            raise VerificationError(
                f"labels not constant-size after {rounds} rounds "
                f"(max {max_label}); pass more rounds"
            )
    with cost.phase("cutwalk"):
        tails, stats = cut_and_walk(lst, labels, cost=cost)
    matching = Matching(lst, tails)
    return matching, cost.report(), stats
