"""Matchings of a linked list: artifacts and verification.

A matching is a set of pointers no two of which are incident on the
same vertex; it is *maximal* when no further pointer can be added.  On
a path the pointers themselves form a path (pointer ``i`` adjacent to
pointer ``i+1``), so:

- **independence** ⟺ no two consecutive pointers are both chosen;
- **maximality** ⟺ every unchosen pointer has a chosen neighbor
  (equivalently, the paper's phrasing: "at least one of any three
  consecutive pointers of the linked list is in the matching", with the
  ends tightened to two).

Matchings are identified by the tails of the chosen pointers.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass

import numpy as np

from .._util import as_index_array
from ..errors import VerificationError
from ..lists.linked_list import NIL, LinkedList

__all__ = ["Matching", "verify_matching", "verify_maximal_matching"]


@dataclass(frozen=True)
class Matching:
    """A matching, validated for independence on construction.

    Attributes
    ----------
    lst:
        The underlying list.
    tails:
        Sorted array of tail addresses of the chosen pointers.
    pre_verified:
        Construction-time flag (not stored): when true, ``tails`` is
        trusted to be sorted, unique, and independent, and the
        normalize-and-verify pass is skipped.  Reserved for producers
        that already verified the invariant by construction (the
        backend engines); arbitrary callers should leave it false.
    """

    lst: LinkedList
    tails: np.ndarray
    pre_verified: InitVar[bool] = False

    def __post_init__(self, pre_verified: bool) -> None:
        if not pre_verified:
            tails = np.unique(as_index_array(self.tails, name="tails"))
            object.__setattr__(self, "tails", tails)
            verify_matching(self.lst, tails)
        self.tails.setflags(write=False)

    @property
    def size(self) -> int:
        """Number of matched pointers."""
        return int(self.tails.size)

    @property
    def is_maximal(self) -> bool:
        """Whether no pointer can be added (checked, not assumed)."""
        try:
            verify_maximal_matching(self.lst, self.tails)
        except VerificationError:
            return False
        return True

    def matched_mask(self) -> np.ndarray:
        """Boolean per-node mask: is node ``v``'s pointer in the matching."""
        mask = np.zeros(self.lst.n, dtype=bool)
        mask[self.tails] = True
        return mask

    def matched_nodes(self) -> np.ndarray:
        """Addresses of nodes covered by some matched pointer."""
        return np.unique(
            np.concatenate([self.tails, self.lst.next[self.tails]])
        )


def verify_matching(lst: LinkedList, tails: np.ndarray) -> None:
    """Check independence: the chosen pointers exist and share no vertex.

    Raises :class:`VerificationError` naming the first offense.
    """
    tails = as_index_array(tails, name="tails")
    n = lst.n
    if tails.size and (int(tails.min()) < 0 or int(tails.max()) >= n):
        raise VerificationError("matched tails must be node addresses")
    if np.unique(tails).size != tails.size:
        raise VerificationError("matched tails contain duplicates")
    nxt = lst.next
    if np.any(nxt[tails] == NIL):
        bad = int(tails[np.flatnonzero(nxt[tails] == NIL)[0]])
        raise VerificationError(
            f"node {bad} has no pointer (it is the tail) but was matched"
        )
    chosen = np.zeros(n, dtype=bool)
    chosen[tails] = True
    # Two chosen pointers share a vertex iff consecutive: <v,w> & <w,u>.
    heads = nxt[tails]
    clash = chosen[heads]
    if np.any(clash):
        bad = int(tails[np.flatnonzero(clash)[0]])
        raise VerificationError(
            f"pointers <{bad},{int(nxt[bad])}> and "
            f"<{int(nxt[bad])},{int(nxt[nxt[bad]])}> are both matched but "
            f"share node {int(nxt[bad])}"
        )


def verify_maximal_matching(lst: LinkedList, tails: np.ndarray) -> None:
    """Check independence *and* maximality.

    Maximality: every pointer ``<v, suc(v)>`` outside the matching has a
    consecutive pointer inside it — otherwise both its endpoints are
    free and it could be added.

    Raises :class:`VerificationError` naming the first addable pointer.
    """
    verify_matching(lst, tails)
    n = lst.n
    if n <= 1:
        return
    nxt = lst.next
    pred = lst.pred
    chosen = np.zeros(n, dtype=bool)
    chosen[as_index_array(tails, name="tails")] = True
    has_ptr = nxt != NIL
    v = np.flatnonzero(has_ptr & ~chosen)
    # Neighbor pointers: <pre(v), v> (exists iff pred[v] != NIL) and
    # <suc(v), suc(suc(v))> (exists iff nxt[suc(v)] != NIL).
    left_ok = np.zeros(v.size, dtype=bool)
    has_left = pred[v] != NIL
    left_ok[has_left] = chosen[pred[v][has_left]]
    right_ok = np.zeros(v.size, dtype=bool)
    w = nxt[v]
    has_right = nxt[w] != NIL
    right_ok[has_right] = chosen[w[has_right]]
    addable = ~(left_ok | right_ok)
    if np.any(addable):
        bad = int(v[np.flatnonzero(addable)[0]])
        raise VerificationError(
            f"pointer <{bad},{int(nxt[bad])}> could still be added: "
            f"the matching is not maximal"
        )
