"""Matching partition functions (paper section 2, Lemmas 1–2).

The pointer ``<a, b>`` is assigned ``f(<a,b>) = 2k + a_k`` where ``k``
is the index of the bit where ``a XOR b`` differ — the *most*
significant such bit in the paper's intuitive definition (derived from
the bisecting-lines picture of Fig. 2) or the *least* significant one
in the variant the paper credits to [6,15] and Cole–Vishkin [3]
("In doing so, we gain the advantage for computing function f at the
expense of losing intuition").  Both are **matching partition
functions**:

    ``f(a, b) != f(b, c)`` whenever ``a != b`` or ``b != c``

so pointers carrying equal labels never share an endpoint, i.e. each
label class is a matching set.  Since ``k < ceil(log2 n)`` for
addresses below ``n``, one application yields at most ``2 ceil(log n)``
sets — Lemma 1.

Re-applying ``f`` to the label sequence (taking each node's label as
its new "address") coarsens the partition: Lemma 2 bounds ``f^(k)`` by
``2 log^(k-1) n (1 + o(1))`` sets.  :func:`iterate_f` implements the
iteration with the paper's circular convention for the last element and
charges each round to an optional cost model.
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

from .._util import as_index_array, require
from ..bits.bitops import bit_at, lsb_index, msb_index
from ..errors import InvalidParameterError, VerificationError
from ..lists.linked_list import LinkedList
from ..pram.cost import CostModel

__all__ = [
    "f_msb",
    "f_lsb",
    "pair_function",
    "apply_f",
    "iterate_f",
    "max_label_after",
    "label_bound_sequence",
]

FunctionKind = Literal["msb", "lsb"]


def f_msb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The paper's bisecting-line function: ``2k + a_k``, ``k`` the MSB
    of ``a XOR b``.

    ``a`` and ``b`` must be elementwise distinct non-negative arrays.
    The ``a_k`` bit records whether ``<a,b>`` is a forward or backward
    pointer across bisecting line ``k`` (section 2).
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if np.any(a == b):
        raise InvalidParameterError("f requires a != b elementwise")
    if a.size and (int(a.min()) < 0 or int(b.min()) < 0):
        raise InvalidParameterError("f requires non-negative addresses")
    k = msb_index(a ^ b)
    return 2 * k + bit_at(a, k)


def f_lsb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The least-significant-bit variant: ``2k + a_k``, ``k`` the LSB of
    ``a XOR b`` (the Cole–Vishkin "deterministic coin tossing" form,
    cheaper to evaluate — the appendix's unary-conversion pipeline is
    exactly this ``k``)."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if np.any(a == b):
        raise InvalidParameterError("f requires a != b elementwise")
    if a.size and (int(a.min()) < 0 or int(b.min()) < 0):
        raise InvalidParameterError("f requires non-negative addresses")
    k = lsb_index(a ^ b)
    return 2 * k + bit_at(a, k)


def pair_function(kind: FunctionKind) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Resolve ``"msb"`` / ``"lsb"`` to the corresponding function."""
    if kind == "msb":
        return f_msb
    if kind == "lsb":
        return f_lsb
    raise InvalidParameterError(f"unknown matching function kind {kind!r}")


def apply_f(
    labels: np.ndarray,
    circular_next: np.ndarray,
    func: Callable[[np.ndarray, np.ndarray], np.ndarray] = f_msb,
) -> np.ndarray:
    """One parallel round: ``label[v] := f(label[v], label[suc(v)])``.

    ``circular_next`` must have the tail wired to the head (the paper's
    convention making ``f`` total), and the current labels must be
    distinct on every adjacent pair — which holds inductively, see
    :func:`iterate_f`.
    """
    labels = as_index_array(labels, name="labels")
    circular_next = as_index_array(circular_next, name="circular_next")
    return func(labels, labels[circular_next])


def iterate_f(
    lst: LinkedList,
    rounds: int,
    *,
    kind: FunctionKind = "msb",
    cost: CostModel | None = None,
    return_history: bool = False,
) -> np.ndarray | list[np.ndarray]:
    """Apply ``f`` ``rounds`` times starting from node addresses.

    This is steps 1–2 of Match1 (and the "number crunching" step 2 of
    Match3): ``label[v] := address of v``, then ``rounds`` synchronous
    rounds of ``label[v] := f(label[v], label[suc(v)])`` with the
    circular convention at the tail.

    Returns the final per-node labels (or, with ``return_history``, the
    list of label arrays after each round — round 0 being the raw
    addresses).  Each round charges one width-``n`` parallel step to
    ``cost``.

    The adjacent-distinct invariant is asserted after every round: its
    failure would mean ``f`` is not a matching partition function,
    hence :class:`VerificationError`.
    """
    require(rounds >= 0, f"rounds must be >= 0, got {rounds}")
    func = pair_function(kind)
    cnext = lst.circular_next()
    labels = np.arange(lst.n, dtype=np.int64)
    history = [labels]
    if lst.n == 1:
        # A single node has no pointer; its "label" stays its address.
        return history * (rounds + 1) if return_history else labels
    for _ in range(rounds):
        labels = apply_f(labels, cnext, func)
        if np.any(labels == labels[cnext]):
            raise VerificationError(
                "adjacent labels collided after an f round; "
                "matching-partition property violated"
            )
        if cost is not None:
            cost.parallel(lst.n)
        if return_history:
            history.append(labels)
    return history if return_history else labels


def max_label_after(n: int, rounds: int, *, kind: FunctionKind = "msb") -> int:
    """Upper bound (exclusive) on labels after ``rounds`` applications.

    Round 0 labels are addresses ``< n``.  Each round maps values
    ``< m`` to values ``< 2*ceil(log2 m)`` (``k < ceil(log2 m)``), for
    either variant.  This is the bound Match3 uses to size its lookup
    table fields.
    """
    require(n >= 1, f"n must be >= 1, got {n}")
    require(rounds >= 0, f"rounds must be >= 0, got {rounds}")
    bound = int(n)
    for _ in range(rounds):
        bound = 2 * max(1, (bound - 1).bit_length())
    _ = kind  # both variants share the bound
    return bound


def label_bound_sequence(n: int, rounds: int) -> list[int]:
    """The sequence ``[n, bound_1, ..., bound_rounds]`` of exclusive
    label bounds per round — Lemma 2's ``2 log^(k-1) n (1+o(1))``
    with explicit constants; used by benches E2/E5."""
    out = [int(n)]
    for r in range(1, rounds + 1):
        out.append(max_label_after(n, r))
    return out
