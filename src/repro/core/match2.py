"""Algorithm Match2 (paper section 2, Lemma 4).

The optimal EREW algorithm: partition pointers into at most
``O(log^(2) n)`` matching sets (two rounds of ``f``), **sort** the
pointers by set number so each set is contiguous, then sweep the sets
one by one, greedily adding every pointer whose endpoints are still
free.  Because pointers inside one set never share endpoints, each
sub-round is conflict-free.

"The time complexity of Step 2 in Match2 dominates the whole
algorithm": the sort is an integer sort on keys in
``{0..log^(2) n - 1}``, costing ``O(n/p + log n)`` on the EREW PRAM;
Reif's CRCW partial-sum algorithm improves the additive term to
``log n / log^(3) n`` and Cole–Vishkin's to ``log n / log^(2) n``.  We
execute one real stable counting sort and charge whichever *cost law*
the caller selects — the substitution documented in DESIGN.md §2 —
so E4 can reproduce all three variants' curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .._util import ceil_div, require
from ..bits.iterated_log import ilog2
from ..errors import InvalidParameterError
from ..lists.linked_list import NIL, LinkedList
from ..pram.cost import CostModel, CostReport
from .functions import FunctionKind, iterate_f
from .matching import Matching

__all__ = ["SORT_COST_LAWS", "Match2Stats", "match2"]


def _additive_erew(n: int) -> int:
    """EREW integer sort: additive ``Theta(log n)``."""
    return max(1, (max(2, n) - 1).bit_length())


def _additive_reif(n: int) -> int:
    """Reif's CRCW partial sums: additive ``Theta(log n / log^(3) n)``."""
    log_n = _additive_erew(n)
    denom = max(1.0, ilog2(max(16, n), 3))
    return max(1, math.ceil(log_n / denom))


def _additive_cole_vishkin(n: int) -> int:
    """Cole–Vishkin partial sums: additive ``Theta(log n / log^(2) n)``."""
    log_n = _additive_erew(n)
    denom = max(1.0, ilog2(max(4, n), 2))
    return max(1, math.ceil(log_n / denom))


#: Pluggable sort-cost laws, keyed by the variant names used in E4.
SORT_COST_LAWS: dict[str, Callable[[int], int]] = {
    "erew": _additive_erew,
    "reif": _additive_reif,
    "cole_vishkin": _additive_cole_vishkin,
}


@dataclass(frozen=True)
class Match2Stats:
    """Diagnostics of one Match2 run."""

    num_sets: int
    sort_law: str
    sort_additive: int


def match2(
    lst: LinkedList,
    *,
    p: int = 1,
    kind: FunctionKind = "msb",
    sort_law: str = "erew",
    partition_rounds: int = 2,
) -> tuple[Matching, CostReport, Match2Stats]:
    """Compute a maximal matching by Algorithm Match2.

    Parameters
    ----------
    lst:
        Input list.
    p:
        Processor count for the cost accounting.
    kind:
        Matching partition function variant.
    sort_law:
        Which partial-sum machinery prices the sort: ``"erew"``
        (Lemma 4's ``O(n/p + log n)``), ``"reif"``, or
        ``"cole_vishkin"``.
    partition_rounds:
        ``f`` iterations in step 1 (2 per the paper, giving
        ``O(log^(2) n)`` sets).

    Returns
    -------
    (matching, report, stats):
        Phases in the report: ``partition``, ``sort``, ``sweep``.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    require(partition_rounds >= 1,
            f"partition_rounds must be >= 1, got {partition_rounds}")
    if sort_law not in SORT_COST_LAWS:
        raise InvalidParameterError(
            f"unknown sort_law {sort_law!r}; choose from "
            f"{sorted(SORT_COST_LAWS)}"
        )
    n = lst.n
    cost = CostModel(p)

    # ---- Step 1: partition into O(log^(2) n) matching sets. ----
    with cost.phase("partition"):
        labels = iterate_f(lst, partition_rounds, kind=kind, cost=cost)

    nxt = lst.next
    tails = np.flatnonzero(nxt != NIL)
    ptr_labels = labels[tails]

    # ---- Step 2: stable integer sort of pointers by set number. ----
    with cost.phase("sort"):
        order = np.argsort(ptr_labels, kind="stable")
        sorted_tails = tails[order]
        sorted_labels = ptr_labels[order]
        additive = SORT_COST_LAWS[sort_law](n)
        cost.parallel(n)           # the O(n/p) data-movement term
        cost.sequential(additive)  # the law's additive term

    # ---- Step 3: sweep the sets, greedily matching free pointers. ----
    done = np.zeros(n, dtype=bool)
    chosen = np.zeros(n, dtype=bool)
    if sorted_labels.size:
        set_values, set_starts = np.unique(sorted_labels, return_index=True)
        boundaries = np.append(set_starts, sorted_labels.size)
    else:
        set_values = np.empty(0, dtype=np.int64)
        boundaries = np.asarray([0])
    with cost.phase("sweep"):
        for j in range(set_values.size):
            members = sorted_tails[boundaries[j]:boundaries[j + 1]]
            heads = nxt[members]
            free = ~done[members] & ~done[heads]
            add = members[free]
            # Pointers in one matching set have pairwise-disjoint
            # endpoints, so these updates are conflict-free.
            done[add] = True
            done[nxt[add]] = True
            chosen[add] = True
            cost.parallel(int(members.size))
            cost.sequential(0 if members.size else 1)

    matching = Matching(lst, np.flatnonzero(chosen))
    stats = Match2Stats(
        num_sets=int(set_values.size),
        sort_law=sort_law,
        sort_additive=additive if n > 1 else 0,
    )
    return matching, cost.report(), stats
