"""WalkDown1 and WalkDown2 (paper section 3, Lemmas 6–7).

These are the paper's new processor-scheduling technique.  Both sweeps
3-label a class of pointers greedily; their whole content is the
*schedule* guaranteeing that no two pointers sharing an endpoint are
ever processed in the same synchronous step, so each processor can pick
its label from ``{0,1,2}`` independently.

**WalkDown1** (Lemma 6) — handles **inter-row** pointers.  All column
processors sweep rows ``0..x-1`` in lockstep; at step ``r`` the pointer
in each column's row-``r`` cell is processed *if it is inter-row*.
Safety: a neighbor pointer of an inter-row pointer processed at step
``r`` would have to sit in row ``r`` too, which the inter-row condition
forbids (worked out per-case in the test suite).

**WalkDown2** (Lemma 7) — handles **intra-row** pointers over the
label-sorted columns.  Each processor runs the paper's count/index
automaton for ``2x - 1`` steps::

    count := 0; index := 0
    for i := 0 to 2x - 2:
        if index <= x - 1:
            if A[index] = count: process A[index]; index += 1
            else:                count += 1

Lemma 7: the cell in row ``r`` is processed exactly at step
``A[r] + r``.  Corollary 1: every cell gets processed.  Corollary 2:
all processors in one row at one step see the same label — so pointers
processed together in a row belong to one matching set and share no
endpoints.  Pointers in *different* rows at the same step are safe too:
an intra-row pointer's neighbors in the walk live in its own row.

Both sweeps are implemented twice: a **literal automaton**
(:func:`walkdown2_automaton`) used to certify Lemma 7 and the
corollaries, and the production vectorized sweeps (:func:`walkdown1`,
:func:`walkdown2`) that group work by step and assert the
disjointness invariant as they go.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_index_array
from ..errors import VerificationError
from ..lists.linked_list import NIL, LinkedList
from ..pram.cost import CostModel
from .layout import EMPTY, Layout2D

__all__ = [
    "WalkDown2Trace",
    "walkdown1",
    "walkdown2",
    "walkdown2_automaton",
    "walkdown2_step_of",
]


# ---------------------------------------------------------------------------
# The literal automaton (Lemma 7 artifact).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WalkDown2Trace:
    """Trace of one column's WalkDown2 automaton run.

    Attributes
    ----------
    processed_at:
        ``processed_at[r]`` is the step at which row ``r``'s cell was
        processed (marked), per the loop index ``i``.
    idle_steps:
        Steps spent in the ``count := count + 1`` branch.
    total_steps:
        Loop iterations executed (always ``2x - 1``).
    """

    processed_at: np.ndarray
    idle_steps: int
    total_steps: int


def walkdown2_automaton(sorted_labels: np.ndarray) -> WalkDown2Trace:
    """Run the paper's count/index loop literally on one column.

    ``sorted_labels`` is the ascending label array ``A[0..x-1]`` with
    every entry in ``[0, x)`` (Lemma 7's premise ``A[r] <= x - 1`` —
    ``A[r] <= r`` is not required, only sortedness and range).
    """
    a = as_index_array(sorted_labels, name="sorted_labels")
    x = a.size
    if x == 0:
        return WalkDown2Trace(np.empty(0, dtype=np.int64), 0, 0)
    if np.any(np.diff(a) < 0):
        raise VerificationError("WalkDown2 requires an ascending column")
    if int(a.min()) < 0 or int(a.max()) > x - 1:
        raise VerificationError(
            f"WalkDown2 labels must lie in [0, {x - 1}]"
        )
    processed_at = np.full(x, -1, dtype=np.int64)
    count = 0
    index = 0
    idle = 0
    total = 0
    for i in range(2 * x - 1):
        total += 1
        if index <= x - 1:
            if a[index] == count:
                processed_at[index] = i   # "A[index] := MARKED"
                index += 1
            else:
                count += 1
                idle += 1
    if np.any(processed_at < 0):
        raise VerificationError(
            "WalkDown2 automaton failed to mark every cell "
            "(contradicts Corollary 1)"
        )
    return WalkDown2Trace(processed_at=processed_at, idle_steps=idle,
                          total_steps=total)


def walkdown2_step_of(layout: Layout2D) -> np.ndarray:
    """Lemma 7 in closed form: node ``v``'s cell is processed at step
    ``label[v] + row_of[v]``.  The automaton trace is asserted equal in
    tests; production sweeps use this directly."""
    return layout.labels + layout.row_of


# ---------------------------------------------------------------------------
# Production sweeps.
# ---------------------------------------------------------------------------

def _mex3(base: int, l1: np.ndarray, l2: np.ndarray) -> np.ndarray:
    """Smallest label in ``{base, base+1, base+2}`` avoiding l1 and l2.

    ``l1``/``l2`` are current neighbor labels (-1 when absent).  With
    at most two exclusions among three candidates, a choice always
    exists.
    """
    c0 = np.int64(base)
    c1 = np.int64(base + 1)
    bad0 = (l1 == c0) | (l2 == c0)
    bad1 = (l1 == c1) | (l2 == c1)
    return np.where(~bad0, c0, np.where(~bad1, c1, np.int64(base + 2)))


def _greedy_sweep(
    lst: LinkedList,
    layout: Layout2D,
    tails: np.ndarray,
    step_of: np.ndarray,
    *,
    base: int,
    labels6: np.ndarray,
    cost: CostModel | None,
    check: bool,
    phase_name: str,
) -> int:
    """Process the given pointers grouped by step, greedily 3-labeling.

    ``step_of`` maps each tail in ``tails`` to its processing step.
    Writes into ``labels6`` in place.  Returns the number of steps
    swept.  With ``check``, asserts that pointers processed in one step
    never share an endpoint — the sweeps' safety theorem.
    """
    nxt = lst.next
    pred = lst.pred
    if tails.size == 0:
        return 0
    order = np.argsort(step_of, kind="stable")
    tails = tails[order]
    steps = step_of[order]
    uniq, starts = np.unique(steps, return_index=True)
    boundaries = np.append(starts, steps.size)
    max_step = int(uniq.max()) + 1 if uniq.size else 0
    for j in range(uniq.size):
        group = tails[boundaries[j]:boundaries[j + 1]]
        if check and group.size > 1:
            ends = np.concatenate([group, nxt[group]])
            if np.unique(ends).size != ends.size:
                raise VerificationError(
                    f"{phase_name}: two pointers processed at step "
                    f"{int(uniq[j])} share an endpoint — the schedule's "
                    f"safety guarantee failed"
                )
        heads = nxt[group]
        # Neighbor pointers: <pre(tail), tail> and <head, suc(head)>.
        left = pred[group]
        l1 = np.where(left != NIL, labels6[np.where(left != NIL, left, 0)], -1)
        has_r = nxt[heads] != NIL
        l2 = np.where(has_r, labels6[np.where(has_r, heads, 0)], -1)
        labels6[group] = _mex3(base, l1, l2)
    if cost is not None:
        cost.parallel(layout.y, depth=max(1, max_step))
    return max_step


def walkdown1(
    lst: LinkedList,
    layout: Layout2D,
    inter_tails: np.ndarray,
    labels6: np.ndarray,
    *,
    cost: CostModel | None = None,
    check: bool = True,
) -> int:
    """Sweep rows 0..x-1, 3-labeling inter-row pointers with {0,1,2}.

    Step of pointer ``<v, suc(v)>`` is ``row_of[v]`` (the row its tail
    cell occupies).  Returns the number of steps (``x``).
    """
    step_of = layout.row_of[inter_tails]
    _greedy_sweep(
        lst, layout, inter_tails, step_of,
        base=0, labels6=labels6, cost=cost, check=check,
        phase_name="WalkDown1",
    )
    return layout.x


def walkdown2(
    lst: LinkedList,
    layout: Layout2D,
    intra_tails: np.ndarray,
    labels6: np.ndarray,
    *,
    cost: CostModel | None = None,
    check: bool = True,
) -> int:
    """Pipelined sweep 3-labeling intra-row pointers with {3,4,5}.

    Step of pointer ``<v, suc(v)>`` is ``label[v] + row_of[v]``
    (Lemma 7).  Returns the number of steps (``<= 2x - 1``).
    """
    step_of = walkdown2_step_of(layout)[intra_tails]
    swept = _greedy_sweep(
        lst, layout, intra_tails, step_of,
        base=3, labels6=labels6, cost=cost, check=check,
        phase_name="WalkDown2",
    )
    return min(max(swept, 1), 2 * layout.x - 1)
