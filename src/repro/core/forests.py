"""The paper's pipeline on forests of lists (extension module).

Everything is per-component local: iterated ``f`` uses each
component's own circular wrap, the local-minima cut applies to interior
nodes of every component, each component's first pointer seeds a walk,
and the end repair fires independently per component tail (repairs on
different components touch disjoint nodes, so they commute).
"""

from __future__ import annotations

import numpy as np

from .._util import require
from ..bits.iterated_log import G
from ..errors import VerificationError
from ..lists.forest import Forest
from ..lists.linked_list import NIL
from ..pram.cost import CostModel, CostReport
from .functions import FunctionKind, pair_function

__all__ = [
    "forest_iterate_f",
    "forest_maximal_matching",
    "verify_forest_maximal_matching",
]


def forest_iterate_f(
    forest: Forest,
    rounds: int,
    *,
    kind: FunctionKind = "msb",
    cost: CostModel | None = None,
) -> np.ndarray:
    """Iterate ``f`` with per-component circular wrap."""
    require(rounds >= 0, f"rounds must be >= 0, got {rounds}")
    func = pair_function(kind)
    labels = np.arange(forest.n, dtype=np.int64)
    cnext = forest.circular_next()
    # Single-node components wrap to themselves; f is undefined there,
    # so mask them out (their labels are irrelevant — no pointers).
    live = cnext != np.arange(forest.n)
    for _ in range(rounds):
        new = labels.copy()
        new[live] = func(labels[live], labels[cnext[live]])
        labels = new
        clash = live & (labels == labels[cnext])
        if np.any(clash):
            raise VerificationError(
                "adjacent labels collided during forest iteration"
            )
        if cost is not None:
            cost.parallel(forest.n)
    return labels


def forest_maximal_matching(
    forest: Forest,
    *,
    p: int = 1,
    kind: FunctionKind = "msb",
    rounds: int | None = None,
) -> tuple[np.ndarray, CostReport]:
    """Maximal matching of every component, in one vectorized pipeline.

    Returns ``(tails, report)``; verified before return.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    n = forest.n
    cost = CostModel(p)
    if rounds is None:
        rounds = G(max(2, n))
    with cost.phase("iterate"):
        labels = forest_iterate_f(forest, rounds, kind=kind, cost=cost)
    nxt = forest.next
    pred = forest.pred
    with cost.phase("cutwalk"):
        # Cut interior strict local minima (per component — the masks
        # already encode component boundaries as NIL neighbors).
        interior = (pred != NIL) & (nxt != NIL)
        cut = np.zeros(n, dtype=bool)
        iv = np.flatnonzero(interior)
        is_min = (labels[pred[iv]] > labels[iv]) & (
            labels[iv] < labels[nxt[iv]]
        )
        cut[iv[is_min]] = True
        cost.parallel(n)
        # Segment starts: every component head's pointer + successors
        # of cuts.
        has_ptr = nxt != NIL
        start_mask = has_ptr & ~cut
        not_head = pred != NIL
        follows_live = np.zeros(n, dtype=bool)
        hp = np.flatnonzero(not_head & has_ptr)
        follows_live[hp] = ~cut[pred[hp]]
        start_mask &= ~(not_head & follows_live)
        current = np.flatnonzero(start_mask)
        num_segments = int(current.size)
        chosen = np.zeros(n, dtype=bool)
        walked = 0
        while current.size:
            walked += 1
            if walked > n:
                raise VerificationError("forest walk failed to terminate")
            chosen[current] = True
            w1 = nxt[current]
            in1 = (nxt[w1] != NIL) & ~cut[w1]
            w2 = nxt[w1[in1]]
            in2 = (nxt[w2] != NIL) & ~cut[w2]
            current = w2[in2]
        cost.parallel(num_segments, depth=max(1, walked))
        # Per-component end repair (independent components commute).
        last_ptrs = pred[forest.tails]
        last_ptrs = last_ptrs[last_ptrs != NIL]
        if last_ptrs.size:
            unchosen = ~chosen[last_ptrs]
            before = pred[last_ptrs]
            covered = np.zeros(last_ptrs.size, dtype=bool)
            hb = before != NIL
            covered[hb] = chosen[before[hb]]
            repair = last_ptrs[unchosen & ~covered]
            chosen[repair] = True
            cost.parallel(int(last_ptrs.size))
    tails = np.flatnonzero(chosen)
    verify_forest_maximal_matching(forest, tails)
    return tails, cost.report()


def verify_forest_maximal_matching(forest: Forest, tails: np.ndarray) -> None:
    """Independence + maximality over every component at once."""
    tails = np.asarray(tails, dtype=np.int64)
    n = forest.n
    nxt = forest.next
    pred = forest.pred
    if tails.size and (int(tails.min()) < 0 or int(tails.max()) >= n):
        raise VerificationError("forest tails must be node addresses")
    if np.any(nxt[tails] == NIL):
        bad = int(tails[np.flatnonzero(nxt[tails] == NIL)[0]])
        raise VerificationError(f"node {bad} has no pointer but was matched")
    chosen = np.zeros(n, dtype=bool)
    chosen[tails] = True
    clash = chosen[tails] & chosen[nxt[tails]]
    if np.any(clash):
        bad = int(tails[np.flatnonzero(clash)[0]])
        raise VerificationError(
            f"consecutive pointers at {bad} and {int(nxt[bad])} both matched"
        )
    free_v = np.flatnonzero((nxt != NIL) & ~chosen)
    left_ok = np.zeros(free_v.size, dtype=bool)
    hl = pred[free_v] != NIL
    left_ok[hl] = chosen[pred[free_v][hl]]
    right_ok = np.zeros(free_v.size, dtype=bool)
    w = nxt[free_v]
    hr = nxt[w] != NIL
    right_ok[hr] = chosen[w[hr]]
    addable = ~(left_ok | right_ok)
    if np.any(addable):
        bad = int(free_v[np.flatnonzero(addable)[0]])
        raise VerificationError(
            f"forest pointer <{bad},{int(nxt[bad])}> could still be added"
        )
