"""Algorithm Match4 — the paper's main contribution (section 3).

The optimal processor-scheduling algorithm:

1. Partition the pointers into ``x = O(log^(i) n)`` matching sets
   (two strategies, below).
2. View the array as ``x`` rows × ``y = n/x`` columns; each column
   processor sorts its own column by set label — a *local* ``O(x)``
   counting sort replacing Match2's global sort.
3. WalkDown1 3-labels the inter-row pointers with ``{0,1,2}``.
4. WalkDown2 3-labels the intra-row pointers with ``{3,4,5}`` — the
   "minor adjustment needed in combining the partitions" is exactly the
   disjoint label ranges, which make mixed-class neighbors distinct for
   free.
5. Steps 3–4 of Match1 finish the maximal matching from the six-set
   partition.

**Theorem 1**: optimal (``T*p = O(n)``) for up to ``n / log^(i) n``
processors, any constant ``i``.  **Theorem 2**: time
``O(n log i / p + log^(i) n + log i)`` for constructible ``i``.

Step 1 strategies:

- ``"iterate"`` (Lemma 3): ``i`` rounds of ``f`` — ``O(n i / p + i)``.
- ``"table"`` (Lemma 5): crunch 2 rounds, pointer-double
  ``ceil(log2 i)`` rounds, one ``f^(2^ceil(log2 i))`` table lookup —
  ``O(n log i / p + log i)``, the cost Theorem 2 quotes.  The table is
  preprocessing, exactly as in Match3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from .._util import ceil_div, require
from ..bits.lookup import INVALID, MatchingFunctionTable, build_table_direct
from ..errors import InvalidParameterError, VerificationError
from ..lists.linked_list import NIL, LinkedList
from ..pram.cost import CostModel, CostReport
from .cutwalk import CutWalkStats, cut_and_walk
from .functions import FunctionKind, iterate_f, max_label_after, pair_function
from .layout import Layout2D, build_layout
from .matching import Matching
from .partition import NO_POINTER, verify_matching_partition
from .walkdown import walkdown1, walkdown2

__all__ = ["Match4Stats", "match4", "plan_rows"]

PartitionStrategy = Literal["iterate", "table"]


@dataclass(frozen=True)
class Match4Stats:
    """Diagnostics of one Match4 run (E6/E7 benches)."""

    i: int
    strategy: str
    x: int
    y: int
    num_inter: int
    num_intra: int
    cutwalk: CutWalkStats


def _bound_map(m: int, times: int) -> int:
    """Apply ``m -> 2*ceil(log2 m)`` ``times`` times (label magnitude)."""
    for _ in range(times):
        m = 2 * max(1, (m - 1).bit_length())
    return m


def plan_rows(n: int, i: int, strategy: PartitionStrategy = "iterate") -> int:
    """Row count ``x`` — the exclusive label bound step 1 achieves.

    ``Theta(log^(i) n)`` either way; the table strategy applies ``f``
    ``2 + 2^ceil(log2 i) - 1`` times in total, the iterate strategy
    exactly ``i`` times.
    """
    require(n >= 2, f"n must be >= 2, got {n}")
    require(i >= 1, f"i must be >= 1, got {i}")
    if strategy == "iterate":
        return max(2, max_label_after(n, i))
    if strategy == "table":
        r = max(1, (i - 1).bit_length())
        g = 1 << r
        return max(2, _bound_map(max_label_after(n, 2), g - 1))
    raise InvalidParameterError(f"unknown strategy {strategy!r}")


def _partition_iterate(
    lst: LinkedList, i: int, kind: FunctionKind, cost: CostModel
) -> tuple[np.ndarray, int]:
    labels = iterate_f(lst, i, kind=kind, cost=cost)
    return labels, max(2, max_label_after(lst.n, i))


def _partition_table(
    lst: LinkedList,
    i: int,
    kind: FunctionKind,
    cost: CostModel,
    memory_limit: int,
    table: MatchingFunctionTable | None,
) -> tuple[np.ndarray, int]:
    n = lst.n
    crunch = 2
    r = max(1, (i - 1).bit_length())
    g = 1 << r
    bound2 = max_label_after(n, crunch)
    b = max(1, (bound2 - 1).bit_length())
    cells = 1 << (g * b)
    if cells > memory_limit:
        raise InvalidParameterError(
            f"Match4 step-1 table needs {cells} cells (> {memory_limit}); "
            f"use strategy='iterate' for this (n, i)"
        )
    if table is None:
        table = build_table_direct(pair_function(kind), arity=g, bits_per_arg=b)
    labels = iterate_f(lst, crunch, kind=kind, cost=cost)
    packed = labels.copy()
    cnext = lst.circular_next()
    width = 1
    for _ in range(r):
        packed = (packed << (b * width)) | packed[cnext]
        cnext = cnext[cnext]
        width *= 2
        cost.parallel(n)
    out = table.lookup(packed)
    cost.parallel(n)
    if np.any(out == INVALID):
        raise VerificationError("step-1 table lookup hit an INVALID window")
    return out, max(2, _bound_map(bound2, g - 1))


def match4(
    lst: LinkedList,
    *,
    p: int = 1,
    i: int = 2,
    kind: FunctionKind = "msb",
    strategy: PartitionStrategy = "iterate",
    memory_limit: int = 1 << 24,
    step1_table: MatchingFunctionTable | None = None,
    check: bool = True,
) -> tuple[Matching, CostReport, Match4Stats]:
    """Compute a maximal matching by Algorithm Match4.

    Parameters
    ----------
    lst:
        Input list.
    p:
        Processor count for the cost accounting (the paper's optimal
        regime is ``p <= n / log^(i) n``; any ``p`` is accepted).
    i:
        The adjustable parameter: deeper partition → fewer rows →
        shorter sweeps, at ``O(n log i / p)`` partition cost.
    kind:
        Matching partition function variant.
    strategy:
        Step-1 strategy (see module docstring).
    memory_limit:
        Cell budget for the ``"table"`` strategy's lookup table.
    step1_table:
        Optional prebuilt step-1 table (must match the plan's shape).
    check:
        Verify the six-set partition and sweep disjointness invariants
        as the run goes (cheap; on by default — benches may disable).

    Returns
    -------
    (matching, report, stats):
        Report phases: ``partition``, ``sort``, ``walkdown1``,
        ``walkdown2``, ``cutwalk``.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    require(i >= 1, f"i must be >= 1, got {i}")
    n = lst.n
    cost = CostModel(p)
    if n == 1:
        return (
            Matching(lst, np.empty(0, dtype=np.int64)),
            cost.report(),
            Match4Stats(i, strategy, 1, 1, 0, 0, CutWalkStats(0, 0, 0, False)),
        )

    # ---- Step 1: partition into x matching sets. ----
    with cost.phase("partition"):
        if strategy == "iterate":
            labels, x = _partition_iterate(lst, i, kind, cost)
        elif strategy == "table":
            labels, x = _partition_table(
                lst, i, kind, cost, memory_limit, step1_table
            )
        else:
            raise InvalidParameterError(f"unknown strategy {strategy!r}")

    # ---- Step 2: 2-D layout + per-column local sorts. ----
    with cost.phase("sort"):
        layout = build_layout(lst, labels, x, cost=cost)
    intra_tails, inter_tails = layout.classify_pointers(lst)

    # ---- Steps 3–4: the WalkDown sweeps. ----
    labels6 = np.full(n, NO_POINTER, dtype=np.int64)
    with cost.phase("walkdown1"):
        walkdown1(lst, layout, inter_tails, labels6, cost=cost, check=check)
    with cost.phase("walkdown2"):
        walkdown2(lst, layout, intra_tails, labels6, cost=cost, check=check)
    if check:
        verify_matching_partition(lst, labels6)

    # ---- Step 5: Match1 steps 3–4 on the six-set partition. ----
    with cost.phase("cutwalk"):
        tails, cw = cut_and_walk(lst, labels6, cost=cost)
    matching = Matching(lst, tails)
    stats = Match4Stats(
        i=i,
        strategy=strategy,
        x=layout.x,
        y=layout.y,
        num_inter=int(inter_tails.size),
        num_intra=int(intra_tails.size),
        cutwalk=cw,
    )
    return matching, cost.report(), stats
