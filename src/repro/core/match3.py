"""Algorithm Match3 (paper section 2, Lemma 5; Han [7] / Beame).

The table-lookup algorithm:

1. *Number crunching* — ``k`` rounds of ``f`` shrink every label to
   ``b = O(log^(k) n)`` bits.
2. *Doubling concatenation* — ``r = log G(n)`` rounds of
   ``label[v] := label[v] ++ label[NEXT[v]]; NEXT[v] := NEXT[NEXT[v]]``
   leave each node holding the ``g = 2^r`` consecutive crunched labels
   starting at it, packed in ``g*b`` bits.
3. *Table lookup* — one probe of a precomputed table holding the
   iterated matching partition function ``f^(g)`` collapses the window
   to a constant-size label.
4. Steps 3–4 of Match1 finish the maximal matching.

Time ``O(n log G(n) / p + log G(n))``; the table has
``2^(G(n) log^(k) n)`` cells, which the paper keeps below ``n`` by
choosing ``k > 4``.  :func:`plan_match3` performs exactly that
feasibility calculation and (when the literal ``log G(n)`` doubling
depth would breach the memory budget) clamps the doubling depth,
recording both figures so E5 can tabulate the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from ..bits.iterated_log import log_G
from ..bits.lookup import INVALID, MatchingFunctionTable, build_table_direct
from ..errors import InvalidParameterError, VerificationError
from ..lists.linked_list import LinkedList
from ..pram.cost import CostModel, CostReport
from .cutwalk import CutWalkStats, cut_and_walk
from .functions import FunctionKind, iterate_f, max_label_after, pair_function
from .matching import Matching

__all__ = ["Match3Plan", "Match3Stats", "plan_match3", "match3"]


@dataclass(frozen=True)
class Match3Plan:
    """Concrete parameters for one Match3 run.

    Attributes
    ----------
    n:
        Input size the plan was sized for.
    crunch_rounds:
        ``k``, the number-crunching depth (step 2 of the paper's
        listing).
    doubling_rounds:
        ``r``, the executed doubling depth; ``arity = 2^r``.
    paper_doubling_rounds:
        The literal ``log G(n)`` the paper prescribes (equal to
        ``doubling_rounds`` unless the memory budget forced a clamp).
    bits_per_arg:
        ``b``, the post-crunch label width.
    """

    n: int
    crunch_rounds: int
    doubling_rounds: int
    paper_doubling_rounds: int
    bits_per_arg: int

    @property
    def arity(self) -> int:
        """Window length ``g = 2^doubling_rounds``."""
        return 1 << self.doubling_rounds

    @property
    def table_cells(self) -> int:
        """Size of the lookup table, ``2^(g*b)``."""
        return 1 << (self.arity * self.bits_per_arg)


@dataclass(frozen=True)
class Match3Stats:
    """Diagnostics of one Match3 run."""

    plan: Match3Plan
    final_label_max: int
    cutwalk: CutWalkStats


def plan_match3(
    n: int,
    *,
    crunch_rounds: int | None = None,
    doubling_rounds: int | None = None,
    memory_limit: int = 1 << 24,
) -> Match3Plan:
    """Size Match3's parameters for an ``n``-node list.

    Defaults follow the paper: ``k = 5`` ("k is greater than 4") and
    ``r = log G(n)``; ``r`` is reduced — never below 1 — until the
    table fits ``memory_limit`` cells, the same consideration the paper
    resolves by raising ``k`` (raising ``k`` further cannot shrink
    ``b`` below the constant fixed point, so clamping ``r`` is the
    honest lever at simulator scales).
    """
    require(n >= 2, f"n must be >= 2, got {n}")
    k = 5 if crunch_rounds is None else crunch_rounds
    require(k >= 1, f"crunch_rounds must be >= 1, got {k}")
    bound = max_label_after(n, k)
    b = max(1, (bound - 1).bit_length())
    paper_r = log_G(n)
    if doubling_rounds is None:
        r = paper_r
        while r > 1 and (1 << b) ** (1 << r) > memory_limit:
            r -= 1
    else:
        r = doubling_rounds
        require(r >= 1, f"doubling_rounds must be >= 1, got {r}")
    cells = 1 << ((1 << r) * b)
    if cells > memory_limit:
        raise InvalidParameterError(
            f"Match3 table needs {cells} cells (> {memory_limit}); "
            f"increase crunch_rounds or reduce doubling_rounds"
        )
    return Match3Plan(
        n=n,
        crunch_rounds=k,
        doubling_rounds=r,
        paper_doubling_rounds=paper_r,
        bits_per_arg=b,
    )


def match3(
    lst: LinkedList,
    *,
    p: int = 1,
    kind: FunctionKind = "msb",
    plan: Match3Plan | None = None,
    table: MatchingFunctionTable | None = None,
) -> tuple[Matching, CostReport, Match3Stats]:
    """Compute a maximal matching by Algorithm Match3.

    The lookup table counts as preprocessing (the paper prices its
    construction separately, in the appendix); pass a prebuilt
    ``table`` to amortize it across runs, else one is built from the
    plan.

    Returns ``(matching, report, stats)`` with report phases
    ``crunch``, ``double``, ``lookup``, ``cutwalk``.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    n = lst.n
    if n == 1:
        return (
            Matching(lst, np.empty(0, dtype=np.int64)),
            CostModel(p).report(),
            Match3Stats(
                plan=Match3Plan(1, 1, 1, 1, 1),
                final_label_max=-1,
                cutwalk=CutWalkStats(0, 0, 0, False),
            ),
        )
    if plan is None:
        plan = plan_match3(n)
    if table is None:
        table = build_table_direct(
            pair_function(kind),
            arity=plan.arity,
            bits_per_arg=plan.bits_per_arg,
        )
    if table.arity != plan.arity or table.bits_per_arg != plan.bits_per_arg:
        raise InvalidParameterError(
            f"table shape ({table.arity}, {table.bits_per_arg}) does not "
            f"match plan ({plan.arity}, {plan.bits_per_arg})"
        )
    cost = CostModel(p)

    # ---- Steps 1–2: number crunching. ----
    with cost.phase("crunch"):
        labels = iterate_f(lst, plan.crunch_rounds, kind=kind, cost=cost)
    if int(labels.max()) >> plan.bits_per_arg:
        raise VerificationError(
            "crunched labels exceed the planned field width"
        )

    # ---- Step 3: doubling concatenation. ----
    b = plan.bits_per_arg
    with cost.phase("double"):
        packed = labels.copy()
        cnext = lst.circular_next()
        width = 1
        for _ in range(plan.doubling_rounds):
            packed = (packed << (b * width)) | packed[cnext]
            cnext = cnext[cnext]
            width *= 2
            cost.parallel(n)

    # ---- Step 4: table lookup. ----
    with cost.phase("lookup"):
        final_labels = table.lookup(packed)
        cost.parallel(n)
    if np.any(final_labels == INVALID):
        raise VerificationError(
            "a packed window hit an INVALID table cell; the window "
            "contained an adjacent equal pair, which no list produces"
        )

    # ---- Steps 5–6: Match1 steps 3–4. ----
    with cost.phase("cutwalk"):
        tails, cw = cut_and_walk(lst, final_labels, cost=cost)
    matching = Matching(lst, tails)
    stats = Match3Stats(
        plan=plan,
        final_label_max=int(final_labels.max()),
        cutwalk=cw,
    )
    return matching, cost.report(), stats
