"""Match4's two-dimensional array view (paper section 3, step 2).

The list's storage array is viewed as ``x`` rows by ``y`` columns,
column-major: column ``c`` holds addresses ``[c*x, (c+1)*x)`` (the last
column padded).  One processor owns each column and **sorts its column
by matching-set label** with a sequential counting sort — ``O(x)``
local work, the move that replaces Match2's global sort.

After the sort, every node has a (row, column) position; a pointer
``<v, suc(v)>`` is **intra-row** when both endpoints' cells share a row
and **inter-row** otherwise.  The :class:`Layout2D` artifact exposes
positions, the classification, and the per-column sorted label arrays
``A`` that WalkDown2's automaton walks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_index_array, ceil_div, require
from ..errors import InvalidParameterError
from ..lists.linked_list import NIL, LinkedList
from ..pram.cost import CostModel

__all__ = ["Layout2D", "build_layout"]

#: Grid cells holding no node (padding in the last column).
EMPTY = -1


@dataclass(frozen=True)
class Layout2D:
    """The sorted 2-D view of a list under per-node set labels.

    Attributes
    ----------
    x, y:
        Rows and columns; ``x * y >= n``.
    grid:
        ``(x, y)`` array of node addresses (``EMPTY`` for padding);
        column ``c`` is its original address block sorted by label.
    row_of, col_of:
        Per-node position after the column sorts.
    labels:
        The per-node set labels the sort used.
    """

    x: int
    y: int
    grid: np.ndarray
    row_of: np.ndarray
    col_of: np.ndarray
    labels: np.ndarray

    @property
    def n(self) -> int:
        """Number of real nodes."""
        return int(self.row_of.size)

    def sorted_label_column(self, c: int) -> np.ndarray:
        """Column ``c``'s sorted label array ``A[0..x-1]`` (padding
        labelled ``x``, sorting to the bottom) — the array WalkDown2's
        automaton walks."""
        col = self.grid[:, c]
        out = np.full(self.x, self.x, dtype=np.int64)
        real = col != EMPTY
        out[real] = self.labels[col[real]]
        return out

    def classify_pointers(self, lst: LinkedList) -> tuple[np.ndarray, np.ndarray]:
        """Split the list's pointers into (intra_tails, inter_tails).

        A pointer is intra-row iff its tail's and head's cells share a
        row in this layout.
        """
        tails, heads = lst.pointers()
        same = self.row_of[tails] == self.row_of[heads]
        return tails[same], tails[~same]


def build_layout(
    lst: LinkedList,
    labels: np.ndarray,
    x: int,
    *,
    cost: CostModel | None = None,
) -> Layout2D:
    """Sort each column by label and return the resulting layout.

    ``labels`` must hold one set label per node, each in ``[0, x)`` —
    the row count equals the number of possible labels so WalkDown2's
    automaton invariant (Lemma 7: processed at step ``A[r] + r``) spans
    ``2x - 1`` steps.

    Cost: each column processor counting-sorts ``x`` keys of magnitude
    ``x`` in ``O(x)`` local time; charged as a width-``y`` depth-``x``
    parallel phase.
    """
    labels = as_index_array(labels, name="labels")
    n = lst.n
    require(labels.size == n, "need one label per node")
    require(x >= 1, f"x must be >= 1, got {x}")
    if labels.size and (int(labels.min()) < 0 or int(labels.max()) >= x):
        raise InvalidParameterError(
            f"labels must lie in [0, {x}) to index {x} rows; got max "
            f"{int(labels.max())}"
        )
    y = ceil_div(n, x)
    # Column-major fill with padding, labels padded above any real label
    # so padding sinks to the bottom rows of each column.
    padded = np.full(x * y, EMPTY, dtype=np.int64)
    padded[:n] = np.arange(n, dtype=np.int64)
    key = np.full(x * y, x, dtype=np.int64)
    key[:n] = labels
    grid_nodes = padded.reshape(y, x).T      # (x, y), column c = block c
    grid_keys = key.reshape(y, x).T
    # Stable per-column counting sort, all columns at once.  np.argsort
    # is O(x log x); the charged cost is the counting sort's O(x).
    order = np.argsort(grid_keys, axis=0, kind="stable")
    grid_sorted = np.take_along_axis(grid_nodes, order, axis=0)
    if cost is not None:
        cost.parallel(y, depth=x)
    row_of = np.empty(n, dtype=np.int64)
    col_of = np.empty(n, dtype=np.int64)
    rows, cols = np.nonzero(grid_sorted != EMPTY)
    nodes = grid_sorted[rows, cols]
    row_of[nodes] = rows
    col_of[nodes] = cols
    return Layout2D(
        x=x,
        y=y,
        grid=grid_sorted,
        row_of=row_of,
        col_of=col_of,
        labels=labels,
    )
