"""The paper's contribution: matching partition and maximal matching.

Layout mirrors the paper's sections:

- :mod:`repro.core.functions` — the matching partition functions ``f``
  (section 2, Lemma 1) in MSB and LSB variants, and their iteration
  ``f^(k)`` (Lemma 2).
- :mod:`repro.core.partition` — partition artifacts and their verifier
  (the defining inequality of matching partition functions).
- :mod:`repro.core.matching` — matching artifacts, independence and
  maximality verifiers.
- :mod:`repro.core.cutwalk` — steps 3–4 of Match1 (local-minima cut +
  constant-length sublist walk), shared by Match1/3/4.
- :mod:`repro.core.match1` … :mod:`repro.core.match4` — the four
  algorithms (sections 2–3).
- :mod:`repro.core.layout` / :mod:`repro.core.walkdown` — Match4's 2-D
  array view, the per-column sorts, and the WalkDown1/WalkDown2 sweeps
  (Lemmas 6–7).
- :mod:`repro.core.maximal_matching` — the unified public entry point.
"""

from .functions import (
    apply_f,
    f_lsb,
    f_msb,
    iterate_f,
    label_bound_sequence,
    max_label_after,
    pair_function,
)
from .partition import MatchingPartition, verify_matching_partition
from .matching import Matching, verify_matching, verify_maximal_matching
from .cutwalk import cut_and_walk
from .match1 import match1
from .match2 import SORT_COST_LAWS, match2
from .match3 import Match3Plan, match3, plan_match3
from .match4 import match4
from .layout import Layout2D, build_layout
from .walkdown import (
    walkdown1,
    walkdown2,
    walkdown2_automaton,
    walkdown2_step_of,
)
from .maximal_matching import (
    ALGORITHMS,
    AlgorithmInfo,
    AlgorithmRegistry,
    maximal_matching,
    normalize_algorithm_kwargs,
    register_algorithm,
)
from .result import MatchResult
from .rings import (
    ring_maximal_matching,
    ring_three_coloring,
    verify_ring_maximal_matching,
)
from .forests import forest_maximal_matching, verify_forest_maximal_matching

__all__ = [
    "ring_maximal_matching",
    "ring_three_coloring",
    "verify_ring_maximal_matching",
    "forest_maximal_matching",
    "verify_forest_maximal_matching",
    "apply_f",
    "f_lsb",
    "f_msb",
    "iterate_f",
    "label_bound_sequence",
    "max_label_after",
    "pair_function",
    "MatchingPartition",
    "verify_matching_partition",
    "Matching",
    "verify_matching",
    "verify_maximal_matching",
    "cut_and_walk",
    "match1",
    "match2",
    "SORT_COST_LAWS",
    "Match3Plan",
    "match3",
    "plan_match3",
    "match4",
    "Layout2D",
    "build_layout",
    "walkdown1",
    "walkdown2",
    "walkdown2_automaton",
    "walkdown2_step_of",
    "ALGORITHMS",
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "MatchResult",
    "maximal_matching",
    "normalize_algorithm_kwargs",
    "register_algorithm",
]
