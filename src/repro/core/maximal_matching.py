"""Unified entry point for all maximal-matching algorithms.

``maximal_matching(lst, algorithm="match4", p=8)`` dispatches to the
paper's algorithms (and the baselines registered by
:mod:`repro.baselines`) with one calling convention, returning a
:class:`~repro.core.result.MatchResult` that still unpacks as the
legacy ``(matching, report, stats)`` tuple.  Raw ``NEXT`` arrays are
accepted in place of a :class:`repro.lists.LinkedList` and validated.

Three registry concerns live here:

- :data:`ALGORITHMS` — an :class:`AlgorithmRegistry` mapping names to
  :class:`AlgorithmInfo` records (reference implementation plus
  metadata: paper section, optimality, kwarg schema);
- kwarg normalization — every caller-facing kwarg is validated against
  the algorithm's schema in one place, deprecated aliases (Match4's
  historical ``i=`` for ``iterations=``) are translated with a
  :class:`DeprecationWarning`, and unknown names are rejected with the
  valid ones listed;
- backend dispatch — ``backend="numpy"`` routes to the whole-array
  engine (:mod:`repro.backends`) when it implements the algorithm.
"""

from __future__ import annotations

import inspect
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from ..errors import InvalidParameterError
from ..lists.linked_list import LinkedList
from ..pram.cost import CostReport
from ..telemetry.metrics import METRICS
from ..telemetry.spans import enabled as telemetry_enabled, span as telemetry_span
from .match1 import match1
from .match2 import match2
from .match3 import match3
from .match4 import match4
from .matching import Matching
from .result import MatchResult

__all__ = [
    "ALGORITHMS",
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "maximal_matching",
    "normalize_algorithm_kwargs",
    "register_algorithm",
]


def _signature_params(fn: Callable[..., Any]) -> frozenset[str] | None:
    """Keyword-only parameter names of ``fn`` (minus ``p``).

    ``None`` means the schema is unknowable (``**kwargs`` or an
    uninspectable callable) and every kwarg is forwarded unchecked.
    """
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    names = set()
    for param in sig.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if param.kind is inspect.Parameter.KEYWORD_ONLY:
            names.add(param.name)
    names.discard("p")
    return frozenset(names)


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registered algorithm: reference implementation + metadata.

    Attributes
    ----------
    name:
        Registry key (``algorithm=`` value).
    fn:
        The reference implementation, ``(lst, *, p=1, **kw) ->
        (Matching, CostReport, stats)``.
    params:
        Canonical caller-facing kwarg names (``None`` = unchecked).
    aliases:
        Deprecated kwarg name -> canonical name; accepted with a
        :class:`DeprecationWarning`.
    renames:
        Canonical name -> the reference implementation's own parameter
        name, for algorithms registered before the kwarg cleanup.
    paper_section:
        Where in Han's paper (or which baseline) the algorithm comes
        from.
    optimal:
        Whether the paper claims O(n) work / optimal speedup for it.
    """

    name: str
    fn: Callable[..., tuple[Matching, CostReport, Any]]
    params: frozenset[str] | None = None
    aliases: Mapping[str, str] = field(default_factory=dict)
    renames: Mapping[str, str] = field(default_factory=dict)
    paper_section: str = ""
    optimal: bool = False

    @property
    def backends(self) -> list[str]:
        """Names of the backends that implement this algorithm."""
        from ..backends import backends_for

        return backends_for(self.name)

    def __call__(self, lst, **kwargs):
        """Call the reference implementation (legacy registry use)."""
        return self.fn(lst, **kwargs)


class AlgorithmRegistry(Mapping[str, AlgorithmInfo]):
    """Name -> :class:`AlgorithmInfo`, with a ``describe()`` helper.

    Iteration, ``in``, and ``[...]`` behave like the plain dict this
    registry replaced; values are now :class:`AlgorithmInfo` records
    (themselves callable, delegating to the reference implementation).
    """

    def __init__(self) -> None:
        self._infos: dict[str, AlgorithmInfo] = {}

    def __getitem__(self, name: str) -> AlgorithmInfo:
        return self._infos[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._infos)

    def __len__(self) -> int:
        return len(self._infos)

    def describe(
        self, *, plan_for: Mapping[str, Any] | None = None,
    ) -> list[dict[str, Any]]:
        """One metadata record per algorithm, sorted by name.

        Keys: ``name``, ``backends``, ``paper_section``, ``optimal``,
        ``params`` — the CLI renders this for ``repro algorithms``.

        With ``plan_for={"n": ..., "layout": ..., "history": ...}``
        each record also carries ``plan``: what ``backend="auto"``
        would pick for that workload and which rule fired (the CLI's
        ``repro algorithms --plan`` view).  ``layout`` and ``history``
        are optional; ``p`` defaults to 1.
        """
        plan_policy = None
        if plan_for is not None:
            from ..planner import ExecutionPolicy

            plan_policy = ExecutionPolicy(
                layout=plan_for.get("layout"),
                history=plan_for.get("history"),
            )
        out = []
        for name in sorted(self._infos):
            info = self._infos[name]
            record = {
                "name": name,
                "backends": info.backends,
                "paper_section": info.paper_section,
                "optimal": info.optimal,
                "params": (sorted(info.params)
                           if info.params is not None else None),
            }
            if plan_for is not None:
                from ..planner import decide_for

                decision = decide_for(
                    plan_policy, algorithm=name,
                    n=int(plan_for["n"]), p=int(plan_for.get("p", 1)),
                )
                record["plan"] = {
                    "backend": decision.backend,
                    "workers": decision.workers,
                    "rule": decision.rule,
                    "source": decision.source,
                    "score_s": decision.plan.score,
                }
            out.append(record)
        return out


#: Registry of maximal-matching algorithms.
ALGORITHMS = AlgorithmRegistry()


def register_algorithm(
    name: str,
    fn: Callable[..., tuple[Matching, CostReport, Any]],
    *,
    aliases: Mapping[str, str] | None = None,
    renames: Mapping[str, str] | None = None,
    paper_section: str = "",
    optimal: bool = False,
) -> None:
    """Register an algorithm (used by the baselines package).

    Re-registration of an existing name is rejected to keep experiment
    configurations unambiguous.  The caller-facing kwarg schema is read
    off ``fn``'s signature (keyword-only parameters), with ``renames``
    mapping canonical names onto ``fn``'s own parameter names and
    ``aliases`` admitting deprecated spellings.
    """
    if name in ALGORITHMS:
        raise InvalidParameterError(f"algorithm {name!r} already registered")
    renames = dict(renames or {})
    params = _signature_params(fn)
    if params is not None:
        inverse = {impl: canon for canon, impl in renames.items()}
        params = frozenset(inverse.get(p, p) for p in params)
    ALGORITHMS._infos[name] = AlgorithmInfo(
        name=name,
        fn=fn,
        params=params,
        aliases=dict(aliases or {}),
        renames=renames,
        paper_section=paper_section,
        optimal=optimal,
    )


register_algorithm(
    "match1", match1,
    paper_section="§2, Algorithm Match1 (O(log n) time, O(n log n) work)",
)
register_algorithm(
    "match2", match2,
    paper_section="§3, Algorithm Match2 (first optimization)",
)
register_algorithm(
    "match3", match3,
    paper_section="§4, Algorithm Match3 (precomputed matching tables)",
    optimal=True,
)
register_algorithm(
    "match4", match4,
    aliases={"i": "iterations"},
    renames={"iterations": "i"},
    paper_section="§5, Algorithm Match4 (optimal: O(log n) time, O(n) work)",
    optimal=True,
)


def normalize_algorithm_kwargs(
    algorithm: str, kwargs: Mapping[str, Any]
) -> dict[str, Any]:
    """Validate and canonicalize caller kwargs for ``algorithm``.

    Deprecated aliases are translated to their canonical names with a
    :class:`DeprecationWarning`; unknown names raise
    :class:`InvalidParameterError` listing the valid ones.  Returns the
    kwargs under canonical names.
    """
    info = ALGORITHMS[algorithm]
    if info.params is None:
        return dict(kwargs)
    out: dict[str, Any] = {}
    for key, value in kwargs.items():
        canonical = info.aliases.get(key, key)
        if canonical != key:
            warnings.warn(
                f"kwarg {key!r} of algorithm {algorithm!r} is deprecated; "
                f"use {canonical!r}",
                DeprecationWarning,
                stacklevel=3,
            )
        if canonical not in info.params:
            raise InvalidParameterError(
                f"unknown kwarg {key!r} for algorithm {algorithm!r}; "
                f"valid kwargs: {sorted(info.params)}"
            )
        if canonical in out:
            raise InvalidParameterError(
                f"kwarg {canonical!r} of algorithm {algorithm!r} given "
                f"twice (directly and via its deprecated alias)"
            )
        out[canonical] = value
    return out


def _scoped_parallel_config(backend: str, workers: int | None,
                            chunk_size: int | None):
    """Context scoping the default ParallelConfig for one dispatch.

    Only the ``numpy-mp`` tier reads the process-default config; for
    any other backend (or when neither knob is set) this is a no-op
    context, so policies carrying ``workers=`` stay harmless on serial
    backends.
    """
    from contextlib import nullcontext

    if backend != "numpy-mp" or (workers is None and chunk_size is None):
        return nullcontext()
    from ..parallel.config import ParallelConfig, get_default_config, \
        using_config

    base = get_default_config()
    return using_config(ParallelConfig(
        workers=workers if workers is not None else base.workers,
        chunk_size=(chunk_size if chunk_size is not None
                    else base.chunk_size),
    ))


def maximal_matching(
    lst: LinkedList | np.ndarray | list,
    *,
    algorithm: str | None = None,
    backend: str | None = None,
    p: int = 1,
    policy: Any = None,
    **kwargs: Any,
) -> MatchResult:
    """Compute a maximal matching of a linked list.

    Parameters
    ----------
    lst:
        A :class:`LinkedList` or a raw ``NEXT`` array (validated).
    algorithm:
        One of :data:`ALGORITHMS` (paper algorithms ``match1`` ...
        ``match4`` plus registered baselines).  Default ``"match4"``.
    backend:
        Execution backend (see :mod:`repro.backends`): ``"reference"``
        for the paper-faithful per-pointer implementations, ``"numpy"``
        for the vectorized whole-array engine, ``"numpy-mp"`` for the
        multiprocess tier — or ``"auto"`` to let :mod:`repro.planner`
        pick from run history.  Results are bit-identical across
        backends; only host wall-clock differs.  Default
        ``"reference"``.
    p:
        Processor count for the cost accounting.
    policy:
        An :class:`~repro.planner.ExecutionPolicy` (or mapping) setting
        backend/workers/chunk_size/planner mode in one place.  The
        scattered kwargs above keep working; both are merged through
        :func:`~repro.planner.policy.resolve_policy`, which rejects
        contradictions.
    kwargs:
        Forwarded to the algorithm under canonical names (e.g.
        ``iterations=3`` for Match4, ``sort_law="reif"`` for Match2).
        Deprecated aliases are accepted with a warning.

    Returns
    -------
    MatchResult:
        Typed record with fields ``matching``, ``report``, ``stats``,
        ``backend``, ``algorithm``, ``extras``; unpacks as the legacy
        ``(matching, report, stats)`` tuple.  When the planner resolved
        ``backend="auto"``, ``extras["planner"]`` holds the full
        decision (chosen plan, rule that fired, candidates considered).
    """
    from ..backends import AUTO, DEFAULT_BACKEND, get_backend
    from ..planner.policy import resolve_policy

    pol = resolve_policy(
        policy, algorithm=algorithm, backend=backend,
        defaults={"algorithm": "match4", "backend": DEFAULT_BACKEND},
    )
    algorithm = pol.algorithm
    requested_backend = pol.backend

    if not isinstance(lst, LinkedList):
        lst = LinkedList(lst)
    try:
        info = ALGORITHMS[algorithm]
    except KeyError:
        raise InvalidParameterError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        ) from None
    kwargs = normalize_algorithm_kwargs(algorithm, kwargs)

    extras: dict[str, Any] = {}
    workers = pol.workers
    chunk_size = pol.chunk_size
    resolved_backend = requested_backend
    if requested_backend == AUTO:
        from ..planner import decide_for, run_race

        decision = decide_for(pol, algorithm=algorithm, n=lst.n, p=p)
        extras["planner"] = decision.to_extra()
        if decision.raced:
            from ..planner.core import planner_for_policy
            from ..planner.rules import PlanContext

            winner, race_info = run_race(
                lst, backends=decision.race_backends,
                algorithm=algorithm, p=p, kwargs=kwargs,
                planner=planner_for_policy(pol),
                ctx=decision.context,
            )
            extras["planner"]["raced"] = True
            extras["planner"]["race"] = race_info
            extras["planner"]["backend"] = race_info["winner"]
            return MatchResult(
                matching=winner.matching, report=winner.report,
                stats=winner.stats, backend=winner.backend,
                algorithm=algorithm, extras=extras,
            )
        resolved_backend = decision.backend
        if workers is None:
            workers = decision.workers
        if chunk_size is None:
            chunk_size = decision.plan.chunk_size

    backend_obj = get_backend(resolved_backend)
    fn = backend_obj.algorithms.get(algorithm)
    if fn is None:
        raise InvalidParameterError(
            f"algorithm {algorithm!r} is not implemented on backend "
            f"{resolved_backend!r} (available there: "
            f"{sorted(backend_obj.algorithms)}); backends implementing "
            f"it: {info.backends}"
        )
    if not backend_obj.canonical_kwargs:
        kwargs = {info.renames.get(k, k): v for k, v in kwargs.items()}
    span_attrs: dict[str, Any] = {}
    if requested_backend != resolved_backend:
        span_attrs["requested_backend"] = requested_backend
    with telemetry_span(
        "maximal_matching", algorithm=algorithm,
        backend=resolved_backend, n=lst.n, p=p, **span_attrs,
    ) as sp:
        with _scoped_parallel_config(resolved_backend, workers,
                                     chunk_size):
            matching, report, stats = fn(lst, p=p, **kwargs)
        if telemetry_enabled():
            sp.set(time=report.time, work=report.work,
                   matched=matching.size)
            METRICS.counter("matching.runs").inc()
            METRICS.counter("pram.steps").inc(report.time)
            METRICS.counter("pram.work").inc(report.work)
    return MatchResult(
        matching=matching, report=report, stats=stats,
        backend=resolved_backend, algorithm=algorithm, extras=extras,
    )
