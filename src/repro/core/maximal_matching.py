"""Unified entry point for all maximal-matching algorithms.

``maximal_matching(lst, algorithm="match4", p=8)`` dispatches to the
paper's algorithms (and the baselines registered by
:mod:`repro.baselines`) with one calling convention, returning a
:class:`~repro.core.result.MatchResult` that still unpacks as the
legacy ``(matching, report, stats)`` tuple.  Raw ``NEXT`` arrays are
accepted in place of a :class:`repro.lists.LinkedList` and validated.

Three registry concerns live here:

- :data:`ALGORITHMS` — an :class:`AlgorithmRegistry` mapping names to
  :class:`AlgorithmInfo` records (reference implementation plus
  metadata: paper section, optimality, kwarg schema);
- kwarg normalization — every caller-facing kwarg is validated against
  the algorithm's schema in one place, deprecated aliases (Match4's
  historical ``i=`` for ``iterations=``) are translated with a
  :class:`DeprecationWarning`, and unknown names are rejected with the
  valid ones listed;
- backend dispatch — ``backend="numpy"`` routes to the whole-array
  engine (:mod:`repro.backends`) when it implements the algorithm.
"""

from __future__ import annotations

import inspect
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from ..errors import InvalidParameterError
from ..lists.linked_list import LinkedList
from ..pram.cost import CostReport
from ..telemetry.metrics import METRICS
from ..telemetry.spans import enabled as telemetry_enabled, span as telemetry_span
from .match1 import match1
from .match2 import match2
from .match3 import match3
from .match4 import match4
from .matching import Matching
from .result import MatchResult

__all__ = [
    "ALGORITHMS",
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "maximal_matching",
    "normalize_algorithm_kwargs",
    "register_algorithm",
]


def _signature_params(fn: Callable[..., Any]) -> frozenset[str] | None:
    """Keyword-only parameter names of ``fn`` (minus ``p``).

    ``None`` means the schema is unknowable (``**kwargs`` or an
    uninspectable callable) and every kwarg is forwarded unchecked.
    """
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    names = set()
    for param in sig.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if param.kind is inspect.Parameter.KEYWORD_ONLY:
            names.add(param.name)
    names.discard("p")
    return frozenset(names)


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registered algorithm: reference implementation + metadata.

    Attributes
    ----------
    name:
        Registry key (``algorithm=`` value).
    fn:
        The reference implementation, ``(lst, *, p=1, **kw) ->
        (Matching, CostReport, stats)``.
    params:
        Canonical caller-facing kwarg names (``None`` = unchecked).
    aliases:
        Deprecated kwarg name -> canonical name; accepted with a
        :class:`DeprecationWarning`.
    renames:
        Canonical name -> the reference implementation's own parameter
        name, for algorithms registered before the kwarg cleanup.
    paper_section:
        Where in Han's paper (or which baseline) the algorithm comes
        from.
    optimal:
        Whether the paper claims O(n) work / optimal speedup for it.
    """

    name: str
    fn: Callable[..., tuple[Matching, CostReport, Any]]
    params: frozenset[str] | None = None
    aliases: Mapping[str, str] = field(default_factory=dict)
    renames: Mapping[str, str] = field(default_factory=dict)
    paper_section: str = ""
    optimal: bool = False

    @property
    def backends(self) -> list[str]:
        """Names of the backends that implement this algorithm."""
        from ..backends import backends_for

        return backends_for(self.name)

    def __call__(self, lst, **kwargs):
        """Call the reference implementation (legacy registry use)."""
        return self.fn(lst, **kwargs)


class AlgorithmRegistry(Mapping[str, AlgorithmInfo]):
    """Name -> :class:`AlgorithmInfo`, with a ``describe()`` helper.

    Iteration, ``in``, and ``[...]`` behave like the plain dict this
    registry replaced; values are now :class:`AlgorithmInfo` records
    (themselves callable, delegating to the reference implementation).
    """

    def __init__(self) -> None:
        self._infos: dict[str, AlgorithmInfo] = {}

    def __getitem__(self, name: str) -> AlgorithmInfo:
        return self._infos[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._infos)

    def __len__(self) -> int:
        return len(self._infos)

    def describe(self) -> list[dict[str, Any]]:
        """One metadata record per algorithm, sorted by name.

        Keys: ``name``, ``backends``, ``paper_section``, ``optimal``,
        ``params`` — the CLI renders this for ``repro algorithms``.
        """
        out = []
        for name in sorted(self._infos):
            info = self._infos[name]
            out.append({
                "name": name,
                "backends": info.backends,
                "paper_section": info.paper_section,
                "optimal": info.optimal,
                "params": (sorted(info.params)
                           if info.params is not None else None),
            })
        return out


#: Registry of maximal-matching algorithms.
ALGORITHMS = AlgorithmRegistry()


def register_algorithm(
    name: str,
    fn: Callable[..., tuple[Matching, CostReport, Any]],
    *,
    aliases: Mapping[str, str] | None = None,
    renames: Mapping[str, str] | None = None,
    paper_section: str = "",
    optimal: bool = False,
) -> None:
    """Register an algorithm (used by the baselines package).

    Re-registration of an existing name is rejected to keep experiment
    configurations unambiguous.  The caller-facing kwarg schema is read
    off ``fn``'s signature (keyword-only parameters), with ``renames``
    mapping canonical names onto ``fn``'s own parameter names and
    ``aliases`` admitting deprecated spellings.
    """
    if name in ALGORITHMS:
        raise InvalidParameterError(f"algorithm {name!r} already registered")
    renames = dict(renames or {})
    params = _signature_params(fn)
    if params is not None:
        inverse = {impl: canon for canon, impl in renames.items()}
        params = frozenset(inverse.get(p, p) for p in params)
    ALGORITHMS._infos[name] = AlgorithmInfo(
        name=name,
        fn=fn,
        params=params,
        aliases=dict(aliases or {}),
        renames=renames,
        paper_section=paper_section,
        optimal=optimal,
    )


register_algorithm(
    "match1", match1,
    paper_section="§2, Algorithm Match1 (O(log n) time, O(n log n) work)",
)
register_algorithm(
    "match2", match2,
    paper_section="§3, Algorithm Match2 (first optimization)",
)
register_algorithm(
    "match3", match3,
    paper_section="§4, Algorithm Match3 (precomputed matching tables)",
    optimal=True,
)
register_algorithm(
    "match4", match4,
    aliases={"i": "iterations"},
    renames={"iterations": "i"},
    paper_section="§5, Algorithm Match4 (optimal: O(log n) time, O(n) work)",
    optimal=True,
)


def normalize_algorithm_kwargs(
    algorithm: str, kwargs: Mapping[str, Any]
) -> dict[str, Any]:
    """Validate and canonicalize caller kwargs for ``algorithm``.

    Deprecated aliases are translated to their canonical names with a
    :class:`DeprecationWarning`; unknown names raise
    :class:`InvalidParameterError` listing the valid ones.  Returns the
    kwargs under canonical names.
    """
    info = ALGORITHMS[algorithm]
    if info.params is None:
        return dict(kwargs)
    out: dict[str, Any] = {}
    for key, value in kwargs.items():
        canonical = info.aliases.get(key, key)
        if canonical != key:
            warnings.warn(
                f"kwarg {key!r} of algorithm {algorithm!r} is deprecated; "
                f"use {canonical!r}",
                DeprecationWarning,
                stacklevel=3,
            )
        if canonical not in info.params:
            raise InvalidParameterError(
                f"unknown kwarg {key!r} for algorithm {algorithm!r}; "
                f"valid kwargs: {sorted(info.params)}"
            )
        if canonical in out:
            raise InvalidParameterError(
                f"kwarg {canonical!r} of algorithm {algorithm!r} given "
                f"twice (directly and via its deprecated alias)"
            )
        out[canonical] = value
    return out


def maximal_matching(
    lst: LinkedList | np.ndarray | list,
    *,
    algorithm: str = "match4",
    backend: str = "reference",
    p: int = 1,
    **kwargs: Any,
) -> MatchResult:
    """Compute a maximal matching of a linked list.

    Parameters
    ----------
    lst:
        A :class:`LinkedList` or a raw ``NEXT`` array (validated).
    algorithm:
        One of :data:`ALGORITHMS` (paper algorithms ``match1`` ...
        ``match4`` plus registered baselines).
    backend:
        Execution backend (see :mod:`repro.backends`): ``"reference"``
        for the paper-faithful per-pointer implementations, ``"numpy"``
        for the vectorized whole-array engine.  Results are
        bit-identical; only host wall-clock differs.
    p:
        Processor count for the cost accounting.
    kwargs:
        Forwarded to the algorithm under canonical names (e.g.
        ``iterations=3`` for Match4, ``sort_law="reif"`` for Match2).
        Deprecated aliases are accepted with a warning.

    Returns
    -------
    MatchResult:
        Typed record with fields ``matching``, ``report``, ``stats``,
        ``backend``, ``algorithm``; unpacks as the legacy
        ``(matching, report, stats)`` tuple.
    """
    if not isinstance(lst, LinkedList):
        lst = LinkedList(lst)
    try:
        info = ALGORITHMS[algorithm]
    except KeyError:
        raise InvalidParameterError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        ) from None
    kwargs = normalize_algorithm_kwargs(algorithm, kwargs)

    from ..backends import get_backend

    backend_obj = get_backend(backend)
    fn = backend_obj.algorithms.get(algorithm)
    if fn is None:
        raise InvalidParameterError(
            f"algorithm {algorithm!r} is not implemented on backend "
            f"{backend!r} (available there: "
            f"{sorted(backend_obj.algorithms)}); backends implementing "
            f"it: {info.backends}"
        )
    if not backend_obj.canonical_kwargs:
        kwargs = {info.renames.get(k, k): v for k, v in kwargs.items()}
    with telemetry_span(
        "maximal_matching", algorithm=algorithm, backend=backend,
        n=lst.n, p=p,
    ) as sp:
        matching, report, stats = fn(lst, p=p, **kwargs)
        if telemetry_enabled():
            sp.set(time=report.time, work=report.work,
                   matched=matching.size)
            METRICS.counter("matching.runs").inc()
            METRICS.counter("pram.steps").inc(report.time)
            METRICS.counter("pram.work").inc(report.work)
    return MatchResult(
        matching=matching, report=report, stats=stats,
        backend=backend, algorithm=algorithm,
    )
