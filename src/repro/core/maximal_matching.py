"""Unified entry point for all maximal-matching algorithms.

``maximal_matching(lst, algorithm="match4", p=8)`` dispatches to the
paper's algorithms (and the baselines registered by
:mod:`repro.baselines`) with one calling convention, returning
``(matching, report, stats)``.  Raw ``NEXT`` arrays are accepted in
place of a :class:`repro.lists.LinkedList` and validated.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..errors import InvalidParameterError
from ..lists.linked_list import LinkedList
from ..pram.cost import CostReport
from .match1 import match1
from .match2 import match2
from .match3 import match3
from .match4 import match4
from .matching import Matching

__all__ = ["ALGORITHMS", "maximal_matching", "register_algorithm"]

#: Registry of maximal-matching algorithms.  Each entry maps
#: ``lst, p=..., **kw`` to ``(Matching, CostReport, stats)``.
ALGORITHMS: dict[str, Callable[..., tuple[Matching, CostReport, Any]]] = {
    "match1": match1,
    "match2": match2,
    "match3": match3,
    "match4": match4,
}


def register_algorithm(
    name: str, fn: Callable[..., tuple[Matching, CostReport, Any]]
) -> None:
    """Register an additional algorithm (used by the baselines package).

    Re-registration of an existing name is rejected to keep experiment
    configurations unambiguous.
    """
    if name in ALGORITHMS:
        raise InvalidParameterError(f"algorithm {name!r} already registered")
    ALGORITHMS[name] = fn


def maximal_matching(
    lst: LinkedList | np.ndarray | list,
    *,
    algorithm: str = "match4",
    p: int = 1,
    **kwargs: Any,
) -> tuple[Matching, CostReport, Any]:
    """Compute a maximal matching of a linked list.

    Parameters
    ----------
    lst:
        A :class:`LinkedList` or a raw ``NEXT`` array (validated).
    algorithm:
        One of :data:`ALGORITHMS` (paper algorithms ``match1`` ...
        ``match4`` plus registered baselines).
    p:
        Processor count for the cost accounting.
    kwargs:
        Forwarded to the algorithm (e.g. ``i=3`` for Match4,
        ``sort_law="reif"`` for Match2).

    Returns
    -------
    (matching, report, stats):
        The maximal matching, a Brent :class:`CostReport`, and
        algorithm-specific diagnostics.
    """
    if not isinstance(lst, LinkedList):
        lst = LinkedList(lst)
    try:
        fn = ALGORITHMS[algorithm]
    except KeyError:
        raise InvalidParameterError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        ) from None
    return fn(lst, p=p, **kwargs)
