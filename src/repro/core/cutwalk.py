"""Steps 3–4 of Match1: local-minima cut + alternate-pointer walk.

Given constant-magnitude node labels with distinct adjacent values
(the outcome of Match1 step 2, Match3 step 4, or Match4's six-set
combiner), a maximal matching follows in O(1) parallel rounds:

**Step 3 (cut).**  Delete pointer ``<v, suc(v)>`` whenever
``label[pre(v)] > label[v] < label[suc(v)]`` — ``v`` is a strict local
minimum.  Two observations make this work: cuts are never adjacent
(two consecutive cuts would need ``label[v] < label[suc(v)]`` and
``label[v] > label[suc(v)]`` at once), and between two interior local
minima the label sequence rises then falls, so with labels below a
constant ``c`` every sublist has at most ``2c`` pointers.

**Step 4 (walk).**  One processor per sublist walks it, adding every
other pointer (the first, third, ...) to the matching — constant time
because sublists are constant-length.  "At least one of any three
consecutive pointers of the linked list is in the matching", so the
matching is maximal ... *except* possibly at the very last pointer:
when the final pointer is itself cut and the sublist before it happens
to end on a skipped pointer, the final pointer's both endpoints stay
free.  The paper's invariant does not cover this boundary (its
three-in-a-row argument needs a pointer *after* the gap); we close it
with an O(1) repair step that re-adds the final pointer when addable.
This is the only deviation from the paper's literal step 4 and is
exercised directly by the test suite.

The cut condition is evaluated on interior nodes only (the head has no
predecessor, so its pointer is never cut); node labels themselves may
have been computed with the circular convention — only the *cut* is
non-circular, matching the fact that the list's structure is a path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_index_array
from ..errors import VerificationError
from ..lists.linked_list import NIL, LinkedList
from ..pram.cost import CostModel

__all__ = ["CutWalkStats", "cut_and_walk"]


@dataclass(frozen=True)
class CutWalkStats:
    """Diagnostics of one cut-and-walk run (used by E3/E5/E6 benches).

    Attributes
    ----------
    num_cut:
        Pointers deleted by step 3.
    num_segments:
        Sublists walked by step 4.
    walk_rounds:
        Parallel rounds the walk needed — ``ceil(L/2)`` for the longest
        sublist ``L``; the paper's constant-sublist claim bounds this by
        a constant, which tests assert.
    end_repaired:
        Whether the final-pointer repair fired.
    """

    num_cut: int
    num_segments: int
    walk_rounds: int
    end_repaired: bool


def cut_and_walk(
    lst: LinkedList,
    node_labels: np.ndarray,
    *,
    cost: CostModel | None = None,
    max_walk_rounds: int | None = None,
) -> tuple[np.ndarray, CutWalkStats]:
    """Run steps 3–4 on constant-size ``node_labels``.

    Parameters
    ----------
    lst:
        The input list.
    node_labels:
        One label per node (every node, tail included — labels come
        from the circular iteration), with adjacent labels distinct.
    cost:
        Optional cost model; charges one width-``n`` step for the cut
        and ``walk_rounds`` steps of width ``num_segments`` for the
        walk.
    max_walk_rounds:
        Safety bound on walk rounds (defaults to ``n``); exceeding it
        raises :class:`VerificationError`, since it would disprove the
        constant-sublist claim.

    Returns
    -------
    (tails, stats):
        Tails of the maximal matching's pointers and diagnostics.
    """
    labels = as_index_array(node_labels, name="node_labels")
    n = lst.n
    if labels.size != n:
        raise VerificationError(
            f"node_labels has {labels.size} entries for {n} nodes"
        )
    nxt = lst.next
    pred = lst.pred
    if n <= 1:
        return np.empty(0, dtype=np.int64), CutWalkStats(0, 0, 0, False)

    # Adjacent-distinct precondition (cheap, prevents silent nonsense).
    v_all = np.flatnonzero(nxt != NIL)
    if np.any(labels[v_all] == labels[nxt[v_all]]):
        raise VerificationError(
            "node_labels must be distinct on adjacent nodes for the cut"
        )

    # ---- Step 3: cut strict local minima (interior nodes only). ----
    interior = (pred != NIL) & (nxt != NIL)
    cut = np.zeros(n, dtype=bool)
    iv = np.flatnonzero(interior)
    is_min = (labels[pred[iv]] > labels[iv]) & (labels[iv] < labels[nxt[iv]])
    cut[iv[is_min]] = True
    if cost is not None:
        cost.parallel(n)

    # ---- Step 4: walk each sublist, taking alternate pointers. ----
    has_ptr = nxt != NIL
    # Segment starts: non-cut pointers whose predecessor pointer is
    # absent (head) or cut.
    start_mask = has_ptr & ~cut
    not_head = pred != NIL
    follows_live = np.zeros(n, dtype=bool)
    hp = np.flatnonzero(not_head & has_ptr)
    follows_live[hp] = ~cut[pred[hp]]
    start_mask &= ~(not_head & follows_live)
    current = np.flatnonzero(start_mask)
    num_segments = int(current.size)

    chosen = np.zeros(n, dtype=bool)
    limit = max_walk_rounds if max_walk_rounds is not None else n
    rounds = 0
    while current.size:
        if rounds >= limit:
            raise VerificationError(
                f"sublist walk exceeded {limit} rounds: sublists are not "
                f"constant-length (labels too large?)"
            )
        rounds += 1
        chosen[current] = True
        w1 = nxt[current]                       # the skipped pointer's tail
        in1 = (nxt[w1] != NIL) & ~cut[w1]       # skipped pointer is in-segment
        w2 = nxt[w1[in1]]                       # candidate next chosen tail
        in2 = (nxt[w2] != NIL) & ~cut[w2]
        current = w2[in2]
    if cost is not None:
        cost.parallel(num_segments, depth=max(1, rounds))

    # ---- End repair (see module docstring). ----
    end_repaired = False
    tail_node = lst.tail
    last_ptr = int(pred[tail_node]) if pred[tail_node] != NIL else NIL
    if last_ptr != NIL and not chosen[last_ptr]:
        # <last_ptr, tail> is addable iff last_ptr is uncovered, i.e.
        # neither its own pointer (known unchosen) nor its predecessor's
        # is in the matching.
        before = pred[last_ptr]
        covered = before != NIL and chosen[before]
        if not covered:
            chosen[last_ptr] = True
            end_repaired = True
    if cost is not None:
        cost.sequential(1)

    tails = np.flatnonzero(chosen)
    stats = CutWalkStats(
        num_cut=int(cut.sum()),
        num_segments=num_segments,
        walk_rounds=rounds,
        end_repaired=end_repaired,
    )
    return tails, stats
