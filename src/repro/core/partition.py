"""Matching partitions: artifacts and verification.

A *matching partition* assigns every pointer of the list a set label
such that no two pointers in one set are incident on the same vertex.
For a simple path two pointers share a vertex iff they are consecutive
(``<a,b>`` and ``<b,c>``), so the verifiable property is: consecutive
pointers carry distinct labels.

Pointer labels are stored per tail node: ``labels[v]`` is the label of
pointer ``<v, suc(v)>``; the tail node (which has no pointer) carries
:data:`NO_POINTER`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_index_array
from ..errors import VerificationError
from ..lists.linked_list import NIL, LinkedList

__all__ = ["NO_POINTER", "MatchingPartition", "verify_matching_partition"]

#: Label stored at the tail node, which owns no pointer.
NO_POINTER = -1


@dataclass(frozen=True)
class MatchingPartition:
    """A verified-on-construction matching partition of a list's pointers.

    Attributes
    ----------
    lst:
        The underlying list.
    labels:
        Per-node pointer labels (``labels[v]`` labels ``<v, suc(v)>``;
        :data:`NO_POINTER` at the tail).
    """

    lst: LinkedList
    labels: np.ndarray

    def __post_init__(self) -> None:
        verify_matching_partition(self.lst, self.labels)
        self.labels.setflags(write=False)

    @property
    def num_sets(self) -> int:
        """Number of distinct labels in use (the partition's size)."""
        real = self.labels[self.labels != NO_POINTER]
        return int(np.unique(real).size)

    @property
    def max_label(self) -> int:
        """Largest label in use (the quantity Lemmas 1–2 bound)."""
        real = self.labels[self.labels != NO_POINTER]
        return int(real.max()) if real.size else NO_POINTER

    def set_sizes(self) -> dict[int, int]:
        """Histogram ``{label: pointer count}``."""
        real = self.labels[self.labels != NO_POINTER]
        uniq, counts = np.unique(real, return_counts=True)
        return {int(u): int(c) for u, c in zip(uniq, counts)}

    def pointers_in_set(self, label: int) -> np.ndarray:
        """Tails of the pointers carrying ``label``."""
        return np.flatnonzero(self.labels == label)


def verify_matching_partition(lst: LinkedList, labels: np.ndarray) -> None:
    """Check that ``labels`` is a valid matching partition of ``lst``.

    Verifies, vectorized:

    1. shape: one entry per node;
    2. the tail (and only the tail) carries :data:`NO_POINTER`;
    3. labels are non-negative elsewhere;
    4. **the matching property**: consecutive pointers
       ``<v, suc(v)>`` and ``<suc(v), suc(suc(v))>`` carry distinct
       labels (pointers in one set then share no endpoint, because a
       path's pointers intersect only consecutively).

    Raises :class:`VerificationError` with the first offending node.
    """
    labels = as_index_array(labels, name="labels")
    n = lst.n
    if labels.size != n:
        raise VerificationError(
            f"labels has {labels.size} entries for {n} nodes"
        )
    nxt = lst.next
    has_ptr = nxt != NIL
    if n >= 1:
        if np.any(labels[~has_ptr] != NO_POINTER):
            raise VerificationError("the tail node must carry NO_POINTER")
        if np.any(labels[has_ptr] < 0):
            bad = int(np.flatnonzero(has_ptr & (labels < 0))[0])
            raise VerificationError(
                f"pointer <{bad}, {int(nxt[bad])}> carries negative label "
                f"{int(labels[bad])}"
            )
    # Consecutive pointers: v -> suc(v), both with real pointers.
    v = np.flatnonzero(has_ptr)
    w = nxt[v]
    both = nxt[w] != NIL
    v, w = v[both], w[both]
    clash = labels[v] == labels[w]
    if np.any(clash):
        bad = int(v[np.flatnonzero(clash)[0]])
        raise VerificationError(
            f"consecutive pointers at nodes {bad} and {int(nxt[bad])} share "
            f"label {int(labels[bad])}: not a matching partition"
        )
