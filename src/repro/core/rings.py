"""The paper's pipeline on genuine rings (extension module).

On a circular list every node owns a pointer and the circular label
convention is exact, which *simplifies* steps 3–4 of Match1:

- the cut condition applies uniformly (every node is interior);
- a strict local minimum always exists for ``n >= 2`` (the global
  minimum's circular neighbors differ from it, hence exceed it), so at
  least one cut fires and the path version's end repair disappears;
- every segment both starts and ends at a cut, so "the first pointer of
  each segment is chosen" covers all boundaries.

The one new case is ``n = 2``: pointers ``<0,1>`` and ``<1,0>`` share
both endpoints, so a maximal matching holds exactly one of them — the
generic pipeline already produces that (the smaller-labelled pointer is
cut, the other chosen).
"""

from __future__ import annotations

import numpy as np

from .._util import require
from ..bits.iterated_log import G
from ..errors import VerificationError
from ..lists.ring import Ring
from ..pram.cost import CostModel, CostReport
from .functions import FunctionKind, pair_function

__all__ = [
    "ring_iterate_f",
    "ring_maximal_matching",
    "ring_mis",
    "ring_three_coloring",
    "verify_ring_matching",
    "verify_ring_maximal_matching",
    "verify_ring_coloring",
]


def ring_iterate_f(
    ring: Ring,
    rounds: int,
    *,
    kind: FunctionKind = "msb",
    cost: CostModel | None = None,
) -> np.ndarray:
    """Iterate ``f`` around the ring (no wrap convention needed)."""
    require(rounds >= 0, f"rounds must be >= 0, got {rounds}")
    func = pair_function(kind)
    labels = np.arange(ring.n, dtype=np.int64)
    if ring.n == 1:
        return labels
    nxt = ring.next
    for _ in range(rounds):
        labels = func(labels, labels[nxt])
        if np.any(labels == labels[nxt]):
            raise VerificationError(
                "adjacent ring labels collided after an f round"
            )
        if cost is not None:
            cost.parallel(ring.n)
    return labels


def ring_maximal_matching(
    ring: Ring,
    *,
    p: int = 1,
    kind: FunctionKind = "msb",
    rounds: int | None = None,
) -> tuple[np.ndarray, CostReport]:
    """Maximal matching of a ring's ``n`` pointers (Match1 pipeline).

    Returns ``(tails, report)`` where ``tails`` are the chosen
    pointers' tail addresses; the result is verified before return.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    n = ring.n
    cost = CostModel(p)
    if n == 1:
        return np.empty(0, dtype=np.int64), cost.report()
    if rounds is None:
        rounds = G(n)
    with cost.phase("iterate"):
        labels = ring_iterate_f(ring, rounds, kind=kind, cost=cost)
    if int(labels.max()) >= 12:
        raise VerificationError(
            f"ring labels not constant after {rounds} rounds"
        )
    nxt = ring.next
    pred = ring.pred
    with cost.phase("cutwalk"):
        # Cut: strict local minima — uniform, every node interior.
        cut = (labels[pred] > labels) & (labels < labels[nxt])
        cost.parallel(n)
        if not np.any(cut):
            raise VerificationError(
                "no circular local minimum: impossible for adjacent-"
                "distinct labels"
            )
        # Walk: segment starts are non-cut pointers following a cut.
        chosen = np.zeros(n, dtype=bool)
        current = np.flatnonzero(cut[pred] & ~cut)
        num_segments = int(current.size)
        rounds_walked = 0
        while current.size:
            rounds_walked += 1
            if rounds_walked > n:
                raise VerificationError("ring walk failed to terminate")
            chosen[current] = True
            w1 = nxt[current]              # the skipped pointer's tail
            in1 = ~cut[w1] & ~chosen[w1]   # still inside my segment
            w2 = nxt[w1[in1]]
            in2 = ~cut[w2] & ~chosen[w2]
            current = w2[in2]
        cost.parallel(num_segments, depth=max(1, rounds_walked))
    tails = np.flatnonzero(chosen)
    verify_ring_maximal_matching(ring, tails)
    return tails, cost.report()


def ring_three_coloring(
    ring: Ring,
    *,
    p: int = 1,
    kind: FunctionKind = "msb",
    rounds: int | None = None,
) -> tuple[np.ndarray, CostReport]:
    """Proper 3-coloring of a ring's nodes.

    Works for every cycle length >= 3 (odd cycles genuinely need three
    colors; even ones may use fewer) and for the 2-ring (two colors).
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    n = ring.n
    cost = CostModel(p)
    if n == 1:
        return np.zeros(1, dtype=np.int64), cost.report()
    if n == 2:
        return np.asarray([0, 1], dtype=np.int64), cost.report()
    if rounds is None:
        rounds = G(n)
    with cost.phase("iterate"):
        colors = ring_iterate_f(ring, rounds, kind=kind, cost=cost)
    if int(colors.max()) >= 6:
        raise VerificationError(
            f"ring colors not below 6 after {rounds} rounds"
        )
    nxt = ring.next
    pred = ring.pred
    colors = colors.copy()
    with cost.phase("reduce"):
        for doomed in (5, 4, 3):
            sel = np.flatnonzero(colors == doomed)
            if sel.size == 0:
                cost.sequential(1)
                continue
            lc = colors[pred[sel]]
            rc = colors[nxt[sel]]
            c0, c1 = np.int64(0), np.int64(1)
            bad0 = (lc == c0) | (rc == c0)
            bad1 = (lc == c1) | (rc == c1)
            colors[sel] = np.where(~bad0, c0,
                                   np.where(~bad1, c1, np.int64(2)))
            cost.parallel(int(sel.size))
    verify_ring_coloring(ring, colors, 3)
    return colors, cost.report()


# ---------------------------------------------------------------------------
# Verifiers.
# ---------------------------------------------------------------------------

def verify_ring_matching(ring: Ring, tails: np.ndarray) -> None:
    """Independence on a ring: no two chosen pointers share a node."""
    tails = np.asarray(tails, dtype=np.int64)
    n = ring.n
    if tails.size and (int(tails.min()) < 0 or int(tails.max()) >= n):
        raise VerificationError("ring tails must be node addresses")
    if np.unique(tails).size != tails.size:
        raise VerificationError("ring tails contain duplicates")
    if n == 1 and tails.size:
        raise VerificationError("a 1-ring has no valid pointer")
    chosen = np.zeros(n, dtype=bool)
    chosen[tails] = True
    nxt = ring.next
    clash = chosen & chosen[nxt]
    # on a 2-ring, <0,1> and <1,0> also share both endpoints
    if n == 2 and tails.size > 1:
        raise VerificationError("both pointers of a 2-ring share endpoints")
    if n > 2 and np.any(clash):
        bad = int(np.flatnonzero(clash)[0])
        raise VerificationError(
            f"chosen ring pointers at {bad} and {int(nxt[bad])} share a node"
        )


def verify_ring_maximal_matching(ring: Ring, tails: np.ndarray) -> None:
    """Independence + maximality around the ring."""
    verify_ring_matching(ring, tails)
    n = ring.n
    if n == 1:
        return
    chosen = np.zeros(n, dtype=bool)
    chosen[np.asarray(tails, dtype=np.int64)] = True
    if n == 2:
        if not chosen.any():
            raise VerificationError("the 2-ring's pointer is addable")
        return
    nxt = ring.next
    pred = ring.pred
    free = np.flatnonzero(~chosen)
    lonely = ~chosen[pred[free]] & ~chosen[nxt[free]]
    if np.any(lonely):
        bad = int(free[np.flatnonzero(lonely)[0]])
        raise VerificationError(
            f"ring pointer <{bad},{int(nxt[bad])}> could still be added"
        )


def verify_ring_coloring(ring: Ring, colors: np.ndarray, k: int) -> None:
    """Proper coloring of the cycle with values in ``[0, k)``."""
    colors = np.asarray(colors, dtype=np.int64)
    if colors.size != ring.n:
        raise VerificationError(
            f"colors has {colors.size} entries for {ring.n} nodes"
        )
    if colors.size and (int(colors.min()) < 0 or int(colors.max()) >= k):
        raise VerificationError(f"ring colors must lie in [0, {k})")
    if ring.n == 1:
        return
    nxt = ring.next
    clash = colors == colors[nxt]
    if np.any(clash):
        bad = int(np.flatnonzero(clash)[0])
        raise VerificationError(
            f"ring nodes {bad} and {int(nxt[bad])} are adjacent and share "
            f"color {int(colors[bad])}"
        )


def ring_mis(
    ring: Ring,
    *,
    p: int = 1,
    kind: FunctionKind = "msb",
) -> tuple[np.ndarray, CostReport]:
    """Maximal independent set of a ring's nodes.

    Admit every matched pointer's tail, then one repair pass for the
    free runs (length <= 2, as on paths; the ring has no ends, so the
    path version's boundary cases vanish).  Returns ``(mask, report)``.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    n = ring.n
    cost = CostModel(p)
    if n == 1:
        return np.ones(1, dtype=bool), cost.report()
    if n == 2:
        return np.asarray([True, False]), cost.report()
    tails, m_report = ring_maximal_matching(ring, p=p, kind=kind)
    cost.absorb(m_report)
    nxt = ring.next
    pred = ring.pred
    in_set = np.zeros(n, dtype=bool)
    with cost.phase("admit"):
        in_set[tails] = True
        cost.parallel(int(tails.size))
    with cost.phase("repair"):
        covered = np.zeros(n, dtype=bool)
        covered[tails] = True
        covered[nxt[tails]] = True
        free = np.flatnonzero(~covered)
        if free.size:
            # run leaders (left neighbor covered) with no in-set
            # neighbor; the covered node after a free run is a matched
            # tail (in the set), so run seconds are always dominated.
            leader = covered[pred[free]]
            right_in = in_set[nxt[free]]
            left_in = in_set[pred[free]]
            in_set[free[leader & ~right_in & ~left_in]] = True
            cost.parallel(int(free.size))
    # verify: independent + maximal on the cycle
    if np.any(in_set & in_set[nxt]):
        raise VerificationError("ring MIS produced adjacent members")
    out = np.flatnonzero(~in_set)
    lonely = ~in_set[pred[out]] & ~in_set[nxt[out]]
    if np.any(lonely):
        raise VerificationError("ring MIS is not maximal")
    return in_set, cost.report()
