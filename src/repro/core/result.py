"""Typed result of a maximal-matching run.

:func:`repro.maximal_matching` historically returned a bare
``(matching, report, stats)`` tuple; :class:`MatchResult` names those
fields and records *how* the run was produced (algorithm, backend)
while still unpacking as the legacy 3-tuple, so existing call sites —
``m, rep, stats = maximal_matching(...)`` — keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..pram.cost import CostReport
from .matching import Matching

__all__ = ["MatchResult"]


@dataclass(frozen=True)
class MatchResult:
    """What one maximal-matching run produced, and how.

    Attributes
    ----------
    matching:
        The verified :class:`Matching`.
    report:
        The Brent :class:`CostReport` (identical across backends for
        the same input — the cost-accounting contract).
    stats:
        Algorithm-specific diagnostics (e.g. ``Match4Stats``).
    backend:
        Name of the backend that executed the run.
    algorithm:
        Name of the algorithm that was dispatched.
    extras:
        Optional provenance a wrapper attached on the way out — e.g.
        the resilience runner records which ladder rung actually
        served the result (``served_by``, ``rung``, ``attempts``).
        Empty for a plain :func:`repro.maximal_matching` call.
    """

    matching: Matching
    report: CostReport
    stats: Any
    backend: str = "reference"
    algorithm: str = ""
    extras: Mapping[str, Any] = field(default_factory=dict)

    # Legacy 3-tuple protocol: ``m, rep, stats = maximal_matching(...)``
    # and ``result[0]`` keep working.
    def __iter__(self) -> Iterator[Any]:
        return iter((self.matching, self.report, self.stats))

    def __len__(self) -> int:
        return 3

    def __getitem__(self, index: int) -> Any:
        return (self.matching, self.report, self.stats)[index]
