"""The bisecting-lines view of the matching partition (paper Fig. 2).

Before defining ``f`` algebraically, the paper derives it
geometrically: draw a line ``c`` bisecting the storage array; forward
pointers crossing ``c`` have pairwise-disjoint heads and tails (so do
backward ones); recurse on both halves.  The pointers therefore split
into a *forward* and a *backward* family, each further split into
``log n`` matching sets by the deepest bisecting line they cross.

This module makes that construction executable and checkable:

- :func:`bisection_level` — the index of the bisecting line a pointer
  crosses, i.e. ``g(<a,b>) = max{ i : bit i of a XOR b is 1 }``;
- :func:`bisection_partition` — the full ``2 log n``-set partition in
  Fig. 2's terms (direction, level), which the tests verify to be
  *exactly* the partition ``f_msb`` produces (the point of section 2);
- :func:`crossing_pointers` — the pointers crossing a given line, with
  the disjointness property the paper's observation rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from ..bits.bitops import msb_index
from ..errors import VerificationError
from ..lists.linked_list import NIL, LinkedList

__all__ = [
    "BisectionPartition",
    "bisection_level",
    "bisection_partition",
    "crossing_pointers",
]


def bisection_level(tails: np.ndarray, heads: np.ndarray) -> np.ndarray:
    """Deepest bisecting line separating each pointer's endpoints.

    Level ``k`` means the pointer crosses a line between two blocks of
    ``2^k`` addresses but no coarser one — exactly
    ``g(<a,b>) = msb(a XOR b)``.
    """
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    if np.any(tails == heads):
        raise VerificationError("a pointer cannot be a self-loop")
    return msb_index(tails ^ heads)


@dataclass(frozen=True)
class BisectionPartition:
    """Fig. 2's partition of a list's pointers.

    Attributes
    ----------
    tails, heads:
        The pointers.
    level:
        Per-pointer bisecting-line depth (``g``).
    forward:
        Per-pointer direction (``head > tail``).
    """

    tails: np.ndarray
    heads: np.ndarray
    level: np.ndarray
    forward: np.ndarray

    @property
    def num_sets(self) -> int:
        """Distinct (direction, level) classes in use."""
        key = 2 * self.level + self.forward.astype(np.int64)
        return int(np.unique(key).size)

    def set_key(self) -> np.ndarray:
        """The combined class key — *literally* ``f_msb`` of the
        pointer: at the deepest crossed line ``k`` the endpoints differ
        in bit ``k``, so the tail's bit ``a_k`` is 0 exactly when the
        pointer ascends (forward).  Hence ``f = 2k + a_k`` encodes
        direction as ``2k + (1 - forward)``."""
        return 2 * self.level + (~self.forward).astype(np.int64)

    def members(self, level: int, forward: bool) -> np.ndarray:
        """Tails of the pointers in one (level, direction) class."""
        sel = (self.level == level) & (self.forward == forward)
        return self.tails[sel]


def bisection_partition(lst: LinkedList) -> BisectionPartition:
    """Partition all of ``lst``'s pointers by (direction, line depth)."""
    tails, heads = lst.pointers()
    if tails.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return BisectionPartition(empty, empty, empty,
                                  np.empty(0, dtype=bool))
    level = bisection_level(tails, heads)
    forward = heads > tails
    return BisectionPartition(tails, heads, level, forward)


def crossing_pointers(
    lst: LinkedList, block: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pointers crossing a bisecting line of block size ``block``.

    ``block`` must be a power of two; a pointer crosses such a line iff
    its endpoints lie in different ``block``-aligned blocks but the same
    ``2*block``-aligned block — i.e. its bisection level is
    ``log2 block``.

    Returns ``(forward_tails, backward_tails)``.  The paper's
    observation — each family has pairwise-disjoint heads and tails —
    is verified here (a :class:`VerificationError` would expose a
    falsified premise; the test suite sweeps this).
    """
    require(block >= 1 and (block & (block - 1)) == 0,
            f"block must be a positive power of two, got {block}")
    part = bisection_partition(lst)
    k = block.bit_length() - 1
    fwd = part.members(k, True)
    bwd = part.members(k, False)
    nxt = lst.next
    for family, name in ((fwd, "forward"), (bwd, "backward")):
        ends = np.concatenate([family, nxt[family]])
        if np.unique(ends).size != ends.size:
            raise VerificationError(
                f"{name} pointers crossing the level-{k} line share an "
                f"endpoint — the bisection observation failed"
            )
    return fwd, bwd
