"""The ``"numpy"`` backend engine: whole-array kernels for Han's rounds.

Every PRAM round of the paper's algorithms applies one local rule to
all ``n`` pointers; this module executes each such round as one batch
of vectorized array operations:

- an ``f`` round is ``XOR`` + one bit-length table gather
  (:mod:`repro.bits.bitlen_tables`) + one comparison — or, once labels
  are small, a single gather into a cached pair table ``FT[a, b]``;
- Match4's per-column counting sorts become a block-structured
  counting rank (one ``bincount`` + per-position scatters);
- the WalkDown sweeps become one radix sort of a combined
  (class, step) key followed by per-step gather/scatter rounds over
  *push* arrays holding each pointer's already-labeled neighbors;
- the local-minima cut and the alternate-pointer walk are the same
  gather/scatter loops the reference tier runs, over cached
  predecessor/successor index arrays.

Bit-identity and cost parity are the contract: for every supported
input the engine produces exactly the tails, stats, and Brent
:class:`~repro.pram.cost.CostReport` of the reference implementations
(the equivalence test suite and the selfcheck enforce this).  The
reference tier stays the oracle; this tier is how the hot path runs at
hardware speed.

Internal index arrays use ``int64`` (numpy gathers take a fast path
for native ``intp`` indices) while label/row payloads use ``int8`` so
the per-round working set stays cache-resident.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .._util import ceil_div, require
from ..bits.bitlen_tables import LSB16, TWO_MSB16, pair_label_table
from ..bits.iterated_log import G
from ..errors import InvalidParameterError, VerificationError
from ..lists.linked_list import NIL, LinkedList
from ..pram.cost import CostModel, CostReport
from ..core.cutwalk import CutWalkStats
from ..core.functions import max_label_after
from ..core.match1 import CONSTANT_LABEL_BOUND
from ..core.match4 import Match4Stats
from ..core.matching import Matching
from ..telemetry import resources as _resources
from ..telemetry.metrics import METRICS
from ..telemetry.spans import enabled as telemetry_enabled, span as telemetry_span

__all__ = [
    "ENGINE_LIMIT",
    "f_msb",
    "f_lsb",
    "iterate_f",
    "walk_segments",
    "cut_and_walk",
    "match1",
    "match4",
]

#: Exclusive bound on list sizes (and ``f`` inputs) the engine accepts;
#: the two-level 16-bit tables cover values below ``2**32`` and ``2**31``
#: keeps every intermediate in ``int64`` with headroom.  The reference
#: backend remains available beyond it.
ENGINE_LIMIT = 1 << 31

_MASK16 = np.int64(0xFFFF)


# ---------------------------------------------------------------------------
# f rounds on raw value arrays.
# ---------------------------------------------------------------------------

def _f_values(a: np.ndarray, b: np.ndarray, bound: int, kind: str) -> np.ndarray:
    """One ``f`` round on value arrays ``< bound``, as ``int8`` labels.

    No domain validation — internal fast path; callers guarantee
    ``a != b`` elementwise and ``0 <= a, b < bound <= 2**31``.
    """
    xv = a ^ b
    if kind == "msb":
        if bound <= (1 << 16):
            k2 = TWO_MSB16[xv]
        else:
            hi = xv >> 16
            k2 = np.where(hi != 0, TWO_MSB16[hi] + np.int8(32),
                          TWO_MSB16[xv & _MASK16])
        # k = msb(a ^ b): a and b agree above bit k, so a_k = (a > b).
        return k2 + (a > b)
    iso = xv & -xv
    if bound <= (1 << 16):
        k = LSB16[iso]
    else:
        lo = iso & _MASK16
        k = np.where(lo != 0, LSB16[lo], LSB16[iso >> 16] + np.int8(16))
    bit = (a >> k.astype(np.int64)) & 1
    return (2 * k + bit.astype(np.int8)).astype(np.int8)


def _f_table_round(labels8: np.ndarray, cnext: np.ndarray, m: int,
                   kind: str) -> np.ndarray:
    """One ``f`` round on small labels (``< m``) via the pair table."""
    ft = pair_label_table(kind, m)
    b8 = labels8[cnext]
    idx = labels8.astype(np.int64)
    idx *= m
    idx += b8
    return ft[idx]


def _validate_f_args(a, b) -> tuple[np.ndarray, np.ndarray, int]:
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if np.any(a == b):
        raise InvalidParameterError("f requires a != b elementwise")
    if a.size and (int(a.min()) < 0 or int(b.min()) < 0):
        raise InvalidParameterError("f requires non-negative addresses")
    bound = 1
    if a.size:
        bound = int(max(a.max(), b.max())) + 1
    if bound > ENGINE_LIMIT:
        raise InvalidParameterError(
            f"numpy backend f supports values below 2**31; got {bound - 1}. "
            f"Use the reference implementation for larger values."
        )
    return a, b, bound


def f_msb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Table-driven :func:`repro.core.functions.f_msb` (bit-identical)."""
    a, b, bound = _validate_f_args(a, b)
    return _f_values(a, b, bound, "msb").astype(np.int64)


def f_lsb(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Table-driven :func:`repro.core.functions.f_lsb` (bit-identical)."""
    a, b, bound = _validate_f_args(a, b)
    return _f_values(a, b, bound, "lsb").astype(np.int64)


# ---------------------------------------------------------------------------
# Cached per-list derived arrays.
# ---------------------------------------------------------------------------

class _ListPrep:
    """Derived index arrays of one list, shared across engine calls.

    Mirrors (and extends) the lazy caches on :class:`LinkedList` itself
    (``pred``, ``order``): all entries are pure functions of the
    immutable ``NEXT`` array.
    """

    __slots__ = ("lst", "n", "tailnodes", "nxt", "cnext", "pdx", "ndx",
                 "has_ptr", "interior", "addr", "xor1", "gt1", "xcache",
                 "derived")

    def __init__(self, lst: LinkedList) -> None:
        n = lst.n
        nxt = lst.next
        pred = lst.pred
        cnext = lst.circular_next()
        has_ptr = nxt != NIL
        self.lst = lst
        self.n = n
        self.tailnodes = np.array([lst.tail], dtype=np.int64)
        self.nxt = nxt
        self.cnext = cnext
        # Dummy slot n absorbs pushes/reads across missing neighbors.
        self.pdx = np.where(pred == NIL, np.int64(n), pred)
        self.ndx = np.where(has_ptr & has_ptr[cnext], cnext, np.int64(n))
        self.has_ptr = has_ptr
        self.interior = has_ptr & (pred != NIL)
        self.addr = np.arange(n, dtype=np.int64)
        # Round 1 of f always XORs each address with its successor's:
        # both operands are list constants, so the XOR (and the a > b
        # bit selector) are cached too.
        self.xor1 = self.addr ^ cnext
        self.gt1 = self.addr > cnext
        self.xcache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Memoized preprocessing stages (labels, ranks, classification),
        # keyed by the parameters they are pure functions of.  Cost
        # charges are replayed on a hit, so CostReports are unaffected.
        self.derived: dict[tuple, tuple] = {}


_PREP_CACHE: OrderedDict[int, _ListPrep] = OrderedDict()
_PREP_CACHE_SIZE = 8


def _prep_for(lst: LinkedList) -> _ListPrep:
    key = id(lst)
    prep = _PREP_CACHE.get(key)
    if prep is not None and prep.lst is lst:
        _PREP_CACHE.move_to_end(key)
        return prep
    prep = _ListPrep(lst)
    _PREP_CACHE[key] = prep
    while len(_PREP_CACHE) > _PREP_CACHE_SIZE:
        _PREP_CACHE.popitem(last=False)
    return prep


def _remember(prep: _ListPrep, key: tuple, value: tuple) -> None:
    """Insert into the prep's derived-stage memo, bounded."""
    if len(prep.derived) >= 16:
        prep.derived.clear()
    prep.derived[key] = value


def _require_supported(n: int) -> None:
    if n >= ENGINE_LIMIT:
        raise InvalidParameterError(
            f"numpy backend supports n < 2**31, got {n}; "
            f"use backend='reference'"
        )


# ---------------------------------------------------------------------------
# Label iteration.
# ---------------------------------------------------------------------------

def _iterate_labels(prep: _ListPrep, rounds: int, kind: str,
                    cost: CostModel | None) -> np.ndarray:
    """``rounds`` f-rounds from addresses; ``int8`` labels (``rounds >= 1``)."""
    n = prep.n
    if telemetry_enabled():
        METRICS.counter("engine.f_rounds").inc(rounds)
    if kind == "msb" and n <= (1 << 16):
        labels = TWO_MSB16[prep.xor1] + prep.gt1
    else:
        labels = _f_values(prep.addr, prep.cnext, n, kind)
    if cost is not None:
        cost.parallel(n)
    for r in range(2, rounds + 1):
        labels = _f_table_round(labels, prep.cnext, max_label_after(n, r - 1),
                                kind)
        if cost is not None:
            cost.parallel(n)
    return labels


def iterate_f(lst: LinkedList, rounds: int, *, kind: str = "msb",
              cost: CostModel | None = None) -> np.ndarray:
    """Vectorized :func:`repro.core.functions.iterate_f` (final labels).

    Bit-identical to the reference for every supported input; the
    per-round invariant re-checks (and the ``return_history`` option)
    stay on the reference tier.
    """
    require(rounds >= 0, f"rounds must be >= 0, got {rounds}")
    if not isinstance(lst, LinkedList):
        lst = LinkedList(lst)
    _require_supported(lst.n)
    if lst.n == 1 or rounds == 0:
        return np.arange(lst.n, dtype=np.int64)
    prep = _prep_for(lst)
    return _iterate_labels(prep, rounds, kind, cost).astype(np.int64)


# ---------------------------------------------------------------------------
# Local-minima cut + alternate-pointer walk (Match1 steps 3-4).
# ---------------------------------------------------------------------------

def walk_segments(nxt: np.ndarray, live: np.ndarray, starts: np.ndarray,
                  limit: int) -> tuple[np.ndarray, int]:
    """Walk alternate pointers through the live segments from ``starts``.

    The kernel of Match1 step 4: each start is the first live pointer of
    one cut segment; the walk chooses it, skips the next live pointer,
    and repeats until the segment ends.  Segments never interact — the
    cut guarantees a chosen pointer's neighbors are dead or skipped —
    which is what lets :mod:`repro.parallel` run disjoint blocks of
    segments in separate worker processes and merge the results
    bit-identically.

    Parameters are plain arrays (no prep struct) so worker processes
    can call this on reconstructed buffers: ``nxt`` the NEXT array,
    ``live`` the length-``n`` survived-the-cut mask, ``starts`` the
    segment-start addresses to walk, ``limit`` the round bound.

    Returns ``(chosen, rounds)``: the ascending addresses of the chosen
    pointers and the number of lockstep rounds the walk took (the
    maximum over the walked segments).
    """
    chosen = np.zeros(live.size, dtype=bool)
    current = starts
    rounds = 0
    while current.size:
        if rounds >= limit:
            raise VerificationError(
                f"sublist walk exceeded {limit} rounds: sublists are not "
                f"constant-length (labels too large?)"
            )
        rounds += 1
        chosen[current] = True
        w1 = nxt[current]
        w2 = nxt[w1[live[w1]]]
        current = w2[live[w2]]
    return np.flatnonzero(chosen), rounds


def _cut_and_walk_flat(prep, labels: np.ndarray, cost: CostModel | None,
                       max_walk_rounds: int | None = None,
                       walker=None,
                       ) -> tuple[np.ndarray, CutWalkStats, np.ndarray]:
    """Shared cut+walk kernel over a prep struct (single list or batch).

    ``labels`` may be any signed integer dtype with values ``>= 0``
    (``-1`` serves as the absent-neighbor sentinel) whose order relation
    matches the reference labels' — the engine's encoded six-set labels
    (``raw + 1``) qualify.  Returns ``(tails, stats, chosen)`` where
    ``chosen`` is the length ``n + 1`` per-node mask (dummy slot false)
    so callers can verify independence without rebuilding it.

    ``walker`` substitutes the segment-walk kernel (same contract as
    :func:`walk_segments`); the ``numpy-mp`` backend passes a
    process-pool implementation here.  Everything around the walk — the
    cut, the segment discovery, the end repair — stays in-process.
    """
    n = prep.n
    nxt = prep.nxt
    lab_next = labels[prep.cnext]
    lext = np.empty(n + 1, dtype=labels.dtype)
    lext[:n] = labels
    lext[n] = -1
    lab_prev = lext[prep.pdx]
    cut = (lab_prev > labels) & (labels < lab_next) & prep.interior
    if cost is not None:
        cost.parallel(n)

    # A pointer is *live* when it survived the cut; liveext's dummy slot
    # makes pred/next probes branch-free.
    liveext = np.zeros(n + 1, dtype=bool)
    np.logical_and(prep.has_ptr, ~cut, out=liveext[:n])
    live = liveext[:n]
    # Segment starts: live pointers not preceded by a live pointer.
    current = np.flatnonzero(live & ~liveext[prep.pdx])
    num_segments = int(current.size)

    chosen = np.zeros(n + 1, dtype=bool)
    limit = max_walk_rounds if max_walk_rounds is not None else n
    walk = walker if walker is not None else walk_segments
    idx, rounds = walk(nxt, live, current, limit)
    chosen[idx] = True
    if cost is not None:
        cost.parallel(num_segments, depth=max(1, rounds))

    # End repair, per list (see core.cutwalk's module docstring).
    lp = prep.pdx[prep.tailnodes]
    lp = lp[lp != n]
    lp = lp[~chosen[lp]]
    repair = lp[~chosen[prep.pdx[lp]]]
    chosen[repair] = True
    end_repaired = bool(repair.size)
    if cost is not None:
        if prep.tailnodes.size == 1:
            cost.sequential(1)
        else:
            cost.parallel(int(prep.tailnodes.size))

    tails = np.flatnonzero(chosen[:n])
    stats = CutWalkStats(
        num_cut=int(np.count_nonzero(cut)),
        num_segments=num_segments,
        walk_rounds=rounds,
        end_repaired=end_repaired,
    )
    return tails, stats, chosen


def cut_and_walk(lst: LinkedList, node_labels: np.ndarray, *,
                 cost: CostModel | None = None,
                 max_walk_rounds: int | None = None,
                 ) -> tuple[np.ndarray, CutWalkStats]:
    """Vectorized :func:`repro.core.cutwalk.cut_and_walk` (bit-identical)."""
    labels = np.asarray(node_labels)
    if labels.dtype.kind not in "iu":
        raise InvalidParameterError(
            f"node_labels must be an integer array, got dtype {labels.dtype}"
        )
    n = lst.n
    if labels.size != n:
        raise VerificationError(
            f"node_labels has {labels.size} entries for {n} nodes"
        )
    if n <= 1:
        return np.empty(0, dtype=np.int64), CutWalkStats(0, 0, 0, False)
    if labels.size and int(labels.min()) < 0:
        raise InvalidParameterError("node_labels must be non-negative")
    prep = _prep_for(lst)
    if np.any(labels == labels[prep.cnext]):
        raise VerificationError(
            "node_labels must be distinct on adjacent nodes for the cut"
        )
    tails, stats, _ = _cut_and_walk_flat(
        prep, np.asarray(labels, dtype=np.int64), cost, max_walk_rounds
    )
    return tails, stats


def _fast_matching(lst: LinkedList, prep, tails: np.ndarray,
                   chosen: np.ndarray) -> Matching:
    """Construct a verified :class:`Matching` from engine tails.

    ``tails`` comes out of ``flatnonzero`` — sorted, unique, in-range
    pointer tails — so only independence needs checking, one gather
    against the walk's own ``chosen`` mask.
    """
    if np.any(chosen[prep.pdx[tails]]):
        raise VerificationError(
            "numpy engine produced adjacent matched pointers"
        )
    return Matching(lst, tails, pre_verified=True)


# ---------------------------------------------------------------------------
# Match1.
# ---------------------------------------------------------------------------

def match1(lst: LinkedList, *, p: int = 1, kind: str = "msb",
           rounds: int | None = None, _walker=None,
           ) -> tuple[Matching, CostReport, CutWalkStats]:
    """Algorithm Match1 on the numpy backend.

    Bit-identical tails, stats, and cost report to
    :func:`repro.core.match1.match1` for every supported input.
    ``_walker`` is the private segment-walk substitution hook the
    ``numpy-mp`` backend uses (see :func:`walk_segments`).
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    if not isinstance(lst, LinkedList):
        lst = LinkedList(lst)
    n = lst.n
    _require_supported(n)
    if rounds is None:
        rounds = G(n)
    require(rounds >= 0, f"rounds must be >= 0, got {rounds}")
    cost = CostModel(p)
    if n == 1:
        with cost.phase("iterate"):
            pass
        with cost.phase("cutwalk"):
            pass
        return (Matching(lst, np.empty(0, dtype=np.int64), pre_verified=True),
                cost.report(), CutWalkStats(0, 0, 0, False))
    prep = _prep_for(lst)
    with cost.phase("iterate"):
        if rounds:
            dkey = ("m1", kind, rounds)
            hit = prep.derived.get(dkey)
            if hit is None:
                labels = _iterate_labels(prep, rounds, kind, cost)
                _remember(prep, dkey, (labels,))
            else:
                labels = hit[0]
                for _ in range(rounds):
                    cost.parallel(n)
        else:
            labels = prep.addr
    max_label = int(labels.max())
    if max_label >= max(CONSTANT_LABEL_BOUND, 2 * CONSTANT_LABEL_BOUND):
        raise VerificationError(
            f"labels not constant-size after {rounds} rounds "
            f"(max {max_label}); pass more rounds"
        )
    with cost.phase("cutwalk"):
        tails, stats, chosen = _cut_and_walk_flat(prep, labels, cost,
                                                  walker=_walker)
    return _fast_matching(lst, prep, tails, chosen), cost.report(), stats


# ---------------------------------------------------------------------------
# Match4: block counting ranks + WalkDown sweeps.
# ---------------------------------------------------------------------------

def _block_ranks(prep, labels8: np.ndarray, x: int) -> np.ndarray:
    """Stable rank of each node's label within its address block.

    Equals the row assigned by the reference layout's stable per-column
    counting sort: rank = (#smaller labels in block) + (#equal labels at
    earlier in-block positions).  One bincount builds the per-(block,
    label) start offsets; ``x`` scatter rounds place the positions.
    """
    n = prep.n
    nb = ceil_div(n, x)
    cached = prep.xcache.get(x)
    if cached is None:
        base = (prep.addr // x) * (x + 1)
        bb = np.arange(nb, dtype=np.int64) * (x + 1)
        prep.xcache[x] = cached = (base, bb)
    base, bb = cached
    counts = np.bincount(base + labels8, minlength=nb * (x + 1))
    # Per-block exclusive prefix via one contiguous cumsum: the global
    # exclusive prefix minus each block's start (column x + 1 of each
    # block is an always-empty separator, so blocks never bleed).
    rf = np.empty(nb * (x + 1), dtype=np.int64)
    rf[0] = 0
    np.cumsum(counts[:-1], out=rf[1:])
    starts = rf[:: x + 1].copy()
    rf.reshape(nb, x + 1)[:, :] -= starts[:, None]
    row = np.empty(n, dtype=np.int8)
    for pos in range(x):
        labp = labels8[pos::x]
        if labp.size == 0:
            break
        idx = bb[:labp.size] + labp
        r = rf[idx]
        row[pos::x] = r
        rf[idx] = r + 1
    return row


_MEX_TABLES: tuple[np.ndarray, ...] | None = None


def _mex_tables() -> tuple[np.ndarray, ...]:
    """49-entry greedy-3-labeling tables over *encoded* neighbor labels.

    Encoding: ``0`` = no/unprocessed neighbor, else ``raw label + 1``.
    Entry ``e1 * 7 + e2`` is the encoded ``_mex3`` choice — built from
    the reference ``_mex3`` so the greedy decisions agree exactly.
    """
    global _MEX_TABLES
    if _MEX_TABLES is None:
        from ..core.walkdown import _mex3

        e1 = np.repeat(np.arange(7, dtype=np.int64), 7) - 1
        e2 = np.tile(np.arange(7, dtype=np.int64), 7) - 1
        mexi = (_mex3(0, e1, e2) + 1).astype(np.int8)
        mexa = (_mex3(3, e1, e2) + 1).astype(np.int8)
        tables = (mexi, (mexi * np.int8(7)), mexa, (mexa * np.int8(7)))
        for t in tables:
            t.setflags(write=False)
        _MEX_TABLES = tables
    return _MEX_TABLES


def _sweep_labels6(prep, labels8, row, intra, max_x,
                   num_lists: int = 1,
                   ) -> tuple[np.ndarray, int, int]:
    """Both WalkDown sweeps: encoded six-set labels per node.

    Returns ``(labels6_encoded, max_inter_step, max_intra_step)`` with
    the max steps ``-1`` when the class is empty.  The combined key —
    ``row`` for inter-row pointers, ``max_x + label + row`` for
    intra-row ones — preserves the reference schedule: all inter-row
    steps of a list precede all its intra-row steps (``row < x <=
    max_x``), and steps ascend within each class in lockstep across
    lists, which is safe because pushes never cross list boundaries.
    """
    n = prep.n
    if 3 * max_x - 2 < 255:
        sk = np.where(intra,
                      labels8.view(np.uint8) + row.view(np.uint8)
                      + np.uint8(max_x),
                      row.view(np.uint8))
        sk[~prep.has_ptr] = np.uint8(255)
    else:
        sk = np.where(intra,
                      labels8.astype(np.int16) + row + np.int16(max_x),
                      row.astype(np.int16))
        sk[~prep.has_ptr] = np.int16(32000)
    order = np.argsort(sk, kind="stable")
    num_ptrs = n - num_lists
    tt = order[:num_ptrs]
    sks = sk[tt]
    bounds = np.searchsorted(sks, np.arange(3 * max_x, dtype=np.int64)
                             .astype(sk.dtype)).tolist()
    bounds.append(num_ptrs)
    inter_count = bounds[max_x]
    max_inter = int(sks[inter_count - 1]) if inter_count else -1
    max_intra = (int(sks[num_ptrs - 1]) - max_x
                 if num_ptrs > inter_count else -1)
    pdt = prep.pdx[tt]
    ndt = prep.ndx[tt]
    mexi, mexi7, mexa, mexa7 = _mex_tables()
    cl7 = np.zeros(n + 1, dtype=np.int8)   # 7 * encoded left-neighbor label
    cre = np.zeros(n + 1, dtype=np.int8)   # encoded right-neighbor label
    labout = np.empty(num_ptrs, dtype=np.int8)
    for s in range(3 * max_x):
        lo = bounds[s]
        hi = bounds[s + 1]
        if lo == hi:
            continue
        g = tt[lo:hi]
        idx = cl7[g] + cre[g]
        if s < max_x:
            lab = mexi[idx]
            lab7 = mexi7[idx]
        else:
            lab = mexa[idx]
            lab7 = mexa7[idx]
        labout[lo:hi] = lab
        cre[pdt[lo:hi]] = lab      # tell the left neighbor its right label
        cl7[ndt[lo:hi]] = lab7     # tell the right neighbor its left label
    l6e = np.zeros(n, dtype=np.int8)
    l6e[tt] = labout
    return l6e, max_inter, max_intra


def _check_sweeps(prep, sk_like_labels6, lst_list) -> None:
    """``check=True`` invariants: six-set partition per list."""
    from ..core.partition import verify_matching_partition

    offset = 0
    for lst in lst_list:
        nb = lst.n
        raw = sk_like_labels6[offset:offset + nb].astype(np.int64) - 1
        verify_matching_partition(lst, raw)
        offset += nb


def match4(lst: LinkedList, *, p: int = 1, iterations: int = 2,
           kind: str = "msb", strategy: str = "iterate",
           memory_limit: int = 1 << 24, step1_table=None,
           check: bool = False, _walker=None,
           ) -> tuple[Matching, CostReport, Match4Stats]:
    """Algorithm Match4 on the numpy backend (``strategy="iterate"``).

    Bit-identical tails, stats, and cost report to
    :func:`repro.core.match4.match4` for every supported input.  Unlike
    the reference, ``check`` defaults to ``False``: the engine verifies
    matching independence inline for free, and ``check=True`` adds the
    full six-set partition verification.  The ``"table"`` step-1
    strategy stays reference-only.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    require(iterations >= 1, f"i must be >= 1, got {iterations}")
    if strategy != "iterate":
        raise InvalidParameterError(
            f"numpy backend implements strategy='iterate' only, got "
            f"{strategy!r}; use backend='reference' for the table strategy"
        )
    if step1_table is not None:
        raise InvalidParameterError(
            "step1_table belongs to the 'table' strategy; the numpy "
            "backend takes neither"
        )
    _ = memory_limit  # table-strategy budget; accepted for signature parity
    if not isinstance(lst, LinkedList):
        lst = LinkedList(lst)
    n = lst.n
    _require_supported(n)
    i = iterations
    cost = CostModel(p)
    if n == 1:
        return (
            Matching(lst, np.empty(0, dtype=np.int64), pre_verified=True),
            cost.report(),
            Match4Stats(i, strategy, 1, 1, 0, 0, CutWalkStats(0, 0, 0, False)),
        )
    prep = _prep_for(lst)
    dkey = ("m4", kind, i)
    hit = prep.derived.get(dkey)
    x = max(2, max_label_after(n, i))
    y = ceil_div(n, x)

    if hit is None:
        with cost.phase("partition"):
            labels = _iterate_labels(prep, i, kind, cost)
        with cost.phase("sort"):
            row = _block_ranks(prep, labels, x)
            cost.parallel(y, depth=x)
        intra = prep.has_ptr & (row == row[prep.cnext])
        num_intra = int(np.count_nonzero(intra))
        _remember(prep, dkey, (labels, row, intra, num_intra))
    else:
        labels, row, intra, num_intra = hit
        with cost.phase("partition"):
            for _ in range(i):
                cost.parallel(n)
        with cost.phase("sort"):
            cost.parallel(y, depth=x)
    num_inter = (n - 1) - num_intra

    with telemetry_span("engine.sweep", n=n, x=x, y=y) as sp:
        rt = _resources.phase_begin("engine.sweep")
        try:
            l6e, max_inter, max_intra = _sweep_labels6(prep, labels, row,
                                                       intra, x)
        finally:
            if rt is not None:
                _resources.phase_end(rt, None, sp)
        sp.set(max_inter=max_inter, max_intra=max_intra)
    with cost.phase("walkdown1"):
        if num_inter:
            cost.parallel(y, depth=max(1, max_inter + 1))
    with cost.phase("walkdown2"):
        if num_intra:
            cost.parallel(y, depth=max(1, max_intra + 1))
    if check:
        _check_sweeps(prep, l6e, [lst])

    with cost.phase("cutwalk"):
        tails, cw, chosen = _cut_and_walk_flat(prep, l6e, cost,
                                               walker=_walker)
    matching = _fast_matching(lst, prep, tails, chosen)
    stats = Match4Stats(
        i=i, strategy=strategy, x=x, y=y,
        num_inter=num_inter, num_intra=num_intra, cutwalk=cw,
    )
    return matching, cost.report(), stats
