"""Batch execution: many independent lists through one engine call.

Real workloads (the forest pipeline, parameter sweeps, resilience
probes) often need maximal matchings of *many* lists.  Dispatching each
through :func:`repro.maximal_matching` pays the per-call fixed costs —
Python dispatch, kernel launches — once per list, which dominates when
the lists are small.  :func:`batch_maximal_matching` instead
concatenates the lists into one flat node arena (per-list pointers
offset into it, a shared dummy slot absorbing absent neighbors) and
runs the numpy engine's kernels **once over the arena**: because every
pointer, predecessor, and push stays inside its own list's segment, a
lockstep round over the arena is exactly a round of each list run
alone, so the per-list matchings are bit-identical to per-list calls
(and therefore to the reference tier).

Labels are iterated with per-list round counts (nodes whose list is
done stop updating), Match4's block ranks use per-list block widths,
and the WalkDown sweeps order all lists' steps by one combined key —
valid because a step's pushes never cross a list boundary.

The returned :class:`CostReport` is the *aggregate lockstep* account:
one phase structure for the whole batch, each round charged at the
width of all lists still active.  Per-list reports, when needed, come
from per-list calls; the contract here is per-list **matchings**, not
per-list cost splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from ..bits.iterated_log import G
from ..errors import InvalidParameterError, VerificationError
from ..lists.linked_list import NIL, LinkedList
from ..pram.cost import CostModel, CostReport
from ..core.functions import max_label_after
from ..core.match1 import CONSTANT_LABEL_BOUND
from ..core.matching import Matching
from ..telemetry.metrics import METRICS
from ..telemetry.spans import enabled as telemetry_enabled, span as telemetry_span
from .engine import (
    _cut_and_walk_flat,
    _f_table_round,
    _f_values,
    _require_supported,
    _sweep_labels6,
)

__all__ = ["BatchStats", "BatchMatchResult", "batch_maximal_matching"]


@dataclass(frozen=True)
class BatchStats:
    """Aggregate diagnostics of one batch run."""

    num_lists: int
    total_nodes: int
    sizes: tuple[int, ...]
    matched: tuple[int, ...]


@dataclass(frozen=True)
class BatchMatchResult:
    """What one batch run produced: per-list matchings + aggregate cost.

    ``extras`` carries execution provenance that is not part of the
    result proper — notably ``extras["planner"]`` when the batch ran
    with ``backend="auto"`` (mirrors ``MatchResult.extras``).
    """

    matchings: tuple[Matching, ...]
    report: CostReport
    stats: BatchStats
    backend: str = "numpy"
    algorithm: str = "match4"
    extras: Mapping[str, Any] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Matching]:
        return iter(self.matchings)

    def __len__(self) -> int:
        return len(self.matchings)

    def __getitem__(self, index: int) -> Matching:
        return self.matchings[index]


class _BatchPrep:
    """Flat arena over many lists, duck-typing the engine's prep struct."""

    __slots__ = ("n", "num_lists", "sizes", "offsets", "nxt", "cnext",
                 "pdx", "ndx", "has_ptr", "interior", "local_addr",
                 "tailnodes", "singleton_nodes")

    def __init__(self, lists: Sequence[LinkedList]) -> None:
        sizes = np.array([l.n for l in lists], dtype=np.int64)
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        n = int(offsets[-1])
        nxt = np.empty(n, dtype=np.int64)
        cnext = np.empty(n, dtype=np.int64)
        pdx = np.empty(n, dtype=np.int64)
        local_addr = np.empty(n, dtype=np.int64)
        tailnodes = np.empty(len(lists), dtype=np.int64)
        for b, lst in enumerate(lists):
            o = int(offsets[b])
            hi = o + lst.n
            seg = nxt[o:hi]
            seg[:] = lst.next
            seg[seg != NIL] += o
            cnext[o:hi] = lst.circular_next()
            cnext[o:hi] += o
            pd = lst.pred
            pdx[o:hi] = np.where(pd == NIL, np.int64(n), pd + o)
            local_addr[o:hi] = np.arange(lst.n, dtype=np.int64)
            tailnodes[b] = o + lst.tail
        has_ptr = nxt != NIL
        self.n = n
        self.num_lists = len(lists)
        self.sizes = sizes
        self.offsets = offsets
        self.nxt = nxt
        self.cnext = cnext
        self.pdx = pdx
        self.ndx = np.where(has_ptr & has_ptr[cnext], cnext, np.int64(n))
        self.has_ptr = has_ptr
        self.interior = has_ptr & (pdx != n)
        self.local_addr = local_addr
        self.tailnodes = tailnodes
        self.singleton_nodes = offsets[:-1][sizes == 1]


def _batch_labels(bp: _BatchPrep, rounds_per_list: np.ndarray, kind: str,
                  cost: CostModel | None) -> np.ndarray:
    """Per-list-bounded f iteration over the arena (``int8`` labels).

    List ``b`` iterates ``rounds_per_list[b]`` rounds; its nodes freeze
    afterwards while longer lists continue.  Lists with zero rounds
    (singletons) keep their local address ``0``.
    """
    max_rounds = int(rounds_per_list.max())
    if max_rounds == 0:
        return np.zeros(bp.n, dtype=np.int8)
    bound = int(bp.sizes.max())
    labels = _f_values(bp.local_addr, bp.local_addr[bp.cnext], bound, kind)
    mixed = bool((rounds_per_list != max_rounds).any())
    needed = np.repeat(rounds_per_list, bp.sizes) if mixed else None
    if needed is not None:
        # Zero-round (singleton) lists keep their local address, 0.
        labels[needed < 1] = 0
    if cost is not None:
        cost.parallel(int(bp.sizes[rounds_per_list >= 1].sum()))
    for r in range(2, max_rounds + 1):
        new = _f_table_round(labels, bp.cnext,
                             max_label_after(bound, r - 1), kind)
        labels = np.where(needed >= r, new, labels) if mixed else new
        if cost is not None:
            cost.parallel(int(bp.sizes[rounds_per_list >= r].sum()))
    return labels


def _split_matchings(lists, bp: _BatchPrep, tails: np.ndarray,
                     chosen: np.ndarray) -> tuple[Matching, ...]:
    """Cut the arena's tails back into per-list verified matchings."""
    if np.any(chosen[bp.pdx[tails]]):
        raise VerificationError(
            "numpy batch engine produced adjacent matched pointers"
        )
    pieces = np.split(tails, np.searchsorted(tails, bp.offsets[1:-1]))
    return tuple(
        Matching(lst, piece - int(bp.offsets[b]), pre_verified=True)
        for b, (lst, piece) in enumerate(zip(lists, pieces))
    )


def _batch_match1_numpy(lists, bp: _BatchPrep, *, p: int, kind: str = "msb",
                        rounds: int | None = None,
                        ) -> tuple[tuple[Matching, ...], CostReport]:
    cost = CostModel(p)
    if rounds is not None and rounds < 0:
        raise InvalidParameterError(f"rounds must be >= 0, got {rounds}")
    rpl = (np.full(bp.num_lists, rounds, dtype=np.int64)
           if rounds is not None
           else np.array([G(int(nb)) for nb in bp.sizes], dtype=np.int64))
    # Reference match1 never iterates a singleton list.
    rpl[bp.sizes == 1] = 0
    with cost.phase("iterate"):
        if int(rpl.max()) > 0:
            labels = _batch_labels(bp, rpl, kind, cost)
        else:
            labels = bp.local_addr
    bound = max(CONSTANT_LABEL_BOUND, 2 * CONSTANT_LABEL_BOUND)
    max_per_list = np.maximum.reduceat(labels, bp.offsets[:-1])
    bad = np.flatnonzero((max_per_list >= bound) & (bp.sizes > 1))
    if bad.size:
        b = int(bad[0])
        raise VerificationError(
            f"list {b}: labels not constant-size after {int(rpl[b])} "
            f"rounds (max {int(max_per_list[b])}); pass more rounds"
        )
    with cost.phase("cutwalk"):
        tails, _, chosen = _cut_and_walk_flat(bp, labels, cost)
    return _split_matchings(lists, bp, tails, chosen), cost.report()


def _batch_match4_numpy(lists, bp: _BatchPrep, *, p: int,
                        iterations: int = 2, kind: str = "msb",
                        strategy: str = "iterate",
                        memory_limit: int = 1 << 24, step1_table=None,
                        check: bool = False,
                        ) -> tuple[tuple[Matching, ...], CostReport]:
    if strategy != "iterate":
        raise InvalidParameterError(
            f"numpy backend implements strategy='iterate' only, got "
            f"{strategy!r}"
        )
    if step1_table is not None:
        raise InvalidParameterError(
            "step1_table belongs to the 'table' strategy; the numpy "
            "backend takes neither"
        )
    _ = memory_limit
    if iterations < 1:
        raise InvalidParameterError(f"i must be >= 1, got {iterations}")
    i = iterations
    cost = CostModel(p)
    n = bp.n
    active = bp.sizes >= 2
    rpl = np.where(active, i, 0).astype(np.int64)

    with cost.phase("partition"):
        labels = _batch_labels(bp, rpl, kind, cost)

    # Per-list block widths x_b and a global block numbering (block ids
    # ascend with global address, so equal (block, label) runs stay
    # contiguous under a stable by-label sort).
    xs = np.array(
        [max(2, max_label_after(int(nb), i)) if nb > 1 else 1
         for nb in bp.sizes],
        dtype=np.int64,
    )
    ys = (bp.sizes + xs - 1) // xs
    maxx = int(xs.max())
    nblocks = np.zeros(bp.num_lists + 1, dtype=np.int64)
    np.cumsum(ys, out=nblocks[1:])
    bid = np.empty(n, dtype=np.int64)
    for b in range(bp.num_lists):
        o, hi = int(bp.offsets[b]), int(bp.offsets[b + 1])
        bid[o:hi] = bp.local_addr[o:hi] // int(xs[b]) + int(nblocks[b])

    with cost.phase("sort"):
        width = maxx + 1
        flatbin = bid * width + labels
        counts = np.bincount(flatbin, minlength=int(nblocks[-1]) * width)
        rf = np.empty(counts.size, dtype=np.int64)
        rf[0] = 0
        np.cumsum(counts[:-1], out=rf[1:])
        starts = rf[::width].copy()
        rf.reshape(-1, width)[:, :] -= starts[:, None]
        order1 = np.argsort(labels, kind="stable")
        srt = flatbin[order1]
        pos = np.arange(n, dtype=np.int64)
        runstart = np.maximum.accumulate(
            np.where(np.r_[True, srt[1:] != srt[:-1]], pos, 0)
        )
        seq = np.empty(n, dtype=np.int64)
        seq[order1] = pos - runstart
        row = (rf[flatbin] + seq).astype(np.int8)
        cost.parallel(int(ys[active].sum()), depth=maxx)

    intra = bp.has_ptr & (row == row[bp.cnext])
    num_intra = int(np.count_nonzero(intra))
    num_inter = (n - bp.num_lists) - num_intra
    l6e, max_inter, max_intra = _sweep_labels6(
        bp, labels, row, intra, maxx, num_lists=bp.num_lists
    )
    with cost.phase("walkdown1"):
        if num_inter:
            cost.parallel(int(ys[active].sum()), depth=max(1, max_inter + 1))
    with cost.phase("walkdown2"):
        if num_intra:
            cost.parallel(int(ys[active].sum()), depth=max(1, max_intra + 1))
    if check:
        from ..core.partition import verify_matching_partition

        for b, lst in enumerate(lists):
            o, hi = int(bp.offsets[b]), int(bp.offsets[b + 1])
            raw = l6e[o:hi].astype(np.int64) - 1
            verify_matching_partition(lst, raw)

    with cost.phase("cutwalk"):
        tails, _, chosen = _cut_and_walk_flat(bp, l6e, cost)
    return _split_matchings(lists, bp, tails, chosen), cost.report()


_BATCH_DRIVERS = {
    "match1": _batch_match1_numpy,
    "match4": _batch_match4_numpy,
}


def _resolve_batch_workers(backend: str, workers: int | None) -> int:
    """Effective worker count for one batch call, validated config-time.

    An explicit ``workers`` is validated through
    :class:`~repro.parallel.config.ParallelConfig` (``workers < 1``
    raises :class:`InvalidParameterError` — a ``ValueError`` — before
    any pool exists).  ``workers=None`` means serial, except on the
    ``numpy-mp`` backend, which resolves the process-default config
    (and thereby ``REPRO_WORKERS``).
    """
    from ..parallel.config import ParallelConfig, get_default_config

    if workers is not None:
        return ParallelConfig(workers=workers).resolve_workers()
    if backend == "numpy-mp":
        return get_default_config().resolve_workers()
    return 1


def batch_maximal_matching(
    lists: Sequence[LinkedList | np.ndarray | list],
    *,
    algorithm: str | None = None,
    backend: str | None = None,
    p: int = 1,
    workers: int | None = None,
    policy: Any = None,
    **kwargs: Any,
) -> BatchMatchResult:
    """Maximally match many independent lists in one call.

    With ``backend="numpy"`` (the default here — batching exists for
    throughput) the lists are concatenated into one flat arena and each
    engine kernel runs once over all of them; per-list matchings are
    bit-identical to per-list :func:`repro.maximal_matching` calls.
    Implemented for ``match1`` and ``match4``.  With
    ``backend="reference"`` the lists are dispatched one by one and the
    per-call reports absorbed into one aggregate (any algorithm).

    ``workers`` engages :mod:`repro.parallel`: the batch is sharded by
    node-balanced contiguous ranges across that many worker processes,
    each running this function serially on its shard.  ``workers=None``
    (default) is serial, except with ``backend="numpy-mp"``, which
    resolves the process-default
    :class:`~repro.parallel.config.ParallelConfig` (and the
    ``REPRO_WORKERS`` environment variable).  ``workers < 1`` raises
    :class:`InvalidParameterError` (a ``ValueError``) at config time.

    **Order guarantee**: ``matchings[i]`` always corresponds to
    ``lists[i]`` — results are reassembled by shard index, never by
    worker completion order.  Matchings are bit-identical to the serial
    call's for every input.  The aggregate report at ``workers > 1`` is
    the shard-order absorb of per-shard reports: equal to the serial
    report on the per-list backends (``reference``), a differently
    grouped (same-total) account on the fused numpy arena — see
    ``docs/parallel.md``.  If the pool infrastructure fails, the batch
    falls back to serial execution (``parallel.fallback`` telemetry
    event) rather than erroring.

    ``backend="auto"`` routes the whole batch through
    :mod:`repro.planner` with the ``"batch"`` profile (one decision per
    call, not per list — fused execution needs one backend); the
    decision lands in ``result.extras["planner"]``.  An
    :class:`~repro.planner.ExecutionPolicy` is accepted as ``policy=``
    and merged with the kwargs above, exactly as in
    :func:`repro.maximal_matching`.

    Kwargs are normalized exactly as in :func:`repro.maximal_matching`
    (canonical names, deprecated aliases warned, unknown rejected).

    Returns a :class:`BatchMatchResult` holding one verified
    :class:`Matching` per input list (in order), the aggregate
    :class:`CostReport`, and :class:`BatchStats`.
    """
    from ..core.maximal_matching import (
        ALGORITHMS,
        maximal_matching,
        normalize_algorithm_kwargs,
    )
    from . import AUTO, get_backend
    from ..planner.policy import resolve_policy
    from ..parallel.executor import run_sharded_batch

    pol = resolve_policy(
        policy, algorithm=algorithm, backend=backend, workers=workers,
        defaults={"algorithm": "match4", "backend": "numpy"},
    )
    algorithm = pol.algorithm
    backend = pol.backend
    workers = pol.workers

    if algorithm not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        )
    if p < 1:
        raise InvalidParameterError(f"p must be >= 1, got {p}")
    lls = [lst if isinstance(lst, LinkedList) else LinkedList(lst)
           for lst in lists]

    extras: dict[str, Any] = {}
    if backend == AUTO:
        from ..planner import decide_for

        decision = decide_for(
            pol, algorithm=algorithm,
            n=int(max((l.n for l in lls), default=1)), p=p,
            profile="batch", num_lists=len(lls),
        )
        extras["planner"] = decision.to_extra()
        backend = decision.backend
        if workers is None:
            workers = decision.workers

    get_backend(backend)  # validate the name even for the loop path
    eff_workers = _resolve_batch_workers(backend, workers)
    kwargs = normalize_algorithm_kwargs(algorithm, kwargs)
    # Inside a worker (and in every serial path) numpy-mp's batch form
    # *is* the numpy arena; the parallelism lives in the sharding.
    serial_backend = "numpy" if backend == "numpy-mp" else backend

    if telemetry_enabled():
        METRICS.histogram("batch.size").observe(len(lls))

    with telemetry_span(
        "batch.maximal_matching", algorithm=algorithm, backend=backend,
        num_lists=len(lls), total_nodes=int(sum(l.n for l in lls)), p=p,
        workers=eff_workers,
    ):
        sharded = None
        if eff_workers > 1 and len(lls) > 1:
            if serial_backend == "numpy":
                # Fail fast (and identically to serial) before forking.
                _require_supported(int(max(l.n for l in lls)))
                if algorithm not in _BATCH_DRIVERS:
                    raise InvalidParameterError(
                        f"batch on the numpy backend implements "
                        f"{sorted(_BATCH_DRIVERS)}, not {algorithm!r}; use "
                        f"backend='reference' for the per-list loop"
                    )
            sharded = run_sharded_batch(
                lls, algorithm=algorithm, p=p, kwargs=kwargs,
                workers=eff_workers, backend=serial_backend,
            )
        if sharded is not None:
            matchings, report = sharded
        elif serial_backend == "numpy":
            driver = _BATCH_DRIVERS.get(algorithm)
            if driver is None:
                raise InvalidParameterError(
                    f"batch on the numpy backend implements "
                    f"{sorted(_BATCH_DRIVERS)}, not {algorithm!r}; use "
                    f"backend='reference' for the per-list loop"
                )
            if not lls:
                matchings = ()
                report = CostModel(p).report()
            else:
                _require_supported(int(max(l.n for l in lls)))
                bp = _BatchPrep(lls)
                matchings, report = driver(lls, bp, p=p, **kwargs)
        else:
            cost = CostModel(p)
            collected = []
            for lst in lls:
                res = maximal_matching(
                    lst, algorithm=algorithm, backend=serial_backend, p=p,
                    **kwargs
                )
                collected.append(res.matching)
                cost.absorb(res.report)
            matchings = tuple(collected)
            report = cost.report()

    stats = BatchStats(
        num_lists=len(lls),
        total_nodes=int(sum(l.n for l in lls)),
        sizes=tuple(l.n for l in lls),
        matched=tuple(m.size for m in matchings),
    )
    return BatchMatchResult(
        matchings=matchings, report=report, stats=stats,
        backend=backend, algorithm=algorithm, extras=extras,
    )
