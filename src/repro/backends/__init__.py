"""Pluggable execution backends for the matching algorithms.

A *backend* is a named family of implementations of the registered
algorithms sharing one execution style:

``"reference"``
    The paper-faithful pure-Python/numpy-scalar implementations in
    :mod:`repro.core` — the oracle.  Supports every registered
    algorithm, every strategy, and unbounded ``n``.
``"numpy"``
    The whole-array engine in :mod:`repro.backends.engine`: each PRAM
    round is one batch of vectorized operations.  Implements ``match1``
    and ``match4`` (plus the building blocks ``f_msb``/``f_lsb``,
    ``iterate_f``, ``cut_and_walk``) for ``n < 2**31``, bit-identical
    to the reference down to the Brent :class:`~repro.pram.cost.CostReport`.

The **cost-accounting contract** every backend must honor: for any
input both backends accept, the returned matching tails, stats, and
``CostReport`` are *equal* — a backend changes how fast the rounds run
on the host, never how many PRAM operations the paper's machine would
charge.  ``tests/backends/`` enforces the contract; see
``docs/backends.md`` for how to add a backend.

Select a backend per call::

    repro.maximal_matching(lst, algorithm="match4", backend="numpy")

or run many independent lists in one engine invocation with
:func:`repro.backends.batch.batch_maximal_matching`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from ..errors import InvalidParameterError
from . import engine
from .engine import ENGINE_LIMIT

__all__ = [
    "Backend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "AUTO",
    "register_backend",
    "get_backend",
    "backend_names",
    "backend_choices",
    "backends_for",
    "engine",
    "ENGINE_LIMIT",
]

#: Backend used when ``backend=`` is not given anywhere in the API.
DEFAULT_BACKEND = "reference"

#: Sentinel backend name: let :mod:`repro.planner` pick the backend
#: from run history.  Accepted wherever ``backend=`` is — it is not a
#: registered :class:`Backend` and always resolves to one before any
#: algorithm runs.
AUTO = "auto"


class _ReferenceAlgorithms(Mapping[str, Callable[..., Any]]):
    """Live view of the algorithm registry's reference implementations.

    Algorithms registered after import (the baselines package, user
    plugins) appear here automatically.
    """

    def _registry(self):
        from ..core.maximal_matching import ALGORITHMS

        return ALGORITHMS

    def __getitem__(self, name: str) -> Callable[..., Any]:
        return self._registry()[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry())

    def __len__(self) -> int:
        return len(self._registry())

    def __contains__(self, name: object) -> bool:
        return name in self._registry()


@dataclass(frozen=True)
class Backend:
    """One execution backend.

    Attributes
    ----------
    name:
        Registry key (``backend=`` value).
    description:
        One-line summary shown by ``repro algorithms --list``.
    algorithms:
        Mapping from algorithm name to its implementation under this
        backend.  Implementations take ``(lst, *, p=1, **kwargs)`` and
        return ``(Matching, CostReport, stats)``.
    canonical_kwargs:
        Whether implementations take the *canonical* kwarg names
        (``iterations=``).  The reference tier predates the rename and
        keeps its paper-era names (``i=``); the dispatcher translates.
    limit:
        Exclusive bound on supported ``n`` (``None`` = unbounded).
    """

    name: str
    description: str
    algorithms: Mapping[str, Callable[..., Any]]
    canonical_kwargs: bool = True
    limit: int | None = None

    def supports(self, algorithm: str) -> bool:
        """Whether ``algorithm`` has an implementation on this backend."""
        return algorithm in self.algorithms


#: Registry of execution backends, keyed by name.
BACKENDS: dict[str, Backend] = {}


def register_backend(backend: Backend) -> None:
    """Register an additional backend.

    Re-registration of an existing name is rejected to keep experiment
    configurations unambiguous (mirrors ``register_algorithm``).
    """
    if backend.name in BACKENDS:
        raise InvalidParameterError(
            f"backend {backend.name!r} already registered"
        )
    BACKENDS[backend.name] = backend


def get_backend(name: str) -> Backend:
    """Look up a backend by name, with the valid names in the error."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None


def backend_names() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(BACKENDS)


def backend_choices() -> list[str]:
    """Valid ``backend=`` values: registered names plus ``"auto"``."""
    return sorted([*BACKENDS, AUTO])


def backends_for(algorithm: str) -> list[str]:
    """Sorted names of the backends implementing ``algorithm``."""
    return sorted(
        name for name, b in BACKENDS.items() if b.supports(algorithm)
    )


register_backend(Backend(
    name="reference",
    description="paper-faithful per-pointer implementations (the oracle)",
    algorithms=_ReferenceAlgorithms(),
    canonical_kwargs=False,
    limit=None,
))

register_backend(Backend(
    name="numpy",
    description=(
        "whole-array engine: one vectorized batch per PRAM round "
        "(bit-identical results, n < 2**31)"
    ),
    algorithms={
        "match1": engine.match1,
        "match4": engine.match4,
    },
    canonical_kwargs=True,
    limit=ENGINE_LIMIT,
))

# Imported after the numpy backend: the multiprocess tier wraps the
# engine (repro.parallel.chunked imports this package mid-init and
# relies on the ``engine`` attribute above being bound already).
from ..parallel import chunked as _chunked  # noqa: E402

register_backend(Backend(
    name="numpy-mp",
    description=(
        "numpy engine with the cut-walk phase distributed across a "
        "process pool (bit-identical results; workers/chunk size from "
        "repro.parallel's default ParallelConfig and REPRO_WORKERS)"
    ),
    algorithms={
        "match1": _chunked.match1,
        "match4": _chunked.match4,
    },
    canonical_kwargs=True,
    limit=ENGINE_LIMIT,
))
