"""Self-stabilizing local repair of a corrupted maximal matching.

Given an *arbitrarily corrupted* tails array — out-of-range entries,
duplicates, tails without pointers, adjacent (conflicting) choices,
holes that break maximality — converge to a verified maximal matching
by purely local rules, without rerunning a matching algorithm.  This is
the sequential-simulation analogue of the self-stabilizing maximal-
matching protocols of Cohen–Lefèvre–Maâmra–Pilard–Sohier (2016) and
Cohen–Manoussakis–Pilard–Sohier (2017): every rule reads only a
node's constant-radius neighborhood, so starting from *any* state the
system reaches a legitimate (maximal-matching) state.

The three rules, each one vectorized round:

1. **Sanitize** — discard entries that are not addresses of real
   pointers (out of range, duplicate, or tail-of-list).
2. **Drop** — a chosen pointer whose *predecessor* pointer is also
   chosen un-chooses itself: ``chosen'[v] = chosen[v] and not
   chosen[pred(v)]``.  One round restores independence: if
   ``chosen'[v]`` and ``chosen'[suc(v)]`` both held, the rule for
   ``suc(v)`` would have seen ``chosen[v] = 1`` and dropped it.
3. **Re-match** — a pointer both of whose endpoints are uncovered is
   *addable*; maximal runs of consecutive addable pointers re-match at
   alternate positions (positions 0, 2, 4, … of the run), which
   restores maximality in one round without creating new conflicts.

The pass finishes by *certifying* the result with
:func:`repro.core.matching.verify_maximal_matching` — repair never
returns an uncertified artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from ..core.matching import verify_maximal_matching
from ..errors import VerificationError
from ..lists.linked_list import NIL, LinkedList

__all__ = ["RepairStats", "repair_matching"]


@dataclass(frozen=True)
class RepairStats:
    """What one repair pass did.

    Attributes
    ----------
    n_input:
        Entries in the corrupted input array.
    n_sanitized:
        Entries discarded by rule 1 (junk addresses).
    n_dropped:
        Conflicting pointers un-chosen by rule 2.
    n_added:
        Pointers re-matched by rule 3.
    rounds:
        Drop/re-match rounds until the certificate held (1 for any
        input, by construction; the loop exists as a safety net).
    """

    n_input: int
    n_sanitized: int
    n_dropped: int
    n_added: int
    rounds: int

    @property
    def changed(self) -> int:
        """Total local corrections applied."""
        return self.n_sanitized + self.n_dropped + self.n_added


def _sanitize(lst: LinkedList, tails: np.ndarray) -> tuple[np.ndarray, int]:
    """Rule 1: keep only unique addresses of real pointers."""
    arr = np.asarray(tails)
    if arr.size == 0:
        arr = arr.astype(np.int64)
    if arr.dtype.kind == "b":
        # A full-length boolean array is unambiguously a chosen *mask*
        # (the dynamic tier's native representation), not addresses.
        require(arr.ndim == 1 and arr.size == lst.n,
                f"boolean tails must be a length-{lst.n} chosen mask, "
                f"got shape {arr.shape}")
        arr = np.flatnonzero(arr)
    require(arr.dtype.kind in "iu",
            f"tails must be integers, got dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False).ravel()
    before = arr.size
    in_range = (arr >= 0) & (arr < lst.n)
    arr = arr[in_range]
    arr = arr[lst.next[arr] != NIL]
    arr = np.unique(arr)
    return arr, before - arr.size


def _drop_conflicts(lst: LinkedList, chosen: np.ndarray) -> int:
    """Rule 2: un-choose any pointer whose predecessor pointer is chosen.

    Mutates ``chosen`` in place; returns how many were dropped.  One
    round suffices: the rule consults only the *pre-round* state, and
    any surviving pair of adjacent chosen pointers would contradict the
    rule applied to the later one.
    """
    pred = lst.pred
    has_pred = pred != NIL
    conflicted = chosen & has_pred
    conflicted[conflicted] = chosen[pred[conflicted]]
    chosen[conflicted] = False
    return int(conflicted.sum())


def _rematch(lst: LinkedList, chosen: np.ndarray) -> int:
    """Rule 3: alternate re-matching of maximal addable runs.

    A node is covered when its own pointer or its predecessor's is
    chosen; a pointer is addable when both endpoints are uncovered.
    Walking the list in visit order, addable pointers form runs of
    consecutive positions; choosing positions 0, 2, 4, … of each run
    covers every node the run touches without touching a covered one.
    Mutates ``chosen``; returns how many pointers were added.
    """
    n = lst.n
    order = lst.order                       # position -> address
    nxt = lst.next
    pred = lst.pred
    covered = chosen.copy()
    has_pred = pred != NIL
    covered[has_pred] |= chosen[pred[has_pred]]
    has_ptr = nxt != NIL
    head_covered = np.zeros(n, dtype=bool)
    head_covered[has_ptr] = covered[nxt[has_ptr]]
    addable = has_ptr & ~covered & ~head_covered
    # Work in list positions so "consecutive" is an index difference.
    pos_addable = addable[order]            # position i: pointer order[i]
    if not pos_addable.any():
        return 0
    run_start = pos_addable.copy()
    run_start[1:] &= ~pos_addable[:-1]
    # Offset of each addable position inside its run, via cumulative
    # counting: positions since the last run start.
    idx = np.arange(n)
    start_idx = np.where(run_start, idx, 0)
    last_start = np.maximum.accumulate(start_idx)
    offset = idx - last_start
    take = pos_addable & (offset % 2 == 0)
    added = order[take]
    chosen[added] = True
    return int(added.size)


def repair_matching(
    lst: LinkedList,
    tails: np.ndarray | list,
    *,
    max_rounds: int = 8,
) -> tuple[np.ndarray, RepairStats]:
    """Repair a corrupted tails array into a verified maximal matching.

    Parameters
    ----------
    lst:
        The (intact) linked list the matching is over.
    tails:
        The corrupted matching — any integer array.
    max_rounds:
        Safety bound on drop/re-match rounds.  One round always
        suffices (see module docs); the loop guards the claim rather
        than trusting it.

    Returns
    -------
    (tails, stats):
        The repaired, **certified** sorted tails array and a
        :class:`RepairStats`.

    Raises
    ------
    VerificationError
        If the certificate still fails after ``max_rounds`` rounds
        (impossible for an intact ``lst``; kept as a hard stop so
        repair can never silently return garbage).
    """
    require(max_rounds >= 1, f"max_rounds must be >= 1, got {max_rounds}")
    clean, n_sanitized = _sanitize(lst, np.asarray(tails))
    chosen = np.zeros(lst.n, dtype=bool)
    chosen[clean] = True
    n_dropped = 0
    n_added = 0
    for rounds in range(1, max_rounds + 1):
        n_dropped += _drop_conflicts(lst, chosen)
        n_added += _rematch(lst, chosen)
        repaired = np.flatnonzero(chosen)
        try:
            verify_maximal_matching(lst, repaired)
        except VerificationError:
            continue
        return repaired, RepairStats(
            n_input=int(np.asarray(tails).size),
            n_sanitized=n_sanitized,
            n_dropped=n_dropped,
            n_added=n_added,
            rounds=rounds,
        )
    raise VerificationError(
        f"repair did not converge within {max_rounds} rounds "
        f"({n_dropped} dropped, {n_added} added)"
    )
