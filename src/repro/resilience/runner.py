"""``resilient_matching()``: run → verify → repair → retry → degrade.

The runner wraps the vectorized matching algorithms in a recovery
loop.  Each *attempt* runs one algorithm and verifies its output with
:func:`repro.core.matching.verify_maximal_matching`.  On a
:class:`~repro.errors.VerificationError` or
:class:`~repro.errors.PRAMError` it first tries the cheap exit — the
self-stabilizing :func:`repro.resilience.repair.repair_matching` pass
on whatever (corrupted) tails the attempt produced — and only if that
also fails does it burn a retry, backing off with bounded exponential
delays, and eventually *degrades* down the ladder

    match4  →  match2  →  match1  →  sequential

trading parallel optimality for simplicity until something verifies.
The sequential greedy baseline is the floor: a single dependent walk
with nothing left to corrupt in scheduling.

Every attempt is recorded in a structured :class:`AttemptLog`, so a
production caller can see exactly which rungs failed, why, how long
the backoff waited, and whether repair (rather than a rerun) saved the
day.  Failures are injected via the ``perturb`` hook (tests, CLI
demos) or arise from real faults when the instruction-level tier runs
under a :class:`repro.pram.faults.FaultPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from ..core.matching import Matching, verify_maximal_matching
from ..core.result import MatchResult
from ..errors import PRAMError, ResilienceExhaustedError, VerificationError
from ..lists.linked_list import LinkedList
from ..telemetry.metrics import METRICS
from ..telemetry.spans import (
    enabled as telemetry_enabled,
    event as telemetry_event,
    span as telemetry_span,
)
from .repair import RepairStats, repair_matching

__all__ = [
    "DEFAULT_LADDER",
    "Attempt",
    "AttemptLog",
    "ResilienceResult",
    "resilient_matching",
]

#: The degradation ladder, fastest/most-fragile first.
DEFAULT_LADDER: tuple[str, ...] = ("match4", "match2", "match1", "sequential")

#: Hook mutating an attempt's raw tails before verification; receives
#: ``(tails, attempt_index)``.  Used to inject corruption in tests and
#: demos.
PerturbHook = Callable[[np.ndarray, int], np.ndarray]


@dataclass(frozen=True)
class Attempt:
    """One run-and-verify attempt in the recovery loop.

    Attributes
    ----------
    index:
        Global attempt counter (0-based).
    rung / algorithm:
        Position in, and name from, the ladder.
    try_index:
        Which retry on this rung (0-based).
    backend:
        Execution backend the attempt ran on.  Only the *first* try of
        a rung uses a non-default requested backend; retries fall back
        to ``"reference"`` so a backend-specific failure cannot pin a
        rung.
    outcome:
        ``"ok"`` (verified first time), ``"repaired"`` (verified after
        the local-repair pass), or ``"failed"``.
    error:
        ``"ExcType: message"`` for failed/repaired attempts.
    backoff:
        Seconds of (simulated or real) backoff charged *after* this
        attempt failed.
    repair:
        Stats of the successful repair pass, when ``outcome ==
        "repaired"``.
    """

    index: int
    rung: int
    algorithm: str
    try_index: int
    outcome: str
    backend: str = "reference"
    error: str = ""
    backoff: float = 0.0
    repair: RepairStats | None = None


@dataclass
class AttemptLog:
    """Structured history of one :func:`resilient_matching` call."""

    attempts: list[Attempt] = field(default_factory=list)
    #: Result of the partition-engine probe fired after the first
    #: failure (``None`` when no attempt ever failed).
    engine_probe: bool | None = None

    @property
    def total(self) -> int:
        return len(self.attempts)

    @property
    def failures(self) -> int:
        return sum(1 for a in self.attempts if a.outcome == "failed")

    @property
    def rungs_visited(self) -> tuple[str, ...]:
        seen: list[str] = []
        for a in self.attempts:
            if a.algorithm not in seen:
                seen.append(a.algorithm)
        return tuple(seen)

    @property
    def total_backoff(self) -> float:
        return sum(a.backoff for a in self.attempts)

    @property
    def summary(self) -> str:
        """One line per attempt plus a verdict — CLI/log friendly."""
        lines = []
        for a in self.attempts:
            tag = f"[{a.backend}]" if a.backend != "reference" else ""
            line = (f"[{a.index}] {a.algorithm}{tag} (rung {a.rung}, "
                    f"try {a.try_index}): {a.outcome}")
            if a.error:
                line += f" — {a.error}"
            if a.backoff:
                line += f" — backed off {a.backoff:.3f}s"
            lines.append(line)
        if self.engine_probe is not None:
            lines.append(
                "partition engine probe: "
                + ("healthy" if self.engine_probe else "BROKEN")
            )
        ok = any(a.outcome in ("ok", "repaired") for a in self.attempts)
        lines.append(
            f"{'recovered' if ok else 'exhausted'} after "
            f"{self.total} attempt(s) across "
            f"{len(self.rungs_visited)} rung(s)"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class ResilienceResult:
    """Verified matching plus the recovery history that produced it."""

    matching: Matching
    log: AttemptLog
    #: Full :class:`MatchResult` of the successful attempt, with
    #: ``extras`` recording ``served_by`` / ``rung`` / ``attempts`` —
    #: so downstream consumers (manifests, the service layer) can say
    #: which ladder rung actually produced the answer.
    result: MatchResult | None = None

    @property
    def tails(self) -> np.ndarray:
        return self.matching.tails

    @property
    def degraded(self) -> bool:
        """True iff the successful rung was not the first one."""
        last = self.log.attempts[-1]
        return last.rung > 0

    @property
    def repaired(self) -> bool:
        return self.log.attempts[-1].outcome == "repaired"

    @property
    def served_by(self) -> str:
        """Which ladder rung produced the answer — the algorithm name,
        with a ``+repair`` suffix when the local-repair pass (not a
        clean run) made it verify."""
        last = self.log.attempts[-1]
        return last.algorithm + ("+repair" if last.outcome == "repaired"
                                 else "")

    @property
    def attempts(self) -> int:
        """Total run-and-verify attempts, successful one included."""
        return self.log.total


def _backoff_delay(failures: int, base: float, cap: float) -> float:
    """Bounded exponential backoff: ``min(base * 2^failures, cap)``."""
    return min(base * (2.0 ** failures), cap)


def _serve(
    res: MatchResult,
    matching: Matching,
    log: AttemptLog,
    *,
    served_by: str,
    rung: int,
    planner: dict[str, Any] | None = None,
) -> ResilienceResult:
    """Stamp the winning attempt's provenance and count the rung."""
    METRICS.counter(f"resilience.served_by.{served_by}").inc()
    extras: dict[str, Any] = {
        **dict(res.extras),
        "served_by": served_by,
        "rung": rung,
        "attempts": log.total,
    }
    if planner is not None:
        extras["planner"] = planner
    final = replace(res, matching=matching, extras=extras)
    return ResilienceResult(matching, log, final)


def _note_attempt(attempt: Attempt) -> None:
    """One telemetry event + counter bump per recovery attempt."""
    if not telemetry_enabled():
        return
    telemetry_event(
        "resilience.attempt", algorithm=attempt.algorithm,
        rung=attempt.rung, try_index=attempt.try_index,
        backend=attempt.backend, outcome=attempt.outcome,
        error=attempt.error,
    )
    METRICS.counter("resilience.attempts").inc()
    if attempt.outcome == "failed":
        METRICS.counter("resilience.failures").inc()
    elif attempt.outcome == "repaired":
        METRICS.counter("resilience.repairs").inc()


def partition_engine_healthy(lst: LinkedList) -> bool:
    """Probe the matching-partition engine underneath every rung.

    Runs one round of the partition function and checks the result
    with :func:`repro.core.partition.verify_matching_partition`
    (Lemma 1: one application of ``f`` is a matching partition).  The
    runner fires this after a first failure to tell "one algorithm
    produced a bad artifact" apart from "the shared engine is broken"
    — in the latter case degrading the ladder cannot help and the log
    says so.
    """
    from ..core.functions import iterate_f
    from ..core.partition import NO_POINTER, verify_matching_partition

    try:
        labels = iterate_f(lst, 1).copy()
        labels[lst.tail] = NO_POINTER
        verify_matching_partition(lst, labels)
    except Exception:  # noqa: BLE001 - any failure means "unhealthy"
        return False
    return True


def resilient_matching(
    lst: LinkedList,
    *,
    ladder: Sequence[str] = DEFAULT_LADDER,
    tries_per_rung: int = 2,
    repair: bool = True,
    base_backoff: float = 0.01,
    max_backoff: float = 1.0,
    sleep: Callable[[float], None] | None = None,
    perturb: PerturbHook | None = None,
    p: int = 1,
    backend: str | None = None,
    algorithm_kwargs: dict[str, dict[str, Any]] | None = None,
    policy: Any = None,
) -> ResilienceResult:
    """Compute a verified maximal matching, surviving faulty attempts.

    Parameters
    ----------
    lst:
        The list to match.
    ladder:
        Algorithm names (from
        :data:`repro.core.maximal_matching.ALGORITHMS`) to degrade
        through, most capable first.
    tries_per_rung:
        Retries before stepping down a rung.
    repair:
        Try the self-stabilizing local-repair pass on a failed
        attempt's tails before burning a retry.
    base_backoff / max_backoff:
        Bounded exponential backoff parameters (seconds).  Delays are
        always *recorded* in the log; they are only *slept* when a
        ``sleep`` callable is supplied, so tests and simulations stay
        instant while production callers pass ``time.sleep``.
    sleep:
        Optional ``sleep(seconds)`` to actually wait out backoffs.
    perturb:
        Test/demo hook corrupting an attempt's tails before
        verification (see :data:`PerturbHook`).
    p:
        Processor count forwarded to the algorithms' cost accounting.
    backend:
        Execution backend (see :mod:`repro.backends`) for the *first*
        try of each rung.  Retries, and rungs whose algorithm the
        backend does not implement, fall back to ``"reference"``, so a
        backend-specific fault cannot exhaust a rung's retry budget.
        ``"auto"`` resolves through :mod:`repro.planner` once, up
        front, for the ladder's top rung — the recovery loop then runs
        on the concrete backend the planner chose (recorded in the
        result's ``extras["planner"]``); the fallback semantics above
        are unchanged.  Default ``"reference"``.
    algorithm_kwargs:
        Optional per-algorithm keyword overrides, e.g.
        ``{"match4": {"iterations": 3}}``.
    policy:
        An :class:`~repro.planner.ExecutionPolicy` (or mapping), merged
        with ``backend=`` via
        :func:`~repro.planner.policy.resolve_policy` — the same unified
        policy the other entry points take.

    Returns
    -------
    ResilienceResult
        The verified matching and the full :class:`AttemptLog`.

    Raises
    ------
    ResilienceExhaustedError
        If every try of every rung failed (only possible when the
        fault process — ``perturb`` — outlasts
        ``len(ladder) * tries_per_rung`` attempts *and* defeats
        repair each time).
    """
    from ..backends import AUTO, get_backend
    from ..core.maximal_matching import maximal_matching
    from ..planner.policy import resolve_policy
    import repro.baselines  # noqa: F401  (registers "sequential" et al.)

    if not ladder:
        raise ResilienceExhaustedError("empty degradation ladder")
    pol = resolve_policy(policy, backend=backend,
                         defaults={"backend": "reference"})
    backend = pol.backend
    planner_extra: dict[str, Any] | None = None
    if backend == AUTO:
        from ..planner import decide_for

        decision = decide_for(pol, algorithm=ladder[0], n=lst.n, p=p)
        planner_extra = decision.to_extra()
        backend = decision.backend
    requested = get_backend(backend)  # validate the name up front
    kwargs = algorithm_kwargs or {}
    log = AttemptLog()
    index = 0
    failures = 0
    with telemetry_span(
        "resilience.run", n=lst.n, backend=backend,
        ladder=",".join(ladder),
    ) as sp:
        for rung, algorithm in enumerate(ladder):
            for try_index in range(tries_per_rung):
                use_backend = backend
                if try_index > 0 or not requested.supports(algorithm):
                    use_backend = "reference"
                tails: np.ndarray | None = None
                try:
                    res = maximal_matching(
                        lst, algorithm=algorithm, backend=use_backend, p=p,
                        **kwargs.get(algorithm, {}),
                    )
                    tails = np.asarray(res.matching.tails)
                    if perturb is not None:
                        tails = np.asarray(perturb(tails.copy(), index))
                    verify_maximal_matching(lst, tails)
                    log.attempts.append(Attempt(
                        index=index, rung=rung, algorithm=algorithm,
                        try_index=try_index, outcome="ok",
                        backend=use_backend,
                    ))
                    _note_attempt(log.attempts[-1])
                    sp.set(outcome="ok", attempts=log.total, rung=rung,
                           served_by=algorithm)
                    return _serve(res, Matching(lst, tails), log,
                                  served_by=algorithm, rung=rung,
                                  planner=planner_extra)
                except (VerificationError, PRAMError) as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    if repair and tails is not None:
                        try:
                            fixed, stats = repair_matching(lst, tails)
                            log.attempts.append(Attempt(
                                index=index, rung=rung, algorithm=algorithm,
                                try_index=try_index, outcome="repaired",
                                error=error, repair=stats,
                                backend=use_backend,
                            ))
                            _note_attempt(log.attempts[-1])
                            served = f"{algorithm}+repair"
                            sp.set(outcome="repaired", attempts=log.total,
                                   rung=rung, served_by=served)
                            return _serve(res, Matching(lst, fixed), log,
                                          served_by=served, rung=rung,
                                          planner=planner_extra)
                        except VerificationError:
                            pass
                    delay = _backoff_delay(failures, base_backoff, max_backoff)
                    log.attempts.append(Attempt(
                        index=index, rung=rung, algorithm=algorithm,
                        try_index=try_index, outcome="failed",
                        error=error, backoff=delay, backend=use_backend,
                    ))
                    _note_attempt(log.attempts[-1])
                    if failures == 0:
                        log.engine_probe = partition_engine_healthy(lst)
                    failures += 1
                    if sleep is not None:
                        sleep(delay)
                index += 1
        sp.set(outcome="exhausted", attempts=log.total)
        raise ResilienceExhaustedError(
            "all rungs of the degradation ladder failed:\n" + log.summary
        )
