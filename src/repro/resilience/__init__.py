"""Fault tolerance for the matching pipelines.

The rest of the library *detects* broken outputs (the
:class:`repro.errors.VerificationError` hierarchy); this package
*survives* them.  Three layers, composable:

- :mod:`repro.pram.faults` / :mod:`repro.pram.checkpoint` (in the PRAM
  package): deterministic fault injection into instruction-level runs,
  and checkpoint-restart that resumes a crashed run bit-identically.
- :mod:`repro.resilience.repair`: a self-stabilizing local-repair pass
  in the spirit of the self-stabilizing maximal-matching literature
  (Cohen et al. 2016/2017) — takes an *arbitrarily corrupted* tails
  array, drops conflicting pointers by a local rule, greedily
  re-matches the freed runs, and certifies maximality, all without
  rerunning the matching algorithm.
- :mod:`repro.resilience.runner`: ``resilient_matching()``, the
  run → verify → repair → retry → degrade loop that walks the ladder
  match4 → match2 → match1 → sequential with bounded backoff and emits
  a structured :class:`~repro.resilience.runner.AttemptLog`.

CLI face: ``python -m repro resilience --crash-at ... --flip ...``.
"""

from .repair import RepairStats, repair_matching
from .runner import (
    Attempt,
    AttemptLog,
    DEFAULT_LADDER,
    ResilienceResult,
    resilient_matching,
)

__all__ = [
    "repair_matching",
    "RepairStats",
    "resilient_matching",
    "ResilienceResult",
    "Attempt",
    "AttemptLog",
    "DEFAULT_LADDER",
]
