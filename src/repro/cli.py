"""Command-line interface: ``python -m repro <command> ...``.

Gives the library a shell-usable face:

- ``match``  — run one maximal-matching algorithm, print the summary
  and phase breakdown (``--backend numpy`` for the vectorized engine).
- ``algorithms`` — list the registered algorithms with their backends,
  paper sections, and keyword parameters.
- ``rank``   — list ranking by contraction / Wyllie / sequential.
- ``color``  — 3-coloring summary.
- ``curve``  — sweep the processor axis for one algorithm and print
  the time/efficiency table (the E6-style view).
- ``info``   — the support functions for an ``n``: ``log^(i) n``,
  ``G(n)``, ``log G(n)``, Match4 row counts.
- ``fold``   — data-dependent prefix/suffix folds (sum/max/min).
- ``trace``  — space-time diagram of the instruction-level Match4.
- ``selfcheck`` — the installation check battery.
- ``dynamic`` — churn a live list through a seeded edit stream while
  the matching is repaired locally (or recomputed per batch; ``auto``
  asks the planner), with optional fault injection and a final
  uniform-contraction pass (see ``docs/dynamic.md``).
- ``profile`` — one-shot profiler: run an algorithm under telemetry
  capture (plus an instruction-level machine twin), write a Perfetto
  trace, a ProfileReport JSON, a Prometheus exposition, and a
  RunRecord manifest.
- ``report`` — render RunRecord JSONL manifests into a self-contained
  static HTML dashboard (no external resources).
- ``fig1``   — render the paper's Fig. 1 (or any small list) as an
  ASCII arc diagram, optionally with Fig. 2's bisector.
- ``resilience`` — inject processor crashes / memory bit-flips /
  dropped writes into an instruction-level run and recover via
  checkpoint-restart, the self-stabilizing repair pass, or the
  degradation ladder (see ``docs/resilience.md``).
- ``serve`` — the matching-as-a-service HTTP server: bounded
  admission, micro-batching, deadlines, response cache, graceful
  drain (see ``docs/service.md``).
- ``top``    — live terminal dashboard for a running server (polls
  ``/debug/vars``) or an offline replay of a span JSONL
  (``--replay``): rolling latency quantiles, shed/error rates, SLO
  error-budget burn.

Everything prints deterministic output for a fixed ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


LAYOUT_CHOICES = ["random", "sequential", "reversed", "sawtooth",
                  "blocked", "gray", "bitrev", "interleaved"]


def _make_list(n: int, layout: str, seed: int):
    from .lists import (
        bit_reversal_list,
        blocked_list,
        gray_code_list,
        interleaved_list,
        random_list,
        reversed_list,
        sawtooth_list,
        sequential_list,
    )

    makers: dict[str, Callable] = {
        "random": lambda: random_list(n, rng=seed),
        "sequential": lambda: sequential_list(n),
        "reversed": lambda: reversed_list(n),
        "sawtooth": lambda: sawtooth_list(n),
        "blocked": lambda: blocked_list(n, block=max(1, n // 8), rng=seed),
        "gray": lambda: gray_code_list(n),
        "bitrev": lambda: bit_reversal_list(n),
        "interleaved": lambda: interleaved_list(n, ways=max(1, n // 16)),
    }
    return makers[layout]()


def _cmd_match(args: argparse.Namespace) -> int:
    import time

    from .core.maximal_matching import maximal_matching
    import repro.baselines  # noqa: F401  (registers baselines)

    from .planner import ExecutionPolicy

    lst = _make_list(args.n, args.layout, args.seed)
    kwargs = {}
    if args.algorithm == "match4":
        kwargs["iterations"] = args.i
    workers = args.workers
    if workers is not None:
        from .parallel import config_with_workers, set_default_config

        # Validated at config time (workers < 1 raises a ValueError
        # before any pool exists); the numpy-mp backend reads this.
        set_default_config(config_with_workers(workers))
    policy = ExecutionPolicy(
        history=args.history or None,
        layout=args.layout,
        mode="race" if args.race else "rules",
    )
    t0 = time.perf_counter()
    result = maximal_matching(
        lst, algorithm=args.algorithm, backend=args.backend,
        p=args.p, policy=policy, **kwargs
    )
    wall_s = time.perf_counter() - t0
    matching, report = result.matching, result.report
    planner_extra = result.extras.get("planner")
    print(f"algorithm : {args.algorithm}")
    print(f"backend   : {result.backend}")
    if planner_extra is not None:
        line = (f"planned   : {planner_extra['backend']} "
                f"(rule={planner_extra['rule']}, "
                f"source={planner_extra['source']}")
        if planner_extra.get("raced"):
            line += ", raced"
        print(line + ")")
    if workers is not None:
        print(f"workers   : {workers}")
    print(f"n, p      : {args.n}, {args.p}")
    print(f"matched   : {matching.size} of {args.n - 1} pointers")
    print(f"maximal   : {matching.is_maximal}")
    print(f"PRAM time : {report.time} steps")
    print(f"work      : {report.work} ({report.work / args.n:.2f} per node)")
    if report.phases:
        print("phases    :")
        for ph in report.phases:
            print(f"  {ph.name:<12} {ph.time:>8}")
    if args.record:
        from .telemetry.runrecord import RunRecord, append_record
        from .telemetry import resources as _resources

        extra = {"workers": workers} if workers is not None else {}
        if planner_extra is not None:
            extra["planner"] = planner_extra
        if _resources.enabled():
            extra["resources"] = _resources.build_report(
                backend=result.backend).to_dict()
        record = RunRecord.from_result(
            result, seed=args.seed, wall_s=wall_s, layout=args.layout,
            **extra,
        )
        path = append_record(args.record, record)
        print(f"recorded  : {path}")
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    from .core.maximal_matching import ALGORITHMS
    import repro.baselines  # noqa: F401  (registers baselines)

    plan_for = None
    if args.plan:
        plan_for = {"n": args.n, "layout": args.layout, "p": args.p}
        if args.history:
            plan_for["history"] = args.history
    records = ALGORITHMS.describe(plan_for=plan_for)
    if args.list:
        for rec in records:
            print(rec["name"])
        return 0
    if plan_for is not None:
        print(f"plan view : backend=\"auto\" at n={args.n}, "
              f"layout={args.layout}"
              + (f", history={args.history}" if args.history else ""))
    for rec in records:
        print(rec["name"] + (" (optimal)" if rec["optimal"] else ""))
        print(f"  backends : {', '.join(rec['backends'])}")
        if rec["paper_section"]:
            print(f"  paper    : {rec['paper_section']}")
        if rec["params"]:
            print(f"  kwargs   : {', '.join(rec['params'])}")
        plan = rec.get("plan")
        if plan is not None:
            workers = (f", workers={plan['workers']}"
                       if plan.get("workers") else "")
            print(f"  plan     : {plan['backend']}{workers} "
                  f"(rule={plan['rule']}, source={plan['source']})")
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    from .apps.ranking import list_ranks, sequential_ranks

    lst = _make_list(args.n, args.layout, args.seed)
    ranks, report = list_ranks(lst, p=args.p, algorithm=args.algorithm)
    ok = np.array_equal(ranks, sequential_ranks(lst))
    print(f"algorithm : {args.algorithm}")
    print(f"n, p      : {args.n}, {args.p}")
    print(f"PRAM time : {report.time} steps")
    print(f"work      : {report.work} ({report.work / args.n:.2f} per node)")
    print(f"verified  : {ok}")
    return 0 if ok else 1


def _cmd_color(args: argparse.Namespace) -> int:
    from .apps.coloring import three_coloring

    lst = _make_list(args.n, args.layout, args.seed)
    colors, report = three_coloring(lst, p=args.p)
    hist = np.bincount(colors, minlength=3)
    print(f"n, p      : {args.n}, {args.p}")
    print(f"PRAM time : {report.time} steps")
    print(f"classes   : {hist.tolist()}")
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    from .analysis.experiments import powers_up_to
    from .analysis.report import format_table
    from .core.maximal_matching import maximal_matching
    import repro.baselines  # noqa: F401

    lst = _make_list(args.n, args.layout, args.seed)
    rows = []
    kwargs = {"iterations": args.i} if args.algorithm == "match4" else {}
    for p in powers_up_to(args.n, base=args.base):
        _, report, _ = maximal_matching(
            lst, algorithm=args.algorithm, backend=args.backend,
            p=p, **kwargs
        )
        rows.append({
            "p": p,
            "time": report.time,
            "cost": report.cost,
            "eff": args.n / report.cost,
        })
    print(format_table(
        rows,
        ["p", "time", ("cost", "time*p"), ("eff", "n/(time*p)")],
        title=f"{args.algorithm} on n={args.n} ({args.layout})",
    ))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .bits.iterated_log import G, ilog2, log_G
    from .core.match4 import plan_rows

    n = args.n
    print(f"n          : {n}")
    print(f"G(n)       : {G(n)}")
    print(f"log G(n)   : {log_G(n)}")
    for i in range(1, G(n)):
        try:
            val = ilog2(n, i)
        except Exception:
            break
        print(f"log^({i}) n  : {val:.4f}   (Match4 rows x = {plan_rows(n, i)})")
    return 0


def _cmd_fold(args: argparse.Namespace) -> int:
    from .apps.fold import list_prefix_fold, list_suffix_fold

    lst = _make_list(args.n, args.layout, args.seed)
    values = np.arange(args.n, dtype=np.int64)
    fn = list_prefix_fold if args.direction == "prefix" else list_suffix_fold
    out, report, stats = fn(lst, values, op=args.op, p=args.p)
    print(f"{args.direction} {args.op} over {args.n} nodes "
          f"({stats.levels} contraction levels)")
    print(f"PRAM time : {report.time} steps")
    print(f"work      : {report.work} ({report.work / args.n:.2f} per node)")
    anchor = lst.tail if args.direction == "prefix" else lst.head
    print(f"full fold : {int(out[anchor])}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .lists import random_list
    from .pram.algorithms import run_match4
    from .pram.trace import processor_activity, utilization

    lst = random_list(args.n, rng=args.seed)
    tails, report = run_match4(lst, i=args.i, trace=True)
    print(f"instruction-level Match4: n={args.n}, "
          f"{report.nprocs} column processors, {report.steps} EREW steps, "
          f"utilization {utilization(report):.3f}")
    print(processor_activity(report, max_procs=args.rows,
                             step_range=(args.start, args.start + args.span)))
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from ._buildinfo import version_string
    from .selfcheck import run_selfcheck

    print(version_string())
    report = run_selfcheck(n=args.n, seed=args.seed)
    print(report.summary)
    return 0 if report.passed else 1


def _cmd_dynamic(args: argparse.Namespace) -> int:
    import json

    from .core.matching import verify_maximal_matching
    from .dynamic import ChurnConfig, ChurnSession, decide_maintenance
    from .pram.faults import FaultPlan

    cfg = ChurnConfig(
        steps=args.steps, seed=args.seed, n_initial=args.n,
        layout=args.layout, burstiness=args.burstiness,
        burst_len=args.burst_len, hotspot=args.hotspot)

    strategy = args.maintain
    decision = None
    if strategy == "auto":
        decision = decide_maintenance(
            n=max(args.n, 1), batch_size=max(args.batch, 1))
        strategy = decision.strategy
        print(f"planner: {decision.strategy} "
              f"(batch={args.batch}, rule={decision.decision.rule}, "
              f"candidates={len(decision.decision.candidates)})")

    plan = None
    if args.flips or args.drops:
        plan = FaultPlan.random(
            seed=args.seed, nprocs=1, memory_size=max(args.n * 2, 8),
            max_step=max(args.steps, 1), crashes=0,
            flips=args.flips, drops=args.drops)

    sess = ChurnSession(cfg, fault_plan=plan,
                        maintain=(strategy == "repair"))
    if strategy == "recompute":
        batch = max(args.batch, 1)

        def on_edit(s: ChurnSession, k: int, op: str) -> None:
            if k % batch == 0:
                s.dyn.recompute(backend=args.backend)

        result = sess.run(on_edit=on_edit)
        if sess.dyn.ledger.edits % batch:
            sess.dyn.recompute(backend=args.backend)
    else:
        result = sess.run()

    if plan is not None:
        rep = sess.dyn.stabilize()
        print(f"faults: {result.faults_injected} injected "
              f"({result.writes_suppressed} writes dropped), "
              f"stabilize: {rep.moves} moves over {rep.components} "
              f"components, {rep.dead_bits_cleared} dead bits cleared")

    sess.dyn.verify()
    for snap in sess.dyn.components():
        verify_maximal_matching(snap.lst, snap.tails)
    led = sess.dyn.ledger
    print(f"churn: {result.steps_run} edits on layout={cfg.layout} "
          f"(seed={cfg.seed}, burstiness={cfg.burstiness}, "
          f"hotspot={cfg.hotspot})")
    ops = ", ".join(f"{k}={v}" for k, v in sorted(result.applied.items()))
    print(f"ops: {ops}")
    print(f"repair: {led.moves} moves / {led.edits} edits "
          f"(amortized {led.amortized_moves():.2f}, "
          f"max {led.max_moves_per_edit}/edit, "
          f"touched max {led.max_touched_per_edit}), "
          f"recomputes={led.recomputes}")
    print(f"arena: {sess.dyn.n_live} live nodes, "
          f"{sess.dyn.heads().size} components, "
          f"{sess.dyn.tails().size} matched pointers — "
          f"all components verified maximal")

    if args.contract:
        from .apps import contract_dynamic
        rounds = [stats.rounds
                  for _, _, _, stats in contract_dynamic(sess.dyn)]
        print(f"contraction: {len(rounds)} components contracted to "
              f"one node in {max(rounds) if rounds else 0} rounds "
              f"(max), round 0 seeded by the maintained matching")

    if args.json:
        out = result.to_dict()
        if decision is not None:
            out["planner"] = decision.to_dict()
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(out, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .telemetry import (
        RunRecord,
        append_record,
        chrome_trace_events,
        machine_trace_events,
        profile_matching,
        resource_counter_events,
        write_chrome_trace,
        write_prometheus,
    )
    from .telemetry.sinks import json_default
    import repro.baselines  # noqa: F401  (registers baselines)
    import json

    lst = _make_list(args.n, args.layout, args.seed)
    kwargs = {}
    if args.algorithm == "match4":
        kwargs["iterations"] = args.i
    machine_trace = (args.machine_n > 0
                     and args.algorithm in ("match1", "match4"))
    machine_list = None
    if machine_trace and args.machine_n < args.n:
        machine_list = _make_list(args.machine_n, args.layout, args.seed)

    run = profile_matching(
        lst, algorithm=args.algorithm, backend=args.backend, p=args.p,
        machine_trace=machine_trace, machine_list=machine_list,
        resources=args.memory, **kwargs,
    )
    profile = run.profile.validate()
    print(profile.summary())
    if run.resources is not None:
        print(run.resources.summary())

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    events = chrome_trace_events(run.spans)
    if run.resources is not None:
        events += resource_counter_events(run.spans)
    if run.machine_report is not None:
        events += machine_trace_events(run.machine_report)
    trace_path = write_chrome_trace(
        out / "trace.json", events,
        metadata={"algorithm": args.algorithm, "backend": args.backend,
                  "n": args.n, "p": args.p, "seed": args.seed},
    )
    profile_path = out / "profile.json"
    profile_path.write_text(
        json.dumps(profile.to_dict(), indent=2, default=json_default) + "\n",
        encoding="utf-8")
    prom_path = write_prometheus(out / "metrics.prom")
    extra = {}
    if run.resources is not None:
        extra["resources"] = run.resources.to_dict()
        memory_path = out / "memory-profile.json"
        memory_path.write_text(
            json.dumps(extra["resources"], indent=2,
                       default=json_default) + "\n",
            encoding="utf-8")
    record = RunRecord.from_result(
        run.result, seed=args.seed, wall_s=profile.wall_s,
        layout=args.layout,
        utilization=profile.utilization,
        occupancy=[list(row) for row in profile.occupancy]
        if profile.occupancy is not None else None,
        **extra,
    )
    manifest_path = append_record(out / "runs.jsonl", record)
    print("written   :")
    written = [trace_path, profile_path, prom_path, manifest_path]
    if run.resources is not None:
        written.insert(3, memory_path)
    for p in written:
        print(f"  {p}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .telemetry import read_records, write_report

    records = read_records(args.manifests[-1])
    baseline = None
    if len(args.manifests) > 1:
        baseline = []
        for path in args.manifests[:-1]:
            baseline.extend(read_records(path))
    path = write_report(args.out, records, baseline=baseline,
                        title=args.title)
    print(f"report    : {path} ({len(records)} record(s))")
    return 0


def _parse_fault_specs(args: argparse.Namespace):
    """Build a FaultPlan from --crash-at / --flip / --drop-write specs."""
    from .pram.faults import BitFlip, DroppedWrite, FaultPlan, ProcessorCrash

    def ints(spec: str, parts: int, flag: str) -> list[int]:
        toks = spec.split(":")
        if len(toks) != parts:
            raise SystemExit(
                f"{flag} wants {parts} colon-separated integers, "
                f"got {spec!r}"
            )
        return [int(t) for t in toks]

    faults = []
    for spec in args.crash_at:
        step, pid = ints(spec, 2, "--crash-at STEP:PID")
        faults.append(ProcessorCrash(step=step, pid=pid))
    for spec in args.flip:
        step, addr, bit = ints(spec, 3, "--flip STEP:ADDR:BIT")
        faults.append(BitFlip(step=step, addr=addr, bit=bit))
    for spec in args.drop_write:
        step, pid = ints(spec, 2, "--drop-write STEP:PID")
        faults.append(DroppedWrite(step=step, pid=pid))
    return FaultPlan(faults)


def _cmd_resilience(args: argparse.Namespace) -> int:
    from .core.matching import verify_maximal_matching
    from .errors import VerificationError
    from .pram.algorithms import run_match1, run_match4
    from .resilience import repair_matching, resilient_matching

    lst = _make_list(args.n, args.layout, args.seed)
    plan = _parse_fault_specs(args)
    runner = run_match4 if args.algorithm == "match4" else run_match1
    kwargs = {"i": args.i} if args.algorithm == "match4" else {}

    if args.strategy == "ladder":
        # Degradation-ladder demo: the first --fail-first attempts are
        # sabotaged (one matched pointer deleted), the ladder recovers.
        fail_first = args.fail_first
        result = resilient_matching(
            lst,
            backend=args.backend,
            perturb=lambda tails, i: tails[1:] if i < fail_first else tails,
            repair=args.repair,
            tries_per_rung=args.tries_per_rung,
        )
        print(result.log.summary)
        print(f"matched   : {result.matching.size} of {args.n - 1} pointers")
        print(f"degraded  : {result.degraded}")
        print("verified  : True")
        return 0

    clean, _ = runner(lst, **kwargs)
    if args.strategy == "restart":
        tails, report = runner(
            lst, fault_plan=plan, recover=True,
            checkpoint_interval=args.checkpoint_interval, **kwargs,
        )
        print(f"algorithm : instruction-level {args.algorithm}")
        print(f"faults    : {len(report.faults)} injected")
        for e in report.faults:
            print(f"  step {e.step:>5}  {e.kind:<13} "
                  f"{'effective' if e.effective else 'no-op':<9}  {e.detail}")
    else:  # repair
        tails, report = runner(lst, fault_plan=plan, **kwargs)
        print(f"algorithm : instruction-level {args.algorithm}")
        print(f"faults    : {len(report.faults)} injected (no restart)")
        try:
            verify_maximal_matching(lst, tails)
            print("corrupted : no (faults did not damage the matching)")
        except VerificationError as exc:
            print(f"corrupted : yes — {exc}")
        tails, stats = repair_matching(lst, tails)
        print(f"repair    : {stats.n_sanitized} sanitized, "
              f"{stats.n_dropped} dropped, {stats.n_added} re-matched "
              f"in {stats.rounds} round(s)")
    try:
        verify_maximal_matching(lst, tails)
        verified = True
    except VerificationError as exc:
        verified = False
        print(f"FAILED    : {exc}")
    print(f"matched   : {tails.size} of {args.n - 1} pointers")
    print(f"identical : {np.array_equal(tails, clean)} (vs fault-free run)")
    print(f"verified  : {verified}")
    return 0 if verified else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import MatchingService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        algorithm=args.algorithm,
        backend=args.backend,
        workers=args.workers,
        max_queue_depth=args.max_queue,
        max_inflight_bytes=int(args.max_inflight_mb * (1 << 20)),
        max_batch_items=args.max_batch_items,
        max_batch_delay_ms=args.max_batch_delay_ms,
        default_deadline_ms=args.deadline_ms,
        cache_size=args.cache_size,
        drain_deadline_s=args.drain_deadline_s,
        retry_after_s=args.retry_after_s,
        manifest_path=args.record,
        seed=args.seed,
        planner_history=args.planner_history,
        feedback=args.feedback,
        feedback_sample=args.feedback_sample,
        feedback_path=args.feedback_path,
        slo_p95_ms=args.slo_p95_ms,
        slo_availability=args.slo_availability,
        live_window_s=args.live_window_s,
    )
    return MatchingService(config).run()


def _cmd_top(args: argparse.Namespace) -> int:
    """Terminal dashboard over a live server or a recorded JSONL file."""
    import json as _json
    import time as _time

    from .telemetry.live import render_dashboard, replay_jsonl

    if args.replay:
        live = replay_jsonl(args.replay)
        print(render_dashboard({"live": live},
                               title=f"repro top — replay {args.replay}"),
              end="")
        return 0

    from .service.client import fetch_json

    def fetch() -> dict:
        status, doc = fetch_json(args.url.rstrip("/") + "/debug/vars")
        if status != 200 or not isinstance(doc, dict):
            raise ConnectionError(f"/debug/vars answered {status}")
        return doc

    if args.once:
        print(render_dashboard(fetch(), title=f"repro top — {args.url}"),
              end="")
        return 0
    try:
        while True:
            try:
                doc = fetch()
            except (ConnectionError, OSError, ValueError,
                    _json.JSONDecodeError) as exc:
                print(f"repro top: {exc}", file=sys.stderr)
                return 1
            # ANSI clear-screen + home: a stdlib-only poll loop.
            print("\x1b[2J\x1b[H"
                  + render_dashboard(doc, title=f"repro top — {args.url}"),
                  end="", flush=True)
            if doc.get("service", {}).get("draining"):
                print("server draining; exiting")
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from .lists import LinkedList
    from .lists.diagram import arc_diagram

    if args.order:
        order = [int(tok) for tok in args.order.split(",")]
        lst = LinkedList.from_order(order)
    else:
        # the paper's Fig. 1: x0..x6 at addresses 0,2,4,1,5,3,6... the
        # figure shows order 0 -> 2 -> 4 -> 1 -> 5 -> 3 -> 6.
        lst = LinkedList.from_order([0, 2, 4, 1, 5, 3, 6])
    print(arc_diagram(lst, bisector=args.bisector))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for tests and docs)."""
    from ._buildinfo import version_string

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Maximal matching of linked lists on a simulated PRAM "
            "(Han, SPAA 1989)."
        ),
    )
    parser.add_argument("--version", action="version",
                        version=version_string())
    parser.add_argument(
        "--telemetry", default=None, metavar="MODE",
        help="telemetry sink: off, log/stderr, or jsonl:PATH "
             "(default: the REPRO_TELEMETRY environment variable)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=1 << 14,
                       help="list size (default 16384)")
        p.add_argument("--p", type=int, default=256,
                       help="processor count (default 256)")
        p.add_argument("--layout", default="random",
                       choices=LAYOUT_CHOICES)
        p.add_argument("--seed", type=int, default=0)

    from .backends import backend_choices, backend_names

    m = sub.add_parser("match", help="run one matching algorithm")
    common(m)
    m.add_argument("--algorithm", default="match4",
                   choices=["match1", "match2", "match3", "match4",
                            "sequential", "random_mate"])
    m.add_argument("--backend", default="reference",
                   choices=backend_choices(),
                   help="execution backend (default reference; 'auto' "
                        "lets the planner pick from run history)")
    m.add_argument("--i", type=int, default=2,
                   help="Match4's iterations parameter")
    m.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker processes for the multiprocess tier "
                        "(sets repro.parallel's default config; pair "
                        "with --backend numpy-mp)")
    m.add_argument("--history", default="", metavar="PATH",
                   help="runs.jsonl manifest feeding the planner's "
                        "performance model (pair with --backend auto)")
    m.add_argument("--race", action="store_true",
                   help="with --backend auto: race reference vs numpy "
                        "on unknown regimes, keep the winner")
    m.add_argument("--record", default="", metavar="PATH",
                   help="append a RunRecord JSON line to PATH")
    m.set_defaults(fn=_cmd_match)

    al = sub.add_parser("algorithms",
                        help="list registered algorithms + metadata")
    al.add_argument("--list", action="store_true",
                    help="names only, one per line")
    al.add_argument("--plan", action="store_true",
                    help="show what backend=\"auto\" would pick per "
                         "algorithm (and which rule fired)")
    al.add_argument("--n", type=int, default=1 << 14,
                    help="plan view: workload size (default 16384)")
    al.add_argument("--p", type=int, default=1,
                    help="plan view: processor count")
    al.add_argument("--layout", default="random", choices=LAYOUT_CHOICES,
                    help="plan view: workload layout hint")
    al.add_argument("--history", default="", metavar="PATH",
                    help="plan view: runs.jsonl manifest to plan from")
    al.set_defaults(fn=_cmd_algorithms)

    r = sub.add_parser("rank", help="list ranking")
    common(r)
    r.add_argument("--algorithm", default="contraction",
                   choices=["contraction", "wyllie", "sequential"])
    r.set_defaults(fn=_cmd_rank)

    c = sub.add_parser("color", help="3-coloring")
    common(c)
    c.set_defaults(fn=_cmd_color)

    cv = sub.add_parser("curve", help="sweep the processor axis")
    common(cv)
    cv.add_argument("--algorithm", default="match4",
                    choices=["match1", "match2", "match3", "match4"])
    cv.add_argument("--backend", default="reference",
                    choices=backend_names(),
                    help="execution backend (default reference)")
    cv.add_argument("--i", type=int, default=2)
    cv.add_argument("--base", type=int, default=4,
                    help="geometric step of the p sweep")
    cv.set_defaults(fn=_cmd_curve)

    info = sub.add_parser("info", help="support functions for an n")
    info.add_argument("--n", type=int, default=1 << 20)
    info.set_defaults(fn=_cmd_info)

    fo = sub.add_parser("fold", help="data-dependent prefix/suffix fold")
    common(fo)
    fo.add_argument("--op", default="sum", choices=["sum", "max", "min"])
    fo.add_argument("--direction", default="suffix",
                    choices=["suffix", "prefix"])
    fo.set_defaults(fn=_cmd_fold)

    tr = sub.add_parser("trace", help="space-time trace of Match4")
    tr.add_argument("--n", type=int, default=96)
    tr.add_argument("--i", type=int, default=1)
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--layout", default="random")
    tr.add_argument("--rows", type=int, default=10)
    tr.add_argument("--start", type=int, default=1)
    tr.add_argument("--span", type=int, default=70)
    tr.set_defaults(fn=_cmd_trace)

    sc = sub.add_parser("selfcheck", help="verify the installation")
    sc.add_argument("--n", type=int, default=2048)
    sc.add_argument("--seed", type=int, default=0)
    sc.set_defaults(fn=_cmd_selfcheck)

    dy = sub.add_parser(
        "dynamic",
        help="churn a dynamic list, maintaining its matching")
    dy.add_argument("--n", type=int, default=256,
                    help="initial list size (0 = empty arena)")
    dy.add_argument("--layout", default="random",
                    choices=["rings", "runs", "gray", "bitrev", "random"],
                    help="initial layout (gray/bitrev need power-of-2 n)")
    dy.add_argument("--seed", type=int, default=0)
    dy.add_argument("--steps", type=int, default=500,
                    help="number of edits (default 500)")
    dy.add_argument("--burstiness", type=float, default=0.0,
                    help="probability an op starts a burst (default 0)")
    dy.add_argument("--burst-len", type=int, default=8)
    dy.add_argument("--hotspot", type=float, default=0.0,
                    help="operand skew toward low addresses (default 0)")
    dy.add_argument("--maintain", default="repair",
                    choices=["repair", "recompute", "auto"],
                    help="maintenance strategy; auto asks the planner "
                         "(priced by --batch)")
    dy.add_argument("--batch", type=int, default=1,
                    help="edits per maintenance decision/recompute")
    dy.add_argument("--backend", default="reference",
                    choices=["reference", "numpy"],
                    help="engine for recompute passes")
    dy.add_argument("--flips", type=int, default=0,
                    help="random bit-flip faults on the matching array")
    dy.add_argument("--drops", type=int, default=0,
                    help="random dropped-write faults (lost repairs)")
    dy.add_argument("--contract", action="store_true",
                    help="finish with uniform contraction per component")
    dy.add_argument("--json", default="", metavar="PATH",
                    help="write the churn result as JSON to PATH")
    dy.set_defaults(fn=_cmd_dynamic)

    pf = sub.add_parser(
        "profile",
        help="profile one run: Perfetto trace + profile JSON + "
             "Prometheus metrics + RunRecord manifest",
    )
    pf.add_argument("algorithm", nargs="?", default="match4",
                    choices=["match1", "match2", "match3", "match4",
                             "sequential", "random_mate"])
    pf.add_argument("--n", type=int, default=1 << 12,
                    help="list size (default 4096)")
    pf.add_argument("--p", type=int, default=256)
    pf.add_argument("--layout", default="random", choices=LAYOUT_CHOICES)
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument("--backend", default="reference",
                    choices=backend_names())
    pf.add_argument("--i", type=int, default=2,
                    help="Match4's iterations parameter")
    pf.add_argument("--machine-n", type=int, default=96, metavar="N",
                    help="size of the traced instruction-level twin "
                         "(0 disables; only match1/match4 have one)")
    pf.add_argument("--memory", action="store_true",
                    help="resource accounting: per-phase tracemalloc "
                         "peaks, byte ledger, bandwidth estimates "
                         "(adds memory-profile.json and Chrome Trace "
                         "counter tracks)")
    pf.add_argument("--out", default="prof", metavar="DIR",
                    help="output directory (default prof/)")
    pf.set_defaults(fn=_cmd_profile)

    rp = sub.add_parser(
        "report",
        help="render RunRecord JSONL manifest(s) to a static HTML "
             "dashboard",
    )
    rp.add_argument("manifests", nargs="+", metavar="MANIFEST",
                    help="RunRecord JSONL file(s); with several, the "
                         "last is current and the rest are the baseline")
    rp.add_argument("--out", default="report.html", metavar="PATH")
    rp.add_argument("--title", default="repro run report")
    rp.set_defaults(fn=_cmd_report)

    rz = sub.add_parser(
        "resilience",
        help="inject faults into an instruction-level run and recover",
    )
    rz.add_argument("--n", type=int, default=96,
                    help="list size (default 96; instruction-level)")
    rz.add_argument("--layout", default="random", choices=LAYOUT_CHOICES)
    rz.add_argument("--seed", type=int, default=0)
    rz.add_argument("--algorithm", default="match4",
                    choices=["match1", "match4"])
    rz.add_argument("--i", type=int, default=2,
                    help="Match4's iterations parameter")
    rz.add_argument("--backend", default="reference",
                    choices=backend_choices(),
                    help="first-attempt backend for the ladder strategy "
                         "('auto': planner picks from history)")
    rz.add_argument("--crash-at", action="append", default=[],
                    metavar="STEP:PID",
                    help="crash-stop processor PID at step STEP (repeatable)")
    rz.add_argument("--flip", action="append", default=[],
                    metavar="STEP:ADDR:BIT",
                    help="flip BIT of cell ADDR after step STEP (repeatable)")
    rz.add_argument("--drop-write", action="append", default=[],
                    metavar="STEP:PID",
                    help="lose PID's write at step STEP (repeatable)")
    rz.add_argument("--strategy", default="restart",
                    choices=["restart", "repair", "ladder"],
                    help="recovery strategy (default checkpoint-restart)")
    rz.add_argument("--checkpoint-interval", type=int, default=32,
                    help="steps between snapshots (restart strategy)")
    rz.add_argument("--fail-first", type=int, default=3,
                    help="ladder demo: sabotage this many attempts")
    rz.add_argument("--tries-per-rung", type=int, default=2)
    rz.add_argument("--repair", action="store_true",
                    help="ladder: try local repair before degrading")
    rz.set_defaults(fn=_cmd_resilience)

    sv = sub.add_parser(
        "serve",
        help="run the matching-as-a-service HTTP server "
             "(see docs/service.md)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8080,
                    help="bind port (0: OS-assigned, printed on start)")
    sv.add_argument("--algorithm", default="match4",
                    choices=["match1", "match4"],
                    help="default algorithm for requests that name none")
    sv.add_argument("--backend", default="numpy", choices=backend_choices(),
                    help="default backend for requests that name none "
                         "('auto': planner picks per request)")
    sv.add_argument("--workers", type=int, default=None,
                    help="shard batches across this many worker processes")
    sv.add_argument("--max-queue", type=int, default=64,
                    help="admission queue depth before shedding (429)")
    sv.add_argument("--max-inflight-mb", type=float, default=64.0,
                    help="in-flight workload bytes before shedding (429)")
    sv.add_argument("--max-batch-items", type=int, default=16,
                    help="micro-batch size trigger")
    sv.add_argument("--max-batch-delay-ms", type=float, default=5.0,
                    help="micro-batch time trigger")
    sv.add_argument("--deadline-ms", type=float, default=1000.0,
                    help="default per-request deadline")
    sv.add_argument("--cache-size", type=int, default=128,
                    help="LRU response-cache entries (0 disables)")
    sv.add_argument("--drain-deadline-s", type=float, default=5.0,
                    help="SIGTERM flush budget before hard stop")
    sv.add_argument("--retry-after-s", type=float, default=1.0,
                    help="Retry-After hint on 429/503 responses")
    sv.add_argument("--record", default="",
                    help="append the final service RunRecord manifest here")
    sv.add_argument("--planner-history", default="", metavar="PATH",
                    help="runs.jsonl manifest seeding the planner for "
                         "backend=\"auto\" requests")
    sv.add_argument("--seed", type=int, default=0,
                    help="seeds the retry-backoff jitter")
    sv.add_argument("--feedback", action="store_true",
                    help="feed sampled batch wall-clock back into the "
                         "planner's history (telemetry→planner loop)")
    sv.add_argument("--feedback-sample", type=int, default=4,
                    metavar="N", help="record every Nth batch")
    sv.add_argument("--feedback-path", default="", metavar="PATH",
                    help="append feedback records here "
                         "(default: --planner-history)")
    sv.add_argument("--slo-p95-ms", type=float, default=500.0,
                    help="SLO latency objective for /debug/vars burn rate")
    sv.add_argument("--slo-availability", type=float, default=0.999,
                    help="SLO availability target (error budget = 1 - this)")
    sv.add_argument("--live-window-s", type=float, default=60.0,
                    help="rolling window behind /debug/vars and the "
                         "SSE stream")
    sv.set_defaults(fn=_cmd_serve)

    tp = sub.add_parser(
        "top",
        help="live terminal dashboard over a running server's "
             "/debug/vars (or --replay a telemetry JSONL)",
    )
    tp.add_argument("--url", default="http://127.0.0.1:8080",
                    help="server base URL")
    tp.add_argument("--interval", type=float, default=1.0,
                    help="refresh period in seconds")
    tp.add_argument("--once", action="store_true",
                    help="print one snapshot and exit (no clear-screen)")
    tp.add_argument("--replay", default="", metavar="PATH",
                    help="render aggregates from a recorded telemetry "
                         "JSONL instead of a live server")
    tp.set_defaults(fn=_cmd_top)

    f = sub.add_parser("fig1", help="render the paper's Fig. 1")
    f.add_argument("--order", default="",
                   help="comma-separated visit order (default: Fig. 1)")
    f.add_argument("--bisector", action="store_true",
                   help="draw Fig. 2's bisecting line and F/B marks")
    f.set_defaults(fn=_cmd_fig1)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from .telemetry import configure_from_env, configure_resources_from_env

    parser = build_parser()
    args = parser.parse_args(argv)
    configure_from_env(spec=args.telemetry)
    configure_resources_from_env()
    return int(args.fn(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
