"""Where finished spans and run records go.

A sink receives every *finished* span (and any explicitly emitted run
record) from the process tracer.  Four implementations cover the
intended deployments:

- :class:`NullSink` — the disabled default; drops everything.
- :class:`InMemorySink` — collects spans/records in lists; what tests
  and the selfcheck assert against.
- :class:`JsonlSink` — appends one JSON object per line to a file
  (``{"type": "span", ...}`` / ``{"type": "run", ...}``); the format
  ``benchmarks/compare.py`` and the CI artifact use.
- :class:`LogSink` — human-readable lines through the stdlib
  ``logging`` machinery (logger ``repro.telemetry``), for watching a
  run live on stderr.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import IO, TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spans imports us)
    from .spans import Span

__all__ = [
    "Sink",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "LogSink",
    "TeeSink",
    "json_default",
    "rotated_chain",
]


def json_default(obj: Any):
    """JSON fallback coercing numpy scalars (and anything int/float-like)."""
    for cast in (int, float):
        try:
            return cast(obj)
        except (TypeError, ValueError):
            continue
    return str(obj)


def rotated_chain(path) -> list[str]:
    """All generations of a rotated JSONL file, oldest first.

    Size rotation (:class:`JsonlSink` ``max_bytes``,
    :func:`~repro.telemetry.runrecord.rotate_if_over`) renames the live
    file to ``<path>.1``; external rotators may stack deeper
    (``<path>.2`` and up, higher suffix = older, logrotate-style).
    Returns ``[<path>.N, ..., <path>.1, <path>]`` filtered to the
    generations that exist — except the live path, which is always
    included, so a missing file still raises the usual ``FileNotFound``
    at ``open`` time rather than silently reading nothing.
    """
    base = str(path)
    gens: list[tuple[int, str]] = []
    directory = os.path.dirname(base) or "."
    name = os.path.basename(base)
    try:
        entries = os.listdir(directory)
    except OSError:
        entries = []
    for entry in entries:
        if entry.startswith(name + "."):
            suffix = entry[len(name) + 1:]
            if suffix.isdigit():
                gens.append((int(suffix), os.path.join(directory, entry)))
    chain = [p for _, p in sorted(gens, reverse=True)]
    chain.append(base)
    return chain


class Sink:
    """Base sink: ignores everything.  Subclass what you need."""

    def emit_span(self, span: "Span") -> None:  # noqa: B027 - optional hook
        pass

    def emit_record(self, record: dict[str, Any]) -> None:  # noqa: B027
        pass

    def close(self) -> None:  # noqa: B027 - optional hook
        pass


class NullSink(Sink):
    """The disabled-telemetry sink (explicitly named for readability)."""


class InMemorySink(Sink):
    """Collects spans and records in order; for tests and selfchecks."""

    def __init__(self) -> None:
        self.spans: list["Span"] = []
        self.records: list[dict[str, Any]] = []

    def emit_span(self, span: "Span") -> None:
        self.spans.append(span)

    def emit_record(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def span_names(self) -> list[str]:
        return [s.name for s in self.spans]


class JsonlSink(Sink):
    """Appends spans and records as JSON lines to ``path``.

    Writes are crash- and concurrency-hardened: each record is
    serialized first and then written as **one** ``os.write`` on an
    ``O_APPEND`` descriptor, unbuffered.  On POSIX, ``O_APPEND``
    appends are atomic with respect to other appenders, so several
    processes (a batch driver's workers, an interrupted run restarted
    over the same manifest) can share one file without interleaving
    partial lines — and every record is durable as soon as
    ``emit_*`` returns, with nothing held in userspace buffers for a
    crash to lose.  A reader's worst case is one *truncated trailing
    line* from a writer killed mid-``write``, which
    :func:`repro.telemetry.runrecord.read_records` skips with a
    warning.

    ``max_bytes`` adds single-roll size rotation: before a write
    would push the file past the bound, the file is renamed to
    ``<path>.1`` (replacing any previous roll) and a fresh one
    started — a long-running traced service caps its telemetry at
    ``2 * max_bytes`` on disk.  Rotation assumes this sink is the
    file's only writer (multi-process appenders should leave it off).
    """

    def __init__(self, path, *, max_bytes: int | None = None) -> None:
        self.path = str(path)
        self.max_bytes = max_bytes
        self._fd: int | None = None

    def _file(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path,
                os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                0o644,
            )
        return self._fd

    def _write(self, obj: dict[str, Any]) -> None:
        data = (json.dumps(obj, default=json_default) + "\n").encode("utf-8")
        fd = self._file()
        if self.max_bytes is not None:
            size = os.fstat(fd).st_size
            if size and size + len(data) > self.max_bytes:
                os.close(fd)
                self._fd = None
                os.replace(self.path, self.path + ".1")
                fd = self._file()
        os.write(fd, data)

    def emit_span(self, span: "Span") -> None:
        self._write({"type": "span", **span.to_dict()})

    def emit_record(self, record: dict[str, Any]) -> None:
        self._write({"type": "run", **record})

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


class LogSink(Sink):
    """Human-readable spans through ``logging`` (stderr by default)."""

    def __init__(self, *, level: int = logging.INFO,
                 stream: IO[str] | None = None) -> None:
        self.logger = logging.getLogger("repro.telemetry")
        self.logger.setLevel(level)
        if not self.logger.handlers:
            handler = logging.StreamHandler(stream or sys.stderr)
            handler.setFormatter(
                logging.Formatter("%(name)s %(levelname)s %(message)s")
            )
            self.logger.addHandler(handler)
        self.level = level

    def emit_span(self, span: "Span") -> None:
        attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
        self.logger.log(
            self.level,
            "span %-28s %8.3f ms  %s",
            span.name, span.duration * 1e3, attrs,
        )

    def emit_record(self, record: dict[str, Any]) -> None:
        self.logger.log(self.level, "run %s",
                        json.dumps(record, default=json_default))


class TeeSink(Sink):
    """Fans every emission out to several sinks."""

    def __init__(self, *sinks: Sink) -> None:
        self.sinks = tuple(sinks)

    def emit_span(self, span: "Span") -> None:
        for sink in self.sinks:
            sink.emit_span(span)

    def emit_record(self, record: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit_record(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
