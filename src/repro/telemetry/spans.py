"""Structured, nested spans and the process tracer.

A *span* is one timed region of a run — ``maximal_matching`` at the
top, the engine/cost phases underneath it, the PRAM lockstep loop and
resilience attempts below those — carrying arbitrary key/value
attributes (cost totals, fault counts, outcomes).  Spans nest through
a process-local stack: a span opened while another is active records
that span as its parent, so a sink sees the full tree.

**Disabled is free.**  Telemetry is off by default; :func:`span` then
returns a shared no-op context manager and instrumented code performs
exactly one global-flag check.  The instrumentation in the algorithm
tiers is therefore unconditional ``with span(...)`` blocks — there are
a handful per run, never one per pointer or per lockstep step.

Every finished span also feeds the ``span.<name>.seconds`` summary
histogram in :data:`repro.telemetry.metrics.METRICS`, which is how
"wall-clock per phase" exists as a metric without separate plumbing.

Spans may additionally carry a **trace id** — the request identity
from :mod:`repro.telemetry.context`.  A span inherits it from its
parent on the stack, or (at stack roots) from the ambient
:class:`~repro.telemetry.context.TraceContext`, which also supplies
the parent id across async/thread/process boundaries the stack cannot
see.  Untraced runs pay nothing: ``trace_id`` stays ``None`` and the
ambient lookup happens only while telemetry is enabled.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Any

from .context import current_trace
from .metrics import METRICS
from .sinks import JsonlSink, LogSink, NullSink, Sink

__all__ = [
    "Span",
    "Tracer",
    "span",
    "event",
    "enabled",
    "configure",
    "disable",
    "configure_from_env",
    "get_tracer",
    "current_span",
]


class Span:
    """One timed, attributed region; also its own context manager."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end",
                 "attributes", "status", "trace_id", "_tracer")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 start: float, attributes: dict[str, Any],
                 tracer: "Tracer", trace_id: str | None = None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attributes = attributes
        self.status = "ok"
        self.trace_id = trace_id
        self._tracer = tracer

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes (chainable)."""
        self.attributes.update(attributes)
        return self

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "duration_s": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault(
                "error", f"{exc_type.__name__}: {exc}")
        self._tracer._finish(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, status={self.status})")


class _NoopSpan:
    """The shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class Tracer:
    """Owns the span stack and forwards finished spans to its sink."""

    def __init__(self, sink: Sink) -> None:
        self.sink = sink
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    def _inherit(self) -> tuple[int | None, str | None]:
        """Parent id and trace id for a new span: stack first, then the
        ambient :class:`~repro.telemetry.context.TraceContext`."""
        if self._stack:
            top = self._stack[-1]
            return top.span_id, top.trace_id
        ctx = current_trace()
        if ctx is not None:
            return ctx.span_id, ctx.trace_id
        return None, None

    def start_span(self, name: str, attributes: dict[str, Any]) -> Span:
        parent, trace_id = self._inherit()
        sp = Span(name, next(self._ids), parent, time.perf_counter(),
                  attributes, self, trace_id)
        self._stack.append(sp)
        return sp

    def event(self, name: str, attributes: dict[str, Any]) -> Span:
        """Emit an instantaneous (zero-duration) span."""
        parent, trace_id = self._inherit()
        now = time.perf_counter()
        sp = Span(name, next(self._ids), parent, now, attributes, self,
                  trace_id)
        sp.end = now
        self.sink.emit_span(sp)
        return sp

    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def next_id(self) -> int:
        """Allocate a fresh span id.

        Used when merging externally produced spans (a worker process's
        captured trace) into this tracer's id space without colliding
        with locally started spans.
        """
        return next(self._ids)

    def emit_foreign(self, sp: Span) -> None:
        """Emit an already-finished span built outside ``start_span``.

        The span must carry ids from :meth:`next_id` and a set ``end``;
        it is fed to the sink and the duration histogram exactly like a
        locally finished span, but never touches the live span stack.
        """
        METRICS.histogram(f"span.{sp.name}.seconds").observe(sp.duration)
        self.sink.emit_span(sp)

    def _finish(self, sp: Span) -> None:
        sp.end = time.perf_counter()
        # Pop through abandoned children (an exception can unwind several
        # spans before the outermost __exit__ runs).
        while self._stack:
            if self._stack.pop() is sp:
                break
        METRICS.histogram(f"span.{sp.name}.seconds").observe(sp.duration)
        self.sink.emit_span(sp)


_enabled = False
_tracer = Tracer(NullSink())


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _enabled


def span(name: str, **attributes: Any):
    """Open a span (no-op context manager while telemetry is disabled)."""
    if not _enabled:
        return _NOOP
    return _tracer.start_span(name, attributes)


def event(name: str, **attributes: Any) -> None:
    """Emit an instantaneous span (dropped while disabled)."""
    if _enabled:
        _tracer.event(name, attributes)


def current_span() -> Span | None:
    """The innermost open span, or ``None``."""
    return _tracer.current() if _enabled else None


def get_tracer() -> Tracer:
    """The process tracer (its sink changes via :func:`configure`)."""
    return _tracer


def configure(sink: Sink | None = None, *, enabled: bool = True) -> Tracer:
    """Enable (or re-point) telemetry; returns the active tracer.

    Passing ``sink=None`` keeps the current sink (useful to re-enable
    after :func:`disable`).  The span stack is reset: configuration is
    a between-runs operation.
    """
    global _enabled, _tracer
    if sink is not None:
        _tracer = Tracer(sink)
    else:
        _tracer = Tracer(_tracer.sink)
    _enabled = bool(enabled)
    return _tracer


def disable() -> None:
    """Stop recording (the configured sink is kept but not fed)."""
    global _enabled
    _enabled = False


def configure_from_env(
    env: str = "REPRO_TELEMETRY", *, spec: str | None = None
) -> bool:
    """Configure from ``$REPRO_TELEMETRY``; returns True if it did.

    Accepted values: ``log`` / ``stderr`` (human-readable stderr
    lines), ``jsonl:PATH`` (append JSON lines to PATH), ``off`` / empty
    (leave disabled).  An explicit ``spec`` (the CLI's ``--telemetry``)
    takes precedence over the environment variable.
    """
    if spec is None:
        spec = os.environ.get(env, "").strip()
    if not spec or spec == "off":
        return False
    if spec in ("log", "stderr"):
        configure(LogSink())
        return True
    if spec.startswith("jsonl:"):
        configure(JsonlSink(spec[len("jsonl:"):]))
        return True
    raise ValueError(
        f"unrecognized {env}={spec!r}; use 'off', 'log', or 'jsonl:PATH'"
    )
