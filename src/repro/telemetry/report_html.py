"""Self-contained static HTML run reports from RunRecord manifests.

:func:`render_report` turns one or more RunRecord sets into a single
HTML file with **zero external resource references** — no CDN, no
scripts, no fonts, no images; all charts are inline SVG or styled
HTML, all styling is one ``<style>`` block (light and dark via
``prefers-color-scheme``).  Rendering is **deterministic**: the same
records produce byte-identical HTML (no timestamps, no randomness),
so reports diff cleanly in CI artifacts.

Sections:

- stat tiles (runs / algorithms / backends / largest ``n``);
- the runs table;
- inline-SVG cost curves (PRAM time and work-per-node vs ``n``, one
  series per algorithm/backend pair);
- per-phase time and work breakdown bars — the paper's "schedule
  shape" view (Match2's sort dominating, Match4 deleting it);
- a phase-share heatmap (runs × phases), plus per-processor occupancy
  heatmaps for records produced by ``repro profile`` (which stashes
  the machine occupancy grid in ``extra``);
- a memory & data-movement panel for records carrying a
  ``ResourceReport`` in ``extra["resources"]`` (stacked per-phase
  allocation bars, the bytes-touched bandwidth table, and the
  bytes-per-shard-hop serialization ledger);
- run-over-run deltas, pairing records by workload identity with the
  same semantics as ``benchmarks/compare.py``: deterministic integer
  metrics (time / work / per-phase) regress on **any** increase,
  wall-clock only beyond a 10% tolerance.
"""

from __future__ import annotations

import html
import math
from pathlib import Path
from typing import Any, Mapping, Sequence

from .runrecord import RunRecord

__all__ = ["render_report", "write_report", "diff_records"]

#: Wall-clock tolerance for the delta section (compare.py's default).
WALLCLOCK_TOL = 0.10

# Categorical series slots (light / dark), fixed order — never cycled.
_SERIES_LIGHT = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                 "#e87ba4", "#008300", "#4a3aa7", "#e34948"]
_SERIES_DARK = ["#3987e5", "#d95926", "#199e70", "#c98500",
                "#d55181", "#008300", "#9085e9", "#e66767"]
#: Sequential blue ramp (steps 100..700) for magnitude encodings.
_SEQ_RAMP = ["#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec",
             "#5598e7", "#3987e5", "#2a78d6", "#256abf", "#1c5cab",
             "#184f95", "#104281", "#0d366b"]
_FOLD_COLOR = "var(--muted)"  # the ">8 categories" fold, never a new hue

_CSS = """
:root { color-scheme: light dark; }
body.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --good: #006300; --bad: #d03b3b;
""" + "".join(
    f"  --series-{i + 1}: {c};\n" for i, c in enumerate(_SERIES_LIGHT)
) + """
  margin: 0; background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
@media (prefers-color-scheme: dark) {
  body.viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --good: #0ca30c; --bad: #d03b3b;
""" + "".join(
    f"    --series-{i + 1}: {c};\n" for i, c in enumerate(_SERIES_DARK)
) + """
  }
}
main { max-width: 980px; margin: 0 auto; padding: 24px 16px 48px; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 10px; }
.sub { color: var(--text-secondary); margin: 0 0 16px; }
.card { background: var(--surface-1); border: 1px solid var(--border);
        border-radius: 8px; padding: 16px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile { flex: 1 1 140px; }
.tile .v { font-size: 26px; font-weight: 600; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: right; padding: 4px 10px;
         border-bottom: 1px solid var(--grid);
         font-variant-numeric: tabular-nums; }
th { color: var(--text-secondary); font-weight: 500; font-size: 12px; }
th:first-child, td:first-child { text-align: left; }
tr:hover td { background: var(--page); }
.legend { display: flex; gap: 14px; flex-wrap: wrap; margin: 8px 0;
          color: var(--text-secondary); font-size: 12px; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
              border-radius: 2px; margin-right: 5px;
              vertical-align: -1px; }
.bar-row { display: flex; align-items: center; gap: 10px; margin: 6px 0; }
.bar-label { flex: 0 0 210px; font-size: 12px;
             color: var(--text-secondary); text-align: right;
             white-space: nowrap; overflow: hidden;
             text-overflow: ellipsis; }
.bar { flex: 1; display: flex; gap: 2px; height: 18px;
       border-radius: 4px; overflow: hidden; }
.bar .seg { height: 100%; min-width: 1px; }
.heat { border-spacing: 2px; border-collapse: separate; }
.heat td { border: none; width: 16px; height: 16px; padding: 0;
           border-radius: 2px; }
.heat th { border: none; font-size: 11px; padding: 0 6px; }
.delta-up { color: var(--bad); }
.delta-down { color: var(--good); }
.note { color: var(--muted); font-size: 12px; }
svg text { fill: var(--text-secondary); font: 11px system-ui,
           -apple-system, "Segoe UI", sans-serif; }
svg .axis-line { stroke: var(--baseline); stroke-width: 1; }
svg .gridline { stroke: var(--grid); stroke-width: 1; }
footer { margin-top: 36px; color: var(--muted); font-size: 12px; }
"""


def _e(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _series_color(index: int) -> str:
    """Fixed-order categorical slot; folds past 8 into the muted ink."""
    return (f"var(--series-{index + 1})" if index < len(_SERIES_LIGHT)
            else _FOLD_COLOR)


def _seq_color(value: float) -> str:
    """Sequential ramp lookup for a magnitude in [0, 1]."""
    value = min(1.0, max(0.0, value))
    return _SEQ_RAMP[round(value * (len(_SEQ_RAMP) - 1))]


def _label(rec: RunRecord) -> str:
    parts = [f"{rec.algorithm}/{rec.backend}", f"n={rec.n}"]
    if rec.seed is not None:
        parts.append(f"s{rec.seed}")
    return " ".join(parts)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


# -- deltas (compare.py semantics on RunRecord objects) ---------------------


def _int_metrics(rec: RunRecord) -> dict[str, int]:
    out = {"time": rec.time, "work": rec.work}
    for name, time, work, _steps in rec.phases:
        out[f"phase.{name}.time"] = time
        out[f"phase.{name}.work"] = work
    return out


def diff_records(
    baseline: Sequence[RunRecord],
    current: Sequence[RunRecord],
    *,
    wallclock_tol: float = WALLCLOCK_TOL,
) -> list[dict[str, Any]]:
    """Pair records by workload identity and diff their metrics.

    Same rules as ``benchmarks/compare.py``: integer metrics are
    deterministic, so any increase is a ``regression`` and any
    decrease an ``improvement``; ``wall_s`` moves only outside
    ``wallclock_tol``.  Baseline workloads absent from ``current``
    are ``missing``; current-only workloads are ``new``.  When a key
    repeats inside one set, the last record wins.
    """
    base_by_key = {rec.key(): rec for rec in baseline}
    cur_by_key = {rec.key(): rec for rec in current}
    findings: list[dict[str, Any]] = []
    for key in sorted(base_by_key, key=repr):
        base = base_by_key[key]
        cur = cur_by_key.get(key)
        if cur is None:
            findings.append({"kind": "missing", "label": _label(base),
                             "metric": "", "baseline": None,
                             "current": None})
            continue
        base_ints, cur_ints = _int_metrics(base), _int_metrics(cur)
        for metric in sorted(base_ints):
            b, c = base_ints[metric], cur_ints.get(metric)
            if c is None or c == b:
                continue
            kind = "regression" if c > b else "improvement"
            findings.append({"kind": kind, "label": _label(base),
                             "metric": metric, "baseline": b, "current": c})
        if base.wall_s is not None and cur.wall_s is not None:
            b, c = base.wall_s, cur.wall_s
            if c > b * (1.0 + wallclock_tol):
                findings.append({"kind": "regression", "label": _label(base),
                                 "metric": "wall_s", "baseline": b,
                                 "current": c})
            elif c < b * (1.0 - wallclock_tol):
                findings.append({"kind": "improvement",
                                 "label": _label(base), "metric": "wall_s",
                                 "baseline": b, "current": c})
    for key in sorted(cur_by_key, key=repr):
        if key not in base_by_key:
            findings.append({"kind": "new", "label": _label(cur_by_key[key]),
                             "metric": "", "baseline": None, "current": None})
    return findings


# -- sections ---------------------------------------------------------------


def _tiles(records: Sequence[RunRecord]) -> str:
    algorithms = sorted({r.algorithm for r in records})
    backends = sorted({r.backend for r in records})
    tiles = [
        ("runs", str(len(records))),
        ("algorithms", str(len(algorithms)) if algorithms else "0"),
        ("backends", ", ".join(backends) or "0"),
        ("largest n", f"{max((r.n for r in records), default=0):,}"),
    ]
    cells = "".join(
        f'<div class="card tile"><div class="v">{_e(v)}</div>'
        f'<div class="k">{_e(k)}</div></div>'
        for k, v in tiles
    )
    return f'<div class="tiles">{cells}</div>'


def _runs_table(records: Sequence[RunRecord]) -> str:
    head = ("<tr><th>workload</th><th>p</th><th>time</th><th>work</th>"
            "<th>work/node</th><th>wall ms</th><th>util</th></tr>")
    rows = []
    for rec in records:
        util = rec.extra.get("utilization")
        wall = "-" if rec.wall_s is None else f"{rec.wall_s * 1e3:.3f}"
        rows.append(
            f"<tr><td>{_e(_label(rec))}</td><td>{rec.p:,}</td>"
            f"<td>{rec.time:,}</td><td>{rec.work:,}</td>"
            f"<td>{rec.work / max(rec.n, 1):.2f}</td>"
            f"<td>{wall}</td>"
            f"<td>{'-' if util is None else f'{float(util):.3f}'}</td></tr>"
        )
    return f'<div class="card"><table>{head}{"".join(rows)}</table></div>'


def _nice_ticks(top: float, count: int = 4) -> list[float]:
    if top <= 0:
        return [0.0, 1.0]
    raw = top / count
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        if raw <= mult * mag:
            step = mult * mag
            break
    ticks = []
    v = 0.0
    while v < top + step / 2:
        ticks.append(v)
        v += step
    return ticks


def _svg_curves(
    records: Sequence[RunRecord],
    *,
    metric,
    y_label: str,
) -> str:
    """One inline-SVG line chart of ``metric(record)`` vs ``log2 n``."""
    groups: dict[tuple[str, str], dict[int, float]] = {}
    for rec in records:
        groups.setdefault((rec.algorithm, rec.backend), {})[rec.n] = \
            float(metric(rec))
    series = {k: sorted(v.items()) for k, v in sorted(groups.items())
              if len(v) >= 2}
    if not series:
        return ('<p class="note">cost curves need at least two distinct '
                '<code>n</code> per algorithm/backend pair</p>')

    width, height = 680, 280
    ml, mr, mt, mb = 56, 130, 14, 34
    plot_w, plot_h = width - ml - mr, height - mt - mb
    all_n = sorted({n for pts in series.values() for n, _ in pts})
    x_lo, x_hi = math.log2(all_n[0]), math.log2(all_n[-1])
    x_span = (x_hi - x_lo) or 1.0
    y_top = max(v for pts in series.values() for _, v in pts) or 1.0
    ticks = _nice_ticks(y_top)
    y_top = ticks[-1]

    def x_of(n: int) -> float:
        return ml + (math.log2(n) - x_lo) / x_span * plot_w

    def y_of(v: float) -> float:
        return mt + plot_h - (v / y_top) * plot_h

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="{_e(y_label)} vs n">']
    for t in ticks:
        y = y_of(t)
        parts.append(f'<line class="gridline" x1="{ml}" y1="{y:.1f}" '
                     f'x2="{ml + plot_w}" y2="{y:.1f}"/>')
        parts.append(f'<text x="{ml - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{_fmt(t if t % 1 else int(t))}'
                     f'</text>')
    parts.append(f'<line class="axis-line" x1="{ml}" y1="{mt + plot_h}" '
                 f'x2="{ml + plot_w}" y2="{mt + plot_h}"/>')
    for n in all_n:
        x = x_of(n)
        exp = math.log2(n)
        lab = f"2^{int(exp)}" if exp == int(exp) else f"{n:,}"
        parts.append(f'<text x="{x:.1f}" y="{mt + plot_h + 16}" '
                     f'text-anchor="middle">{_e(lab)}</text>')
    parts.append(f'<text x="{ml}" y="{mt - 2}">{_e(y_label)}</text>')

    direct_label = len(series) <= 4
    for idx, (key, pts) in enumerate(series.items()):
        color = _series_color(idx)
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{x_of(n):.1f},{y_of(v):.1f}"
            for i, (n, v) in enumerate(pts)
        )
        name = f"{key[0]}/{key[1]}"
        parts.append(f'<path d="{path}" fill="none" stroke="{color}" '
                     f'stroke-width="2"/>')
        for n, v in pts:
            parts.append(
                f'<circle cx="{x_of(n):.1f}" cy="{y_of(v):.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2"><title>{_e(name)} n={n:,}: '
                f'{_fmt(v if v % 1 else int(v))}</title></circle>'
            )
        if direct_label:
            n_last, v_last = pts[-1]
            parts.append(
                f'<text x="{x_of(n_last) + 8:.1f}" '
                f'y="{y_of(v_last) + 4:.1f}">{_e(name)}</text>'
            )
    parts.append("</svg>")
    legend = "".join(
        f'<span><span class="sw" style="background:{_series_color(i)}">'
        f'</span>{_e(f"{k[0]}/{k[1]}")}</span>'
        for i, k in enumerate(series)
    )
    return (f'<div class="card">{"".join(parts)}'
            f'<div class="legend">{legend}</div></div>')


def _phase_order(records: Sequence[RunRecord]) -> list[str]:
    order: list[str] = []
    for rec in records:
        for name, *_ in rec.phases:
            if name not in order:
                order.append(name)
    return order


def _phase_bars(records: Sequence[RunRecord], *, field: str) -> str:
    """Stacked per-record breakdown bars of phase time or work."""
    order = _phase_order(records)
    if not order:
        return '<p class="note">no per-phase data in these records</p>'
    index = {name: i for i, name in enumerate(order)}
    pick = {"time": 1, "work": 2}[field]
    rows = []
    for rec in records:
        if not rec.phases:
            continue
        total = sum(ph[pick] for ph in rec.phases) or 1
        segs = []
        for ph in rec.phases:
            share = ph[pick] / total
            if share <= 0:
                continue
            segs.append(
                f'<div class="seg" style="flex:{share:.5f};'
                f'background:{_series_color(index[ph[0]])}">'
                f'<title></title></div>'
            )
            segs[-1] = (
                f'<div class="seg" title="{_e(ph[0])}: {ph[pick]:,} '
                f'({share * 100:.1f}%)" style="flex:{share:.5f};'
                f'background:{_series_color(index[ph[0]])}"></div>'
            )
        rows.append(
            f'<div class="bar-row"><div class="bar-label">'
            f'{_e(_label(rec))}</div><div class="bar">{"".join(segs)}'
            f'</div></div>'
        )
    legend = "".join(
        f'<span><span class="sw" style="background:{_series_color(i)}">'
        f'</span>{_e(name)}</span>'
        for i, name in enumerate(order)
    )
    return (f'<div class="card">{"".join(rows)}'
            f'<div class="legend">{legend}</div></div>')


def _phase_heatmap(records: Sequence[RunRecord]) -> str:
    """Runs × phases grid of time share — the schedule-shape view."""
    order = _phase_order(records)
    with_phases = [r for r in records if r.phases]
    if not order or not with_phases:
        return ""
    head = "".join(f"<th>{_e(name)}</th>" for name in order)
    rows = []
    for rec in with_phases:
        total = sum(ph[1] for ph in rec.phases) or 1
        share = {ph[0]: ph[1] / total for ph in rec.phases}
        cells = []
        for name in order:
            s = share.get(name)
            if s is None:
                cells.append("<td></td>")
            else:
                cells.append(
                    f'<td style="background:{_seq_color(s)}" '
                    f'title="{_e(name)}: {s * 100:.1f}%"></td>')
        rows.append(f'<tr><th style="text-align:right">'
                    f'{_e(_label(rec))}</th>{"".join(cells)}</tr>')
    return (f'<h2>Schedule shape (phase time share)</h2>'
            f'<div class="card"><table class="heat">'
            f'<tr><th></th>{head}</tr>{"".join(rows)}</table>'
            f'<p class="note">sequential ramp: light → dark = '
            f'0% → 100% of the run&#39;s PRAM time</p></div>')


def _occupancy_heatmaps(records: Sequence[RunRecord]) -> str:
    sections = []
    for rec in records:
        grid = rec.extra.get("occupancy")
        if not grid:
            continue
        util = rec.extra.get("utilization")
        rows = []
        for pid, row in enumerate(grid):
            cells = "".join(
                f'<td style="background:{_seq_color(float(v))}" '
                f'title="P{pid}, window {b}: {float(v) * 100:.0f}% busy">'
                f'</td>'
                for b, v in enumerate(row)
            )
            rows.append(f'<tr><th style="text-align:right">P{pid}</th>'
                        f'{cells}</tr>')
        title = _e(_label(rec))
        sub = ("" if util is None
               else f' — utilization {float(util):.3f}')
        sections.append(
            f'<div class="card"><p class="sub">{title}{sub} '
            f'(processors × step windows)</p>'
            f'<table class="heat">{"".join(rows)}</table></div>'
        )
    if not sections:
        return ""
    return ('<h2>Machine occupancy (instruction-level trace)</h2>'
            + "".join(sections))


def _fmt_bytes(v: float | int | None) -> str:
    if v is None:
        return "-"
    v = float(v)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(v) < 1024 or unit == "GiB":
            return (f"{v:,.0f} {unit}" if unit == "B"
                    else f"{v:,.1f} {unit}")
        v /= 1024
    return f"{v:,.1f} GiB"  # pragma: no cover - loop always returns


def _memory_panel(records: Sequence[RunRecord]) -> str:
    """Memory & data movement: per-phase alloc bars + shard byte table.

    Reads the :class:`~repro.telemetry.resources.ResourceReport` dict
    records carry in ``extra["resources"]`` (``repro profile --memory``
    / ``repro match`` under ``REPRO_RESOURCES``); returns ``""`` when
    no record has one, so reports without resource accounting are
    unchanged.
    """
    with_res = [(rec, rec.extra["resources"]) for rec in records
                if isinstance(rec.extra.get("resources"), Mapping)]
    if not with_res:
        return ""
    sections: list[str] = []

    # Stacked per-phase peak-allocation bars (one row per record, each
    # segment one phase's share of the summed per-phase peaks).
    order: list[str] = []
    for _, res in with_res:
        for ph in res.get("phases", ()):
            if ph.get("name") not in order:
                order.append(ph["name"])
    index = {name: i for i, name in enumerate(order)}
    rows = []
    for rec, res in with_res:
        phases = [ph for ph in res.get("phases", ())
                  if ph.get("alloc_peak_b")]
        if not phases:
            continue
        total = sum(ph["alloc_peak_b"] for ph in phases) or 1
        segs = []
        for ph in phases:
            share = ph["alloc_peak_b"] / total
            if share <= 0:
                continue
            segs.append(
                f'<div class="seg" title="{_e(ph["name"])}: peak '
                f'{_fmt_bytes(ph["alloc_peak_b"])} '
                f'(net {_fmt_bytes(ph.get("alloc_net_b"))})" '
                f'style="flex:{share:.5f};'
                f'background:{_series_color(index[ph["name"]])}"></div>'
            )
        rows.append(
            f'<div class="bar-row"><div class="bar-label">'
            f'{_e(_label(rec))}</div><div class="bar">{"".join(segs)}'
            f'</div></div>'
        )
    if rows:
        legend = "".join(
            f'<span><span class="sw" style="background:'
            f'{_series_color(i)}"></span>{_e(name)}</span>'
            for i, name in enumerate(order)
        )
        sections.append(
            f'<div class="card">{"".join(rows)}'
            f'<div class="legend">{legend}</div>'
            f'<p class="note">segment width = the phase&#39;s share of '
            f'the summed per-phase tracemalloc peaks</p></div>')

    # Bandwidth table: per phase, the bytes-touched estimate over the
    # measured wall-clock.
    bw_rows = []
    for rec, res in with_res:
        model = res.get("model", {})
        for ph in res.get("phases", ()):
            bw = ph.get("bandwidth_bps")
            bw_rows.append(
                f'<tr><td>{_e(_label(rec))}</td><td>{_e(ph["name"])}</td>'
                f'<td>{_fmt_bytes(ph.get("bytes_touched"))}</td>'
                f'<td>{_fmt_bytes(ph.get("alloc_peak_b"))}</td>'
                f'<td>{"-" if not bw else f"{bw / 1e9:.2f}"}</td></tr>')
    if bw_rows:
        models = sorted({
            f'{res.get("model", {}).get("name", "?")} '
            f'({res.get("model", {}).get("bytes_per_work", "?")} B/work, '
            f'{res.get("backend")})'
            for _, res in with_res})
        head = ("<tr><th>workload</th><th>phase</th><th>bytes touched</th>"
                "<th>peak alloc</th><th>GB/s</th></tr>")
        sections.append(
            f'<div class="card"><table>{head}{"".join(bw_rows)}</table>'
            f'<p class="note">bytes-touched model: '
            f'{_e("; ".join(models))} — an estimate for ranking phases, '
            f'not a measurement</p></div>')

    # The serialization ledger: bytes per shard hop.
    led_rows = []
    for rec, res in with_res:
        led = res.get("ledger", {})
        hops = led.get("shard_hops", 0)
        if not hops:
            continue
        per_hop = (led.get("bytes_out", 0) + led.get("bytes_in", 0)) / hops
        led_rows.append(
            f'<tr><td>{_e(_label(rec))}</td><td>{hops:,}</td>'
            f'<td>{_fmt_bytes(led.get("bytes_out"))}</td>'
            f'<td>{_fmt_bytes(led.get("bytes_in"))}</td>'
            f'<td>{_fmt_bytes(led.get("span_replay_bytes"))}</td>'
            f'<td>{_fmt_bytes(per_hop)}</td></tr>')
    if led_rows:
        head = ("<tr><th>workload</th><th>shard hops</th>"
                "<th>bytes out</th><th>bytes in</th><th>span replay</th>"
                "<th>payload / hop</th></tr>")
        sections.append(
            f'<div class="card"><table>{head}{"".join(led_rows)}</table>'
            f'<p class="note">exact serialized payload bytes over the '
            f'process-pool boundary — the traffic a zero-copy rewrite '
            f'must drive to ~0</p></div>')

    if not sections:
        return ""
    return "<h2>Memory &amp; data movement</h2>" + "".join(sections)


def _delta_section(
    baseline: Sequence[RunRecord],
    current: Sequence[RunRecord],
) -> str:
    findings = diff_records(baseline, current)
    if not findings:
        return ('<h2>Run-over-run deltas</h2><div class="card">'
                '<p class="note">no differences — every paired metric is '
                'identical</p></div>')
    rows = []
    for f in findings:
        if f["kind"] in ("missing", "new"):
            rows.append(
                f'<tr><td>{_e(f["label"])}</td><td>{_e(f["kind"])}</td>'
                f'<td>-</td><td>-</td><td>-</td></tr>')
            continue
        b, c = f["baseline"], f["current"]
        pct = (c - b) / b * 100 if b else math.inf
        cls = "delta-up" if f["kind"] == "regression" else "delta-down"
        arrow = "▲" if c > b else "▼"
        rows.append(
            f'<tr><td>{_e(f["label"])}</td><td>{_e(f["metric"])}</td>'
            f'<td>{_fmt(b)}</td><td>{_fmt(c)}</td>'
            f'<td class="{cls}">{arrow} {pct:+.1f}%</td></tr>')
    head = ("<tr><th>workload</th><th>metric</th><th>baseline</th>"
            "<th>current</th><th>Δ</th></tr>")
    return (f'<h2>Run-over-run deltas</h2><div class="card">'
            f'<table>{head}{"".join(rows)}</table>'
            f'<p class="note">deterministic metrics regress on any '
            f'increase; wall-clock beyond ±{WALLCLOCK_TOL:.0%} '
            f'(benchmarks/compare.py semantics)</p></div>')


# -- entry points -----------------------------------------------------------


def render_report(
    records: Sequence[RunRecord],
    *,
    baseline: Sequence[RunRecord] | None = None,
    title: str = "repro run report",
) -> str:
    """Render records (and optional baseline) into one HTML page.

    With an explicit ``baseline`` the delta section compares it to
    ``records``; otherwise, if any workload identity appears more than
    once in ``records``, first occurrences act as the baseline and
    last occurrences as current (run-over-run inside one manifest).
    """
    records = list(records)
    if baseline is None:
        first: dict[tuple, RunRecord] = {}
        last: dict[tuple, RunRecord] = {}
        for rec in records:
            first.setdefault(rec.key(), rec)
            last[rec.key()] = rec
        repeated = [k for k in first if first[k] is not last[k]]
        if repeated:
            baseline = [first[k] for k in repeated]
            delta_current: Sequence[RunRecord] = [last[k] for k in repeated]
        else:
            delta_current = []
    else:
        delta_current = records

    builds = sorted({f"{r.version} @ {r.git_rev}" for r in records
                     if r.version or r.git_rev})
    body = [f"<h1>{_e(title)}</h1>"]
    if not records:
        body.append('<p class="note">no run records</p>')
    else:
        body.append(f'<p class="sub">{len(records)} run record(s)</p>')
        body.append(_tiles(records))
        body.append("<h2>Runs</h2>")
        body.append(_runs_table(records))
        body.append("<h2>Cost curves</h2>")
        body.append(_svg_curves(records, metric=lambda r: r.time,
                                y_label="PRAM time (steps)"))
        body.append(_svg_curves(records,
                                metric=lambda r: r.work / max(r.n, 1),
                                y_label="work per node"))
        body.append("<h2>Per-phase time breakdown</h2>")
        body.append(_phase_bars(records, field="time"))
        body.append("<h2>Per-phase work breakdown</h2>")
        body.append(_phase_bars(records, field="work"))
        body.append(_phase_heatmap(records))
        body.append(_occupancy_heatmaps(records))
        body.append(_memory_panel(records))
        if baseline:
            body.append(_delta_section(baseline, delta_current))
    footer = "; ".join(builds) if builds else "unknown build"
    body.append(f"<footer>produced by {_e(footer)}</footer>")
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        "<meta name=\"viewport\" "
        "content=\"width=device-width, initial-scale=1\">\n"
        f"<title>{_e(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        "</head>\n<body class=\"viz-root\">\n<main>\n"
        + "\n".join(body)
        + "\n</main>\n</body>\n</html>\n"
    )


def write_report(
    path,
    records: Sequence[RunRecord],
    *,
    baseline: Sequence[RunRecord] | None = None,
    title: str = "repro run report",
) -> Path:
    """Render and write the report; returns its path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_report(records, baseline=baseline, title=title),
                 encoding="utf-8")
    return p
