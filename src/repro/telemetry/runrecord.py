"""Persisted run manifests: one JSON line per measured run.

A :class:`RunRecord` is the durable form of "what ran and what it
cost": workload identity (algorithm, backend, ``n``, ``p``, seed),
the exact Brent cost account (time, work, per-phase breakdown), host
wall-clock, and the producing build (package version + git revision).
The CLI (``repro match --record``) and the benchmark suite
(``benchmarks/_common.py``) append records to JSONL manifests, and
``benchmarks/compare.py`` diffs two manifests to gate regressions:
step counts are deterministic, so *any* increase is a regression;
wall-clock is compared within a tolerance.

The cost fields round-trip exactly — ``RunRecord.from_result(r)
.cost_report() == r.report`` — which the twelfth selfcheck asserts.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, TYPE_CHECKING

from .._buildinfo import build_info
from .sinks import json_default, rotated_chain

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from ..core.result import MatchResult
    from ..pram.cost import CostReport

__all__ = [
    "SCHEMA_VERSION",
    "RunRecord",
    "append_record",
    "write_records",
    "read_records",
    "rotate_if_over",
]

#: Bumped on incompatible RunRecord layout changes.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RunRecord:
    """One measured run, ready for JSONL persistence.

    Attributes
    ----------
    kind:
        Record family: ``"matching"`` for algorithm runs, ``"bench"``
        for benchmark-table emissions.
    algorithm / backend / n / p / seed:
        Workload identity (also the comparison key in ``compare.py``).
    time / work:
        The Brent :class:`~repro.pram.cost.CostReport` totals —
        deterministic, compared exactly.
    phases:
        Per-phase ``(name, time, work, steps)`` tuples, in order.
    wall_s:
        Host wall-clock seconds (``None`` when not timed).
    version / git_rev:
        Producing build (defaulted from :mod:`repro._buildinfo`).
    extra:
        Free-form context (layout, iterations, bench name, ...).
    """

    algorithm: str
    backend: str
    n: int
    p: int
    time: int
    work: int
    kind: str = "matching"
    seed: int | None = None
    wall_s: float | None = None
    phases: tuple[tuple[str, int, int, int], ...] = ()
    version: str = ""
    git_rev: str = ""
    schema: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.version or not self.git_rev:
            info = build_info()
            if not self.version:
                object.__setattr__(self, "version", info["version"])
            if not self.git_rev:
                object.__setattr__(self, "git_rev", info["git_rev"])

    @classmethod
    def from_result(
        cls,
        result: "MatchResult",
        *,
        seed: int | None = None,
        wall_s: float | None = None,
        **extra: Any,
    ) -> "RunRecord":
        """Build a record from a :class:`~repro.core.result.MatchResult`."""
        report = result.report
        return cls(
            algorithm=result.algorithm,
            backend=result.backend,
            n=int(result.matching.lst.n),
            p=int(report.p),
            time=int(report.time),
            work=int(report.work),
            seed=seed,
            wall_s=wall_s,
            phases=tuple(
                (ph.name, int(ph.time), int(ph.work), int(ph.steps))
                for ph in report.phases
            ),
            extra=dict(extra),
        )

    def cost_report(self) -> "CostReport":
        """Rebuild the exact :class:`CostReport` this record captured."""
        from ..pram.cost import CostReport, PhaseCost

        return CostReport(
            p=self.p,
            time=self.time,
            work=self.work,
            phases=tuple(
                PhaseCost(name, time, work, steps)
                for name, time, work, steps in self.phases
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "n": self.n,
            "p": self.p,
            "seed": self.seed,
            "time": self.time,
            "work": self.work,
            "wall_s": self.wall_s,
            "phases": [list(ph) for ph in self.phases],
            "version": self.version,
            "git_rev": self.git_rev,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            algorithm=data["algorithm"],
            backend=data["backend"],
            n=int(data["n"]),
            p=int(data["p"]),
            time=int(data["time"]),
            work=int(data["work"]),
            kind=data.get("kind", "matching"),
            seed=data.get("seed"),
            wall_s=data.get("wall_s"),
            phases=tuple(
                (ph[0], int(ph[1]), int(ph[2]), int(ph[3]))
                for ph in data.get("phases", ())
            ),
            version=data.get("version", ""),
            git_rev=data.get("git_rev", ""),
            schema=int(data.get("schema", SCHEMA_VERSION)),
            extra=dict(data.get("extra", {})),
        )

    def key(self) -> tuple:
        """Identity used to pair records across manifests.

        Measurement payloads riding in ``extra`` (the ``resources``
        account) are excluded — they differ run to run and would break
        pairing of otherwise identical workloads.
        """
        return (self.kind, self.algorithm, self.backend, self.n, self.p,
                self.seed, tuple(sorted(
                    (k, str(v)) for k, v in self.extra.items()
                    if k != "resources")))


def rotate_if_over(path, incoming_bytes: int, max_bytes: int) -> bool:
    """Roll ``path`` to ``<path>.1`` when an append would overflow it.

    Single-roll, size-based rotation: if the file's current size plus
    ``incoming_bytes`` exceeds ``max_bytes``, the file is atomically
    renamed to ``<path>.1`` (replacing any previous roll) so the
    append starts a fresh file.  At most ``2 * max_bytes`` ever sits
    on disk.  Returns whether a roll happened.  Rotation assumes one
    writer per file — concurrent appenders should rotate externally.
    """
    p = Path(path)
    try:
        size = p.stat().st_size
    except OSError:
        return False
    if size == 0 or size + incoming_bytes <= max_bytes:
        return False
    import os

    os.replace(p, p.with_name(p.name + ".1"))
    return True


def append_record(path, record: RunRecord, *,
                  max_bytes: int | None = None) -> Path:
    """Append one record as a JSON line; returns the manifest path.

    ``max_bytes`` bounds the manifest via :func:`rotate_if_over` —
    the knob unattended appenders (the service's planner feedback)
    use so history files cannot grow without bound.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps({"type": "run", **record.to_dict()},
                      default=json_default) + "\n"
    if max_bytes is not None:
        rotate_if_over(p, len(line.encode("utf-8")), max_bytes)
    with open(p, "a", encoding="utf-8") as fh:
        fh.write(line)
    return p


def write_records(path, records, *, append: bool = False) -> Path:
    """Write records as JSONL (replacing the file unless ``append``)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append else "w"
    with open(p, mode, encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps({"type": "run", **record.to_dict()},
                                default=json_default) + "\n")
    return p


def read_records(path, *, strict: bool = False,
                 rotated: bool = True) -> list[RunRecord]:
    """Load every run record from a JSONL file.

    Lines of other types (spans from a :class:`JsonlSink` writing to
    the same file) are skipped, so one telemetry file can hold both.

    With ``rotated`` (the default), rolled generations left by
    ``max_bytes`` rotation (``<path>.1``, ``<path>.2``, ... — higher
    suffix = older) are read first, oldest to newest, so replay tools
    see the full history instead of silently dropping everything
    before the last roll.  ``rotated=False`` reads only ``path``.

    Malformed lines — the truncated trailing line a killed writer
    leaves behind — are *skipped with a* :class:`RuntimeWarning`
    rather than raised, so an interrupted run's manifest stays
    readable.  Pass ``strict=True`` to get the old raising behavior
    (tests that must notice corruption).
    """
    paths = rotated_chain(path) if rotated else [str(path)]
    records: list[RunRecord] = []
    for p in paths:
        try:
            fh = open(p, encoding="utf-8")
        except FileNotFoundError:
            # A rolled generation can outlive the live file (nothing
            # appended since the roll); only a chain with no file at
            # all is an error.
            if len(paths) == 1:
                raise
            continue
        with fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    if strict:
                        raise
                    warnings.warn(
                        f"{p}:{lineno}: skipping malformed/truncated "
                        f"JSONL line ({exc})",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                if data.get("type", "run") != "run":
                    continue
                records.append(RunRecord.from_dict(data))
    return records
