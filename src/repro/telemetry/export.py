"""Standard-format exporters: Chrome Trace Event JSON and Prometheus.

Two interchange formats on top of the in-process telemetry:

- **Chrome Trace Event JSON** (``chrome://tracing`` / Perfetto):
  :func:`chrome_trace_events` renders a captured span tree as complete
  (``"ph": "X"``) events — one track (``tid``) per nesting level, so
  the phase structure reads as a flame chart — and
  :func:`machine_trace_events` renders an instruction-level PRAM
  memory trace as one track per processor with per-step read/write
  slices and merged idle slices (Lemma 7's pipelined diagonal is
  directly visible in Perfetto).  :func:`write_chrome_trace` wraps
  any event collection in the JSON object container format.

- **Prometheus text exposition**: :func:`prometheus_exposition`
  renders the :class:`~repro.telemetry.metrics.MetricsRegistry` in the
  text format scrapers ingest — counters as ``*_total``, gauges as-is,
  histograms as summaries with ``quantile`` labels (p50/p95/p99) plus
  ``_sum``/``_count``.

Timestamps in trace events are microseconds (the Trace Event schema's
unit), relative to the earliest span so traces from different runs
align at zero.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .sinks import json_default
from .spans import Span

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from ..pram.machine import MachineReport

__all__ = [
    "chrome_trace_events",
    "machine_trace_events",
    "write_chrome_trace",
    "prometheus_exposition",
    "write_prometheus",
]


def _jsonable(value: Any) -> Any:
    """Coerce one attribute value into a JSON-native type."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return json_default(value)


# -- Chrome Trace Event JSON ------------------------------------------------

#: ``pid`` of the span-tree tracks in exported traces.
SPAN_PID = 1
#: ``pid`` of the PRAM machine tracks in exported traces.
MACHINE_PID = 2


def chrome_trace_events(
    spans: Sequence[Span],
    *,
    pid: int = SPAN_PID,
    origin: float | None = None,
) -> list[dict[str, Any]]:
    """Render captured spans as Trace Event dicts (one track per depth).

    Spans with a duration become complete events (``"ph": "X"``);
    zero-duration spans (:func:`repro.telemetry.event`) become instant
    events (``"ph": "i"``).  ``tid`` is the span's nesting depth, so
    ``chrome://tracing`` lays the tree out as a flame chart.  ``args``
    carries the span's attributes, status, and ids.

    ``origin`` overrides the timestamp zero (default: earliest span
    start), letting span and machine tracks share one timeline.
    """
    spans = [s for s in spans if s.end is not None]
    if not spans:
        return []
    if origin is None:
        origin = min(s.start for s in spans)
    by_id = {s.span_id: s for s in spans}

    def depth_of(s: Span) -> int:
        d = 0
        cur = s
        while cur.parent_id is not None and cur.parent_id in by_id:
            cur = by_id[cur.parent_id]
            d += 1
        return d

    events: list[dict[str, Any]] = []
    max_depth = 0
    for s in sorted(spans, key=lambda s: (s.start, s.span_id)):
        depth = depth_of(s)
        max_depth = max(max_depth, depth)
        args = {
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "status": s.status,
        }
        args.update({k: _jsonable(v) for k, v in s.attributes.items()})
        base = {
            "name": s.name,
            "cat": "span",
            "ts": round((s.start - origin) * 1e6, 3),
            "pid": pid,
            "tid": depth,
            "args": args,
        }
        if s.duration == 0.0:
            events.append({**base, "ph": "i", "s": "t"})
        else:
            events.append({
                **base, "ph": "X", "dur": round(s.duration * 1e6, 3),
            })
    events.append(_meta("process_name", pid, 0, name="repro spans"))
    for depth in range(max_depth + 1):
        events.append(_meta("thread_name", pid, depth,
                            name=f"span depth {depth}"))
    return events


def machine_trace_events(
    report: "MachineReport",
    *,
    pid: int = MACHINE_PID,
    max_procs: int = 64,
    step_range: tuple[int, int] | None = None,
    max_steps: int | None = None,
    step_us: float = 1.0,
) -> list[dict[str, Any]]:
    """Render a PRAM memory trace as one Trace Event track per processor.

    Each traced step becomes a ``step_us``-wide slice on the issuing
    processor's track — ``read`` / ``write`` slices carry the address
    (and written value) in ``args``; runs of consecutive idle steps
    merge into single ``idle`` slices so the schedule's pipeline
    bubbles stay visible without bloating the file.  Windowing
    (``step_range`` / ``max_steps``) matches the
    :mod:`repro.pram.trace` renderers.
    """
    from ..pram.trace import select_steps

    steps = select_steps(report, step_range=step_range, max_steps=max_steps)
    nproc = min(report.nprocs, max_procs)
    events: list[dict[str, Any]] = [
        _meta("process_name", pid, 0, name="pram machine"),
    ]
    for proc in range(nproc):
        events.append(_meta("thread_name", pid, proc, name=f"P{proc}"))
    for proc in range(nproc):
        idle_from: int | None = None

        def flush_idle(upto: int) -> None:
            nonlocal idle_from
            if idle_from is None:
                return
            events.append({
                "name": "idle",
                "cat": "pram",
                "ph": "X",
                "ts": round(idle_from * step_us, 3),
                "dur": round((upto - idle_from) * step_us, 3),
                "pid": pid,
                "tid": proc,
                "args": {},
            })
            idle_from = None

        for idx, t in enumerate(steps):
            if proc in t.writes:
                flush_idle(idx)
                addr, value = t.writes[proc]
                events.append({
                    "name": "write", "cat": "pram", "ph": "X",
                    "ts": round(idx * step_us, 3),
                    "dur": round(step_us, 3),
                    "pid": pid, "tid": proc,
                    "args": {"step": t.step, "addr": addr, "value": value},
                })
            elif proc in t.reads:
                flush_idle(idx)
                events.append({
                    "name": "read", "cat": "pram", "ph": "X",
                    "ts": round(idx * step_us, 3),
                    "dur": round(step_us, 3),
                    "pid": pid, "tid": proc,
                    "args": {"step": t.step, "addr": t.reads[proc]},
                })
            elif idle_from is None:
                idle_from = idx
        flush_idle(len(steps))
    if report.nprocs > nproc:
        events.append(_meta(
            "process_labels", pid, 0,
            labels=f"{report.nprocs - nproc} more processors clipped"))
    return events


def _meta(event_name: str, pid: int, tid: int, **args: Any) -> dict[str, Any]:
    return {"name": event_name, "ph": "M", "pid": pid, "tid": tid,
            "args": args}


def write_chrome_trace(
    path,
    events: Iterable[dict[str, Any]],
    *,
    metadata: Mapping[str, Any] | None = None,
) -> Path:
    """Write events in the JSON *object* container format.

    The container (``{"traceEvents": [...], ...}``) is what
    ``chrome://tracing`` and Perfetto both accept; ``metadata`` lands
    in ``otherData``.
    """
    from .._buildinfo import build_info

    payload = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": {**build_info(), **(metadata or {})},
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload, default=json_default) + "\n",
                 encoding="utf-8")
    return p


# -- Prometheus text exposition ---------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    out = prefix + _NAME_RE.sub("_", name)
    if out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(value: Any) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_exposition(
    registry: MetricsRegistry = METRICS,
    *,
    prefix: str = "repro_",
) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters are exported as ``<name>_total``, gauges as-is (unset
    gauges are skipped — Prometheus has no "never written" value),
    histograms as summaries: ``quantile`` labels for p50/p95/p99 plus
    ``_sum`` and ``_count`` children.  Metric names are sanitized to
    the ``[a-zA-Z0-9_:]`` alphabet and prefixed.
    """
    lines: list[str] = []
    for name, metric in registry.items():
        if isinstance(metric, Counter):
            base = _prom_name(name, prefix) + "_total"
            lines.append(f"# HELP {base} repro counter {name}")
            lines.append(f"# TYPE {base} counter")
            lines.append(f"{base} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            if metric.value is None:
                continue
            base = _prom_name(name, prefix)
            lines.append(f"# HELP {base} repro gauge {name}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_prom_value(metric.value)}")
        elif isinstance(metric, Histogram):
            base = _prom_name(name, prefix)
            lines.append(f"# HELP {base} repro summary {name}")
            lines.append(f"# TYPE {base} summary")
            for label, q in (("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)):
                value = metric.quantile(q)
                if value is not None:
                    lines.append(
                        f'{base}{{quantile="{label}"}} {_prom_value(value)}')
            lines.append(f"{base}_sum {_prom_value(metric.total)}")
            lines.append(f"{base}_count {_prom_value(metric.count)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    path,
    registry: MetricsRegistry = METRICS,
    *,
    prefix: str = "repro_",
) -> Path:
    """Write the exposition to ``path`` (e.g. for node_exporter's
    textfile collector)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(prometheus_exposition(registry, prefix=prefix),
                 encoding="utf-8")
    return p
