"""Standard-format exporters: Chrome Trace Event JSON and Prometheus.

Two interchange formats on top of the in-process telemetry:

- **Chrome Trace Event JSON** (``chrome://tracing`` / Perfetto):
  :func:`chrome_trace_events` renders a captured span tree as complete
  (``"ph": "X"``) events — one track (``tid``) per nesting level, so
  the phase structure reads as a flame chart — and
  :func:`machine_trace_events` renders an instruction-level PRAM
  memory trace as one track per processor with per-step read/write
  slices and merged idle slices (Lemma 7's pipelined diagonal is
  directly visible in Perfetto).  :func:`write_chrome_trace` wraps
  any event collection in the JSON object container format.

- **Prometheus text exposition**: :func:`prometheus_exposition`
  renders the :class:`~repro.telemetry.metrics.MetricsRegistry` in the
  text format scrapers ingest — counters as ``*_total``, gauges as-is,
  histograms as summaries with ``quantile`` labels (p50/p95/p99) plus
  ``_sum``/``_count``.

Timestamps in trace events are microseconds (the Trace Event schema's
unit), relative to the earliest span so traces from different runs
align at zero.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .sinks import json_default, rotated_chain
from .spans import Span

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from ..pram.machine import MachineReport

__all__ = [
    "chrome_trace_events",
    "machine_trace_events",
    "resource_counter_events",
    "write_chrome_trace",
    "prometheus_exposition",
    "write_prometheus",
    "spans_from_jsonl",
    "request_trace_ids",
    "request_trace_spans",
    "request_trace_events",
]


def _jsonable(value: Any) -> Any:
    """Coerce one attribute value into a JSON-native type."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return json_default(value)


# -- Chrome Trace Event JSON ------------------------------------------------

#: ``pid`` of the span-tree tracks in exported traces.
SPAN_PID = 1
#: ``pid`` of the PRAM machine tracks in exported traces.
MACHINE_PID = 2


def chrome_trace_events(
    spans: Sequence[Span],
    *,
    pid: int = SPAN_PID,
    origin: float | None = None,
) -> list[dict[str, Any]]:
    """Render captured spans as Trace Event dicts (one track per depth).

    Spans with a duration become complete events (``"ph": "X"``);
    zero-duration spans (:func:`repro.telemetry.event`) become instant
    events (``"ph": "i"``).  ``tid`` is the span's nesting depth, so
    ``chrome://tracing`` lays the tree out as a flame chart.  ``args``
    carries the span's attributes, status, and ids.

    ``origin`` overrides the timestamp zero (default: earliest span
    start), letting span and machine tracks share one timeline.
    """
    spans = [s for s in spans if s.end is not None]
    if not spans:
        return []
    if origin is None:
        origin = min(s.start for s in spans)
    by_id = {s.span_id: s for s in spans}

    def depth_of(s: Span) -> int:
        d = 0
        cur = s
        while cur.parent_id is not None and cur.parent_id in by_id:
            cur = by_id[cur.parent_id]
            d += 1
        return d

    events: list[dict[str, Any]] = []
    max_depth = 0
    for s in sorted(spans, key=lambda s: (s.start, s.span_id)):
        depth = depth_of(s)
        max_depth = max(max_depth, depth)
        args = {
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "status": s.status,
        }
        if getattr(s, "trace_id", None) is not None:
            args["trace_id"] = s.trace_id
        args.update({k: _jsonable(v) for k, v in s.attributes.items()})
        base = {
            "name": s.name,
            "cat": "span",
            "ts": round((s.start - origin) * 1e6, 3),
            "pid": pid,
            "tid": depth,
            "args": args,
        }
        if s.duration == 0.0:
            events.append({**base, "ph": "i", "s": "t"})
        else:
            events.append({
                **base, "ph": "X", "dur": round(s.duration * 1e6, 3),
            })
    events.append(_meta("process_name", pid, 0, name="repro spans"))
    for depth in range(max_depth + 1):
        events.append(_meta("thread_name", pid, depth,
                            name=f"span depth {depth}"))
    return events


def machine_trace_events(
    report: "MachineReport",
    *,
    pid: int = MACHINE_PID,
    max_procs: int = 64,
    step_range: tuple[int, int] | None = None,
    max_steps: int | None = None,
    step_us: float = 1.0,
) -> list[dict[str, Any]]:
    """Render a PRAM memory trace as one Trace Event track per processor.

    Each traced step becomes a ``step_us``-wide slice on the issuing
    processor's track — ``read`` / ``write`` slices carry the address
    (and written value) in ``args``; runs of consecutive idle steps
    merge into single ``idle`` slices so the schedule's pipeline
    bubbles stay visible without bloating the file.  Windowing
    (``step_range`` / ``max_steps``) matches the
    :mod:`repro.pram.trace` renderers.
    """
    from ..pram.trace import select_steps

    steps = select_steps(report, step_range=step_range, max_steps=max_steps)
    nproc = min(report.nprocs, max_procs)
    events: list[dict[str, Any]] = [
        _meta("process_name", pid, 0, name="pram machine"),
    ]
    for proc in range(nproc):
        events.append(_meta("thread_name", pid, proc, name=f"P{proc}"))
    for proc in range(nproc):
        idle_from: int | None = None

        def flush_idle(upto: int) -> None:
            nonlocal idle_from
            if idle_from is None:
                return
            events.append({
                "name": "idle",
                "cat": "pram",
                "ph": "X",
                "ts": round(idle_from * step_us, 3),
                "dur": round((upto - idle_from) * step_us, 3),
                "pid": pid,
                "tid": proc,
                "args": {},
            })
            idle_from = None

        for idx, t in enumerate(steps):
            if proc in t.writes:
                flush_idle(idx)
                addr, value = t.writes[proc]
                events.append({
                    "name": "write", "cat": "pram", "ph": "X",
                    "ts": round(idx * step_us, 3),
                    "dur": round(step_us, 3),
                    "pid": pid, "tid": proc,
                    "args": {"step": t.step, "addr": addr, "value": value},
                })
            elif proc in t.reads:
                flush_idle(idx)
                events.append({
                    "name": "read", "cat": "pram", "ph": "X",
                    "ts": round(idx * step_us, 3),
                    "dur": round(step_us, 3),
                    "pid": pid, "tid": proc,
                    "args": {"step": t.step, "addr": t.reads[proc]},
                })
            elif idle_from is None:
                idle_from = idx
        flush_idle(len(steps))
    if report.nprocs > nproc:
        events.append(_meta(
            "process_labels", pid, 0,
            labels=f"{report.nprocs - nproc} more processors clipped"))
    return events


def _meta(event_name: str, pid: int, tid: int, **args: Any) -> dict[str, Any]:
    return {"name": event_name, "ph": "M", "pid": pid, "tid": tid,
            "args": args}


def resource_counter_events(
    spans: Sequence[Span],
    *,
    pid: int = SPAN_PID,
    origin: float | None = None,
) -> list[dict[str, Any]]:
    """Counter tracks (``"ph": "C"``) from resource span attributes.

    Two tracks ride alongside the flame chart when resource accounting
    was on (:mod:`repro.telemetry.resources`):

    - ``phase alloc (B)`` — each span carrying ``alloc_net_b`` /
      ``alloc_peak_b`` plots its net and peak allocation at the span's
      end time;
    - ``shard bytes (cumulative)`` — running submit / result /
      span-replay byte totals over the ``shard.<i>`` spans, stepping up
      as each hop completes.

    Returns ``[]`` when no span carries resource attributes, so the
    tracks appear only in traces recorded with accounting enabled.
    Use the same ``origin`` as :func:`chrome_trace_events` to align
    the counter samples with the span timeline.
    """
    spans = [s for s in spans if s.end is not None]
    if not spans:
        return []
    if origin is None:
        origin = min(s.start for s in spans)
    events: list[dict[str, Any]] = []
    cum_out = cum_in = cum_replay = 0
    for s in sorted(spans, key=lambda s: (s.end, s.span_id)):
        ts = round((s.end - origin) * 1e6, 3)
        attrs = s.attributes
        if "alloc_net_b" in attrs or "alloc_peak_b" in attrs:
            events.append({
                "name": "phase alloc (B)", "cat": "resource", "ph": "C",
                "ts": ts, "pid": pid, "tid": 0,
                "args": {"net": int(attrs.get("alloc_net_b") or 0),
                         "peak": int(attrs.get("alloc_peak_b") or 0)},
            })
        if "bytes_out" in attrs or "bytes_in" in attrs:
            cum_out += int(attrs.get("bytes_out") or 0)
            cum_in += int(attrs.get("bytes_in") or 0)
            cum_replay += int(attrs.get("span_replay_b") or 0)
            events.append({
                "name": "shard bytes (cumulative)", "cat": "resource",
                "ph": "C", "ts": ts, "pid": pid, "tid": 0,
                "args": {"out": cum_out, "in": cum_in,
                         "span_replay": cum_replay},
            })
    return events


def write_chrome_trace(
    path,
    events: Iterable[dict[str, Any]],
    *,
    metadata: Mapping[str, Any] | None = None,
) -> Path:
    """Write events in the JSON *object* container format.

    The container (``{"traceEvents": [...], ...}``) is what
    ``chrome://tracing`` and Perfetto both accept; ``metadata`` lands
    in ``otherData``.
    """
    from .._buildinfo import build_info

    payload = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": {**build_info(), **(metadata or {})},
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload, default=json_default) + "\n",
                 encoding="utf-8")
    return p


# -- Per-request trace reconstruction ---------------------------------------
#
# The service emits, per request, one root ``service.request`` span
# tagged with the request's trace id; the micro-batcher's fused
# ``service.batch`` span carries the trace ids of every member request
# in a ``links`` attribute (one batch serves many requests, so simple
# parentage cannot express the relation); and the sharded executor's
# ``shard.<i>`` spans (plus the worker spans replayed under them) hang
# off the batch span through ordinary parent ids.  These helpers re-cut
# that shared span soup into one renderable tree per request.


def spans_from_jsonl(path, *, rotated: bool = True) -> list[Span]:
    """Load ``{"type": "span", ...}`` lines from a JsonlSink file.

    Lines of other types (run records sharing the file) and malformed
    lines (a truncated tail from a killed writer) are skipped.  With
    ``rotated`` (the default), rolled generations (``<path>.1``,
    ``<path>.2``, ... — higher suffix = older) left by ``max_bytes``
    rotation are read first, oldest to newest, so replay sees the full
    history.
    """
    paths = rotated_chain(path) if rotated else [str(path)]
    spans: list[Span] = []
    for p in paths:
        try:
            fh = open(p, encoding="utf-8")
        except FileNotFoundError:
            if len(paths) == 1:
                raise
            continue
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if data.get("type") != "span":
                    continue
                sp = Span(
                    data["name"], int(data["span_id"]),
                    data.get("parent_id"), float(data["start"]),
                    dict(data.get("attributes", {})), tracer=None,
                    trace_id=data.get("trace_id"),
                )
                sp.end = sp.start + float(data.get("duration_s", 0.0))
                sp.status = data.get("status", "ok")
                spans.append(sp)
    return spans


def _span_links(span: Span) -> tuple[str, ...]:
    links = span.attributes.get("links")
    if isinstance(links, (list, tuple)):
        return tuple(str(l) for l in links)
    return ()


def request_trace_ids(spans: Sequence[Span]) -> list[str]:
    """Trace ids that have a root span, in first-seen (ingress) order."""
    seen: list[str] = []
    for s in spans:
        tid = getattr(s, "trace_id", None)
        if tid and s.parent_id is None and tid not in seen:
            seen.append(tid)
    return seen


def request_trace_spans(
    spans: Sequence[Span], trace_id: str,
) -> list[Span]:
    """One request's span tree, re-parented and ready to export.

    Selects the request's own spans (``trace_id`` match), every span
    that *links* to the request (the fused batch span), and all their
    descendants (shard spans, replayed worker spans).  Linked spans are
    re-parented under the request's root span, so the result renders as
    a single tree; spans shared with co-batched requests appear in each
    linked request's tree.  Returns copies — the originals keep their
    shared parentage.
    """
    by_id = {s.span_id: s for s in spans}
    # A span that *links* to the request (the fused batch span, tagged
    # with its first member's trace id) is shared work, never the root.
    roots = [s for s in spans
             if getattr(s, "trace_id", None) == trace_id
             and trace_id not in _span_links(s)
             and (s.parent_id is None or s.parent_id not in by_id)]
    own = [s for s in spans if getattr(s, "trace_id", None) == trace_id]
    linked = [s for s in spans if trace_id in _span_links(s)]
    children: dict[int | None, list[Span]] = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)

    picked: dict[int, Span] = {}

    def take(s: Span) -> None:
        if s.span_id in picked:
            return
        picked[s.span_id] = s
        for child in children.get(s.span_id, ()):
            take(child)

    for s in own + linked:
        take(s)
    if not picked:
        return []
    root_id = roots[0].span_id if roots else None
    out: list[Span] = []
    for s in sorted(picked.values(), key=lambda s: (s.start, s.span_id)):
        copy = Span(s.name, s.span_id, s.parent_id, s.start,
                    dict(s.attributes), tracer=None,
                    trace_id=getattr(s, "trace_id", None))
        copy.end = s.end
        copy.status = s.status
        # Re-parent: linked spans (and any picked span whose parent was
        # not picked) hang off the request root.
        if copy.span_id != root_id and (
                trace_id in _span_links(s)
                or copy.parent_id not in picked):
            copy.parent_id = root_id
        out.append(copy)
    return out


def request_trace_events(
    spans: Sequence[Span], trace_id: str, *, pid: int = SPAN_PID,
) -> list[dict[str, Any]]:
    """Chrome Trace events for one request's reconstructed tree."""
    tree = request_trace_spans(spans, trace_id)
    events = chrome_trace_events(tree, pid=pid)
    # Rename the track: this is one request, not the whole process.
    for e in events:
        if e.get("ph") == "M" and e["name"] == "process_name":
            e["args"]["name"] = f"request {trace_id}"
    return events


# -- Prometheus text exposition ---------------------------------------------
#
# The 0.0.4 text format has a real grammar: metric names match
# ``[a-zA-Z_:][a-zA-Z0-9_:]*``, label names ``[a-zA-Z_][a-zA-Z0-9_]*``,
# label values are double-quoted with ``\\``, ``\"``, and ``\n``
# escapes, and HELP text escapes ``\\`` and newlines.  Metric and span
# names here come from arbitrary code (span names become
# ``span.<name>.seconds`` histograms), so everything is sanitized —
# a hostile span name must never produce an unparseable exposition.

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    out = prefix + _NAME_RE.sub("_", name)
    if not out:
        return "_"
    if out[0].isdigit():
        out = "_" + out
    return out


def _prom_label_name(name: str) -> str:
    """Sanitize a label name (no colons, cannot start ``__``)."""
    out = _LABEL_NAME_RE.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    while out.startswith("__"):  # reserved for internal use
        out = out[1:]
    return out or "_"


def _prom_label_value(value: Any) -> str:
    """Escape a label value per the 0.0.4 grammar."""
    return (str(value)
            .replace("\\", r"\\")
            .replace('"', r"\"")
            .replace("\n", r"\n"))


def _prom_help(text: str) -> str:
    """Escape HELP text (backslash and newline only, per the spec)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _prom_counter_name(name: str, prefix: str, unit: str) -> str:
    """Counter name under the ``<base>[_<unit>]_total`` convention.

    The unit token is appended only when the sanitized name does not
    already contain it (``parallel.bytes_out`` keeps its shape, while
    ``requests`` + unit ``bytes`` becomes ``requests_bytes``), and
    ``_total`` is never doubled — a hostile counter literally named
    ``x_total`` exports as ``..._x_total``, not ``..._x_total_total``.
    """
    base = _prom_name(name, prefix)
    if base.endswith("_total"):
        base = base[:-len("_total")]
    if unit:
        unit = _NAME_RE.sub("_", unit)
        if unit and not re.search(rf"(^|_){re.escape(unit)}(_|$)", base):
            base += "_" + unit
    return base + "_total"


def _prom_labels(labels: Mapping[str, Any] | None,
                 extra: tuple[tuple[str, Any], ...] = ()) -> str:
    """Render a ``{name="value",...}`` block (empty string if none)."""
    pairs = [(k, v) for k, v in (labels or {}).items()]
    pairs += list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{_prom_label_name(k)}="{_prom_label_value(v)}"'
        for k, v in pairs
    )
    return "{" + body + "}"


def _prom_value(value: Any) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_exposition(
    registry: MetricsRegistry = METRICS,
    *,
    prefix: str = "repro_",
    labels: Mapping[str, Any] | None = None,
) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters are exported as ``<name>_total``, gauges as-is (unset
    gauges are skipped — Prometheus has no "never written" value),
    histograms as summaries: ``quantile`` labels for p50/p95/p99 plus
    ``_sum`` and ``_count`` children.  Metric names are sanitized to
    the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar, HELP text and label
    values are escaped, and ``labels`` (e.g. an instance tag) are
    attached — escaped — to every sample line.
    """
    lines: list[str] = []
    lbl = lambda *extra: _prom_labels(labels, tuple(extra))  # noqa: E731
    for name, metric in registry.items():
        if isinstance(metric, Counter):
            unit = getattr(metric, "unit", "")
            base = _prom_counter_name(name, prefix, unit)
            help_text = f"repro counter {_prom_help(name)}"
            if unit:
                help_text += f" (unit: {_prom_help(unit)})"
            lines.append(f"# HELP {base} {help_text}")
            lines.append(f"# TYPE {base} counter")
            lines.append(f"{base}{lbl()} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            if metric.value is None:
                continue
            base = _prom_name(name, prefix)
            lines.append(f"# HELP {base} repro gauge {_prom_help(name)}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base}{lbl()} {_prom_value(metric.value)}")
        elif isinstance(metric, Histogram):
            base = _prom_name(name, prefix)
            lines.append(f"# HELP {base} repro summary {_prom_help(name)}")
            lines.append(f"# TYPE {base} summary")
            for label, q in (("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)):
                value = metric.quantile(q)
                if value is not None:
                    lines.append(
                        f"{base}{lbl(('quantile', label))} "
                        f"{_prom_value(value)}")
            lines.append(f"{base}_sum{lbl()} {_prom_value(metric.total)}")
            lines.append(f"{base}_count{lbl()} {_prom_value(metric.count)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    path,
    registry: MetricsRegistry = METRICS,
    *,
    prefix: str = "repro_",
    labels: Mapping[str, Any] | None = None,
) -> Path:
    """Write the exposition to ``path`` (e.g. for node_exporter's
    textfile collector)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(prometheus_exposition(registry, prefix=prefix,
                                       labels=labels),
                 encoding="utf-8")
    return p
