"""Resource accounting: allocations, serialized bytes, and bandwidth.

The telemetry stack (spans, metrics, run records) prices *time* —
wall-clock per phase, Brent steps per run.  This module prices **data
movement**, the other axis the paper's cost accounting (and the
communication-volume bounds of the related work) care about:

- **Per-phase allocations** — a scoped :mod:`tracemalloc` integration:
  every cost-model phase (``phase.<name>`` span) records the *net*
  allocation delta and the *peak* high-water mark inside the phase,
  attached to the phase span as ``alloc_net_b`` / ``alloc_peak_b``.
  Nested phases propagate their peaks outward, so an outer phase's
  peak is never smaller than a peak reached inside a child.
- **The serialization byte ledger** — the parallel tier counts the
  exact serialized payload bytes of every shard hop: submit bytes
  (each list's ``NEXT`` array as ``int64`` raw bytes, ``n * 8`` per
  list), result bytes (each matching's tail array, ``matched * 8``),
  and the pickled size of the replayed worker span dicts.  These are
  the bytes the ROADMAP's zero-copy shared-memory rewrite must drive
  to ~0 — this ledger is that claim's "before" number.
- **Per-phase bandwidth estimates** — bytes touched divided by the
  phase span's wall-clock, under the documented bytes-touched model
  below.

**Disabled by default and cheap when disabled**: instrumented sites
(the cost model's phase hook, the sharded executor) perform one
module-flag check.  Enable with :func:`enable`, the scoped
:func:`tracking` context manager, the ``REPRO_RESOURCES`` environment
variable (``ledger`` for byte accounting only, ``full`` to add
tracemalloc), or ``repro profile --memory``.  ``tracemalloc`` itself
is expensive (every allocation is traced), which is why the ledger
mode exists separately: byte accounting adds a few integer adds per
shard hop and may stay on in production.

**The bytes-touched model.**  One Brent work unit is one active
processor executing one pointer operation of the paper's per-round
array sweeps.  The reference tier stores everything as ``int64``: one
read plus one write per unit, 16 bytes.  The numpy engine reads
``int64`` pointers but writes ``int8`` labels in its sweep rounds:
8 + 1 = 9 bytes per unit.  The model is an *estimate* of traffic, not
a measurement — its purpose is to rank phases and spot
bandwidth-bound ones, and it is recorded alongside every report so a
future model change is visible in the data.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from .metrics import METRICS

__all__ = [
    "PhaseResource",
    "ResourceLedger",
    "ResourceReport",
    "BYTES_PER_WORK",
    "DEFAULT_BYTES_PER_WORK",
    "bytes_per_work",
    "enabled",
    "memory_tracking",
    "enable",
    "disable",
    "reset",
    "configure_resources_from_env",
    "tracking",
    "phase_begin",
    "phase_end",
    "account_shard",
    "ledger_snapshot",
    "build_report",
]

#: Estimated bytes touched per Brent work unit, per backend (see the
#: module docstring for the derivation).  Unknown backends use the
#: conservative reference-tier figure.
BYTES_PER_WORK = {
    "reference": 16,  # int64 read + int64 write per pointer op
    "numpy": 9,       # int64 gather read + int8 label write
    "numpy-mp": 9,    # same engine inside each worker
}
DEFAULT_BYTES_PER_WORK = 16

#: Name recorded with every report so model revisions are visible.
BYTES_TOUCHED_MODEL = "array-sweep-rw-v1"


def bytes_per_work(backend: str | None) -> int:
    """The model's bytes-per-work-unit figure for ``backend``."""
    return BYTES_PER_WORK.get(backend or "", DEFAULT_BYTES_PER_WORK)


@dataclass(frozen=True)
class PhaseResource:
    """Resource account of one phase (or measured block).

    ``alloc_net_b`` / ``alloc_peak_b`` are ``None`` when memory
    tracking was off (ledger-only mode); net may be negative (the
    phase freed more than it allocated), peak never is.
    """

    name: str
    time: int
    work: int
    steps: int
    wall_s: float
    alloc_net_b: int | None = None
    alloc_peak_b: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "time": self.time,
            "work": self.work,
            "steps": self.steps,
            "wall_s": self.wall_s,
            "alloc_net_b": self.alloc_net_b,
            "alloc_peak_b": self.alloc_peak_b,
        }


class ResourceLedger:
    """The process-global accumulator instrumented sites report into."""

    __slots__ = ("phases", "bytes_out", "bytes_in", "span_replay_bytes",
                 "shard_hops")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.phases: list[PhaseResource] = []
        self.bytes_out = 0
        self.bytes_in = 0
        self.span_replay_bytes = 0
        self.shard_hops = 0

    def snapshot(self) -> dict[str, Any]:
        """The serialization ledger as a JSON-ready dict."""
        return {
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
            "span_replay_bytes": self.span_replay_bytes,
            "shard_hops": self.shard_hops,
        }


@dataclass(frozen=True)
class ResourceReport:
    """Frozen summary of one run's resource account.

    Embedded in RunRecords (``extra["resources"]``) so the HTML
    report renders the memory/bandwidth panel and
    ``benchmarks/compare.py`` gates ``peak_alloc_b`` regressions.
    ``peak_alloc_b`` is the maximum per-phase peak (``None`` without
    memory tracking).
    """

    backend: str | None
    bytes_per_work: int
    phases: tuple[PhaseResource, ...]
    bytes_out: int
    bytes_in: int
    span_replay_bytes: int
    shard_hops: int
    peak_alloc_b: int | None

    def to_dict(self) -> dict[str, Any]:
        phases = []
        for ph in self.phases:
            touched = ph.work * self.bytes_per_work
            phases.append({
                **ph.to_dict(),
                "bytes_touched": touched,
                "bandwidth_bps": (touched / ph.wall_s
                                  if ph.wall_s > 0 and touched else None),
            })
        return {
            "backend": self.backend,
            "model": {"name": BYTES_TOUCHED_MODEL,
                      "bytes_per_work": self.bytes_per_work},
            "phases": phases,
            "ledger": {
                "bytes_out": self.bytes_out,
                "bytes_in": self.bytes_in,
                "span_replay_bytes": self.span_replay_bytes,
                "shard_hops": self.shard_hops,
            },
            "peak_alloc_b": self.peak_alloc_b,
        }

    def summary(self) -> str:
        """Human-readable account (what ``repro profile --memory``
        prints)."""
        def b(v: int | None) -> str:
            return "       -" if v is None else f"{v:>8,}"

        lines = ["memory    : per-phase allocations and bandwidth "
                 f"(model {BYTES_TOUCHED_MODEL}, "
                 f"{self.bytes_per_work} B/work)"]
        if self.phases:
            lines.append(
                f"  {'phase':<14} {'net_b':>8} {'peak_b':>8} "
                f"{'touched_b':>10} {'GB/s':>6}")
            for ph in self.phases:
                touched = ph.work * self.bytes_per_work
                bw = (touched / ph.wall_s / 1e9
                      if ph.wall_s > 0 and touched else None)
                lines.append(
                    f"  {ph.name:<14} {b(ph.alloc_net_b)} "
                    f"{b(ph.alloc_peak_b)} {touched:>10,} "
                    f"{'     -' if bw is None else f'{bw:6.2f}'}")
        if self.peak_alloc_b is not None:
            lines.append(f"peak alloc: {self.peak_alloc_b:,} B")
        if self.shard_hops:
            lines.append(
                f"shard hops: {self.shard_hops} "
                f"(out {self.bytes_out:,} B, in {self.bytes_in:,} B, "
                f"span replay {self.span_replay_bytes:,} B)")
        return "\n".join(lines)


class _PhaseToken:
    """Mutable frame for one in-flight measured phase."""

    __slots__ = ("name", "t0", "start_cur", "child_peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.t0 = 0.0
        self.start_cur: int | None = None
        self.child_peak = 0


_enabled = False
_track_memory = False
_started_tracemalloc = False
_ledger = ResourceLedger()
_frames: list[_PhaseToken] = []


def enabled() -> bool:
    """Whether resource accounting is currently on."""
    return _enabled


def memory_tracking() -> bool:
    """Whether per-phase tracemalloc accounting is on."""
    return _enabled and _track_memory


def enable(*, memory: bool = True) -> None:
    """Turn resource accounting on (``memory=False``: ledger only).

    With ``memory``, starts :mod:`tracemalloc` unless something else
    already did; :func:`disable` stops it only if this call started it.
    """
    global _enabled, _track_memory, _started_tracemalloc
    _enabled = True
    _track_memory = bool(memory)
    if _track_memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        _started_tracemalloc = True


def disable() -> None:
    """Turn resource accounting off (the ledger's data is kept)."""
    global _enabled, _track_memory, _started_tracemalloc
    _enabled = False
    _track_memory = False
    _frames.clear()
    if _started_tracemalloc:
        tracemalloc.stop()
        _started_tracemalloc = False


def reset() -> None:
    """Clear the accumulated ledger (enabled state unchanged)."""
    _ledger.reset()
    _frames.clear()


def configure_resources_from_env(
    env: str = "REPRO_RESOURCES", *, spec: str | None = None,
) -> bool:
    """Configure from ``$REPRO_RESOURCES``; returns True if it did.

    Accepted values: ``off`` / empty (leave disabled), ``ledger``
    (byte accounting only — cheap enough to keep on), ``full`` /
    ``memory`` / ``on`` / ``1`` (ledger plus per-phase tracemalloc).
    """
    if spec is None:
        spec = os.environ.get(env, "").strip()
    if not spec or spec == "off":
        return False
    if spec == "ledger":
        enable(memory=False)
        return True
    if spec in ("full", "memory", "on", "1"):
        enable(memory=True)
        return True
    raise ValueError(
        f"unrecognized {env}={spec!r}; use 'off', 'ledger', or 'full'"
    )


@contextmanager
def tracking(*, memory: bool = True,
             reset_ledger: bool = True) -> Iterator[ResourceLedger]:
    """Scoped resource accounting (tests, ``repro profile --memory``).

    Enables accounting for the block (resetting the ledger by
    default), restores the previous enabled state afterwards, and
    yields the ledger — still readable after the block exits (build a
    :class:`ResourceReport` with :func:`build_report`).
    """
    prev_enabled, prev_memory = _enabled, _track_memory
    enable(memory=memory)
    if reset_ledger:
        reset()
    try:
        yield _ledger
    finally:
        if prev_enabled:
            enable(memory=prev_memory)
        else:
            disable()


# -- per-phase accounting (hooked by repro.pram.cost.CostModel.phase) -------


def phase_begin(name: str) -> _PhaseToken | None:
    """Open a measured block; ``None`` when accounting is disabled.

    This is the one-flag-check fast path instrumented sites pay while
    the layer is off.
    """
    if not _enabled:
        return None
    tok = _PhaseToken(name)
    if _track_memory and tracemalloc.is_tracing():
        tok.start_cur, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
    _frames.append(tok)
    tok.t0 = time.perf_counter()
    return tok


def phase_end(token: _PhaseToken, ph: Any = None, sp: Any = None) -> None:
    """Close a measured block opened by :func:`phase_begin`.

    ``ph`` is the finished :class:`~repro.pram.cost.PhaseCost` (or
    ``None`` for blocks outside the cost model, e.g. the engine's
    sweep); ``sp`` the phase span to attach ``alloc_net_b`` /
    ``alloc_peak_b`` attributes to (a no-op span is fine).

    Peak semantics under nesting: ``tracemalloc.reset_peak`` is
    per-process, so each block resets it on entry and propagates its
    absolute high-water mark to the enclosing block on exit — an
    outer phase's peak is the max over its own and its children's.
    """
    wall = time.perf_counter() - token.t0
    # Pop through abandoned frames (an exception can unwind nested
    # phases before their phase_end runs).
    while _frames:
        if _frames.pop() is token:
            break
    net = peak = None
    if token.start_cur is not None and tracemalloc.is_tracing():
        cur, hi = tracemalloc.get_traced_memory()
        abs_peak = max(hi, token.child_peak, cur)
        net = cur - token.start_cur
        peak = max(0, abs_peak - token.start_cur)
        tracemalloc.reset_peak()
        if _frames:
            parent = _frames[-1]
            parent.child_peak = max(parent.child_peak, abs_peak)
        if sp is not None:
            sp.set(alloc_net_b=net, alloc_peak_b=peak)
    _ledger.phases.append(PhaseResource(
        name=token.name,
        time=int(ph.time) if ph is not None else 0,
        work=int(ph.work) if ph is not None else 0,
        steps=int(ph.steps) if ph is not None else 0,
        wall_s=wall,
        alloc_net_b=net,
        alloc_peak_b=peak,
    ))


# -- the shard-hop byte ledger (hooked by repro.parallel.executor) ----------


def account_shard(*, bytes_out: int, bytes_in: int,
                  span_replay_bytes: int = 0) -> None:
    """Record one shard hop's exact serialized payload bytes.

    ``bytes_out``: parent→worker submit payload (the raw ``NEXT``
    buffers); ``bytes_in``: worker→parent result payload (the raw
    tail buffers); ``span_replay_bytes``: pickled size of the worker's
    replayed span dicts.  Bumps the ``parallel.bytes_out`` /
    ``parallel.bytes_in`` / ``parallel.span_replay_bytes`` counters
    when telemetry is also enabled (metrics live in telemetry-land).
    """
    if not _enabled:
        return
    _ledger.bytes_out += int(bytes_out)
    _ledger.bytes_in += int(bytes_in)
    _ledger.span_replay_bytes += int(span_replay_bytes)
    _ledger.shard_hops += 1
    from .spans import enabled as telemetry_enabled

    if telemetry_enabled():
        METRICS.counter("parallel.bytes_out", unit="bytes").inc(bytes_out)
        METRICS.counter("parallel.bytes_in", unit="bytes").inc(bytes_in)
        METRICS.counter("parallel.span_replay_bytes",
                        unit="bytes").inc(span_replay_bytes)


# -- reading ----------------------------------------------------------------


def ledger() -> ResourceLedger:
    """The live accumulator (mutable; snapshot before handing out)."""
    return _ledger


def ledger_snapshot() -> dict[str, Any]:
    """The serialization ledger as a JSON-ready dict (service manifest)."""
    return _ledger.snapshot()


def build_report(*, backend: str | None = None) -> ResourceReport:
    """Freeze the accumulated ledger into a :class:`ResourceReport`.

    ``backend`` selects the bytes-touched model figure; phases keep
    their raw Brent work so a re-build under another model is exact.
    """
    peaks = [ph.alloc_peak_b for ph in _ledger.phases
             if ph.alloc_peak_b is not None]
    return ResourceReport(
        backend=backend,
        bytes_per_work=bytes_per_work(backend),
        phases=tuple(_ledger.phases),
        bytes_out=_ledger.bytes_out,
        bytes_in=_ledger.bytes_in,
        span_replay_bytes=_ledger.span_replay_bytes,
        shard_hops=_ledger.shard_hops,
        peak_alloc_b=max(peaks) if peaks else None,
    )
