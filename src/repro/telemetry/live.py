"""Live operational view: rolling-window aggregates and SLO burn.

The metrics registry (:mod:`repro.telemetry.metrics`) accumulates
since process start — the right shape for manifests and the perf
gate, the wrong shape for "is the service healthy *right now*".  This
module adds the time axis: a :class:`LiveAggregator` keeps a ring of
per-second buckets over a sliding window (default 60 s) and computes,
at snapshot time,

- request rate and windowed latency quantiles (p50/p95/p99),
- shed / timeout / error rates and the cache hit rate,
- **SLO error-budget burn**: against a configured objective
  (:class:`SloConfig`: a p95-style latency bound plus an availability
  target), every request in the window is classified good or bad; the
  burn rate is ``bad_fraction / error_budget`` — burn 1.0 spends the
  budget exactly as fast as the objective allows, 10x eats a month of
  budget in three days.

The aggregator is fed per request by the service's micro-batcher
(always on, like the ``service.*`` counters — a handful of dict
updates per request), published by ``GET /debug/vars`` (JSON) and the
``GET /debug/stream`` SSE feed, and rendered in a terminal by
``repro top``.  :func:`replay_jsonl` rebuilds the same aggregates
from a recorded telemetry JSONL file, so the dashboard works on a
post-mortem exactly as it does live.

Everything is deterministic under an injected ``clock`` (tests) and
bounded: the ring holds ``window_s / bucket_s`` buckets, each keeping
at most :data:`LiveAggregator.MAX_SAMPLES_PER_BUCKET` latency samples
(windowed quantiles degrade to a uniform prefix sample under extreme
rates, never to unbounded memory).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

__all__ = [
    "SloConfig",
    "LiveAggregator",
    "replay_jsonl",
    "render_dashboard",
    "sparkline",
]


@dataclass(frozen=True)
class SloConfig:
    """The service-level objective requests are judged against.

    A request is **good** when it was answered 200 within
    ``p95_latency_ms`` (cache hits included — they are real requests).
    ``availability`` is the target good-fraction; its complement is
    the error budget the burn rate is measured against.
    """

    p95_latency_ms: float = 500.0
    availability: float = 0.999

    @property
    def budget(self) -> float:
        """The error budget: tolerated bad-fraction (never zero)."""
        return max(1e-9, 1.0 - self.availability)

    def is_good(self, status: int, latency_ms: float) -> bool:
        return status == 200 and latency_ms <= self.p95_latency_ms

    def to_dict(self) -> dict[str, Any]:
        return {
            "p95_latency_ms": self.p95_latency_ms,
            "availability": self.availability,
            "budget": self.budget,
        }


class _Bucket:
    """One ``bucket_s`` of observations (a slot in the ring)."""

    __slots__ = ("epoch", "count", "by_status", "good", "bad",
                 "cache_hits", "cache_lookups", "latencies")

    def __init__(self) -> None:
        # ``None`` sentinel: a fresh slot matches no real epoch (an
        # integer sentinel like -1 is a *valid* epoch when the clock
        # starts near zero and the window reaches below it).
        self.reset(None)

    def reset(self, epoch: int | None) -> None:
        self.epoch = epoch
        self.count = 0
        self.by_status: dict[int, int] = {}
        self.good = 0
        self.bad = 0
        self.cache_hits = 0
        self.cache_lookups = 0
        self.latencies: list[float] = []


def _quantiles(samples: Sequence[float]) -> dict[str, float | None]:
    """Nearest-rank p50/p95/p99 (``None`` values when empty)."""
    ordered = sorted(samples)

    def at(q: float) -> float | None:
        if not ordered:
            return None
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return round(ordered[rank], 3)

    return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}


class LiveAggregator:
    """Sliding-window request aggregates over a ring of second buckets."""

    #: Latency samples kept per bucket; beyond it quantiles are computed
    #: over the bucket's first MAX samples (bounded memory under bursts).
    MAX_SAMPLES_PER_BUCKET = 256

    def __init__(
        self,
        *,
        slo: SloConfig | None = None,
        window_s: float = 60.0,
        bucket_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s <= 0 or bucket_s <= 0:
            raise ValueError("window_s and bucket_s must be > 0")
        self.slo = slo or SloConfig()
        self.window_s = float(window_s)
        self.bucket_s = float(bucket_s)
        self._clock = clock
        self._ring = [_Bucket() for _ in
                      range(max(1, math.ceil(window_s / bucket_s)))]
        self.total = 0  #: requests observed since construction

    # -- feeding -----------------------------------------------------------

    def _bucket_at(self, now: float) -> _Bucket:
        epoch = int(now // self.bucket_s)
        bucket = self._ring[epoch % len(self._ring)]
        if bucket.epoch != epoch:
            bucket.reset(epoch)
        return bucket

    def observe_request(
        self,
        *,
        latency_ms: float,
        status: int,
        cache_hits: int = 0,
        cache_lookups: int = 0,
        now: float | None = None,
    ) -> None:
        """Record one answered request (any status, shed included)."""
        now = self._clock() if now is None else now
        bucket = self._bucket_at(now)
        bucket.count += 1
        self.total += 1
        status = int(status)
        bucket.by_status[status] = bucket.by_status.get(status, 0) + 1
        if self.slo.is_good(status, latency_ms):
            bucket.good += 1
        else:
            bucket.bad += 1
        bucket.cache_hits += cache_hits
        bucket.cache_lookups += cache_lookups
        if status == 200 and len(bucket.latencies) < \
                self.MAX_SAMPLES_PER_BUCKET:
            bucket.latencies.append(float(latency_ms))

    # -- reading -----------------------------------------------------------

    def _live_buckets(self, now: float) -> list[_Bucket]:
        """Ring slots still inside the window, oldest first."""
        newest = int(now // self.bucket_s)
        oldest = newest - len(self._ring) + 1
        out = []
        for epoch in range(oldest, newest + 1):
            bucket = self._ring[epoch % len(self._ring)]
            if bucket.epoch == epoch:
                out.append(bucket)
        return out

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        """All windowed aggregates as one JSON-ready dict."""
        now = self._clock() if now is None else now
        buckets = self._live_buckets(now)
        count = sum(b.count for b in buckets)
        by_status: dict[str, int] = {}
        for b in buckets:
            for status, n in b.by_status.items():
                key = str(status)
                by_status[key] = by_status.get(key, 0) + n
        latencies = [v for b in buckets for v in b.latencies]
        good = sum(b.good for b in buckets)
        bad = sum(b.bad for b in buckets)
        hits = sum(b.cache_hits for b in buckets)
        lookups = sum(b.cache_lookups for b in buckets)

        def rate(pred: Callable[[int], bool]) -> float:
            n = sum(v for k, v in by_status.items() if pred(int(k)))
            return round(n / count, 4) if count else 0.0

        bad_rate = (bad / count) if count else 0.0
        burn = bad_rate / self.slo.budget
        return {
            "window_s": self.window_s,
            "count": count,
            "total": self.total,
            "rps": round(count / self.window_s, 3),
            "by_status": dict(sorted(by_status.items())),
            "latency_ms": _quantiles(latencies),
            "rates": {
                "shed": rate(lambda s: s in (429, 503)),
                "timeout": rate(lambda s: s == 504),
                "error": rate(lambda s: s == 0
                              or (500 <= s < 600 and s not in (503, 504))),
                "cache_hit": round(hits / lookups, 4) if lookups else 0.0,
            },
            "slo": {
                **self.slo.to_dict(),
                "good": good,
                "bad": bad,
                "bad_rate": round(bad_rate, 6),
                "burn_rate": round(burn, 3),
                "healthy": burn <= 1.0,
            },
            "per_bucket": [b.count for b in buckets],
        }


def replay_jsonl(path, *, slo: SloConfig | None = None) -> dict[str, Any]:
    """Rebuild live aggregates from a recorded telemetry JSONL file.

    Reads the ``service.request`` spans a traced server emitted (their
    attributes carry status / latency / cache counts), replays them
    into a :class:`LiveAggregator` whose window covers the whole
    recording, and returns the final snapshot — the post-mortem twin
    of ``GET /debug/vars``'s ``live`` section.
    """
    from .export import spans_from_jsonl

    requests = [s for s in spans_from_jsonl(path)
                if s.name == "service.request"]
    if not requests:
        agg = LiveAggregator(slo=slo)
        return agg.snapshot(now=0.0)
    ends = [(s.end if s.end is not None else s.start) for s in requests]
    t0, t1 = min(s.start for s in requests), max(ends)
    window = max(1.0, t1 - t0 + 1.0)
    agg = LiveAggregator(slo=slo, window_s=window,
                         clock=lambda: t1 - t0)
    for s, end in zip(requests, ends):
        attrs = s.attributes
        agg.observe_request(
            latency_ms=float(attrs.get("latency_ms", s.duration * 1e3)),
            status=int(attrs.get("status", 200)),
            cache_hits=int(attrs.get("cache_hits", 0)),
            cache_lookups=int(attrs.get("cache_lookups", 0)),
            now=end - t0,
        )
    return agg.snapshot()


# -- terminal rendering ------------------------------------------------------

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """A unicode block sparkline, newest value rightmost."""
    values = list(values)[-width:]
    if not values:
        return ""
    top = max(values) or 1.0
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int(v / top * (len(_SPARK) - 1) + 0.5))]
        for v in values
    )


def _bar(fraction: float, *, width: int = 24) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(fraction * width + 0.5)
    return "█" * filled + "·" * (width - filled)


def _fmt_ms(value: float | None) -> str:
    return "    --" if value is None else f"{value:8.1f}ms"


def render_dashboard(vars_doc: Mapping[str, Any], *,
                     title: str = "repro top") -> str:
    """Render one ``/debug/vars`` document as a fixed-width dashboard.

    Pure string-in/string-out (testable, replayable); ``repro top``
    wraps it in a clear-screen poll loop.
    """
    live = vars_doc.get("live", vars_doc)
    slo = live.get("slo", {})
    rates = live.get("rates", {})
    lat = live.get("latency_ms", {})
    totals = vars_doc.get("totals", {})
    uptime = vars_doc.get("uptime_s")
    burn = float(slo.get("burn_rate", 0.0))
    lines = [
        f"{title} — window {live.get('window_s', 0):g}s"
        + (f", uptime {uptime:.0f}s" if uptime is not None else ""),
        "",
        f"  requests  {live.get('count', 0):>7}  ({live.get('rps', 0):g}/s)"
        f"   total {live.get('total', totals.get('served', 0)):>8}",
        f"  activity  {sparkline(live.get('per_bucket', []))}",
        "",
        f"  latency   p50 {_fmt_ms(lat.get('p50'))}"
        f"   p95 {_fmt_ms(lat.get('p95'))}"
        f"   p99 {_fmt_ms(lat.get('p99'))}",
        f"  rates     shed {rates.get('shed', 0.0):6.2%}"
        f"   timeout {rates.get('timeout', 0.0):6.2%}"
        f"   error {rates.get('error', 0.0):6.2%}"
        f"   cache {rates.get('cache_hit', 0.0):6.2%}",
        "",
        f"  SLO       p95 ≤ {slo.get('p95_latency_ms', 0):g}ms @ "
        f"{slo.get('availability', 0):.3%} availability",
        f"  burn      [{_bar(burn)}] {burn:5.2f}x "
        + ("OK" if slo.get("healthy", True) else "BURNING"),
        f"  good/bad  {slo.get('good', 0)}/{slo.get('bad', 0)}"
        f"   budget {slo.get('budget', 0.0):g}",
    ]
    service = vars_doc.get("service")
    if service:
        lines += [
            "",
            f"  queue     depth {service.get('queue_depth', 0)}"
            f"   inflight {service.get('inflight_bytes', 0)}B"
            f"   draining {service.get('draining', False)}",
        ]
    if totals:
        lines += [
            f"  totals    served {totals.get('served', 0)}"
            f"   batches {totals.get('batches', 0)}"
            f"   degraded {totals.get('degraded', 0)}"
            f"   feedback {totals.get('feedback_records', 0)}",
        ]
    return "\n".join(lines) + "\n"
