"""Unified telemetry: spans, metrics, sinks, and persisted run records.

Every layer of the system reports into this package:

- :func:`repro.maximal_matching` opens a ``maximal_matching`` span and
  bumps the run/step/work counters;
- the cost model (:mod:`repro.pram.cost`) opens a ``phase.<name>``
  span per algorithm phase, so both the reference tier and the numpy
  engine emit their phase structure (and wall-clock per phase) with no
  per-backend plumbing;
- the PRAM machine's lockstep loop emits ``pram.run`` spans and
  step/fault counters; checkpoint recovery counts rollbacks;
- the resilience ladder emits one ``resilience.attempt`` event per
  attempt and a ``resilience.run`` span around the whole call;
- the batch driver records batch sizes.

Telemetry is **disabled by default and free when disabled**: the
instrumented call sites cost one global-flag check.  Enable it with
:func:`configure` (choosing a sink), the ``REPRO_TELEMETRY``
environment variable (``log`` or ``jsonl:PATH``), or the CLI's
``--telemetry`` option.  :func:`capture` is the test-friendly scoped
form.  See ``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .context import (
    TraceContext,
    current_trace,
    derive_trace_id,
    set_trace,
    using_trace,
)
from .live import LiveAggregator, SloConfig, render_dashboard, replay_jsonl
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .resources import (
    PhaseResource,
    ResourceLedger,
    ResourceReport,
    build_report as build_resource_report,
    configure_resources_from_env,
    ledger_snapshot,
    tracking as track_resources,
)
from .resources import enabled as resources_enabled
from .runrecord import (
    SCHEMA_VERSION,
    RunRecord,
    append_record,
    read_records,
    rotate_if_over,
    write_records,
)
from .sinks import InMemorySink, JsonlSink, LogSink, NullSink, Sink, TeeSink
from .spans import (
    Span,
    Tracer,
    configure,
    configure_from_env,
    current_span,
    disable,
    enabled,
    event,
    get_tracer,
    span,
)

# Imported after the core modules: profiling/export/report_html build on
# everything above (and reach into repro.pram lazily, inside functions).
from .export import (  # noqa: E402
    chrome_trace_events,
    machine_trace_events,
    prometheus_exposition,
    resource_counter_events,
    request_trace_events,
    request_trace_ids,
    request_trace_spans,
    spans_from_jsonl,
    write_chrome_trace,
    write_prometheus,
)
from .profiling import (  # noqa: E402
    PhaseProfile,
    ProfileReport,
    ProfiledRun,
    build_profile,
    occupancy_grid,
    profile_matching,
)
from .report_html import diff_records, render_report, write_report  # noqa: E402

__all__ = [
    # spans
    "Span", "Tracer", "span", "event", "enabled", "configure", "disable",
    "configure_from_env", "current_span", "get_tracer", "capture",
    # trace context
    "TraceContext", "derive_trace_id", "current_trace", "set_trace",
    "using_trace",
    # live view
    "LiveAggregator", "SloConfig", "render_dashboard", "replay_jsonl",
    # metrics
    "METRICS", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    # resources
    "PhaseResource", "ResourceLedger", "ResourceReport",
    "build_resource_report", "configure_resources_from_env",
    "ledger_snapshot", "track_resources", "resources_enabled",
    # sinks
    "Sink", "NullSink", "InMemorySink", "JsonlSink", "LogSink", "TeeSink",
    # run records
    "SCHEMA_VERSION", "RunRecord", "append_record", "write_records",
    "read_records", "rotate_if_over",
    # profiler
    "PhaseProfile", "ProfileReport", "ProfiledRun", "build_profile",
    "occupancy_grid", "profile_matching",
    # exporters
    "chrome_trace_events", "machine_trace_events",
    "resource_counter_events", "write_chrome_trace",
    "prometheus_exposition", "write_prometheus", "spans_from_jsonl",
    "request_trace_ids", "request_trace_spans", "request_trace_events",
    # HTML report
    "render_report", "write_report", "diff_records",
]


@contextmanager
def capture(*, reset_metrics: bool = True) -> Iterator[InMemorySink]:
    """Record telemetry into a fresh in-memory sink for one block.

    Enables telemetry for the duration, restoring the previous
    enabled/sink state afterwards.  With ``reset_metrics`` (default)
    the global registry is cleared on entry so the block observes only
    its own metrics.

    >>> import repro, repro.telemetry as telemetry
    >>> with telemetry.capture() as sink:
    ...     _ = repro.maximal_matching(repro.random_list(64, rng=0))
    >>> "maximal_matching" in sink.span_names()
    True
    """
    from . import spans as _spans

    prev_enabled = _spans._enabled
    prev_tracer = _spans._tracer
    sink = InMemorySink()
    if reset_metrics:
        METRICS.reset()
    configure(sink)
    try:
        yield sink
    finally:
        _spans._enabled = prev_enabled
        _spans._tracer = prev_tracer
