"""Request-scoped trace context: one identity per request, anywhere.

A :class:`TraceContext` names the *request* a piece of work belongs to
(``trace_id``) and, optionally, the span it should parent under
(``span_id``).  It exists so a request admitted by the service keeps
its identity across the boundaries the span stack cannot cross:

- the **asyncio boundary** — dozens of requests are in flight on one
  event loop, so a process-local span stack cannot attribute work to
  any one of them;
- the **thread boundary** — the micro-batcher computes fused batches
  in a worker thread;
- the **process boundary** — the sharded executor ships work to pool
  workers, whose captured spans are replayed into the parent trace.

The ambient context travels in a :class:`contextvars.ContextVar`, so
``async`` tasks inherit it naturally; threads and processes get it
handed to them explicitly (:func:`using_trace` around the work).
Spans started while a context is active inherit its ``trace_id`` (and,
when the span stack is empty, parent under its ``span_id``), which is
what lets an exported span soup be re-cut into one tree per request —
see :func:`repro.telemetry.export.request_trace_events`.

**Deterministic ids.**  :func:`derive_trace_id` hashes whatever
identifies the request — for the service, the workload's canonical
cache key plus an ingress sequence number — so the same seeded
workload replayed against a fresh process yields the *same* trace ids,
and two traces of one benchmark run can be diffed span-for-span.
"""

from __future__ import annotations

import contextvars
import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "TraceContext",
    "derive_trace_id",
    "current_trace",
    "set_trace",
    "using_trace",
]

#: Hex digits of the SHA-256 kept as a trace id (64 bits: collision-free
#: for any realistic number of requests, short enough to read in a UI).
TRACE_ID_HEX = 16


def derive_trace_id(*parts: Any) -> str:
    """A deterministic trace id from anything ``repr``-stable.

    Same parts, same id — across processes, runs, and hosts.  Callers
    include a per-stream sequence number when identical workloads may
    repeat within one trace sink.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8", "surrogatepass"))
        h.update(b"\x1f")
    return h.hexdigest()[:TRACE_ID_HEX]


@dataclass(frozen=True)
class TraceContext:
    """The identity a span inherits: which trace, and which parent.

    ``span_id`` is the id of the span new root-level work should
    parent under (``None``: tag spans with the trace id but leave
    their parentage to the span stack — the worker-process form, where
    the parent-side shard span does not exist yet).
    """

    trace_id: str
    span_id: int | None = None

    def child(self, span_id: int | None) -> "TraceContext":
        """The same trace, parented under ``span_id``."""
        return TraceContext(self.trace_id, span_id)

    def to_dict(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}


_CURRENT: contextvars.ContextVar[TraceContext | None] = \
    contextvars.ContextVar("repro_trace_context", default=None)


def current_trace() -> TraceContext | None:
    """The ambient trace context (``None`` outside any request)."""
    return _CURRENT.get()


def set_trace(ctx: TraceContext | None) -> contextvars.Token:
    """Install ``ctx`` as the ambient context; returns the reset token."""
    return _CURRENT.set(ctx)


@contextmanager
def using_trace(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Scope the ambient trace context for one block (thread-safe)."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
