"""Process-local metrics: counters, gauges, and summary histograms.

The registry is a flat name -> metric map shared by the whole process
(one per interpreter, like the tracer).  Instrumented code holds no
metric objects of its own; it asks the registry by name, so a metric
exists exactly when something incremented it and ``snapshot()`` shows
only what actually ran.

Histograms keep summary statistics (count / total / min / max), not
samples: enough for "wall-clock per phase" and "batch sizes" without
unbounded memory.  Everything here is deliberately dependency-free and
cheap; the *zero*-overhead guarantee for disabled telemetry lives in
:mod:`repro.telemetry.spans` (instrumented call sites check the global
enabled flag before touching the registry).
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """Monotonically increasing count (runs, steps, faults, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (current ladder rung, live processors, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float | None = None

    def set(self, value: int | float) -> None:
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Summary statistics of an observed distribution."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: int | float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Flat name -> metric registry with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, kind: str):
        metric = self._metrics.get(name)
        cls = _METRIC_TYPES[kind]
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All metrics as plain JSON-ready dicts, sorted by name."""
        return {
            name: self._metrics[name].to_dict()
            for name in sorted(self._metrics)
        }

    def reset(self) -> None:
        """Drop every metric (tests and fresh capture windows)."""
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: object) -> bool:
        return name in self._metrics


#: The process-wide registry all instrumented code reports into.
METRICS = MetricsRegistry()
