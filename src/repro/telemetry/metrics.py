"""Process-local metrics: counters, gauges, and summary histograms.

The registry is a flat name -> metric map shared by the whole process
(one per interpreter, like the tracer).  Instrumented code holds no
metric objects of its own; it asks the registry by name, so a metric
exists exactly when something incremented it and ``snapshot()`` shows
only what actually ran.

Histograms keep summary statistics (count / total / min / max) plus a
*bounded* sample reservoir for quantiles (p50/p95/p99): enough for
"wall-clock per phase" and "batch sizes" without unbounded memory.
The reservoir is deterministic — replacement uses a per-histogram
seeded PRNG — so snapshots of identical observation sequences are
identical.  Everything here is deliberately dependency-free and
cheap; the *zero*-overhead guarantee for disabled telemetry lives in
:mod:`repro.telemetry.spans` (instrumented call sites check the global
enabled flag before touching the registry).
"""

from __future__ import annotations

import random
from typing import Any, Dict

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """Monotonically increasing count (runs, steps, faults, ...).

    ``unit`` is an optional measurement unit ("bytes", "seconds");
    the Prometheus exporter uses it to enforce the
    ``<name>_<unit>_total`` naming convention and to annotate the
    ``# HELP`` line.
    """

    __slots__ = ("name", "value", "unit")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.value = 0
        self.unit = unit

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"type": "counter", "value": self.value}
        if self.unit:
            d["unit"] = self.unit
        return d


class Gauge:
    """Last-written value (current ladder rung, live processors, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float | None = None

    def set(self, value: int | float) -> None:
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Summary statistics + bounded quantile reservoir of a distribution.

    Up to :data:`SAMPLE_CAP` observations are kept verbatim (quantiles
    are then exact); beyond that, classic reservoir sampling with a
    per-histogram seeded PRNG keeps a uniform — and deterministic —
    sample of everything seen.
    """

    #: Reservoir size: quantiles are exact up to this many observations.
    SAMPLE_CAP = 2048

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "_samples", "_rng")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self._samples: list[float] = []
        self._rng = random.Random(0)

    def observe(self, value: int | float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        if len(self._samples) < self.SAMPLE_CAP:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.SAMPLE_CAP:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Nearest-rank quantile over the reservoir (``None`` if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return ordered[rank]

    def quantiles(self) -> dict[str, float | None]:
        """The standard p50/p95/p99 summary (``None`` values if empty)."""
        ordered = sorted(self._samples)

        def at(q: float) -> float | None:
            if not ordered:
                return None
            rank = min(len(ordered) - 1,
                       max(0, int(q * len(ordered) + 0.5) - 1))
            return ordered[rank]

        return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            **self.quantiles(),
        }


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Flat name -> metric registry with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, kind: str):
        metric = self._metrics.get(name)
        cls = _METRIC_TYPES[kind]
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, unit: str = "") -> Counter:
        c = self._get(name, "counter")
        if unit and not c.unit:
            c.unit = unit
        return c

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All metrics as plain JSON-ready dicts, sorted by name."""
        return {
            name: self._metrics[name].to_dict()
            for name in sorted(self._metrics)
        }

    def items(self) -> list[tuple[str, Any]]:
        """``(name, metric)`` pairs sorted by name (exporter access)."""
        return [(name, self._metrics[name]) for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every metric (tests and fresh capture windows)."""
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: object) -> bool:
        return name in self._metrics


#: The process-wide registry all instrumented code reports into.
METRICS = MetricsRegistry()
