"""The PRAM profiler: abstract Brent cost correlated with wall-clock.

A :class:`ProfileReport` answers the three questions a schedule tuner
asks, in one structured object:

1. **Where does the abstract cost go?**  The exact Brent
   :class:`~repro.pram.cost.CostReport` phases (time / work / steps),
   with each phase's share of total PRAM time.
2. **Where does the wall-clock go?**  Every cost-model phase is also a
   ``phase.<name>`` span when telemetry is on, so the profiler pairs
   each :class:`~repro.pram.cost.PhaseCost` with its measured span
   duration and its share of the root ``maximal_matching`` span.  A
   phase that is cheap in Brent steps but hot in wall-clock (or vice
   versa) is exactly the kind of asymmetry this view exposes —
   Match2's sort dominating, Match4 deleting it.
3. **How busy is the machine?**  From an instruction-level run's
   memory trace (``trace=True``), overall utilization plus a
   processors × step-window *occupancy grid* (fraction of busy
   processor-steps per cell) — the data behind the HTML report's
   utilization heatmap and the Perfetto per-processor tracks.

:func:`profile_matching` is the one-shot entry point (used by
``repro profile`` and the selfcheck): run an algorithm under a scoped
telemetry capture, optionally run its instruction-level twin traced,
and correlate everything into a :class:`ProfileReport`.

``ProfileReport.validate()`` asserts the structural invariants the
thirteenth selfcheck relies on: phase wall-clock sums bounded by the
root span, utilization and occupancy in ``[0, 1]``, phase Brent times
bounded by the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from .metrics import METRICS
from .spans import Span

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from ..core.result import MatchResult
    from ..pram.machine import MachineReport

__all__ = [
    "PhaseProfile",
    "ProfileReport",
    "ProfiledRun",
    "build_profile",
    "occupancy_grid",
    "profile_matching",
]


@dataclass(frozen=True)
class PhaseProfile:
    """One algorithm phase: exact Brent cost paired with wall-clock.

    ``wall_s`` is ``None`` when no span was captured for the phase
    (telemetry disabled, or a phase absorbed from a sub-run's report).
    """

    name: str
    time: int
    work: int
    steps: int
    brent_share: float
    wall_s: float | None = None
    wall_share: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "time": self.time,
            "work": self.work,
            "steps": self.steps,
            "brent_share": self.brent_share,
            "wall_s": self.wall_s,
            "wall_share": self.wall_share,
        }


@dataclass(frozen=True)
class ProfileReport:
    """Structured profile of one run (see module docstring).

    Attributes
    ----------
    algorithm / backend / n / p:
        Workload identity.
    time / work:
        Brent totals from the :class:`CostReport`.
    wall_s:
        Root-span (``maximal_matching``) wall-clock, ``None`` if no
        root span was captured.
    phases:
        Per-phase Brent cost + wall-clock correlation, in order.
    phase_wall_s:
        Wall-clock summed over *top-level* phase spans (nested phases
        excluded, so the sum is comparable to ``wall_s``).
    utilization / machine_steps / machine_procs / occupancy:
        Instruction-level machine statistics when a traced machine run
        was profiled (else ``None``); ``occupancy`` is the
        processors × step-window busy-fraction grid.
    span_quantiles:
        ``span.<name>.seconds`` p50/p95/p99 from the metrics registry,
        keyed by span name.
    """

    algorithm: str
    backend: str
    n: int
    p: int
    time: int
    work: int
    wall_s: float | None
    phases: tuple[PhaseProfile, ...]
    phase_wall_s: float | None = None
    utilization: float | None = None
    machine_steps: int | None = None
    machine_procs: int | None = None
    occupancy: tuple[tuple[float, ...], ...] | None = None
    span_quantiles: Mapping[str, Mapping[str, float | None]] = \
        field(default_factory=dict)

    # -- invariants ----------------------------------------------------

    def validate(self) -> "ProfileReport":
        """Check structural invariants; returns ``self`` if they hold.

        Raises ``ValueError`` on the first violation.  Invariants:

        - phase Brent times sum to at most the total Brent time;
        - top-level phase wall-clock sums to at most the root span's
          wall-clock (within float tolerance);
        - utilization and every occupancy cell lie in ``[0, 1]``;
        - every share lies in ``[0, 1]``.
        """
        def check(ok: bool, what: str) -> None:
            if not ok:
                raise ValueError(f"profile invariant violated: {what}")

        check(sum(ph.time for ph in self.phases) <= self.time,
              "phase Brent times exceed the run total")
        check(sum(ph.work for ph in self.phases) <= self.work,
              "phase Brent work exceeds the run total")
        for ph in self.phases:
            check(0.0 <= ph.brent_share <= 1.0,
                  f"phase {ph.name!r} brent_share outside [0, 1]")
            if ph.wall_share is not None:
                check(0.0 <= ph.wall_share <= 1.0 + 1e-9,
                      f"phase {ph.name!r} wall_share outside [0, 1]")
        if self.wall_s is not None and self.phase_wall_s is not None:
            check(self.phase_wall_s <= self.wall_s * (1.0 + 1e-6) + 1e-9,
                  "phase wall-clock sum exceeds the root span")
        if self.utilization is not None:
            check(0.0 <= self.utilization <= 1.0,
                  "utilization outside [0, 1]")
        for row in self.occupancy or ():
            for cell in row:
                check(0.0 <= cell <= 1.0, "occupancy cell outside [0, 1]")
        return self

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "n": self.n,
            "p": self.p,
            "time": self.time,
            "work": self.work,
            "wall_s": self.wall_s,
            "phase_wall_s": self.phase_wall_s,
            "phases": [ph.to_dict() for ph in self.phases],
            "utilization": self.utilization,
            "machine_steps": self.machine_steps,
            "machine_procs": self.machine_procs,
            "occupancy": [list(row) for row in self.occupancy]
            if self.occupancy is not None else None,
            "span_quantiles": {k: dict(v)
                               for k, v in self.span_quantiles.items()},
        }

    def summary(self) -> str:
        """Human-readable profile table (what ``repro profile`` prints)."""
        def ms(v: float | None) -> str:
            return "      -" if v is None else f"{v * 1e3:7.3f}"

        def pct(v: float | None) -> str:
            return "    -" if v is None else f"{v * 100:4.1f}%"

        lines = [
            f"profile   : {self.algorithm}/{self.backend} "
            f"n={self.n} p={self.p}",
            f"Brent     : time={self.time} work={self.work} "
            f"({self.work / max(self.n, 1):.2f}/node)",
            f"wall      : {ms(self.wall_s)} ms root span",
        ]
        if self.phases:
            lines.append(
                f"  {'phase':<14} {'time':>8} {'share':>6} "
                f"{'wall_ms':>8} {'share':>6}"
            )
            for ph in self.phases:
                lines.append(
                    f"  {ph.name:<14} {ph.time:>8} {pct(ph.brent_share):>6} "
                    f"{ms(ph.wall_s):>8} {pct(ph.wall_share):>6}"
                )
        if self.utilization is not None:
            lines.append(
                f"machine   : {self.machine_procs} procs x "
                f"{self.machine_steps} EREW steps, "
                f"utilization {self.utilization:.3f}"
            )
        return "\n".join(lines)


def occupancy_grid(
    report: "MachineReport",
    *,
    max_procs: int = 64,
    step_buckets: int = 32,
    step_range: tuple[int, int] | None = None,
) -> tuple[tuple[float, ...], ...]:
    """Processors × step-window busy fractions from a machine trace.

    Each cell is the fraction of that processor's steps inside the
    window bucket that issued a read or write — the data behind the
    utilization heatmap.  Windowing matches the
    :mod:`repro.pram.trace` renderers (``step_range`` semantics are
    shared via :func:`repro.pram.trace.select_steps`).
    """
    from ..pram.trace import select_steps

    steps = select_steps(report, step_range=step_range)
    nproc = min(report.nprocs, max_procs)
    if not steps or nproc == 0:
        return ()
    buckets = min(step_buckets, len(steps))
    busy = [[0] * buckets for _ in range(nproc)]
    width = [0] * buckets
    for idx, t in enumerate(steps):
        b = idx * buckets // len(steps)
        width[b] += 1
        for pid in t.reads:
            if pid < nproc:
                busy[pid][b] += 1
        for pid in t.writes:
            if pid < nproc:
                busy[pid][b] += 1
    return tuple(
        tuple(round(busy[pid][b] / width[b], 4) if width[b] else 0.0
              for b in range(buckets))
        for pid in range(nproc)
    )


def _span_quantiles(names: Iterable[str]) -> dict[str, dict[str, float | None]]:
    """p50/p95/p99 of each ``span.<name>.seconds`` histogram present."""
    out: dict[str, dict[str, float | None]] = {}
    for name in sorted(set(names)):
        metric = f"span.{name}.seconds"
        if metric in METRICS:
            out[name] = METRICS.histogram(metric).quantiles()
    return out


def build_profile(
    result: "MatchResult",
    spans: Sequence[Span],
    *,
    machine_report: "MachineReport | None" = None,
) -> ProfileReport:
    """Correlate a run's :class:`CostReport` with its captured spans.

    ``spans`` is what a :class:`~repro.telemetry.InMemorySink` collected
    around the run (finish order).  Phases pair with ``phase.<name>``
    spans positionally per name — the cost model emits them in
    execution order, so the k-th ``phase.sort`` span is the k-th
    ``sort`` phase.  Phases absorbed from sub-runs may outnumber the
    spans; they simply get no wall-clock.
    """
    report = result.report
    n = int(result.matching.lst.n)

    root = next((s for s in spans if s.name == "maximal_matching"), None)
    wall_s = root.duration if root is not None else None

    phase_spans: dict[str, list[Span]] = {}
    phase_ids = set()
    for s in spans:
        if s.name.startswith("phase."):
            phase_spans.setdefault(s.name[len("phase."):], []).append(s)
            phase_ids.add(s.span_id)
    # Top-level phase spans only (a nested phase's wall-clock is
    # already inside its parent's), so the sum is comparable to the
    # root span.
    top_wall = sum(
        s.duration
        for lst in phase_spans.values()
        for s in lst
        if s.parent_id not in phase_ids
    )
    phase_wall_s = top_wall if phase_spans else None

    taken: dict[str, int] = {}
    phases = []
    for ph in report.phases:
        k = taken.get(ph.name, 0)
        taken[ph.name] = k + 1
        sp = None
        if ph.name in phase_spans and k < len(phase_spans[ph.name]):
            sp = phase_spans[ph.name][k]
        ph_wall = sp.duration if sp is not None else None
        phases.append(PhaseProfile(
            name=ph.name,
            time=int(ph.time),
            work=int(ph.work),
            steps=int(ph.steps),
            brent_share=ph.time / report.time if report.time else 0.0,
            wall_s=ph_wall,
            wall_share=(ph_wall / wall_s
                        if ph_wall is not None and wall_s else None),
        ))

    util = steps = procs = grid = None
    if machine_report is not None and machine_report.trace is not None:
        from ..pram.trace import utilization as machine_utilization

        util = machine_utilization(machine_report)
        steps = machine_report.steps
        procs = machine_report.nprocs
        grid = occupancy_grid(machine_report)

    return ProfileReport(
        algorithm=result.algorithm,
        backend=result.backend,
        n=n,
        p=int(report.p),
        time=int(report.time),
        work=int(report.work),
        wall_s=wall_s,
        phases=tuple(phases),
        phase_wall_s=phase_wall_s,
        utilization=util,
        machine_steps=steps,
        machine_procs=procs,
        occupancy=grid,
        span_quantiles=_span_quantiles(
            s.name for s in spans if s.end is not None),
    )


@dataclass(frozen=True)
class ProfiledRun:
    """Everything one :func:`profile_matching` call produced.

    ``resources`` is the run's
    :class:`~repro.telemetry.resources.ResourceReport` when the
    profiler ran with ``resources=True`` (``repro profile --memory``),
    else ``None``.
    """

    profile: ProfileReport
    result: "MatchResult"
    spans: tuple[Span, ...]
    metrics: Mapping[str, Mapping[str, Any]]
    machine_report: "MachineReport | None" = None
    resources: Any = None


def profile_matching(
    lst,
    *,
    algorithm: str = "match4",
    backend: str = "reference",
    p: int = 256,
    machine_trace: bool = False,
    machine_list=None,
    resources: bool = False,
    **kwargs: Any,
) -> ProfiledRun:
    """Profile one maximal-matching run end-to-end.

    Runs :func:`repro.maximal_matching` under a scoped telemetry
    capture (phase spans + metrics), and — with ``machine_trace`` —
    additionally runs the *instruction-level* twin (``run_match1`` /
    ``run_match4``, EREW, ``trace=True``) to measure real machine
    utilization and the occupancy grid.  ``machine_list`` substitutes a
    smaller list for the machine run (the lockstep simulator is
    orders of magnitude slower than the vectorized tiers, so profiling
    a large ``lst`` with a small machine twin is the normal mode).
    ``resources`` additionally runs the matching under scoped resource
    accounting (:mod:`repro.telemetry.resources`, tracemalloc on) and
    attaches the frozen :class:`ResourceReport`.

    Returns a :class:`ProfiledRun`; its ``profile`` has been built but
    **not** validated — call ``profile.validate()`` to assert the
    invariants.
    """
    from . import capture
    from . import resources as _resources
    from ..core.maximal_matching import maximal_matching
    from contextlib import nullcontext

    machine_report = None
    resource_report = None
    scope = (_resources.tracking(memory=True) if resources
             else nullcontext())
    with capture() as sink, scope:
        result = maximal_matching(
            lst, algorithm=algorithm, backend=backend, p=p, **kwargs)
        if resources:
            resource_report = _resources.build_report(
                backend=result.backend)
        if machine_trace:
            machine_report = _run_machine_twin(
                machine_list if machine_list is not None else lst,
                algorithm, kwargs)
        spans = tuple(sink.spans)
        metrics = METRICS.snapshot()
        profile = build_profile(
            result, spans, machine_report=machine_report)
    return ProfiledRun(
        profile=profile,
        result=result,
        spans=spans,
        metrics=metrics,
        machine_report=machine_report,
        resources=resource_report,
    )


def _run_machine_twin(lst, algorithm: str, kwargs: Mapping[str, Any]):
    """Traced instruction-level run of ``algorithm`` (match1/match4)."""
    from ..pram.algorithms import run_match1, run_match4

    if algorithm == "match4":
        _, report = run_match4(
            lst, i=int(kwargs.get("iterations", 2)), mode="EREW",
            trace=True)
    elif algorithm == "match1":
        _, report = run_match1(lst, mode="EREW", trace=True)
    else:
        raise ValueError(
            f"machine_trace is only available for the instruction-level "
            f"algorithms ('match1', 'match4'), not {algorithm!r}"
        )
    return report
