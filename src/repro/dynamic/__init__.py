"""Dynamic lists: matchings maintained under churn, repaired locally.

The static tier answers "what is a maximal matching of this list";
this package keeps the answer current while the list mutates.  See
:mod:`repro.dynamic.session` for the arena and the O(1)-radius repair,
:mod:`repro.dynamic.churn` for seeded edit-stream workloads, and
:mod:`repro.dynamic.policy` for the planner-priced repair-vs-recompute
maintenance knob.
"""

from .churn import (
    CHURN_LAYOUTS,
    ChurnConfig,
    ChurnResult,
    ChurnSession,
    make_churn_list,
)
from .policy import (
    MaintenanceDecision,
    decide_maintenance,
    install_maintenance_rule,
)
from .session import (
    ComponentSnapshot,
    DynamicList,
    RepairLedger,
    StabilizeReport,
)

__all__ = [
    "CHURN_LAYOUTS",
    "ChurnConfig",
    "ChurnResult",
    "ChurnSession",
    "ComponentSnapshot",
    "DynamicList",
    "MaintenanceDecision",
    "RepairLedger",
    "StabilizeReport",
    "decide_maintenance",
    "install_maintenance_rule",
    "make_churn_list",
]
