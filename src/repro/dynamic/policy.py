"""The maintenance knob: local repair vs from-scratch recompute.

A dynamic session absorbing a batch of ``k`` edits on an ``n``-node
arena has two ways to keep its matching maximal: repair each edit
locally (O(1) moves per edit, pure-Python worklist) or let the batch
invalidate the matching and recompute from scratch with a static
engine.  Which wins is a planner question — the same
price-the-candidates-and-pick shape as ``backend="auto"`` — so it is
asked through the planner: a registered rule adds a synthetic
``repair`` plan priced at ``k × `` :data:`REPAIR_SECONDS_PER_EDIT`
next to the recompute backends the stock rules already price, under
``profile="dynamic"`` with the batch size in ``num_lists``.

Small batches pick ``repair`` (k edits cost less than one engine
launch); batches comparable to ``n`` pick a recompute backend.  The
decision carries full provenance (every candidate, the pricing rule)
exactly like any other planner decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from ..planner.core import PlannerDecision, decide_for
from ..planner.policy import ExecutionPolicy
from ..planner.rules import (
    PlanContext,
    ScoredPlan,
    register_planner_rule,
    planner_rules,
)

__all__ = [
    "DYNAMIC_PROFILE",
    "MaintenanceDecision",
    "REPAIR_SECONDS_PER_EDIT",
    "decide_maintenance",
    "install_maintenance_rule",
    "maintenance_rule",
]

#: The planner profile under which the repair plan competes.
DYNAMIC_PROFILE = "dynamic"

#: Cold-start prior for one locally-repaired edit: a handful of
#: worklist pops and bit flips in pure Python.  Same order of
#: magnitude as ~100 interpreted operations; deliberately pessimistic
#: so tiny recomputes still win for large batches.
REPAIR_SECONDS_PER_EDIT = 2.5e-5

#: Name the rule registers under (visible in decision provenance).
RULE_NAME = "dynamic_repair"


def maintenance_rule(
    ctx: PlanContext, plans: List[ScoredPlan]
) -> List[ScoredPlan]:
    """Add the ``repair`` candidate for dynamic-profile decisions.

    Inert for every other profile, so ``backend="auto"`` matching
    calls never see a phantom backend.
    """
    if ctx.profile != DYNAMIC_PROFILE:
        return plans
    batch = max(1, int(ctx.num_lists))
    score = batch * REPAIR_SECONDS_PER_EDIT
    out = list(plans)
    out.append(ScoredPlan(
        backend="repair",
        score=score,
        rule=RULE_NAME,
        source="prior",
        reason=(f"local repair: {batch} edit(s) x "
                f"{REPAIR_SECONDS_PER_EDIT:.1e}s/edit"),
    ))
    return out


def install_maintenance_rule() -> None:
    """Register :func:`maintenance_rule` once (idempotent)."""
    if any(name == RULE_NAME for name, _ in planner_rules()):
        return
    # After "prior" so recompute candidates are already priced when
    # the repair plan joins; before "worker_cap" like any scorer.
    register_planner_rule(RULE_NAME, maintenance_rule, after="prior")


@dataclass(frozen=True)
class MaintenanceDecision:
    """How to keep the matching maximal across one edit batch."""

    strategy: str                 # "repair" | "recompute"
    backend: str | None           # engine for recompute, None for repair
    batch_size: int
    decision: PlannerDecision

    def to_dict(self) -> dict[str, Any]:
        return {
            "strategy": self.strategy,
            "backend": self.backend,
            "batch_size": self.batch_size,
            "planner": self.decision.to_extra(),
        }


def decide_maintenance(
    *,
    n: int,
    batch_size: int,
    algorithm: str = "match4",
    p: int = 1,
    policy: ExecutionPolicy | None = None,
) -> MaintenanceDecision:
    """Pick repair vs recompute for ``batch_size`` edits on ``n`` nodes.

    Routes through the planner rule pipeline (installing the dynamic
    rule on first use) so history, priors, and policy overrides all
    apply to the recompute candidates.
    """
    install_maintenance_rule()
    decision = decide_for(
        policy, algorithm=algorithm, n=max(1, int(n)), p=p,
        profile=DYNAMIC_PROFILE, num_lists=max(1, int(batch_size)))
    if decision.backend == "repair":
        return MaintenanceDecision(
            strategy="repair", backend=None,
            batch_size=int(batch_size), decision=decision)
    return MaintenanceDecision(
        strategy="recompute", backend=decision.backend,
        batch_size=int(batch_size), decision=decision)
