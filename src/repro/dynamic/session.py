"""Dynamic linked lists: a pointer arena with a maintained matching.

The static tier computes a maximal matching of a frozen list; this
module keeps one *alive* while the list mutates.  A
:class:`DynamicList` owns an arena of nodes — a forest of disjoint
paths, since edits like :meth:`~DynamicList.split` and
:meth:`~DynamicList.splice_out` legitimately leave several components —
plus a ``chosen`` bit per node: ``chosen[v]`` means the pointer leaving
``v`` is in the matching (the same tails-of-chosen-pointers convention
the static :class:`~repro.core.matching.Matching` uses).

Every edit repairs the matching *locally*.  The repair is a worklist
confined to the radius-1 neighborhood of the edited pointers: a node is
re-examined only when an incident pointer appeared/vanished or a
neighbor's bit flipped.  Because an added pointer's endpoints were both
uncovered (so adding never uncovers anyone) and drops happen only at
edit-inflicted conflicts, the cascade cannot leave the edit
neighborhood — each edit costs O(1) *moves* (bit flips) in the
move-complexity yardstick of the self-stabilization literature
(Cohen/Pilard/Sohier et al., arXiv:1709.04811; arXiv:1611.05616).
The :class:`RepairLedger` counts those moves, plus the nodes the
worklist examined ("touched"), per operation kind.

For arbitrary corruption (fault injection flipping ``chosen`` bits at
random), :meth:`DynamicList.stabilize` delegates to the batch
self-stabilizer :func:`repro.resilience.repair_matching` per component
— the dynamic tier's convergence guarantee is inherited from it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

from .._util import next_power_of_two
from ..errors import InvalidParameterError, VerificationError
from ..lists.linked_list import NIL, LinkedList
from ..telemetry.metrics import METRICS
from ..telemetry.spans import enabled as telemetry_enabled, event as telemetry_event

__all__ = [
    "ComponentSnapshot",
    "DynamicList",
    "RepairLedger",
    "StabilizeReport",
]

#: Operations the ledger accounts separately.
EDIT_OPS = (
    "add_node",
    "insert_after",
    "delete",
    "split",
    "concat",
    "splice_out",
    "splice_in",
)


@dataclass
class RepairLedger:
    """Move/touched-node accounting for incremental repair.

    ``moves`` is the Cohen/Pilard/Sohier yardstick — one move per
    ``chosen``-bit flip; ``touched`` counts worklist pops (nodes whose
    neighborhood was examined).  ``max_moves_per_edit`` is the quantity
    the O(1)-neighborhood bound constrains.
    """

    edits: int = 0
    moves: int = 0
    touched: int = 0
    recomputes: int = 0
    stabilizations: int = 0
    suppressed: int = 0
    maintenance_moves: int = 0
    max_moves_per_edit: int = 0
    max_touched_per_edit: int = 0
    per_op: dict[str, dict[str, int]] = field(default_factory=dict)

    def _bump(self, op: str, moves: int, touched: int) -> None:
        slot = self.per_op.setdefault(
            op, {"edits": 0, "moves": 0, "touched": 0})
        slot["edits"] += 1
        slot["moves"] += int(moves)
        slot["touched"] += int(touched)
        if telemetry_enabled():
            METRICS.counter(f"dynamic.op.{op}").inc()
            if moves:
                METRICS.counter("dynamic.repair.moves").inc(int(moves))
            if touched:
                METRICS.counter("dynamic.repair.touched").inc(int(touched))
            telemetry_event("dynamic.repair", op=op, moves=int(moves),
                            touched=int(touched))

    def record(self, op: str, moves: int, touched: int) -> None:
        """Account one *edit* (contributes to the per-edit move bound)."""
        self.edits += 1
        self.moves += int(moves)
        self.touched += int(touched)
        self.max_moves_per_edit = max(self.max_moves_per_edit, int(moves))
        self.max_touched_per_edit = max(self.max_touched_per_edit,
                                        int(touched))
        if telemetry_enabled():
            METRICS.counter("dynamic.edits").inc()
        self._bump(op, moves, touched)

    def record_maintenance(self, op: str, moves: int, touched: int) -> None:
        """Account a bulk pass (recompute/stabilize) — not an edit, so
        it is kept out of the per-edit maxima and amortized averages."""
        self.maintenance_moves += int(moves)
        self._bump(op, moves, touched)

    def amortized_moves(self) -> float:
        """Average moves per edit (0.0 before any edit)."""
        return self.moves / self.edits if self.edits else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "edits": self.edits,
            "moves": self.moves,
            "touched": self.touched,
            "recomputes": self.recomputes,
            "stabilizations": self.stabilizations,
            "suppressed": self.suppressed,
            "maintenance_moves": self.maintenance_moves,
            "max_moves_per_edit": self.max_moves_per_edit,
            "max_touched_per_edit": self.max_touched_per_edit,
            "amortized_moves": self.amortized_moves(),
            "per_op": {k: dict(v) for k, v in sorted(self.per_op.items())},
        }


@dataclass(frozen=True)
class ComponentSnapshot:
    """One component frozen to the static tier's vocabulary.

    ``nodes[i]`` is the arena address of local address ``i``; local
    addresses preserve the arena's address order, so the snapshot keeps
    whatever scatter churn produced (the numpy backend then exercises
    the same gather patterns it would on a generator layout).
    """

    lst: LinkedList
    tails: np.ndarray
    nodes: np.ndarray

    @property
    def n(self) -> int:
        return self.lst.n


@dataclass(frozen=True)
class StabilizeReport:
    """What one :meth:`DynamicList.stabilize` pass did."""

    components: int
    moves: int
    touched: int
    rounds: int
    dead_bits_cleared: int


class DynamicList:
    """A mutable forest of paths with a maintained maximal matching.

    Nodes live at stable arena addresses; deleting a node frees its
    slot for reuse.  All six edit operations relink pointers in O(1)
    and then run the local repair worklist; per-edit repair cost is
    recorded in :attr:`ledger`.

    Parameters
    ----------
    maintain:
        When false, edits keep the matching *valid* (bits on vanished
        pointers are dropped) but skip the maximality-restoring repair
        — the "recompute" maintenance strategy, where a periodic
        :meth:`recompute` restores maximality in bulk.
    """

    def __init__(self, *, capacity: int = 8, maintain: bool = True) -> None:
        capacity = max(8, next_power_of_two(max(1, capacity)))
        self._next = np.full(capacity, NIL, dtype=np.int64)
        self._pred = np.full(capacity, NIL, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.int64)
        self._chosen = np.zeros(capacity, dtype=bool)
        self._live = np.zeros(capacity, dtype=bool)
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._n_live = 0
        self._value_seq = 0
        self.maintain = bool(maintain)
        self._suppress_next = False
        self.ledger = RepairLedger()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_list(
        cls,
        lst: LinkedList,
        *,
        tails: Sequence[int] | np.ndarray | None = None,
        algorithm: str = "match4",
        backend: str = "reference",
        p: int = 1,
        maintain: bool = True,
    ) -> "DynamicList":
        """Adopt a static list and its matching (computed if not given).

        ``tails`` lets a caller seed the session with a matching some
        other engine produced (e.g. ``numpy-mp``); otherwise one is
        computed via :func:`repro.maximal_matching` with the given
        algorithm/backend.
        """
        dyn = cls(capacity=lst.n, maintain=maintain)
        if tails is None:
            from ..core.maximal_matching import maximal_matching
            result = maximal_matching(
                lst, algorithm=algorithm, backend=backend, p=p)
            tails = result.matching.tails
        tails = np.asarray(tails, dtype=np.int64)
        n = lst.n
        dyn._next[:n] = lst.next
        dyn._pred[:n] = lst.pred
        dyn._values[:n] = lst.values
        dyn._live[:n] = True
        dyn._chosen[tails] = True
        dyn._free = [s for s in range(dyn.capacity - 1, -1, -1) if s >= n]
        dyn._n_live = n
        dyn._value_seq = int(lst.values.max()) + 1 if n else 0
        return dyn

    # -- basic accessors ---------------------------------------------------

    @property
    def capacity(self) -> int:
        return int(self._next.size)

    def __len__(self) -> int:
        return self._n_live

    @property
    def n_live(self) -> int:
        """Number of live nodes across all components."""
        return self._n_live

    def has_node(self, v: int) -> bool:
        return 0 <= v < self.capacity and bool(self._live[v])

    def next_of(self, v: int) -> int:
        self._require_live(v)
        return int(self._next[v])

    def pred_of(self, v: int) -> int:
        self._require_live(v)
        return int(self._pred[v])

    def value_of(self, v: int) -> int:
        self._require_live(v)
        return int(self._values[v])

    def is_matched_tail(self, v: int) -> bool:
        """Whether the pointer leaving ``v`` is in the matching."""
        self._require_live(v)
        return bool(self._chosen[v])

    def nodes(self) -> np.ndarray:
        """Live arena addresses, ascending."""
        return np.flatnonzero(self._live)

    def tails(self) -> np.ndarray:
        """Arena addresses whose outgoing pointer is matched, ascending."""
        return np.flatnonzero(self._chosen)

    def chosen_mask(self) -> np.ndarray:
        """Copy of the per-slot matched bit (the "matching array")."""
        return self._chosen.copy()

    def heads(self) -> np.ndarray:
        """Component heads (live nodes with no predecessor), ascending."""
        return np.flatnonzero(self._live & (self._pred == NIL))

    def component_tails(self) -> np.ndarray:
        """Component tails (live nodes with no successor), ascending."""
        return np.flatnonzero(self._live & (self._next == NIL))

    def walk(self, head: int) -> Iterator[int]:
        """Iterate a component's addresses from ``head`` in list order."""
        self._require_live(head)
        v = head
        steps = 0
        while v != NIL:
            yield int(v)
            v = int(self._next[v])
            steps += 1
            if steps > self._n_live:
                raise VerificationError(
                    f"walk from {head} exceeded {self._n_live} live nodes: "
                    f"the arena contains a cycle")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DynamicList(n_live={self._n_live}, "
                f"components={self.heads().size}, "
                f"matched={int(self._chosen.sum())})")

    # -- internal plumbing -------------------------------------------------

    def _require_live(self, v: int) -> None:
        if not isinstance(v, (int, np.integer)) or not self.has_node(int(v)):
            raise InvalidParameterError(
                f"node {v!r} is not a live arena address")

    def _alloc(self, value: int | None) -> int:
        if not self._free:
            self._grow(self.capacity * 2)
        slot = self._free.pop()
        if value is None:
            value = self._value_seq
            self._value_seq += 1
        self._next[slot] = NIL
        self._pred[slot] = NIL
        self._values[slot] = int(value)
        self._chosen[slot] = False
        self._live[slot] = True
        self._n_live += 1
        return slot

    def _release(self, v: int) -> None:
        # NOTE: deliberately leaves ``chosen[v]`` alone — the caller
        # drops it through the accounted path (or, under an injected
        # dropped write, leaves the dead bit as the corruption).
        self._live[v] = False
        self._next[v] = NIL
        self._pred[v] = NIL
        self._free.append(v)
        self._n_live -= 1

    def _grow(self, capacity: int) -> None:
        old = self.capacity
        capacity = next_power_of_two(max(capacity, old + 1))

        def wide(arr: np.ndarray, fill: Any) -> np.ndarray:
            out = np.full(capacity, fill, dtype=arr.dtype)
            out[:old] = arr
            return out

        self._next = wide(self._next, NIL)
        self._pred = wide(self._pred, NIL)
        self._values = wide(self._values, 0)
        self._chosen = wide(self._chosen, False)
        self._live = wide(self._live, False)
        self._free.extend(range(capacity - 1, old - 1, -1))

    def corrupt_bit(self, addr: int) -> None:
        """Flip one bit of the matching array (fault injection).

        Addresses wrap modulo the arena capacity, mirroring how
        :class:`~repro.pram.faults.BitFlip` targets a memory cell.  The
        arena is left possibly *invalid*; :meth:`stabilize` recovers.
        """
        addr = int(addr) % self.capacity
        self._chosen[addr] = not self._chosen[addr]
        if telemetry_enabled():
            METRICS.counter("dynamic.faults.bit_flips").inc()

    def suppress_next_maintenance(self) -> None:
        """Drop the *next* edit's matching writes (fault injection).

        Models a lost write to the matching array: the structural edit
        lands, but neither the edit's bit drops nor its repair do.  The
        matching may be left stale or corrupt; :meth:`stabilize`
        recovers.
        """
        self._suppress_next = True

    def _finish_edit(self, op: str, drops: list[int], seeds: list[int],
                     extra_moves: int = 0) -> None:
        """Apply the matching side of one structural edit.

        ``drops`` are slots whose outgoing pointer vanished (their bit
        is cleared and counted); ``seeds`` start the repair worklist;
        ``extra_moves`` accounts flips the op already applied (the
        insert rebind).  Under an injected dropped write the whole
        matching update is skipped — the corruption the fault models.
        """
        if self._suppress_next:
            self._suppress_next = False
            self.ledger.suppressed += 1
            self.ledger.record(op, 0, 0)
            return
        moves = extra_moves
        seeds = list(seeds)
        for d in drops:
            if d != NIL and self._chosen[d]:
                self._chosen[d] = False
                moves += 1
                # The drop uncovers d's neighborhood: examine it too.
                seeds.extend((d, int(self._pred[d]), int(self._next[d])))
        touched = 0
        if self.maintain:
            m2, touched = self._local_repair(seeds)
            moves += m2
        self.ledger.record(op, moves, touched)

    def _local_repair(self, seeds: Sequence[int]) -> tuple[int, int]:
        """Worklist repair confined to the edit neighborhood.

        Rules per examined node ``v`` (deterministic, epicenter first):

        1. sanitize — unchoose ``v`` if its pointer vanished;
        2. drop — unchoose ``v`` when ``pred(v)``'s pointer is also
           chosen (the earlier pointer wins);
        3. add — choose ``v``'s pointer when both endpoints are
           uncovered.

        Any flip re-enqueues the radius-1 neighbors.  Returns
        ``(moves, touched)``.
        """
        nxt, prd, chosen, live = \
            self._next, self._pred, self._chosen, self._live
        queue: deque[int] = deque()
        queued: set[int] = set()

        def push(x: int) -> None:
            if x != NIL and live[x] and x not in queued:
                queue.append(x)
                queued.add(x)

        for s in seeds:
            if s is not None and s != NIL:
                push(int(s))
        moves = touched = 0
        guard = 4 * self._n_live + 16
        while queue:
            v = queue.popleft()
            queued.discard(v)
            touched += 1
            guard -= 1
            if guard < 0:
                raise VerificationError(
                    "local repair failed to converge — the arena "
                    "invariants are broken (use stabilize())")
            w = int(nxt[v])
            p = int(prd[v])
            if chosen[v]:
                if w == NIL:
                    chosen[v] = False
                    moves += 1
                    push(p)
                elif p != NIL and chosen[p]:
                    chosen[v] = False
                    moves += 1
                    push(p)
                    push(w)
                elif chosen[w]:
                    # Later pointer loses; fix when w is examined.
                    push(w)
            if not chosen[v] and w != NIL:
                uncovered_v = p == NIL or not chosen[p]
                if uncovered_v and not chosen[w]:
                    chosen[v] = True
                    moves += 1
        return moves, touched

    # -- edit operations ---------------------------------------------------

    def add_node(self, value: int | None = None) -> int:
        """Create a new singleton component; returns its address."""
        u = self._alloc(value)
        self._finish_edit("add_node", [], [u])
        return u

    def insert_after(self, v: int, value: int | None = None) -> int:
        """Insert a new node right after ``v``; returns its address.

        When the pointer ``<v, w>`` being subdivided is matched, the
        bit is rebound to whichever of ``<v, u>`` / ``<u, w>`` leaves
        no newly-addable neighbor pointer (preferring ``<v, u>``), so
        an insert at a matched pointer usually costs zero moves.
        """
        self._require_live(v)
        v = int(v)
        u = self._alloc(value)
        w = int(self._next[v])
        extra = 0
        if self._chosen[v] and w != NIL and not self._chosen[w] \
                and not self._suppress_next:
            # Rebinding <v,w> -> <v,u> uncovers w; -> <u,w> uncovers v.
            # Prefer the side whose exposed endpoint is already safe.
            x = int(self._next[w])
            p = int(self._pred[v])
            w_exposed = x != NIL and not self._chosen[x]
            pp = int(self._pred[p]) if p != NIL else NIL
            v_exposed = p != NIL and not self._chosen[p] \
                and (pp == NIL or not self._chosen[pp])
            if w_exposed and not v_exposed:
                self._chosen[v] = False
                self._chosen[u] = True
                extra = 2
        self._next[v] = u
        self._pred[u] = v
        self._next[u] = w
        if w != NIL:
            self._pred[w] = u
        self._finish_edit("insert_after", [], [v, u, w], extra_moves=extra)
        return u

    def delete(self, v: int) -> None:
        """Remove node ``v``, relinking its neighbors."""
        self._require_live(v)
        v = int(v)
        p = int(self._pred[v])
        w = int(self._next[v])
        self._next[v] = NIL
        self._pred[v] = NIL
        if p != NIL:
            self._next[p] = w
        if w != NIL:
            self._pred[w] = p
        self._release(v)
        # Both pointers incident on v vanished; under a dropped write
        # the stale bits (one now on a dead slot) are the corruption.
        self._finish_edit("delete", [v, p], [p, w])

    def split(self, v: int) -> int:
        """Cut the pointer leaving ``v``; returns the detached head."""
        self._require_live(v)
        v = int(v)
        w = int(self._next[v])
        if w == NIL:
            raise InvalidParameterError(
                f"cannot split after {v}: it is already a tail")
        self._next[v] = NIL
        self._pred[w] = NIL
        self._finish_edit("split", [v], [v, w])
        return w

    def concat(self, t: int, h: int, *, validate: bool = True) -> None:
        """Link tail ``t`` to head ``h`` (distinct components)."""
        self._require_live(t)
        self._require_live(h)
        t, h = int(t), int(h)
        if self._next[t] != NIL:
            raise InvalidParameterError(
                f"concat tail {t} is not a component tail")
        if self._pred[h] != NIL:
            raise InvalidParameterError(
                f"concat head {h} is not a component head")
        if t == h:
            raise InvalidParameterError(
                "concat endpoints must differ")
        if validate:
            # t is a tail: if h's component ends at t they share it and
            # linking would close a cycle.  O(component) structural
            # check; the matching repair itself stays O(1).
            for node in self.walk(h):
                if node == t:
                    raise InvalidParameterError(
                        f"concat of {t} and {h} would create a cycle "
                        f"(same component)")
        self._next[t] = h
        self._pred[h] = t
        self._finish_edit("concat", [], [t, h])

    def splice_out(self, a: int, b: int, *, validate: bool = True) -> int:
        """Detach the segment ``a..b`` into its own component.

        ``b`` must be reachable from ``a`` (checked by an O(segment)
        walk unless ``validate=False``).  Returns ``a``, the head of
        the now-detached component.
        """
        self._require_live(a)
        self._require_live(b)
        a, b = int(a), int(b)
        if validate and a != b:
            node = int(self._next[a])
            steps = 0
            while node != b:
                if node == NIL or steps > self._n_live:
                    raise InvalidParameterError(
                        f"splice_out: {b} is not reachable from {a}")
                node = int(self._next[node])
                steps += 1
        p = int(self._pred[a])
        w = int(self._next[b])
        self._pred[a] = NIL
        self._next[b] = NIL
        if p != NIL:
            self._next[p] = w
        if w != NIL:
            self._pred[w] = p
        self._finish_edit("splice_out", [p, b], [p, w, a, b])
        return a

    def splice_in(self, v: int, h: int, *, validate: bool = True) -> None:
        """Splice the whole component headed by ``h`` in after ``v``."""
        self._require_live(v)
        self._require_live(h)
        v, h = int(v), int(h)
        if self._pred[h] != NIL:
            raise InvalidParameterError(
                f"splice_in source {h} is not a component head")
        t = h
        steps = 0
        while int(self._next[t]) != NIL:
            if validate and t == v:
                raise InvalidParameterError(
                    f"splice_in of {h} after {v} would create a cycle "
                    f"(same component)")
            t = int(self._next[t])
            steps += 1
            if steps > self._n_live:
                raise VerificationError(
                    "splice_in walk exceeded the arena: cycle detected")
        if t == v or h == v:
            raise InvalidParameterError(
                f"splice_in of {h} after {v} would create a cycle "
                f"(same component)")
        w = int(self._next[v])
        had_ptr = w != NIL
        self._next[v] = h
        self._pred[h] = v
        self._next[t] = w
        if w != NIL:
            self._pred[w] = t
        # v's old pointer <v,w> vanished only if it existed; its new
        # pointer <v,h> is a different edge, so a matched bit on v is
        # dropped and the worklist re-adds what the seam allows.
        self._finish_edit("splice_in", [v] if had_ptr else [],
                          [v, h, t, w])

    # -- verification ------------------------------------------------------

    def verify(self) -> None:
        """Check every arena invariant; raise :class:`VerificationError`.

        Structural: ``next``/``pred`` are mutually inverse over live
        nodes, dead slots carry no links or bits, and the components
        are acyclic paths.  Matching: bits only on live nodes with an
        outgoing pointer, no two adjacent pointers chosen
        (independence), and no addable pointer left (maximality).
        """
        live = self._live
        nxt, prd, chosen = self._next, self._pred, self._chosen
        dead = ~live
        if np.any(chosen & dead):
            raise VerificationError("matched bit on a dead slot")
        if np.any((nxt[dead] != NIL) | (prd[dead] != NIL)):
            raise VerificationError("dangling links on a dead slot")
        ids = np.flatnonzero(live)
        if ids.size != self._n_live:
            raise VerificationError(
                f"live count {self._n_live} != mask population {ids.size}")
        if ids.size == 0:
            return
        w = nxt[ids]
        has_w = w != NIL
        if np.any(~live[w[has_w]]):
            raise VerificationError("live node points at a dead slot")
        if np.any(prd[w[has_w]] != ids[has_w]):
            raise VerificationError("pred is not the inverse of next")
        p = prd[ids]
        has_p = p != NIL
        if np.any(~live[p[has_p]]):
            raise VerificationError("live node preceded by a dead slot")
        if np.any(nxt[p[has_p]] != ids[has_p]):
            raise VerificationError("next is not the inverse of pred")
        walked = 0
        for h in self.heads():
            for _ in self.walk(int(h)):
                walked += 1
        if walked != self._n_live:
            raise VerificationError(
                f"component walks covered {walked} of {self._n_live} "
                f"live nodes: the arena contains a cycle")
        # -- matching invariants ------------------------------------------
        ch = chosen[ids]
        if np.any(ch & ~has_w):
            raise VerificationError("matched bit on a node with no pointer")
        safe_w = np.where(has_w, w, 0)
        if np.any(ch & has_w & chosen[safe_w]):
            raise VerificationError(
                "independence violated: adjacent pointers both chosen")
        covered = ch | (has_p & chosen[np.where(has_p, p, 0)])
        head_cov = chosen[safe_w] | ch
        addable = has_w & ~covered & ~head_cov
        if np.any(addable):
            v = int(ids[np.flatnonzero(addable)[0]])
            raise VerificationError(
                f"maximality violated: pointer <{v}, {int(nxt[v])}> "
                f"is addable")

    # -- snapshots ---------------------------------------------------------

    def components(self) -> list[ComponentSnapshot]:
        """Freeze every component to the static tier's vocabulary."""
        return [self.snapshot_component(int(h)) for h in self.heads()]

    def snapshot_component(self, head: int) -> ComponentSnapshot:
        """Freeze the component headed by ``head``.

        Local addresses preserve arena address order (order-preserving
        compaction), so the snapshot keeps the arena's scatter.
        """
        order_nodes = list(self.walk(head))
        nodes = np.array(sorted(order_nodes), dtype=np.int64)
        remap = {int(arena): local for local, arena in enumerate(nodes)}
        k = nodes.size
        nxt = np.full(k, NIL, dtype=np.int64)
        for arena in order_nodes:
            w = int(self._next[arena])
            if w != NIL:
                nxt[remap[arena]] = remap[w]
        lst = LinkedList(nxt, values=self._values[nodes].copy())
        tails = np.array(
            sorted(remap[v] for v in order_nodes if self._chosen[v]),
            dtype=np.int64)
        return ComponentSnapshot(lst=lst, tails=tails, nodes=nodes)

    def to_match_results(self) -> list[Any]:
        """Per-component :class:`~repro.core.result.MatchResult` views.

        The matching is re-verified on the way out (``Matching``'s
        constructor), the Brent report charges one ``maintain`` phase of
        width = component size, and ``extras`` carries the ledger.
        """
        from ..core.matching import Matching
        from ..core.result import MatchResult
        from ..pram.cost import CostModel

        out = []
        ledger = self.ledger.to_dict()
        for snap in self.components():
            cm = CostModel(p=1)
            with cm.phase("maintain"):
                cm.parallel(snap.n)
            out.append(MatchResult(
                matching=Matching(snap.lst, snap.tails),
                report=cm.report(),
                stats=None,
                backend="dynamic",
                algorithm="maintained",
                extras={"ledger": ledger,
                        "nodes": snap.nodes.tolist()},
            ))
        return out

    # -- bulk maintenance --------------------------------------------------

    def recompute(self, *, algorithm: str = "match4",
                  backend: str = "reference", p: int = 1) -> int:
        """From-scratch matching on every component; returns bit flips.

        The "recompute" arm of the maintenance policy: discard the
        maintained bits and run the static engine per component.
        """
        from ..core.maximal_matching import maximal_matching

        before = self._chosen.copy()
        for snap in self.components():
            if snap.n == 0:  # pragma: no cover - heads() yields live only
                continue
            result = maximal_matching(
                snap.lst, algorithm=algorithm, backend=backend, p=p)
            self._chosen[snap.nodes] = False
            self._chosen[snap.nodes[result.matching.tails]] = True
        moves = int(np.sum(before != self._chosen))
        self.ledger.recomputes += 1
        self.ledger.record_maintenance("recompute", moves, self._n_live)
        if telemetry_enabled():
            METRICS.counter("dynamic.recomputes").inc()
        return moves

    def stabilize(self, *, max_rounds: int = 8) -> StabilizeReport:
        """Self-stabilize from arbitrary ``chosen`` corruption.

        Clears bits on dead slots, then runs the batch self-stabilizer
        :func:`repro.resilience.repair_matching` over each component,
        seeded with whatever (possibly corrupt) bits the component
        carries.  Emits ``resilience.stabilize.*`` counters; converges
        with moves bounded by the repair tier's guarantee.
        """
        from ..resilience import repair_matching

        dead_bits = int(np.sum(self._chosen & ~self._live))
        if dead_bits:
            self._chosen &= self._live
        before = self._chosen.copy()
        rounds = 0
        touched = 0
        comps = 0
        for snap in self.components():
            comps += 1
            touched += snap.n
            tails, stats = repair_matching(
                snap.lst, snap.tails, max_rounds=max_rounds)
            self._chosen[snap.nodes] = False
            self._chosen[snap.nodes[tails]] = True
            rounds = max(rounds, stats.rounds)
        moves = int(np.sum(before != self._chosen)) + dead_bits
        self.ledger.stabilizations += 1
        self.ledger.record_maintenance("stabilize", moves, touched)
        if telemetry_enabled():
            METRICS.counter("resilience.stabilize.runs").inc()
            if moves:
                METRICS.counter("resilience.stabilize.moves").inc(moves)
        return StabilizeReport(
            components=comps, moves=moves, touched=touched,
            rounds=rounds, dead_bits_cleared=dead_bits)
