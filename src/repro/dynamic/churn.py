"""Seeded churn workloads for dynamic-list sessions.

A :class:`ChurnSession` drives a :class:`~repro.dynamic.DynamicList`
through a deterministic stream of edits drawn from a configurable op
mix, with two knobs real traffic has and uniform sampling does not:

- **burstiness** — with probability ``burstiness`` an op starts a
  burst: the same op kind repeats for the next ``burst_len`` steps
  (bulk loads, mass deletes);
- **hotspot skew** — operand choice concentrates on low arena
  addresses as ``hotspot`` grows (a power-law transform of the
  uniform draw), modeling keys that are edited far more than others.

Everything is derived from ``ChurnConfig.seed``: the same config
replays the same edit stream, byte for byte — the property the
differential suite and the seeded-determinism CI checks rely on.

Fault injection reuses the PRAM tier's :class:`~repro.pram.faults
.FaultPlan` vocabulary against the matching array: a ``BitFlip``
scheduled for step ``k`` flips a ``chosen`` bit before edit ``k``, and
a ``DroppedWrite`` / ``ProcessorCrash`` suppresses edit ``k``'s
matching writes (the structural edit lands, its repair is lost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..errors import InvalidParameterError
from ..lists import generators as _gen
from ..lists.linked_list import NIL, LinkedList
from ..pram.faults import BitFlip, DroppedWrite, FaultPlan, ProcessorCrash
from .session import DynamicList

__all__ = [
    "CHURN_LAYOUTS",
    "ChurnConfig",
    "ChurnResult",
    "ChurnSession",
    "make_churn_list",
]

#: Default op mix: inserts slightly outnumber deletes so sessions grow
#: slowly; structural ops are the seasoning, not the diet.
DEFAULT_OP_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("insert_after", 4.0),
    ("delete", 3.0),
    ("split", 1.0),
    ("concat", 1.0),
    ("splice_out", 0.5),
    ("splice_in", 0.5),
    ("add_node", 0.5),
)


def _rings(n: int, seed: int) -> LinkedList:
    """A rotated-sequential layout: the ring ``0→1→…→n-1→0`` cut open
    at a seed-chosen node, so the path wraps around the address space
    once instead of starting at 0."""
    cut = int(np.random.default_rng(seed).integers(0, n))
    return LinkedList.from_order(np.roll(np.arange(n, dtype=np.int64), -cut))


def _runs(n: int, seed: int) -> LinkedList:
    """Sequential runs of 8 shuffled within blocks (blocked layout)."""
    return _gen.blocked_list(n, block=min(8, n), rng=seed)


#: Layout vocabulary of the churn harness (the ISSUE's five), keyed by
#: name; each maps ``(n, seed) -> LinkedList``.  ``gray``/``bitrev``
#: inherit the generators' power-of-two requirement.
CHURN_LAYOUTS: dict[str, Callable[[int, int], LinkedList]] = {
    "rings": _rings,
    "runs": _runs,
    "gray": lambda n, seed: _gen.gray_code_list(n),
    "bitrev": lambda n, seed: _gen.bit_reversal_list(n),
    "random": lambda n, seed: _gen.random_list(n, seed),
}


def make_churn_list(layout: str, n: int, seed: int) -> LinkedList:
    """Build the initial list for a churn session (``n >= 1``)."""
    try:
        maker = CHURN_LAYOUTS[layout]
    except KeyError:
        raise InvalidParameterError(
            f"unknown churn layout {layout!r}; choose from "
            f"{sorted(CHURN_LAYOUTS)}") from None
    return maker(n, seed)


@dataclass(frozen=True)
class ChurnConfig:
    """One reproducible churn workload, fully described."""

    steps: int = 100
    seed: int = 0
    n_initial: int = 64
    layout: str = "random"
    op_weights: tuple[tuple[str, float], ...] = DEFAULT_OP_WEIGHTS
    burstiness: float = 0.0
    burst_len: int = 8
    hotspot: float = 0.0

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise InvalidParameterError(f"steps must be >= 0: {self.steps}")
        if self.n_initial < 0:
            raise InvalidParameterError(
                f"n_initial must be >= 0: {self.n_initial}")
        if not 0.0 <= self.burstiness <= 1.0:
            raise InvalidParameterError(
                f"burstiness must be in [0, 1]: {self.burstiness}")
        if self.burst_len < 1:
            raise InvalidParameterError(
                f"burst_len must be >= 1: {self.burst_len}")
        if self.hotspot < 0.0:
            raise InvalidParameterError(
                f"hotspot must be >= 0: {self.hotspot}")
        names = [name for name, _ in self.op_weights]
        if len(set(names)) != len(names) or not names:
            raise InvalidParameterError("op_weights must name distinct ops")

    def to_dict(self) -> dict[str, Any]:
        return {
            "steps": self.steps,
            "seed": self.seed,
            "n_initial": self.n_initial,
            "layout": self.layout,
            "op_weights": [list(w) for w in self.op_weights],
            "burstiness": self.burstiness,
            "burst_len": self.burst_len,
            "hotspot": self.hotspot,
        }


@dataclass
class ChurnResult:
    """What one churn run did: applied ops, faults, final shape."""

    config: ChurnConfig
    applied: dict[str, int] = field(default_factory=dict)
    steps_run: int = 0
    faults_injected: int = 0
    writes_suppressed: int = 0
    final_n_live: int = 0
    final_components: int = 0
    ledger: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "applied": dict(sorted(self.applied.items())),
            "steps_run": self.steps_run,
            "faults_injected": self.faults_injected,
            "writes_suppressed": self.writes_suppressed,
            "final_n_live": self.final_n_live,
            "final_components": self.final_components,
            "ledger": self.ledger,
        }


class ChurnSession:
    """Drives a dynamic list through a seeded edit stream.

    Parameters
    ----------
    config:
        The workload description; all randomness flows from its seed.
    dyn:
        An existing session to churn; built from the config's layout
        when omitted (``n_initial == 0`` starts from an empty arena).
    fault_plan:
        Optional :class:`FaultPlan` whose step numbers (1-based) index
        edit steps.
    """

    def __init__(
        self,
        config: ChurnConfig,
        *,
        dyn: DynamicList | None = None,
        fault_plan: FaultPlan | None = None,
        backend: str = "reference",
        maintain: bool = True,
    ) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        if dyn is None:
            if config.n_initial == 0:
                dyn = DynamicList(maintain=maintain)
            else:
                lst = make_churn_list(
                    config.layout, config.n_initial, config.seed)
                dyn = DynamicList.from_list(
                    lst, backend=backend, maintain=maintain)
        self.dyn = dyn
        self.fault_plan = fault_plan
        self.trace: list[tuple[int, str, tuple[int, ...]]] = []
        self.applied: dict[str, int] = {}
        self.faults_injected = 0
        self._burst_op: str | None = None
        self._burst_left = 0
        self._op_names = [name for name, _ in config.op_weights]
        weights = np.array([w for _, w in config.op_weights], dtype=float)
        self._op_probs = weights / weights.sum()

    # -- operand selection -------------------------------------------------

    def _skew(self) -> float:
        u = float(self.rng.random())
        if self.config.hotspot > 0.0:
            u = u ** (1.0 + 4.0 * self.config.hotspot)
        return u

    def _pick(self, arr: np.ndarray) -> int:
        """Pick one entry, skewed toward low addresses by ``hotspot``."""
        return int(arr[min(int(self._skew() * arr.size), arr.size - 1)])

    def _choose_op(self) -> str:
        if self._burst_left > 0:
            self._burst_left -= 1
            assert self._burst_op is not None
            return self._burst_op
        op = self._op_names[int(
            self.rng.choice(len(self._op_names), p=self._op_probs))]
        if self.config.burstiness > 0.0 \
                and float(self.rng.random()) < self.config.burstiness:
            self._burst_op = op
            self._burst_left = self.config.burst_len - 1
        return op

    # -- the edit stream ---------------------------------------------------

    def _apply(self, op: str) -> tuple[str, tuple[int, ...]]:
        """Apply ``op`` if feasible, falling back deterministically.

        Returns the op actually applied and its operands, so the trace
        is an exact replay script.
        """
        dyn = self.dyn
        nodes = dyn.nodes()
        if op == "insert_after" and nodes.size:
            v = self._pick(nodes)
            u = dyn.insert_after(v)
            return "insert_after", (v, u)
        if op == "delete" and nodes.size:
            v = self._pick(nodes)
            dyn.delete(v)
            return "delete", (v,)
        if op == "split" and nodes.size:
            splittable = nodes[dyn._next[nodes] != NIL]
            if splittable.size:
                v = self._pick(splittable)
                w = dyn.split(v)
                return "split", (v, w)
        if op == "concat":
            tails = dyn.component_tails()
            heads = dyn.heads()
            if tails.size and heads.size >= 2:
                t = self._pick(tails)
                start = min(int(self._skew() * heads.size), heads.size - 1)
                for k in range(heads.size):
                    h = int(heads[(start + k) % heads.size])
                    try:
                        dyn.concat(t, h)
                        return "concat", (t, h)
                    except InvalidParameterError:
                        continue  # same component (or t itself): next head
        if op == "splice_out" and nodes.size:
            a = self._pick(nodes)
            b = a
            for _ in range(int(self.rng.integers(0, 3))):
                nb = dyn.next_of(b)
                if nb == NIL:
                    break
                b = nb
            dyn.splice_out(a, b)
            return "splice_out", (a, b)
        if op == "splice_in":
            heads = dyn.heads()
            if heads.size >= 2:
                h = self._pick(heads)
                members = set(dyn.walk(h))
                others = np.array(
                    [x for x in dyn.nodes() if int(x) not in members],
                    dtype=np.int64)
                if others.size:
                    v = self._pick(others)
                    dyn.splice_in(v, h)
                    return "splice_in", (v, h)
        # Fallback keeps every step productive (and the stream aligned
        # with its seed): an arena can always grow.
        u = dyn.add_node()
        return "add_node", (u,)

    def _inject_faults(self, step: int) -> None:
        if self.fault_plan is None:
            return
        for ev in self.fault_plan.faults_at(step):
            self.faults_injected += 1
            if isinstance(ev, BitFlip):
                self.dyn.corrupt_bit(ev.addr)
            elif isinstance(ev, (DroppedWrite, ProcessorCrash)):
                self.dyn.suppress_next_maintenance()

    def step(self, k: int) -> tuple[str, tuple[int, ...]]:
        """Run edit step ``k`` (1-based, to match ``FaultPlan``)."""
        self._inject_faults(k)
        op, args = self._apply(self._choose_op())
        self.applied[op] = self.applied.get(op, 0) + 1
        self.trace.append((k, op, args))
        return op, args

    def run(
        self,
        *,
        on_edit: Callable[["ChurnSession", int, str], None] | None = None,
    ) -> ChurnResult:
        """Run the whole configured stream; ``on_edit`` fires after
        every edit (the differential suite's hook)."""
        for k in range(1, self.config.steps + 1):
            op, _ = self.step(k)
            if on_edit is not None:
                on_edit(self, k, op)
        return ChurnResult(
            config=self.config,
            applied=dict(self.applied),
            steps_run=len(self.trace),
            faults_injected=self.faults_injected,
            writes_suppressed=self.dyn.ledger.suppressed,
            final_n_live=self.dyn.n_live,
            final_components=int(self.dyn.heads().size),
            ledger=self.dyn.ledger.to_dict(),
        )
