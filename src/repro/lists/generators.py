"""Workload generators: memory layouts for the input linked list.

The algorithms' behaviour depends only on the *address permutation* the
list order visits, so workloads are layouts:

- :func:`random_list` — uniformly random permutation; the canonical
  adversary for symmetry-breaking algorithms and the layout all paper
  experiments default to.
- :func:`sequential_list` — order ``0, 1, 2, ...``: every pointer is a
  forward pointer crossing only fine bisecting lines (the easy case of
  the paper's Fig. 2 intuition; ``f`` degenerates to the lowest few
  labels).
- :func:`reversed_list` — order ``n-1, ..., 1, 0``: all backward
  pointers.
- :func:`sawtooth_list` — alternating long forward / short backward
  hops; maximizes distinct ``f`` labels per unit length and is the
  stress case for Lemma 1's ``2 log n`` bound.
- :func:`blocked_list` — random permutation *within* contiguous blocks,
  sequential across blocks; tunes the inter-row/intra-row pointer mix
  seen by Match4's 2-D layout.
"""

from __future__ import annotations

import numpy as np

from .._util import require
from .linked_list import LinkedList

__all__ = [
    "list_from_order",
    "bit_reversal_list",
    "gray_code_list",
    "interleaved_list",
    "random_list",
    "sequential_list",
    "reversed_list",
    "sawtooth_list",
    "blocked_list",
]


def list_from_order(order) -> LinkedList:
    """Alias of :meth:`LinkedList.from_order` for symmetric imports."""
    return LinkedList.from_order(order)


def random_list(n: int, rng: np.random.Generator | int | None = None) -> LinkedList:
    """A list visiting a uniformly random permutation of ``0..n-1``.

    ``rng`` may be a :class:`numpy.random.Generator`, a seed, or
    ``None`` (fresh entropy).  All library benchmarks pass explicit
    seeds so runs are reproducible.
    """
    require(n >= 1, f"n must be >= 1, got {n}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    return LinkedList.from_order(rng.permutation(n))


def sequential_list(n: int) -> LinkedList:
    """The identity layout: node ``v``'s successor is ``v + 1``."""
    require(n >= 1, f"n must be >= 1, got {n}")
    return LinkedList.from_order(np.arange(n, dtype=np.int64))


def reversed_list(n: int) -> LinkedList:
    """The reversed layout: node ``v``'s successor is ``v - 1``."""
    require(n >= 1, f"n must be >= 1, got {n}")
    return LinkedList.from_order(np.arange(n - 1, -1, -1, dtype=np.int64))


def sawtooth_list(n: int) -> LinkedList:
    """Interleave the low and high halves: ``0, m, 1, m+1, 2, ...``.

    Every pointer alternately jumps ``+m`` and ``-(m-1)`` where
    ``m = ceil(n/2)``, so consecutive pointers cross the coarsest
    bisecting line in opposite directions — the layout exercising the
    largest ``f`` labels on every single pointer.
    """
    require(n >= 1, f"n must be >= 1, got {n}")
    m = (n + 1) // 2
    low = np.arange(m, dtype=np.int64)
    high = np.arange(m, n, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    order[0::2] = low
    order[1::2] = high
    return LinkedList.from_order(order)


def blocked_list(
    n: int,
    block: int,
    rng: np.random.Generator | int | None = None,
) -> LinkedList:
    """Random within blocks of ``block`` addresses, sequential across.

    With ``block`` equal to Match4's row count the layout concentrates
    pointers inside single columns; with ``block`` much larger it
    approaches :func:`random_list`.  Used by the E6/E7 ablations.
    """
    require(n >= 1, f"n must be >= 1, got {n}")
    require(block >= 1, f"block must be >= 1, got {block}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    order = np.arange(n, dtype=np.int64)
    for start in range(0, n, block):
        stop = min(start + block, n)
        order[start:stop] = start + rng.permutation(stop - start)
    return LinkedList.from_order(order)


def bit_reversal_list(n: int) -> LinkedList:
    """Visit addresses in bit-reversed order (FFT butterfly layout).

    Requires ``n`` a power of two.  Consecutive nodes differ in their
    high bits almost always, concentrating pointers on the *coarse*
    bisecting lines — the mirror image of :func:`sequential_list`.
    """
    require(n >= 1, f"n must be >= 1, got {n}")
    require(n & (n - 1) == 0, f"n must be a power of two, got {n}")
    if n == 1:
        return LinkedList.from_order([0])
    from ..bits.bitops import bit_reverse

    width = n.bit_length() - 1
    order = bit_reverse(np.arange(n, dtype=np.int64), width)
    return LinkedList.from_order(order)


def gray_code_list(n: int) -> LinkedList:
    """Visit addresses in reflected-Gray-code order.

    Requires ``n`` a power of two.  Every pointer's endpoints differ in
    *exactly one* bit, so each pointer crosses exactly one bisecting
    line cleanly — the layout where Fig. 2's picture is sharpest and
    ``f``'s label is fully determined by the flipped bit.
    """
    require(n >= 1, f"n must be >= 1, got {n}")
    require(n & (n - 1) == 0, f"n must be a power of two, got {n}")
    idx = np.arange(n, dtype=np.int64)
    order = idx ^ (idx >> 1)
    return LinkedList.from_order(order)


def interleaved_list(n: int, ways: int) -> LinkedList:
    """Round-robin over ``ways`` contiguous chunks: ``0, m, 2m, ...,
    1, m+1, 2m+1, ...`` where ``m = ceil(n/ways)`` — generalizing
    :func:`sawtooth_list` (the 2-way case).  Every pointer hops about
    ``m`` addresses, loading the mid-depth bisecting lines."""
    require(n >= 1, f"n must be >= 1, got {n}")
    require(1 <= ways <= n, f"need 1 <= ways <= n, got {ways}")
    m = -(-n // ways)
    chunks = [np.arange(s * m, min((s + 1) * m, n), dtype=np.int64)
              for s in range(ways)]
    maxlen = max(c.size for c in chunks)
    order = []
    for j in range(maxlen):
        for c in chunks:
            if j < c.size:
                order.append(int(c[j]))
    return LinkedList.from_order(np.asarray(order, dtype=np.int64))
