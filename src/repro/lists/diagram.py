"""ASCII rendering of array-stored linked lists (the paper's Fig. 1).

Fig. 1 draws the list as an array of cells with pointer arcs hopping
across it; Fig. 2 adds the bisecting line whose crossings define the
matching partition function.  :func:`arc_diagram` reproduces that view
in plain text: one cell per address, arcs packed greedily onto as few
levels as possible, arrowheads marking pointer heads, and (optionally)
the coarsest bisecting line of Fig. 2.

Intended for teaching/debugging at small ``n``; the CLI's ``fig1``
command renders the paper's own example.
"""

from __future__ import annotations

from .._util import require
from .linked_list import NIL, LinkedList

__all__ = ["arc_diagram"]

#: Maximum list size the renderer accepts (a terminal-width concern).
MAX_NODES = 32


def arc_diagram(
    lst: LinkedList,
    *,
    bisector: bool = False,
    cell_width: int = 4,
) -> str:
    """Render ``lst`` as an array with pointer arcs (Fig. 1 style).

    Parameters
    ----------
    lst:
        The list (at most :data:`MAX_NODES` nodes).
    bisector:
        Also draw Fig. 2's coarsest bisecting line ``c`` between the
        lower and upper half of the address range, and annotate each
        arc with F/B when it crosses ``c`` forward/backward.
    cell_width:
        Horizontal characters per array cell.

    Returns the multi-line string.
    """
    n = lst.n
    require(n <= MAX_NODES, f"arc_diagram renders up to {MAX_NODES} nodes")
    w = cell_width

    def col(addr: int) -> int:
        return addr * w + w // 2

    width = n * w
    # Greedy interval packing of arcs onto levels (lowest level first).
    tails, heads = lst.pointers()
    arcs = sorted(
        (min(int(a), int(b)), max(int(a), int(b)), int(a), int(b))
        for a, b in zip(tails, heads)
    )
    levels: list[list[tuple[int, int, int, int]]] = []
    for arc in arcs:
        placed = False
        for level in levels:
            # strict separation: consecutive pointers share an endpoint
            # and would overwrite each other's corner glyphs
            if all(arc[0] > hi or arc[1] < lo for lo, hi, _, _ in level):
                level.append(arc)
                placed = True
                break
        if not placed:
            levels.append([arc])

    lines: list[str] = []
    mid_col = (n // 2) * w  # Fig. 2's line c sits before the upper half
    for level in reversed(levels):
        row = [" "] * width
        for lo, hi, a, b in level:
            c_lo, c_hi = col(lo), col(hi)
            for x in range(c_lo + 1, c_hi):
                row[x] = "─"
            # corners: the arc descends into both endpoints
            row[c_lo] = "╭"
            row[c_hi] = "╮"
            # arrowhead at the head's side, one char inside the corner
            if b > a:  # forward pointer: head on the right
                row[c_hi - 1] = "►"
            else:      # backward pointer: head on the left
                row[c_lo + 1] = "◄"
            if bisector and ((a < n // 2) != (b < n // 2)):
                mark = "F" if b > a else "B"
                mid = (c_lo + c_hi) // 2
                row[mid] = mark
        lines.append("".join(row).rstrip())
    # connector row: vertical stubs from the lowest arcs into cells
    stub = [" "] * width
    for addr in range(n):
        stub[col(addr)] = "│"
    lines.append("".join(stub).rstrip())
    # the array cells
    cells = "".join(f"{addr:^{w}d}" for addr in range(n))
    lines.append(cells.rstrip())
    ranks = lst.rank
    order_row = "".join(f"{'x%d' % ranks[addr]:^{w}}" for addr in range(n))
    lines.append(order_row.rstrip())
    if bisector and n >= 2:
        pointer_line = [" "] * width
        pointer_line[mid_col] = "c"
        lines.append("".join(pointer_line).rstrip())
    header = f"linked list, n={n}, head={lst.head} (x_j = j-th node in order)"
    return "\n".join([header] + lines)
