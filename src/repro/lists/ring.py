"""Circular linked lists (rings) — the natural home of the paper's ``f``.

The paper already treats labels circularly ("If a is the last element
in the list, we can define f(a, suc(a)) = f(a, b) where b is the first
element"); only the *structure* it matches is a path.  This module
extends the machinery to genuine rings, where the circular treatment is
exact rather than a convention:

- every node owns a pointer, so a ring of ``n`` nodes has ``n``
  pointers;
- the local-minima cut needs no boundary handling — a circular
  adjacent-distinct label sequence always contains a strict local
  minimum (the global minimum's neighbors differ from it, hence exceed
  it), so at least one cut always exists and the end-repair of
  :mod:`repro.core.cutwalk` becomes unnecessary;
- maximal matchings and 3-colorings follow by the same pipeline.

The only genuinely new boundary case is ``n = 2``: the two pointers
``<0,1>`` and ``<1,0>`` share *both* endpoints, so a maximal matching
holds exactly one of them.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .._util import as_index_array
from ..errors import InvalidListError
from .linked_list import NIL

__all__ = ["Ring", "random_ring", "sequential_ring"]


class Ring:
    """A circular singly linked list over addresses ``0..n-1``.

    ``next_[v]`` is the successor of ``v``; following it from any node
    visits every node exactly once and returns.  Unlike
    :class:`repro.lists.LinkedList` there is no head or tail; iteration
    starts at address 0's position by convention.
    """

    __slots__ = ("_next", "_pred")

    def __init__(self, next_: Sequence[int] | np.ndarray, *,
                 validate: bool = True) -> None:
        nxt = as_index_array(next_, name="NEXT")
        if validate:
            self._validate(nxt)
        self._next = nxt
        self._next.setflags(write=False)
        pred = np.empty(nxt.size, dtype=np.int64)
        pred[nxt] = np.arange(nxt.size, dtype=np.int64)
        pred.setflags(write=False)
        self._pred = pred

    @staticmethod
    def _validate(nxt: np.ndarray) -> None:
        n = nxt.size
        if n == 0:
            raise InvalidListError("empty ring")
        if np.any(nxt < 0) or np.any(nxt >= n):
            raise InvalidListError("ring pointers must be addresses in [0, n)")
        if n > 1 and np.any(nxt == np.arange(n)):
            bad = int(np.flatnonzero(nxt == np.arange(n))[0])
            raise InvalidListError(f"self-loop at node {bad} in a ring of {n}")
        if np.unique(nxt).size != n:
            raise InvalidListError("ring successors must be a permutation")
        # single cycle: walk from 0
        seen = 0
        v = 0
        while True:
            seen += 1
            v = int(nxt[v])
            if v == 0:
                break
            if seen > n:
                raise InvalidListError("ring walk did not close")
        if seen != n:
            raise InvalidListError(
                f"ring has multiple cycles: walk from 0 closed after "
                f"{seen} of {n} nodes"
            )

    @classmethod
    def from_order(cls, order: Sequence[int] | np.ndarray) -> "Ring":
        """Build a ring visiting the given address permutation."""
        order = as_index_array(order, name="order")
        n = order.size
        if n == 0:
            raise InvalidListError("cannot build a ring from an empty order")
        check = np.zeros(n, dtype=bool)
        if np.any(order < 0) or np.any(order >= n):
            raise InvalidListError("order entries must be addresses in [0, n)")
        check[order] = True
        if not np.all(check):
            raise InvalidListError("order must be a permutation of 0..n-1")
        nxt = np.empty(n, dtype=np.int64)
        nxt[order] = np.roll(order, -1)
        return cls(nxt, validate=False)

    @property
    def n(self) -> int:
        """Number of nodes (= number of pointers)."""
        return int(self._next.size)

    @property
    def next(self) -> np.ndarray:
        """The (read-only) successor array."""
        return self._next

    @property
    def pred(self) -> np.ndarray:
        """The (read-only) predecessor array (total on a ring)."""
        return self._pred

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        v = 0
        for _ in range(self.n):
            yield int(v)
            v = int(self._next[v])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Ring(n={self.n})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ring):
            return NotImplemented
        return bool(np.array_equal(self._next, other._next))

    def __hash__(self) -> int:
        return hash((self.n, self._next.tobytes()))

    def cut_open(self, at: int = 0):
        """Return the :class:`LinkedList` obtained by deleting the
        pointer *into* node ``at`` (making ``at`` the head)."""
        from .linked_list import LinkedList

        nxt = self._next.copy()
        nxt[self._pred[at]] = NIL
        return LinkedList(nxt, validate=False)


def random_ring(n: int, rng: np.random.Generator | int | None = None) -> Ring:
    """A ring visiting a uniformly random permutation."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    if n < 1:
        raise InvalidListError("ring needs n >= 1")
    return Ring.from_order(rng.permutation(n))


def sequential_ring(n: int) -> Ring:
    """The identity-layout ring ``0 -> 1 -> ... -> n-1 -> 0``."""
    if n < 1:
        raise InvalidListError("ring needs n >= 1")
    return Ring.from_order(np.arange(n, dtype=np.int64))
