"""Linked-list substrate: the paper's input representation and workloads.

A linked list of ``n`` nodes is stored exactly as in the paper's
Fig. 1: an array ``X[0..n-1]`` of node payloads plus an array
``NEXT[0..n-1]`` of successor addresses, with ``nil`` (= -1) marking
the end.  The *address* of a node — its array index — is what the
matching partition function consumes, so the memory layout of the list
(which permutation of addresses the list order visits) is the workload
parameter all experiments sweep.

- :mod:`repro.lists.linked_list` — the :class:`LinkedList` container,
  structural accessors (successors, predecessors, pointer arrays), and
  conversions to/from visit orders.
- :mod:`repro.lists.generators` — workload generators: random
  permutation lists (the paper's implicit adversary), sequential and
  reversed layouts (all-forward / all-backward pointers), sawtooth and
  blocked layouts (stress the inter-/intra-row split of Match4).
- :mod:`repro.lists.validation` — structural validation used at every
  public entry point.
"""

from .linked_list import NIL, LinkedList
from .ring import Ring, random_ring, sequential_ring
from .generators import (
    bit_reversal_list,
    blocked_list,
    gray_code_list,
    interleaved_list,
    list_from_order,
    random_list,
    reversed_list,
    sawtooth_list,
    sequential_list,
)
from .validation import validate_next_array

__all__ = [
    "NIL",
    "LinkedList",
    "Ring",
    "random_ring",
    "sequential_ring",
    "blocked_list",
    "bit_reversal_list",
    "gray_code_list",
    "interleaved_list",
    "list_from_order",
    "random_list",
    "reversed_list",
    "sawtooth_list",
    "sequential_list",
    "validate_next_array",
]
