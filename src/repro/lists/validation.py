"""Structural validation of ``NEXT`` pointer arrays.

Every public algorithm entry point validates its input once, up front,
so algorithm internals can assume a well-formed simple path.  The
checks run vectorized in O(n).
"""

from __future__ import annotations

import numpy as np

from .._util import as_index_array
from ..errors import InvalidListError

__all__ = ["validate_next_array"]

NIL = -1


def validate_next_array(next_: np.ndarray) -> int:
    """Validate that ``next_`` encodes a single simple path over all nodes.

    Requirements (each violation raises :class:`InvalidListError` with a
    specific message):

    - every entry is ``NIL`` or a valid address in ``[0, n)``;
    - exactly one entry is ``NIL`` (the tail);
    - no self-loops;
    - no node has two predecessors (``next_`` restricted to non-NIL is
      injective);
    - the path from the unique head reaches all ``n`` nodes (no
      disconnected cycles).

    Returns the head address.  An empty array is rejected; a singleton
    list (``[NIL]``) is valid with head 0.
    """
    next_ = as_index_array(next_, name="NEXT")
    n = next_.size
    if n == 0:
        raise InvalidListError("empty NEXT array: a list needs >= 1 node")
    in_range = (next_ == NIL) | ((next_ >= 0) & (next_ < n))
    if not np.all(in_range):
        bad = int(np.flatnonzero(~in_range)[0])
        raise InvalidListError(
            f"NEXT[{bad}] = {int(next_[bad])} is neither nil nor a valid "
            f"address in [0, {n})"
        )
    tails = np.flatnonzero(next_ == NIL)
    if tails.size != 1:
        raise InvalidListError(
            f"a simple path has exactly one nil pointer; found {tails.size}"
        )
    if np.any(next_ == np.arange(n, dtype=np.int64)):
        bad = int(np.flatnonzero(next_ == np.arange(n))[0])
        raise InvalidListError(f"self-loop at node {bad}")
    targets = next_[next_ != NIL]
    indegree = np.bincount(targets, minlength=n)
    if np.any(indegree > 1):
        bad = int(np.flatnonzero(indegree > 1)[0])
        raise InvalidListError(f"node {bad} has {int(indegree[bad])} predecessors")
    heads = np.flatnonzero(indegree == 0)
    if heads.size != 1:
        raise InvalidListError(
            f"a simple path has exactly one head; found {heads.size} "
            f"(disconnected cycle present)"
        )
    head = int(heads[0])
    # Reachability: with one head, one tail, and injective successors,
    # the only possible defect left is a separate cycle — but a cycle's
    # nodes would all have indegree 1 and no nil, contradicting the
    # unique-head/tail counts only if the cycle is disjoint from the
    # path.  Count path length explicitly via pointer doubling to stay
    # O(n log n)-safe... a simple rank walk is O(n) and simplest:
    seen = 0
    v = head
    nxt = next_  # local alias
    while v != NIL:
        seen += 1
        if seen > n:
            raise InvalidListError("cycle detected while walking the list")
        v = int(nxt[v])
    if seen != n:
        raise InvalidListError(
            f"path from head {head} covers {seen} of {n} nodes; "
            f"a disconnected cycle exists"
        )
    return head
