"""Forests of linked lists: many disjoint paths in one address space.

Symmetry breaking is a *local* computation — the matching partition
function consults only a pointer's two endpoint addresses — so the
paper's machinery extends verbatim to a forest of disjoint lists (the
shape produced by e.g. a partitioned work queue, or by severing a list
at chosen positions).  The only global ingredient is the circular
convention at each component's tail, which wraps to *that component's*
head.

:class:`Forest` validates the structure (every component a simple
path; heads/tails discovered once at construction) and provides the
per-component circular ``NEXT`` the iteration needs.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .._util import as_index_array
from ..errors import InvalidListError
from .linked_list import NIL, LinkedList

__all__ = ["Forest", "random_forest"]


class Forest:
    """A set of disjoint array-stored lists covering addresses 0..n-1.

    ``next_[v]`` is ``v``'s successor or :data:`NIL`; unlike
    :class:`LinkedList`, any number of components is allowed (each a
    simple path, jointly covering all addresses).
    """

    __slots__ = ("_next", "_pred", "_heads", "_tails", "_component",
                 "_component_head")

    def __init__(self, next_: Sequence[int] | np.ndarray) -> None:
        nxt = as_index_array(next_, name="NEXT")
        n = nxt.size
        if n == 0:
            raise InvalidListError("empty forest")
        in_range = (nxt == NIL) | ((nxt >= 0) & (nxt < n))
        if not np.all(in_range):
            bad = int(np.flatnonzero(~in_range)[0])
            raise InvalidListError(
                f"NEXT[{bad}] = {int(nxt[bad])} is neither nil nor an address"
            )
        if np.any(nxt == np.arange(n)):
            bad = int(np.flatnonzero(nxt == np.arange(n))[0])
            raise InvalidListError(f"self-loop at node {bad}")
        targets = nxt[nxt != NIL]
        indegree = np.bincount(targets, minlength=n)
        if np.any(indegree > 1):
            bad = int(np.flatnonzero(indegree > 1)[0])
            raise InvalidListError(
                f"node {bad} has {int(indegree[bad])} predecessors"
            )
        heads = np.flatnonzero(indegree == 0)
        tails = np.flatnonzero(nxt == NIL)
        if heads.size != tails.size:
            raise InvalidListError(
                f"{heads.size} heads vs {tails.size} tails: a cycle exists"
            )
        # Walk every component once: discovers membership and rejects
        # any leftover cycle (unreached nodes).
        component = np.full(n, -1, dtype=np.int64)
        for cid, h in enumerate(heads):
            v = int(h)
            while v != NIL:
                component[v] = cid
                v = int(nxt[v])
        if np.any(component < 0):
            bad = int(np.flatnonzero(component < 0)[0])
            raise InvalidListError(
                f"node {bad} is unreachable from any head: a cycle exists"
            )
        pred = np.full(n, NIL, dtype=np.int64)
        live = np.flatnonzero(nxt != NIL)
        pred[nxt[live]] = live
        self._next = nxt
        self._next.setflags(write=False)
        self._pred = pred
        self._pred.setflags(write=False)
        self._heads = heads
        self._heads.setflags(write=False)
        self._tails = tails
        self._tails.setflags(write=False)
        self._component = component
        self._component.setflags(write=False)
        comp_head = np.empty(heads.size, dtype=np.int64)
        comp_head[np.arange(heads.size)] = heads
        self._component_head = comp_head

    @classmethod
    def from_orders(cls, orders: Sequence[Sequence[int]]) -> "Forest":
        """Build a forest from per-component visit orders.

        The concatenation of ``orders`` must be a permutation of
        ``0..n-1``.
        """
        flat = [v for order in orders for v in order]
        n = len(flat)
        if n == 0:
            raise InvalidListError("cannot build a forest from no nodes")
        if sorted(flat) != list(range(n)):
            raise InvalidListError(
                "orders must jointly be a permutation of 0..n-1"
            )
        nxt = np.full(n, NIL, dtype=np.int64)
        for order in orders:
            for a, b in zip(order, order[1:]):
                nxt[a] = b
        return cls(nxt)

    @property
    def n(self) -> int:
        """Total number of nodes."""
        return int(self._next.size)

    @property
    def next(self) -> np.ndarray:
        """The (read-only) successor array."""
        return self._next

    @property
    def pred(self) -> np.ndarray:
        """The (read-only) predecessor array."""
        return self._pred

    @property
    def heads(self) -> np.ndarray:
        """Head addresses, one per component."""
        return self._heads

    @property
    def tails(self) -> np.ndarray:
        """Tail addresses, one per component (aligned with ``heads``)."""
        return self._tails

    @property
    def component(self) -> np.ndarray:
        """Per-node component id."""
        return self._component

    @property
    def num_components(self) -> int:
        """Number of disjoint lists."""
        return int(self._heads.size)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Forest(n={self.n}, components={self.num_components})"

    def circular_next(self) -> np.ndarray:
        """``NEXT`` with every component's tail wired to *its* head."""
        nxt = self._next.copy()
        tail_nodes = np.flatnonzero(nxt == NIL)
        nxt[tail_nodes] = self._component_head[self._component[tail_nodes]]
        return nxt

    def components(self) -> Iterator[LinkedList]:
        """Yield each component as a standalone compressed
        :class:`LinkedList` (addresses renumbered 0..m-1 in component
        order); mainly for verification."""
        for cid in range(self.num_components):
            nodes = []
            v = int(self._heads[cid])
            while v != NIL:
                nodes.append(v)
                v = int(self._next[v])
            remap = {v: j for j, v in enumerate(nodes)}
            nxt = np.full(len(nodes), NIL, dtype=np.int64)
            for v in nodes[:-1]:
                nxt[remap[v]] = remap[int(self._next[v])]
            yield LinkedList(nxt, validate=False)


def random_forest(
    n: int,
    num_components: int,
    rng: np.random.Generator | int | None = None,
) -> Forest:
    """A random forest: a random permutation split at random points."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    if not 1 <= num_components <= n:
        raise InvalidListError(
            f"need 1 <= components <= n, got {num_components} for n={n}"
        )
    perm = rng.permutation(n)
    if num_components == 1:
        cut_points = np.empty(0, dtype=np.int64)
    else:
        cut_points = np.sort(
            rng.choice(np.arange(1, n), size=num_components - 1,
                       replace=False)
        )
    orders = np.split(perm, cut_points)
    return Forest.from_orders([o.tolist() for o in orders])
