"""The :class:`LinkedList` container (paper Fig. 1).

Nodes are identified by their array addresses ``0..n-1``.  ``NEXT[v]``
holds the address of ``suc(v)``, or ``NIL`` for the last node.  Because
the matching partition function operates on *addresses*, the container
also exposes the derived structures every algorithm needs: the
predecessor array, the visit order, and the pointer set
``{<v, suc(v)> : NEXT[v] != nil}`` as parallel (tails, heads) arrays.

The container is immutable: algorithms never mutate a caller's list
(they copy the pointer arrays they destroy, e.g. Match3's doubling).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .._util import as_index_array
from ..errors import InvalidListError
from .validation import validate_next_array

__all__ = ["NIL", "LinkedList"]

NIL = -1


class LinkedList:
    """An array-stored singly linked list over addresses ``0..n-1``.

    Parameters
    ----------
    next_:
        The ``NEXT`` array; ``next_[v]`` is the successor address of
        node ``v`` or :data:`NIL`.
    values:
        Optional payload array ``X`` (defaults to the addresses
        themselves, which is all the matching algorithms need).
    validate:
        Validate the structure (single simple path covering all nodes).
        On by default; internal constructors that build known-good
        arrays pass ``False``.

    Examples
    --------
    The list of Fig. 1 visits addresses ``0 -> 2 -> 4 -> 1 -> 5 -> 3 -> 6``:

    >>> lst = LinkedList.from_order([0, 2, 4, 1, 5, 3, 6])
    >>> lst.head, lst.tail, lst.n
    (0, 6, 7)
    >>> list(lst)
    [0, 2, 4, 1, 5, 3, 6]
    """

    __slots__ = ("_next", "_values", "_head", "_pred", "_order")

    def __init__(
        self,
        next_: Sequence[int] | np.ndarray,
        *,
        values: Sequence[int] | np.ndarray | None = None,
        validate: bool = True,
    ) -> None:
        nxt = as_index_array(next_, name="NEXT")
        if validate:
            head = validate_next_array(nxt)
        else:
            head = self._find_head_unchecked(nxt)
        self._next = nxt
        self._next.setflags(write=False)
        if values is None:
            vals = np.arange(nxt.size, dtype=np.int64)
        else:
            vals = as_index_array(values, name="values")
            if vals.size != nxt.size:
                raise InvalidListError(
                    f"values has {vals.size} entries for {nxt.size} nodes"
                )
        vals.setflags(write=False)
        self._values = vals
        self._head = head
        self._pred: np.ndarray | None = None
        self._order: np.ndarray | None = None

    @staticmethod
    def _find_head_unchecked(nxt: np.ndarray) -> int:
        indegree = np.bincount(nxt[nxt != NIL], minlength=nxt.size)
        return int(np.flatnonzero(indegree == 0)[0])

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_order(cls, order: Sequence[int] | np.ndarray) -> "LinkedList":
        """Build a list that visits the given addresses in the given order.

        ``order`` must be a permutation of ``0..n-1``; ``order[0]`` is
        the head.
        """
        order = as_index_array(order, name="order")
        n = order.size
        if n == 0:
            raise InvalidListError("cannot build a list from an empty order")
        check = np.zeros(n, dtype=bool)
        if np.any(order < 0) or np.any(order >= n):
            raise InvalidListError("order entries must be addresses in [0, n)")
        check[order] = True
        if not np.all(check):
            raise InvalidListError("order must be a permutation of 0..n-1")
        nxt = np.full(n, NIL, dtype=np.int64)
        nxt[order[:-1]] = order[1:]
        return cls(nxt, validate=False)

    # -- basic accessors --------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self._next.size)

    @property
    def head(self) -> int:
        """Address of the first node."""
        return self._head

    @property
    def tail(self) -> int:
        """Address of the last node (the one with ``NEXT = nil``)."""
        return int(np.flatnonzero(self._next == NIL)[0])

    @property
    def next(self) -> np.ndarray:
        """The (read-only) ``NEXT`` array."""
        return self._next

    @property
    def values(self) -> np.ndarray:
        """The (read-only) payload array ``X``."""
        return self._values

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        """Iterate addresses in list order (sequential walk)."""
        v = self._head
        nxt = self._next
        while v != NIL:
            yield int(v)
            v = int(nxt[v])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LinkedList(n={self.n}, head={self._head})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkedList):
            return NotImplemented
        return bool(
            np.array_equal(self._next, other._next)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((self.n, self._head, self._next.tobytes()))

    # -- derived structures (cached) ---------------------------------------

    @property
    def pred(self) -> np.ndarray:
        """Predecessor array: ``pred[v] = pre(v)``, :data:`NIL` at the head.

        Computed vectorized on first use and cached.
        """
        if self._pred is None:
            pred = np.full(self.n, NIL, dtype=np.int64)
            tails = np.flatnonzero(self._next != NIL)
            pred[self._next[tails]] = tails
            pred.setflags(write=False)
            self._pred = pred
        return self._pred

    @property
    def order(self) -> np.ndarray:
        """Visit order: ``order[j]`` is the address of the j-th node.

        This is the *answer* to list ranking; algorithms must not use it
        as an input shortcut — it exists for verification and test
        oracles.  Computed by a sequential walk and cached.
        """
        if self._order is None:
            order = np.fromiter(iter(self), count=self.n, dtype=np.int64)
            order.setflags(write=False)
            self._order = order
        return self._order

    @property
    def rank(self) -> np.ndarray:
        """Rank of each node: distance from the head (oracle use only)."""
        ranks = np.empty(self.n, dtype=np.int64)
        ranks[self.order] = np.arange(self.n, dtype=np.int64)
        return ranks

    def pointers(self) -> tuple[np.ndarray, np.ndarray]:
        """The list's ``n - 1`` pointers as ``(tails, heads)`` arrays.

        ``tails[j]`` is a node ``v`` with a non-nil successor and
        ``heads[j] = suc(v)``; a pointer is identified throughout the
        library by its tail address.
        """
        tails = np.flatnonzero(self._next != NIL)
        return tails, self._next[tails]

    def circular_next(self) -> np.ndarray:
        """``NEXT`` with the tail wired to the head (paper section 2).

        Used when computing ``f(a, suc(a))`` for the last element: "we
        can define f(a, suc(a)) = f(a, b) where b is (the address of)
        the first element of the linked list."
        """
        nxt = self._next.copy()
        nxt[nxt == NIL] = self._head
        return nxt

    def sublists_after_cut(self, cut_tails: np.ndarray) -> list[list[int]]:
        """Split the list by deleting the pointers with the given tails.

        Returns the resulting sublists (in list order) as address lists;
        used by Match1 step 4 (walking constant-length sublists) and by
        its tests.
        """
        cut = np.zeros(self.n, dtype=bool)
        cut_tails = as_index_array(cut_tails, name="cut_tails")
        if cut_tails.size and (
            int(cut_tails.min()) < 0 or int(cut_tails.max()) >= self.n
        ):
            raise InvalidListError("cut tails must be node addresses")
        cut[cut_tails] = True
        out: list[list[int]] = []
        current: list[int] = []
        for v in self:
            current.append(v)
            if cut[v] or self._next[v] == NIL:
                out.append(current)
                current = []
        return out
