"""End-to-end self-check: one call certifies the whole installation.

``run_selfcheck()`` exercises every major subsystem on deterministic
workloads — matching algorithms (both tiers), the vectorized numpy
backend, ranking, coloring, MIS, rings, forests, the PRAM memory
discipline, fault-injection recovery, the telemetry span/RunRecord
round-trip, and the profiler's structural invariants — and reports
each check's
outcome instead of stopping at the first failure.  The CLI
exposes it as ``python -m repro selfcheck``; it is also what a
downstream user should run after installing into a new environment.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["CheckResult", "SelfCheckReport", "run_selfcheck"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one named check."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class SelfCheckReport:
    """All check outcomes of one self-check run."""

    results: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True iff every check passed."""
        return all(r.passed for r in self.results)

    @property
    def summary(self) -> str:
        """One line per check plus a verdict."""
        lines = [
            f"[{'PASS' if r.passed else 'FAIL'}] {r.name}"
            + (f": {r.detail}" if r.detail and not r.passed else "")
            for r in self.results
        ]
        ok = sum(r.passed for r in self.results)
        lines.append(f"{ok}/{len(self.results)} checks passed")
        return "\n".join(lines)


def _check(report: SelfCheckReport, name: str, fn: Callable[[], str | None]) -> None:
    try:
        detail = fn() or ""
        report.results.append(CheckResult(name, True, detail))
    except Exception as exc:  # noqa: BLE001 - a self-check must not die
        report.results.append(CheckResult(
            name, False,
            f"{type(exc).__name__}: {exc} | "
            + traceback.format_exc(limit=1).splitlines()[-1]
        ))


def run_selfcheck(*, n: int = 2048, seed: int = 0) -> SelfCheckReport:
    """Run the full battery on an ``n``-node deterministic workload."""
    import repro
    from repro.apps.coloring import (
        three_coloring,
        three_coloring_via_matching,
        verify_coloring,
    )
    from repro.apps.mis import mis_from_matching, verify_independent_set
    from repro.apps.ranking import contraction_ranks, sequential_ranks
    from repro.core.forests import forest_maximal_matching
    from repro.core.matching import verify_maximal_matching
    from repro.core.rings import ring_maximal_matching
    from repro.errors import MemoryConflictError
    from repro.lists.forest import random_forest
    from repro.lists.ring import random_ring
    from repro.pram import PRAM, Read
    from repro.pram.algorithms import run_match1, run_match4

    report = SelfCheckReport()
    lst = repro.random_list(n, rng=seed)

    def check_algorithms() -> str:
        sizes = []
        for alg in ("match1", "match2", "match3", "match4",
                    "sequential", "random_mate"):
            m, _, _ = repro.maximal_matching(lst, algorithm=alg)
            verify_maximal_matching(lst, m.tails)
            sizes.append(m.size)
        return f"sizes {sizes}"

    def check_instruction_tier() -> str:
        small = repro.random_list(96, rng=seed + 1)
        t1, _ = run_match1(small, mode="EREW")
        m1, _, _ = repro.match1(small)
        assert np.array_equal(t1, m1.tails), "match1 tiers disagree"
        t4, _ = run_match4(small, i=2, mode="EREW")
        m4, _, _ = repro.match4(small, i=2)
        assert np.array_equal(t4, m4.tails), "match4 tiers disagree"
        return "bit-identical"

    def check_backends() -> str:
        for alg, kw in (("match1", {}), ("match4", {"iterations": 2})):
            ref = repro.maximal_matching(
                lst, algorithm=alg, backend="reference", **kw)
            vec = repro.maximal_matching(
                lst, algorithm=alg, backend="numpy", **kw)
            assert np.array_equal(vec.matching.tails, ref.matching.tails), \
                f"{alg} backends disagree"
            assert vec.report == ref.report, f"{alg} cost reports diverge"
        lists = [repro.random_list(m, rng=seed + 5 + m)
                 for m in (1, 2, 33, n // 4)]
        batch = repro.batch_maximal_matching(lists, algorithm="match4")
        for sub, bm in zip(lists, batch.matchings):
            m, _, _ = repro.maximal_matching(sub, algorithm="match4")
            assert np.array_equal(bm.tails, m.tails), "batch diverged"
        return "numpy == reference (tails + cost), batch consistent"

    def check_ranking() -> str:
        oracle = sequential_ranks(lst)
        r1, _, _ = contraction_ranks(lst)
        r2, _ = repro.wyllie_ranks(lst)
        assert np.array_equal(r1, oracle), "contraction wrong"
        assert np.array_equal(r2, oracle), "wyllie wrong"
        return "3 solvers agree"

    def check_coloring() -> str:
        c1, _ = three_coloring(lst)
        verify_coloring(lst, c1, 3)
        c2, _ = three_coloring_via_matching(lst)
        verify_coloring(lst, c2, 3)
        return "both routes proper"

    def check_mis() -> str:
        m, _, _ = repro.match4(lst)
        mask, _ = mis_from_matching(lst, m)
        verify_independent_set(lst, mask, maximal=True)
        return f"|MIS| = {int(mask.sum())}"

    def check_ring() -> str:
        ring = random_ring(n // 2, rng=seed + 2)
        tails, _ = ring_maximal_matching(ring)
        return f"{tails.size} matched on the ring"

    def check_forest() -> str:
        forest = random_forest(n // 2, 8, rng=seed + 3)
        tails, _ = forest_maximal_matching(forest)
        return f"{tails.size} matched across 8 components"

    def check_memory_discipline() -> str:
        def racy(pid, nprocs):
            yield Read(0)

        try:
            PRAM(1, mode="EREW").run([racy, racy])
        except MemoryConflictError:
            return "EREW checker armed"
        raise AssertionError("EREW conflict went undetected")

    def check_prefix() -> str:
        values = np.arange(lst.n, dtype=np.int64)
        out, _ = repro.list_prefix_sums(lst, values)
        order = lst.order
        assert np.array_equal(out[order], np.cumsum(values[order]))
        return "prefix matches cumsum"

    def check_fault_recovery() -> str:
        from repro.pram.faults import BitFlip, FaultPlan, ProcessorCrash
        from repro.resilience import repair_matching

        small = repro.random_list(64, rng=seed + 4)
        clean, _ = run_match1(small, mode="EREW")
        # a crash mid-walk and a flipped chosen-flag bit, recovered by
        # checkpoint-restart: the result must be bit-identical to the
        # fault-free run.
        plan = FaultPlan([
            ProcessorCrash(step=40, pid=3),
            BitFlip(step=60, addr=5 * 64 + 10, bit=0),
        ])
        tails, rep = run_match1(
            small, mode="EREW", fault_plan=plan, recover=True,
            checkpoint_interval=16,
        )
        assert len(rep.faults) == 2, "faults not recorded"
        assert np.array_equal(tails, clean), "restart diverged"
        verify_maximal_matching(small, tails)
        # and the self-stabilizing repair pass survives raw corruption.
        repaired, stats = repair_matching(small, clean[1:])
        verify_maximal_matching(small, repaired)
        return (f"crash+flip recovered, repair re-matched "
                f"{stats.n_added} pointer(s)")

    def check_telemetry() -> str:
        import json
        import os
        import tempfile

        from repro.telemetry import capture
        from repro.telemetry.runrecord import (
            RunRecord, read_records, write_records,
        )

        with capture() as sink:
            res = repro.maximal_matching(
                lst, algorithm="match4", backend="numpy", iterations=2)
        names = set(sink.span_names())
        assert "maximal_matching" in names, "root span missing"
        assert any(nm.startswith("phase.") for nm in names), \
            "no phase spans recorded"
        rec = RunRecord.from_result(res, seed=seed, wall_s=0.0)
        fd, path = tempfile.mkstemp(suffix=".jsonl")
        os.close(fd)
        try:
            write_records(path, [rec])
            loaded = read_records(path)
            assert len(loaded) == 1, "round-trip lost the record"
            assert loaded[0].cost_report() == res.report, \
                "reloaded record's cost diverges from the live report"
            assert loaded[0].key() == rec.key(), "identity key changed"
            with open(path, encoding="utf-8") as fh:
                json.loads(fh.readline())
        finally:
            os.unlink(path)
        spans = len(sink.spans)
        return f"{spans} spans captured, JSONL round-trip exact"

    def check_profiling() -> str:
        from repro.telemetry import profile_matching

        tiny = repro.random_list(96, rng=seed + 6)
        run = profile_matching(tiny, algorithm="match4",
                               machine_trace=True)
        prof = run.profile.validate()
        assert prof.wall_s is not None and prof.wall_s > 0, \
            "no root span captured"
        assert prof.phases, "no phases profiled"
        assert prof.phase_wall_s <= prof.wall_s * (1 + 1e-6), \
            "phase wall-clock exceeds the root span"
        assert prof.utilization is not None \
            and 0.0 <= prof.utilization <= 1.0, "utilization out of range"
        assert prof.occupancy, "no occupancy grid"
        return (f"{len(prof.phases)} phases correlated, "
                f"utilization {prof.utilization:.3f}")

    def check_parallel() -> str:
        from repro.parallel import ParallelConfig, using_config

        small = repro.random_list(512, rng=seed + 7)
        ref = repro.maximal_matching(
            small, algorithm="match4", backend="reference", iterations=2)
        with using_config(ParallelConfig(workers=2, chunk_size=64)):
            par = repro.maximal_matching(
                small, algorithm="match4", backend="numpy-mp", iterations=2)
        assert np.array_equal(par.matching.tails, ref.matching.tails), \
            "numpy-mp tails diverge from reference"
        assert par.report == ref.report, "numpy-mp cost report diverges"
        lists = [repro.random_list(m, rng=seed + 8 + m)
                 for m in (1, 2, 33, 127, 128)]
        serial = repro.batch_maximal_matching(lists, algorithm="match4")
        sharded = repro.batch_maximal_matching(
            lists, algorithm="match4", workers=2)
        for sm, pm in zip(serial.matchings, sharded.matchings):
            assert np.array_equal(sm.tails, pm.tails), \
                "sharded batch diverged from serial"
        return "numpy-mp == reference, sharded batch == serial"

    def check_planner() -> str:
        import os
        import tempfile

        from repro.planner import ExecutionPolicy
        from repro.telemetry.runrecord import RunRecord, write_records

        small = repro.random_list(1024, rng=seed + 9)
        auto = repro.maximal_matching(
            small, algorithm="match4", backend="auto", iterations=2)
        decision = auto.extras.get("planner")
        assert decision is not None, "auto left no planner decision"
        explicit = repro.maximal_matching(
            small, algorithm="match4", backend=decision["backend"],
            iterations=2)
        assert np.array_equal(auto.matching.tails,
                              explicit.matching.tails), \
            "auto diverged from its chosen backend"
        assert auto.report == explicit.report, "auto cost report diverges"
        assert auto.stats == explicit.stats, "auto stats diverge"
        # history steering: a manifest where reference dominates must
        # flip the pick, and the decision must say the history rule fired.
        fast = repro.maximal_matching(
            small, algorithm="match4", backend="reference", iterations=2)
        rec = RunRecord.from_result(fast, seed=seed, wall_s=1e-4)
        fd, path = tempfile.mkstemp(suffix=".jsonl")
        os.close(fd)
        try:
            write_records(path, [rec])
            steered = repro.maximal_matching(
                small, algorithm="match4", backend="auto", iterations=2,
                policy=ExecutionPolicy(history=path))
            hist = steered.extras["planner"]
            assert hist["rule"] == "history", \
                f"history rule did not fire: {hist['rule']}"
            assert steered.backend == "reference", \
                f"history pick ignored: {steered.backend}"
        finally:
            os.unlink(path)
        return (f"auto == {decision['backend']} (rule="
                f"{decision['rule']}), history steers the pick")

    def check_dynamic() -> str:
        from repro.apps import uniform_contraction, verify_contraction
        from repro.dynamic import ChurnConfig, ChurnSession, \
            decide_maintenance

        cfg = ChurnConfig(steps=128, seed=seed, n_initial=min(n, 256),
                          burstiness=0.2, hotspot=0.5)
        sess = ChurnSession(cfg)
        sess.run(on_edit=lambda s, k, op: s.dyn.verify())
        ledger = sess.dyn.ledger
        assert ledger.edits == cfg.steps, \
            f"ledger saw {ledger.edits} of {cfg.steps} edits"
        assert ledger.max_moves_per_edit <= 8, \
            f"per-edit repair moved {ledger.max_moves_per_edit} bits " \
            f"— the O(1)-neighborhood bound is broken"
        # Each component contracts to one node off the *maintained*
        # matching (round 0 seeded, later rounds via match4).
        for snap in sess.dyn.components():
            parent, _, stats = uniform_contraction(
                snap.lst, first_tails=snap.tails)
            verify_contraction(snap.lst, parent)
            assert stats.seeded_round, "seed matching was not used"
            assert stats.uniform_rate_held, \
                f"contraction rate broke: {stats.level_sizes}"
        small = decide_maintenance(n=max(n, 1024), batch_size=2)
        big = decide_maintenance(n=64, batch_size=100_000)
        assert small.strategy == "repair", small.strategy
        assert big.strategy == "recompute", big.strategy
        return (f"{cfg.steps} edits repaired "
                f"(max {ledger.max_moves_per_edit} moves/edit, "
                f"{sess.dyn.heads().size} components), "
                f"planner splits repair/recompute")

    _check(report, "matching algorithms (6) maximal", check_algorithms)
    _check(report, "instruction-level tier identical", check_instruction_tier)
    _check(report, "numpy backend equivalence", check_backends)
    _check(report, "list ranking agreement", check_ranking)
    _check(report, "3-coloring (both routes)", check_coloring)
    _check(report, "maximal independent set", check_mis)
    _check(report, "ring pipeline", check_ring)
    _check(report, "forest pipeline", check_forest)
    _check(report, "PRAM memory discipline", check_memory_discipline)
    _check(report, "list prefix sums", check_prefix)
    _check(report, "fault injection + recovery", check_fault_recovery)
    _check(report, "telemetry round-trip", check_telemetry)
    _check(report, "profiler invariants", check_profiling)
    _check(report, "parallel backend equivalence", check_parallel)
    _check(report, "planner auto equivalence", check_planner)
    _check(report, "dynamic churn + contraction", check_dynamic)
    return report
