"""repro — reproduction of Han (SPAA 1989), *Matching Partition a
Linked List and Its Optimization*.

The library computes **maximal matchings of linked lists on a simulated
PRAM**, implementing the paper's four algorithms (Match1–Match4,
including the WalkDown1/WalkDown2 optimal scheduling technique that is
the paper's contribution), the matching partition functions they build
on, the applications the paper names (3-coloring, maximal independent
set, optimal list ranking), and the full PRAM substrate (instruction-
level simulator with memory-conflict enforcement, plus a Brent cost
model for large-scale complexity measurements).

Quick start::

    import repro

    lst = repro.random_list(1 << 12, rng=0)
    result = repro.maximal_matching(
        lst, algorithm="match4", backend="numpy", p=64, iterations=2
    )
    print(result.matching.size, result.report.time, result.report.cost)
    # or, unpacking the legacy 3-tuple:
    matching, report, stats = result

``backend="numpy"`` runs each PRAM round as one batch of vectorized
array operations (bit-identical results, an order of magnitude faster
on the host); ``backend="reference"`` (the default) runs the
paper-faithful per-pointer implementations.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the reproduced per-lemma/theorem experiments.
"""

from . import analysis, apps, baselines, bits, core, lists, pram, telemetry
from .errors import (
    InvalidListError,
    InvalidParameterError,
    MemoryConflictError,
    PRAMError,
    ReproError,
    VerificationError,
)
from .lists import (
    NIL,
    LinkedList,
    Ring,
    bit_reversal_list,
    blocked_list,
    gray_code_list,
    interleaved_list,
    random_list,
    random_ring,
    reversed_list,
    sawtooth_list,
    sequential_list,
    sequential_ring,
)
from .core import (
    ALGORITHMS,
    AlgorithmInfo,
    Matching,
    MatchingPartition,
    MatchResult,
    f_lsb,
    f_msb,
    iterate_f,
    match1,
    match2,
    match3,
    match4,
    maximal_matching,
    register_algorithm,
    verify_matching,
    verify_maximal_matching,
)
from .apps import (
    contraction_ranks,
    list_prefix_sums,
    list_ranks,
    mis_from_coloring,
    mis_from_matching,
    three_coloring,
)
from .baselines import random_mate_matching, sequential_matching, wyllie_ranks
from .pram import PRAM, AccessMode, CostModel, CostReport
from .bits import G, ilog2, log_G
from . import backends
from .backends import BACKENDS, Backend
from .backends.batch import BatchMatchResult, batch_maximal_matching
from . import parallel
from .parallel import ParallelConfig, using_config
from . import planner
from .planner import ExecutionPolicy, Planner
from .resilience import resilient_matching
from . import dynamic
from .dynamic import ChurnConfig, ChurnSession, DynamicList, RepairLedger
from ._buildinfo import build_info, version_string
from .telemetry import METRICS, RunRecord

__version__ = "1.0.0"

__all__ = [
    # subpackages
    "analysis", "apps", "backends", "baselines", "bits", "core",
    "dynamic", "lists", "parallel", "planner", "pram", "telemetry",
    # errors
    "ReproError", "InvalidListError", "InvalidParameterError",
    "PRAMError", "MemoryConflictError", "VerificationError",
    # lists
    "NIL", "LinkedList", "Ring", "random_list", "sequential_list",
    "reversed_list", "sawtooth_list", "blocked_list",
    "bit_reversal_list", "gray_code_list", "interleaved_list",
    "random_ring", "sequential_ring",
    # core
    "ALGORITHMS", "AlgorithmInfo", "Matching", "MatchingPartition",
    "MatchResult", "f_msb", "f_lsb",
    "iterate_f", "match1", "match2", "match3", "match4",
    "maximal_matching", "register_algorithm",
    "verify_matching", "verify_maximal_matching",
    # backends
    "BACKENDS", "Backend", "BatchMatchResult", "batch_maximal_matching",
    # parallel
    "ParallelConfig", "using_config",
    # planner
    "ExecutionPolicy", "Planner", "resilient_matching",
    # dynamic
    "ChurnConfig", "ChurnSession", "DynamicList", "RepairLedger",
    # apps
    "three_coloring", "mis_from_coloring", "mis_from_matching",
    "contraction_ranks", "list_ranks", "list_prefix_sums",
    # baselines
    "sequential_matching", "random_mate_matching", "wyllie_ranks",
    # pram
    "PRAM", "AccessMode", "CostModel", "CostReport",
    # bits
    "G", "log_G", "ilog2",
    # telemetry + build provenance
    "METRICS", "RunRecord", "build_info", "version_string",
    "__version__",
]
