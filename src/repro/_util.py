"""Small shared helpers used across the :mod:`repro` package.

These are deliberately tiny, dependency-free utilities; anything with
algorithmic content lives in a real module.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from .errors import InvalidParameterError

__all__ = [
    "as_index_array",
    "ceil_div",
    "require",
    "is_power_of_two",
    "next_power_of_two",
]

#: Canonical integer dtype for node addresses, labels, and pointers.
INDEX_DTYPE = np.int64


def as_index_array(values: Any, *, name: str = "array") -> np.ndarray:
    """Return ``values`` as a 1-D contiguous ``int64`` array.

    Accepts any sequence or array-like of integers.  A defensive copy is
    made only when the input is not already a contiguous ``int64`` array,
    following the "views, not copies" guidance for numeric code.

    Raises
    ------
    InvalidParameterError
        If the input is not integral or not one-dimensional.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        arr = arr.astype(INDEX_DTYPE)  # empty input carries no dtype intent
    if arr.dtype.kind not in "iu":
        raise InvalidParameterError(
            f"{name} must be an integer array, got dtype {arr.dtype}"
        )
    if arr.ndim != 1:
        raise InvalidParameterError(
            f"{name} must be one-dimensional, got shape {arr.shape}"
        )
    return np.ascontiguousarray(arr, dtype=INDEX_DTYPE)


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for non-negative ``a``, positive ``b``."""
    if b <= 0:
        raise InvalidParameterError(f"divisor must be positive, got {b}")
    return -(-a // b)


def require(condition: bool, message: str) -> None:
    """Raise :class:`InvalidParameterError` with ``message`` unless ``condition``."""
    if not condition:
        raise InvalidParameterError(message)


def is_power_of_two(x: int) -> bool:
    """Return ``True`` iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def next_power_of_two(x: int) -> int:
    """Smallest power of two ``>= x`` (``1`` for ``x <= 1``)."""
    if x <= 1:
        return 1
    return 1 << (int(x) - 1).bit_length()
