"""Matching-as-a-service: a stdlib asyncio batch server.

The production face of :func:`repro.batch_maximal_matching`: a
long-running HTTP server that coalesces many small client requests
into fused engine batches, sheds load explicitly instead of buffering
it, honors per-request deadlines end-to-end, and degrades through the
resilience ladder rather than erroring.  Start it from the shell::

    python -m repro serve --port 8080 --record runs.jsonl

or in-process::

    from repro.service import MatchingService, ServiceConfig

    service = MatchingService(ServiceConfig(port=0))
    await service.start()
    ...
    await service.drain()

Layers (each its own module):

- :mod:`~repro.service.config` — every tuning knob, one frozen object;
- :mod:`~repro.service.workload` — request parsing and the canonical
  workload identity shared with RunRecord manifests;
- :mod:`~repro.service.cache` — the LRU response cache on that
  identity;
- :mod:`~repro.service.batcher` — bounded admission queue, the
  micro-batcher, deadlines, retry/backoff, per-request degradation;
- :mod:`~repro.service.server` — the HTTP/1.1 front, graceful drain,
  and the final RunRecord manifest;
- :mod:`~repro.service.client` — the tiny asyncio client the tests
  and the traffic benchmark use.

See ``docs/service.md`` for endpoint and semantics documentation.
"""

from .batcher import AdmissionQueue, Entry, MicroBatcher, PendingRequest
from .cache import ResponseCache
from .config import ServiceConfig
from .server import MatchingService
from .workload import Workload, WorkloadError, parse_workload

__all__ = [
    "AdmissionQueue",
    "Entry",
    "MatchingService",
    "MicroBatcher",
    "PendingRequest",
    "ResponseCache",
    "ServiceConfig",
    "Workload",
    "WorkloadError",
    "parse_workload",
]
