"""A minimal asyncio HTTP/1.1 client for the matching service.

Just enough protocol for the test suite and the traffic benchmark to
talk to :class:`~repro.service.server.MatchingService` without any
third-party dependency: one request per call, ``Connection: close``,
JSON bodies in and out.  Not a general HTTP client on purpose.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "HttpResponse",
    "http_request",
    "post_json",
    "get",
    "fetch_json",
    "sse_frames",
    "fetch_sse",
]


@dataclass(frozen=True)
class HttpResponse:
    """Status, headers, and raw body of one exchange."""

    status: int
    headers: Mapping[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))

    @property
    def retry_after(self) -> float | None:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    body: bytes | None = None,
    content_type: str = "application/json",
    timeout: float = 30.0,
) -> HttpResponse:
    """One request/response exchange on a fresh connection."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        payload = body or b""
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Length: {len(payload)}",
            f"Content-Type: {content_type}",
            "Connection: close",
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + payload)
        await writer.drain()

        async def read_response() -> HttpResponse:
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(maxsplit=2)
            if len(parts) < 2:
                raise ConnectionError(
                    f"malformed status line: {status_line!r}")
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            data = await reader.readexactly(length) if length else b""
            return HttpResponse(status=status, headers=headers, body=data)

        return await asyncio.wait_for(read_response(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - server already hung up
            pass


async def post_json(
    host: str, port: int, path: str, obj: Any, *, timeout: float = 30.0,
) -> HttpResponse:
    """POST ``obj`` as JSON."""
    return await http_request(
        host, port, "POST", path,
        body=json.dumps(obj).encode("utf-8"), timeout=timeout,
    )


async def get(
    host: str, port: int, path: str, *, timeout: float = 30.0,
) -> HttpResponse:
    """Plain GET."""
    return await http_request(host, port, "GET", path, timeout=timeout)


def _split_url(url: str) -> tuple[str, int, str]:
    parsed = urllib.parse.urlsplit(
        url if "//" in url else "http://" + url)
    path = parsed.path or "/"
    if parsed.query:
        path += "?" + parsed.query
    return parsed.hostname or "127.0.0.1", parsed.port or 80, path


def fetch_json(url: str, *, timeout: float = 30.0) -> tuple[int, Any]:
    """Synchronous one-shot GET: ``(status, parsed JSON or None)``.

    The form ``repro top`` and the benchmark's debug probe use from
    plain (non-async) code.
    """
    host, port, path = _split_url(url)
    resp = asyncio.run(get(host, port, path, timeout=timeout))
    try:
        return resp.status, resp.json()
    except ValueError:
        return resp.status, None


async def sse_frames(
    host: str, port: int, path: str, *,
    max_frames: int = 1, timeout: float = 30.0,
) -> tuple[int, list[Any]]:
    """Read up to ``max_frames`` ``data:`` frames from an SSE endpoint.

    Returns ``(status, frames)`` with each frame JSON-decoded.  Stops
    early when the server closes the stream.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    frames: list[Any] = []
    try:
        head = [
            f"GET {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Accept: text/event-stream",
            "Connection: close",
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

        async def read() -> int:
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(maxsplit=2)
            if len(parts) < 2:
                raise ConnectionError(
                    f"malformed status line: {status_line!r}")
            status = int(parts[1])
            while True:  # headers
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
            while len(frames) < max_frames:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if line.startswith(b"data:"):
                    frames.append(json.loads(
                        line[len(b"data:"):].strip().decode("utf-8")))
            return status

        status = await asyncio.wait_for(read(), timeout)
        return status, frames
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - server already hung up
            pass


def fetch_sse(url: str, *, max_frames: int = 1,
              timeout: float = 30.0) -> tuple[int, list[Any]]:
    """Synchronous wrapper around :func:`sse_frames`."""
    host, port, path = _split_url(url)
    return asyncio.run(sse_frames(host, port, path,
                                  max_frames=max_frames, timeout=timeout))
