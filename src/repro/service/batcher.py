"""Admission control and the micro-batcher.

Two cooperating pieces, both owned by the event loop:

:class:`AdmissionQueue`
    The only buffer in the service, and a *bounded* one: a request is
    either admitted (queue depth and in-flight bytes both under their
    configured limits) or shed immediately with a reason that maps to
    429 + ``Retry-After`` — the server never buffers unboundedly, so
    overload degrades into fast rejections instead of memory growth.

:class:`MicroBatcher`
    A single background task that pulls admitted requests and
    coalesces them for up to ``max_batch_delay_ms`` or
    ``max_batch_items``, then dispatches each (algorithm, backend)
    group through one
    :func:`~repro.backends.batch.batch_maximal_matching` call in a
    worker thread — many small client lists become one arena-fused
    batch, the throughput form the paper's batch-of-lists framing
    suggests.  Around that call sit the robustness layers, outermost
    first:

    - **deadlines** — requests expired while queued are answered 504
      *without computing*; an in-flight batch that outlives every
      member's deadline is abandoned (the thread finishes into the
      void) and its requests answered 504;
    - **retry** — pool-infrastructure failures
      (:data:`~repro.parallel.executor.POOL_ERRORS`) escaping the
      executor's own serial fallback are retried with seeded-jitter
      exponential backoff, at most ``max_retries`` times;
    - **degrade** — an engine error (or exhausted retries) falls back
      *per request* through
      :func:`repro.resilience.resilient_matching` on the reference
      tier, so one poisoned workload degrades its own answer instead
      of failing the batch: accepted requests answer 200 or 504,
      never 500, unless even the sequential floor fails.

Every decision is counted in ``service.*`` metrics (always on — the
process's own metrics are its operational surface; span emission
still honors the global telemetry flag).

Two observability duties ride along with responding.  Every answered
request feeds the rolling :class:`~repro.telemetry.live
.LiveAggregator` behind ``/debug/vars`` and — when it carries a
:class:`~repro.telemetry.context.TraceContext` — emits its
``service.request`` root span at finish time, the root the fused
``service.batch`` span's ``links`` attribute lets the exporter hang
shard work under.  And with :attr:`ServiceConfig.feedback` enabled,
sampled fused batches are attributed back into the planner's history
(:meth:`MicroBatcher._record_feedback`), closing the
telemetry→planner loop.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable

from ..errors import ReproError
from ..parallel.executor import POOL_ERRORS
from ..planner.model import n_bucket
from ..pram.cost import CostModel
from ..telemetry.context import TraceContext, using_trace
from ..telemetry.live import LiveAggregator, SloConfig
from ..telemetry.metrics import METRICS
from ..telemetry.runrecord import RunRecord, append_record
from ..telemetry.spans import (
    Span,
    enabled as telemetry_enabled,
    event as telemetry_event,
    get_tracer,
    span as telemetry_span,
)
from .config import ServiceConfig
from .workload import Workload

__all__ = ["Entry", "PendingRequest", "AdmissionQueue", "MicroBatcher"]

#: Shed reasons (429) an :meth:`AdmissionQueue.try_admit` can return.
SHED_QUEUE_FULL = "queue_full"
SHED_BYTES = "inflight_bytes"
SHED_DRAINING = "draining"


@dataclass
class Entry:
    """One workload inside a request, filled as it is served."""

    workload: Workload
    #: Response payload once served (from cache, compute, or fallback).
    payload: dict[str, Any] | None = None
    #: ``"hit"`` / ``"miss"`` / ``"off"`` — how the cache saw it.
    cache: str = "off"
    #: Set instead of ``payload`` when this entry failed terminally.
    error: str = ""
    #: True when the failure was a deadline (504), not an error (500).
    timed_out: bool = False


@dataclass(eq=False)  # identity semantics: requests live in sets
class PendingRequest:
    """One admitted HTTP request traveling queue → batch → response."""

    entries: list[Entry]
    deadline: float  # event-loop clock
    enqueued_at: float
    future: "asyncio.Future[tuple[int, dict[str, Any]]]"
    single: bool  # /v1/match (unwrap the one entry) vs /v1/batch
    use_cache: bool
    #: Byte budget charged at admission (snapshotted: entries fill in
    #: as they are served, so ``nbytes`` shrinks over time).
    admitted_bytes: int = 0
    #: Request trace identity (``None`` when telemetry is disabled).
    #: Carries the preallocated root span id; the ``service.request``
    #: span itself is emitted once, at :meth:`MicroBatcher._finish`.
    trace: TraceContext | None = None
    #: ``time.perf_counter()`` at HTTP ingress (the root span's start).
    ingress_at: float = 0.0

    @property
    def nbytes(self) -> int:
        return sum(e.workload.nbytes for e in self.entries if e.payload is None)

    @property
    def total_nodes(self) -> int:
        return sum(e.workload.n for e in self.entries)


class AdmissionQueue:
    """Bounded request queue with explicit load shedding.

    ``depth`` counts requests admitted but not yet picked up by the
    batcher; ``inflight_bytes`` counts the pointer-arena bytes of
    every admitted-and-unanswered request (queued *or* computing), so
    the two limits together bound resident workload memory.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.depth = 0
        self.inflight_bytes = 0
        self.draining = False
        self.admitted = 0
        self.shed_counts: dict[str, int] = {}
        self._queue: asyncio.Queue[PendingRequest] = asyncio.Queue()

    def try_admit(self, request: PendingRequest) -> str | None:
        """Admit ``request`` or return the shed reason (never blocks)."""
        if self.draining:
            reason = SHED_DRAINING
        elif self.depth >= self.config.max_queue_depth:
            reason = SHED_QUEUE_FULL
        elif (self.inflight_bytes + request.nbytes
                > self.config.max_inflight_bytes):
            reason = SHED_BYTES
        else:
            reason = None
        if reason is not None:
            self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
            METRICS.counter(f"service.shed.{reason}").inc()
            return reason
        request.admitted_bytes = request.nbytes
        self.depth += 1
        self.inflight_bytes += request.admitted_bytes
        self._queue.put_nowait(request)
        self.admitted += 1
        METRICS.counter("service.accepted").inc()
        METRICS.gauge("service.queue_depth").set(self.depth)
        METRICS.gauge("service.inflight_bytes").set(self.inflight_bytes)
        return None

    def release(self, nbytes: int) -> None:
        """Return an answered request's byte budget to the admitter."""
        self.inflight_bytes = max(0, self.inflight_bytes - nbytes)
        METRICS.gauge("service.inflight_bytes").set(self.inflight_bytes)

    def picked(self) -> None:
        self.depth = max(0, self.depth - 1)
        METRICS.gauge("service.queue_depth").set(self.depth)

    async def get(self) -> PendingRequest:
        request = await self._queue.get()
        self.picked()
        return request

    def get_nowait(self) -> PendingRequest | None:
        try:
            request = self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        self.picked()
        return request

    def empty(self) -> bool:
        return self._queue.empty()


def _call_traced(ctx: TraceContext | None, fn: Callable[[], Any]) -> Any:
    """Run ``fn`` under ``ctx`` in the compute thread.

    ``loop.run_in_executor`` does not propagate contextvars, so the
    batch's trace context must be re-installed inside the thread —
    this is what lets the sharded executor's ``current_trace()`` see
    the request identity and ship it to pool workers.
    """
    with using_trace(ctx):
        return fn()


class MicroBatcher:
    """The single consumer task between the queue and the engine.

    ``batch_fn`` defaults to
    :func:`~repro.backends.batch.batch_maximal_matching`; tests inject
    wrappers that fail on schedule to drive the retry and fallback
    paths deterministically.  ``fallback_fn`` likewise defaults to
    :func:`repro.resilience.resilient_matching`.
    """

    def __init__(
        self,
        admission: AdmissionQueue,
        config: ServiceConfig,
        *,
        batch_fn: Callable[..., Any] | None = None,
        fallback_fn: Callable[..., Any] | None = None,
        cache=None,
        live: LiveAggregator | None = None,
    ) -> None:
        from ..backends.batch import batch_maximal_matching
        from ..resilience import resilient_matching

        self.admission = admission
        self.config = config
        self.cache = cache
        #: Rolling-window operational view (always on, like the
        #: ``service.*`` counters); shared with the server's
        #: ``/debug/vars`` handler.
        self.live = live if live is not None else LiveAggregator(
            slo=SloConfig(config.slo_p95_ms, config.slo_availability),
            window_s=config.live_window_s,
        )
        self._batch_fn = batch_fn or batch_maximal_matching
        self._fallback_fn = fallback_fn or resilient_matching
        self._stopping = asyncio.Event()
        self._rng = random.Random(config.seed)
        self._executor = None  # created lazily on the running loop
        #: Aggregate Brent account of everything computed, for the
        #: final manifest.
        self.cost = CostModel(1)
        self.batches = 0
        self.nodes_served = 0
        # Per-instance lifetime counts for this server's manifest (the
        # global METRICS registry accumulates across instances).
        self.served = 0
        self.timeouts = 0
        self.errors = 0
        self.retries = 0
        self.engine_faults = 0
        self.degraded = 0
        self.deadline_shed = 0
        self.feedback_records = 0
        self._feedback_path = config.feedback_path or config.planner_history

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Ask :meth:`run` to exit once the queue is flushed."""
        self._stopping.set()

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    def _pool(self):
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.config.compute_threads,
                thread_name_prefix="repro-service-compute",
            )
        return self._executor

    def shutdown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- main loop ---------------------------------------------------------

    async def run(self) -> None:
        """Consume the queue until :meth:`stop` *and* the queue drains."""
        while True:
            first = await self._next_request()
            if first is None:
                return
            batch = await self._gather(first)
            await self._dispatch(batch)

    async def _next_request(self) -> PendingRequest | None:
        """Next queued request; ``None`` when stopping with an empty
        queue (drain complete)."""
        while True:
            request = self.admission.get_nowait()
            if request is not None:
                return request
            if self.stopping:
                return None
            get_task = asyncio.ensure_future(self.admission.get())
            stop_task = asyncio.ensure_future(self._stopping.wait())
            done, _ = await asyncio.wait(
                {get_task, stop_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            stop_task.cancel()
            if get_task in done:
                return get_task.result()
            # Stop was requested.  The get may have raced a final
            # enqueue to completion — never drop an admitted request.
            get_task.cancel()
            try:
                return await get_task
            except asyncio.CancelledError:
                pass
            # Loop once more: get_nowait flushes whatever is queued.

    async def _gather(self, first: PendingRequest) -> list[PendingRequest]:
        """Coalesce queued requests behind ``first`` for the batch window."""
        loop = asyncio.get_running_loop()
        batch = [first]
        window_end = loop.time() + self.config.max_batch_delay_ms / 1000.0
        while len(batch) < self.config.max_batch_items:
            request = self.admission.get_nowait()
            if request is None:
                if self.stopping:
                    break
                timeout = window_end - loop.time()
                if timeout <= 0:
                    break
                try:
                    request = await asyncio.wait_for(
                        self.admission.get(), timeout)
                except (asyncio.TimeoutError, TimeoutError):
                    break
            batch.append(request)
        return batch

    # -- responding --------------------------------------------------------

    def _finish(self, request: PendingRequest, status: int,
                payload: dict[str, Any]) -> None:
        """Resolve a request's future exactly once and release budget."""
        if request.future.done():
            return
        loop = asyncio.get_running_loop()
        latency_ms = (loop.time() - request.enqueued_at) * 1000.0
        payload = {**payload, "latency_ms": round(latency_ms, 3)}
        if request.trace is not None:
            payload["trace_id"] = request.trace.trace_id
        METRICS.histogram("service.latency_ms").observe(latency_ms)
        if status == 200:
            self.served += 1
            METRICS.counter("service.served").inc()
        elif status in (503, 504):
            self.timeouts += 1
            METRICS.counter("service.timeouts").inc()
        else:
            self.errors += 1
            METRICS.counter("service.errors").inc()
        hits = sum(1 for e in request.entries if e.cache == "hit")
        lookups = sum(1 for e in request.entries if e.cache != "off")
        self.live.observe_request(
            latency_ms=latency_ms, status=status,
            cache_hits=hits, cache_lookups=lookups,
        )
        if request.trace is not None and telemetry_enabled():
            self._emit_request_span(request, status, latency_ms,
                                    hits, lookups)
        self.admission.release(request.admitted_bytes)
        request.future.set_result((status, payload))

    def _emit_request_span(self, request: PendingRequest, status: int,
                           latency_ms: float, hits: int,
                           lookups: int) -> None:
        """Emit the per-request root span (the trace's tree root).

        Built foreign rather than via the span stack: the request
        lived across awaits, threads, and possibly worker processes,
        so its span exists only now — with the id that every child
        already parented under via the ambient context.
        """
        tracer = get_tracer()
        end = time.perf_counter()
        span_id = request.trace.span_id
        sp = Span(
            "service.request",
            span_id if span_id is not None else tracer.next_id(),
            None,
            request.ingress_at or end,
            {
                "status": status,
                "latency_ms": round(latency_ms, 3),
                "entries": len(request.entries),
                "single": request.single,
                "n_total": request.total_nodes,
                "cache_hits": hits,
                "cache_lookups": lookups,
            },
            tracer,
            request.trace.trace_id,
        )
        sp.end = end
        sp.status = "ok" if status == 200 else "error"
        tracer.emit_foreign(sp)

    def _respond(self, request: PendingRequest) -> None:
        """Shape the final response from the request's filled entries."""
        payloads = []
        worst_timeout = False
        worst_error = ""
        for entry in request.entries:
            if entry.payload is not None:
                payloads.append({**entry.payload, "cache": entry.cache})
            elif entry.timed_out:
                worst_timeout = True
            else:
                worst_error = entry.error or "internal error"
        if worst_error:
            self._finish(request, 500, {"error": worst_error})
        elif worst_timeout:
            self._finish(request, 504, {"error": "deadline exceeded"})
        elif request.single:
            self._finish(request, 200, payloads[0])
        else:
            self._finish(request, 200, {"results": payloads})

    def _shed_expired(self, request: PendingRequest) -> None:
        self.deadline_shed += 1
        METRICS.counter("service.deadline.queued").inc()
        self._finish(request, 504, {
            "error": "deadline expired while queued (not computed)",
        })

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, batch: list[PendingRequest]) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: list[PendingRequest] = []
        for request in batch:
            if request.deadline <= now:
                self._shed_expired(request)
            else:
                live.append(request)
        if not live:
            return
        self.batches += 1
        METRICS.counter("service.batches").inc()
        METRICS.histogram("service.batch.requests").observe(len(live))
        groups: dict[tuple[str, str], list[tuple[PendingRequest, Entry]]] = {}
        for request in live:
            for entry in request.entries:
                if entry.payload is not None:
                    continue  # cache hit riding along in a batch request
                key = (entry.workload.algorithm, entry.workload.backend)
                groups.setdefault(key, []).append((request, entry))
        for (algorithm, backend), pairs in groups.items():
            await self._compute_group(algorithm, backend, pairs)
        for request in live:
            self._respond(request)

    async def _compute_group(
        self,
        algorithm: str,
        backend: str,
        pairs: list[tuple[PendingRequest, Entry]],
    ) -> None:
        """One fused batch call (+ retry/fallback) for one group."""
        loop = asyncio.get_running_loop()
        budget_end = max(request.deadline for request, _ in pairs)
        lists = [entry.workload.lst for _, entry in pairs]
        METRICS.histogram("service.batch.lists").observe(len(lists))
        attempt = 0
        while True:
            remaining = budget_end - loop.time()
            if remaining <= 0:
                self._mark_timeout(pairs, stage="pre-dispatch")
                return
            fn = partial(
                self._batch_fn, lists, algorithm=algorithm, backend=backend,
                workers=self.config.workers, p=1,
            )
            t0 = time.perf_counter()
            try:
                if telemetry_enabled():
                    # One fused span serves every member request: simple
                    # parentage cannot express that, so the span carries
                    # each member's trace id in ``links`` (the key
                    # request_trace_spans re-cuts the tree with), is
                    # tagged with the first member's trace id, and hands
                    # the compute thread an ambient context parenting
                    # thread-root spans under it.
                    links = tuple(sorted({
                        req.trace.trace_id for req, _ in pairs
                        if req.trace is not None
                    }))
                    with telemetry_span(
                        "service.batch", algorithm=algorithm,
                        backend=backend, lists=len(lists), attempt=attempt,
                        links=links,
                    ) as batch_span:
                        ctx = None
                        if links:
                            batch_span.trace_id = links[0]
                            ctx = TraceContext(links[0],
                                               batch_span.span_id)
                        result = await asyncio.wait_for(
                            loop.run_in_executor(
                                self._pool(),
                                partial(_call_traced, ctx, fn)),
                            remaining)
                else:
                    result = await asyncio.wait_for(
                        loop.run_in_executor(self._pool(), fn), remaining)
            except (asyncio.TimeoutError, TimeoutError):
                # The worker thread is abandoned (a thread cannot be
                # killed); its result is discarded on arrival.
                METRICS.counter("service.deadline.inflight").inc()
                self._mark_timeout(pairs, stage="in-flight")
                return
            except POOL_ERRORS as exc:
                attempt += 1
                self.retries += 1
                METRICS.counter("service.retries").inc()
                if telemetry_enabled():
                    telemetry_event(
                        "service.retry", attempt=attempt,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                if attempt > self.config.max_retries:
                    await self._fallback(
                        pairs, f"pool retries exhausted: {exc}")
                    return
                delay = min(
                    self.config.base_backoff_s * (2.0 ** (attempt - 1)),
                    self.config.max_backoff_s,
                ) * (0.5 + self._rng.random())
                await asyncio.sleep(
                    min(delay, max(0.0, budget_end - loop.time())))
                continue
            except ReproError as exc:
                self.engine_faults += 1
                METRICS.counter("service.engine_faults").inc()
                if telemetry_enabled():
                    telemetry_event(
                        "service.engine_fault", algorithm=algorithm,
                        backend=backend,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                await self._fallback(pairs, f"{type(exc).__name__}: {exc}")
                return
            break
        wall_s = time.perf_counter() - t0
        self.cost.absorb(result.report)
        for (request, entry), matching in zip(pairs, result.matchings):
            self.nodes_served += entry.workload.n
            self._fill(entry, matching, served_by=algorithm, degraded=False)
        if self.config.feedback and \
                self.batches % max(1, self.config.feedback_sample) == 0:
            self._record_feedback(
                algorithm, backend, [entry for _, entry in pairs], wall_s)

    def _record_feedback(self, algorithm: str, backend: str,
                         entries: list[Entry], wall_s: float) -> None:
        """Close the telemetry→planner loop for one fused batch.

        The batch's wall-clock is attributed back to its workloads by
        node share, then folded per (n-bucket, layout) into one
        observation each — the mean per-list wall in that bucket, the
        regime (``profile="single"``, the workload's layout) the
        planner's parse-time ``backend="auto"`` decision actually
        looks up.  Each observation is fed live into the
        process-default planner's model and appended (rotated) to the
        feedback manifest so the next process starts warm.
        """
        from ..planner import get_default_planner

        total = sum(e.workload.n for e in entries) or 1
        groups: dict[tuple[int, str | None], list[Entry]] = {}
        for entry in entries:
            identity = entry.workload.identity
            layout = identity[2] if identity[0] == "spec" else None
            key = (n_bucket(entry.workload.n), layout)
            groups.setdefault(key, []).append(entry)
        planner = get_default_planner()
        workers = (self.config.workers if backend == "numpy-mp" else None)
        now = time.time()
        for (bucket, layout) in sorted(groups,
                                       key=lambda k: (k[0], k[1] or "")):
            group = groups[(bucket, layout)]
            share = sum(e.workload.n for e in group) / total
            per_list_wall = wall_s * share / len(group)
            n_rep = max(e.workload.n for e in group)
            planner.observe_result(
                algorithm=algorithm, backend=backend, n=n_rep,
                wall_s=per_list_wall, workers=workers, layout=layout,
            )
            self.feedback_records += 1
            METRICS.counter("service.feedback").inc()
            if telemetry_enabled():
                telemetry_event(
                    "service.feedback", algorithm=algorithm,
                    backend=backend, n=n_rep, bucket=bucket,
                    layout=layout, wall_s=per_list_wall,
                    lists=len(group),
                )
            if self._feedback_path:
                extra: dict[str, Any] = {
                    "source": "service-feedback",
                    "ts": round(now, 3),
                    "batch_lists": len(group),
                }
                if layout is not None:
                    extra["layout"] = layout
                if workers is not None:
                    extra["workers"] = workers
                append_record(
                    self._feedback_path,
                    RunRecord(
                        kind="matching", algorithm=algorithm,
                        backend=backend, n=n_rep, p=1, time=0, work=0,
                        wall_s=per_list_wall, extra=extra,
                    ),
                    max_bytes=self.config.feedback_max_bytes,
                )

    async def _fallback(self, pairs, error: str) -> None:
        """Per-request degradation: reference-tier resilience ladder."""
        loop = asyncio.get_running_loop()
        for request, entry in pairs:
            remaining = request.deadline - loop.time()
            if remaining <= 0:
                entry.timed_out = True
                continue
            fn = partial(
                self._fallback_fn, entry.workload.lst, backend="reference",
                p=1,
            )
            try:
                res = await asyncio.wait_for(
                    loop.run_in_executor(self._pool(), fn), remaining)
            except (asyncio.TimeoutError, TimeoutError):
                METRICS.counter("service.deadline.inflight").inc()
                entry.timed_out = True
                continue
            except Exception as exc:  # noqa: BLE001 - the ladder's floor
                entry.error = (
                    f"degraded path failed after {error}: "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            self.degraded += 1
            METRICS.counter("service.degraded").inc()
            served_by = getattr(res, "served_by", "reference-ladder")
            self.nodes_served += entry.workload.n
            self._fill(entry, res.matching, served_by=served_by,
                       degraded=True)
            if telemetry_enabled():
                telemetry_event(
                    "service.degraded", served_by=served_by, cause=error,
                )

    def _mark_timeout(self, pairs, *, stage: str) -> None:
        for _, entry in pairs:
            entry.timed_out = True
        _ = stage

    def _fill(self, entry: Entry, matching, *, served_by: str,
              degraded: bool) -> None:
        workload = entry.workload
        payload = {
            "n": workload.n,
            "algorithm": workload.algorithm,
            "backend": workload.backend,
            "tails": [int(t) for t in matching.tails],
            "matched": int(matching.size),
            "served_by": served_by,
            "degraded": degraded,
        }
        if workload.requested_backend is not None:
            payload["requested_backend"] = workload.requested_backend
            payload["planner"] = dict(workload.planner or {})
        entry.payload = payload
        if self.cache is not None and entry.cache == "miss":
            self.cache.put(workload.cache_key(), dict(payload))
