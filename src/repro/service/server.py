"""The asyncio HTTP front: routing, drain, and the final manifest.

A deliberately small HTTP/1.1 server on raw ``asyncio`` streams — no
third-party dependencies, keep-alive connections, bounded bodies.
Endpoints:

====================  =====================================================
``POST /v1/match``    one list (explicit ``next`` array or ``n/layout/seed``
                      spec) → its maximal matching
``POST /v1/batch``    ``{"lists": [...]}`` → one matching per list
``GET /metrics``      Prometheus text exposition of the live registry
``GET /healthz``      liveness (200 while the process runs)
``GET /readyz``       readiness (503 once draining)
``GET /debug/vars``   JSON operational snapshot: rolling-window rates,
                      latency quantiles, SLO burn, lifetime totals
``GET /debug/stream`` the same document as Server-Sent Events
                      (``?interval=``/``?frames=``); ``repro top`` tails it
====================  =====================================================

With telemetry enabled, every request is assigned a deterministic
:class:`~repro.telemetry.context.TraceContext` at ingress (trace id
hashed from the first workload's canonical cache key plus an ingress
sequence number, root span id preallocated) and carries it through
admission, batching, and the sharded executor — the exporter's
``request_trace_events`` then reconstructs one span tree per request
from the shared JSONL soup.  Responses echo the id as ``trace_id``.

The response contract the robustness machinery guarantees: an
*accepted* request is answered 200 (possibly ``"degraded": true``) or
504 (its deadline passed) — never 500; a request that cannot be
accepted is answered immediately with 429 (overload) or 503
(draining), both carrying ``Retry-After``.

On SIGTERM/SIGINT the service **drains**: stops admitting, lets the
micro-batcher flush the queue for up to ``drain_deadline_s``, answers
whatever is left 503, appends one ``kind="service"`` RunRecord (the
aggregate Brent account of everything computed plus the full
admission/shed/cache ledger) to the manifest, shuts worker pools down,
and exits.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
import urllib.parse
from typing import Any, Callable

from ..telemetry import resources as _resources
from ..telemetry.context import TraceContext, derive_trace_id
from ..telemetry.live import LiveAggregator, SloConfig
from ..telemetry.metrics import METRICS
from ..telemetry.runrecord import RunRecord, append_record
from ..telemetry.spans import (
    Span,
    enabled as telemetry_enabled,
    get_tracer,
)
from .batcher import AdmissionQueue, Entry, MicroBatcher, PendingRequest
from .cache import ResponseCache
from .config import ServiceConfig
from .workload import WorkloadError, parse_workload

__all__ = ["MatchingService", "HttpError"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level failure answered with ``status`` and closed."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def _read_request(
    reader: asyncio.StreamReader, *, max_body: int,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ValueError, ConnectionError):
        raise HttpError(431, "request line too long") from None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except (ValueError, ConnectionError):
            raise HttpError(431, "header line too long") from None
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= 100:
            raise HttpError(431, "too many headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise HttpError(400, "malformed Content-Length") from None
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > max_body:
        raise HttpError(413, f"body exceeds {max_body} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _encode_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
    close: bool = False,
) -> bytes:
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    head += [f"{name}: {value}" for name, value in extra_headers]
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


class MatchingService:
    """One server instance: admission → micro-batcher → responses.

    In-process use (tests, notebooks)::

        service = MatchingService(ServiceConfig(port=0))
        await service.start()           # binds; service.port is real
        ...
        await service.drain(reason="test")   # flush + manifest + stop

    Process use: :meth:`run` blocks, serving until SIGTERM/SIGINT.
    ``batch_fn`` / ``fallback_fn`` inject failing compute paths in
    tests (see :class:`~repro.service.batcher.MicroBatcher`).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        batch_fn: Callable[..., Any] | None = None,
        fallback_fn: Callable[..., Any] | None = None,
    ) -> None:
        # Baselines register the "sequential" algorithm — the ladder's
        # floor — as an import side effect.
        import repro.baselines  # noqa: F401

        self.config = config or ServiceConfig()
        self.admission = AdmissionQueue(self.config)
        self.cache = ResponseCache(self.config.cache_size)
        self.live = LiveAggregator(
            slo=SloConfig(self.config.slo_p95_ms,
                          self.config.slo_availability),
            window_s=self.config.live_window_s,
        )
        self.batcher = MicroBatcher(
            self.admission, self.config,
            batch_fn=batch_fn, fallback_fn=fallback_fn,
            cache=self.cache if self.config.cache_size else None,
            live=self.live,
        )
        self.port: int | None = None
        self.started_at: float | None = None
        self.drain_outcome: str | None = None
        self.manifest_record: RunRecord | None = None
        self._server: asyncio.base_events.Server | None = None
        self._batcher_task: asyncio.Task | None = None
        self._drain_task: asyncio.Task | None = None
        self._stopped = asyncio.Event()
        self._outstanding: set[PendingRequest] = set()
        self._direct_served = 0
        self._ingress_seq = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind, start serving, and start the micro-batcher task."""
        if self.config.planner_history:
            # Seed the process-default planner so backend="auto"
            # requests decide from this manifest's measured history.
            from ..planner import Planner, set_default_planner

            set_default_planner(
                Planner(history=self.config.planner_history))
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        self._batcher_task = asyncio.create_task(
            self.batcher.run(), name="repro-service-batcher")
        METRICS.gauge("service.up").set(1)

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, self.initiate_drain, signal.Signals(sig).name)

    def _remove_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.remove_signal_handler(sig)
            except (ValueError, RuntimeError):  # pragma: no cover
                pass

    def initiate_drain(self, reason: str = "signal") -> None:
        """Idempotently begin graceful shutdown (signal-handler safe)."""
        if self._drain_task is None:
            self.admission.draining = True
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain(reason), name="repro-service-drain")

    async def drain(self, reason: str = "api") -> None:
        """Begin drain (if not begun) and wait for full shutdown."""
        self.initiate_drain(reason)
        await self._stopped.wait()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def _drain(self, reason: str) -> None:
        METRICS.gauge("service.up").set(0)
        assert self._batcher_task is not None
        self.batcher.stop()
        try:
            await asyncio.wait_for(
                asyncio.shield(self._batcher_task),
                self.config.drain_deadline_s,
            )
            self.drain_outcome = "clean"
        except (asyncio.TimeoutError, TimeoutError):
            self.drain_outcome = "deadline"
            self._batcher_task.cancel()
            try:
                await self._batcher_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        # Whatever is still queued or mid-flight gets a fast 503.
        while True:
            request = self.admission.get_nowait()
            if request is None:
                break
            self.batcher._finish(request, 503, {
                "error": "server draining",
            })
        for request in list(self._outstanding):
            if not request.future.done():
                self.batcher._finish(request, 503, {
                    "error": "server draining",
                })
        self._write_manifest(reason)
        self.batcher.shutdown_executor()
        from ..parallel import pools

        pools.shutdown_pools()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._remove_signal_handlers()
        self._stopped.set()

    def _write_manifest(self, reason: str) -> None:
        """Append the final ``kind="service"`` RunRecord (always built,
        only persisted when ``manifest_path`` is configured)."""
        report = self.batcher.cost.report()
        uptime = (time.monotonic() - self.started_at
                  if self.started_at is not None else None)
        cfg = self.config
        record = RunRecord(
            kind="service",
            algorithm=cfg.algorithm,
            backend=cfg.backend,
            n=int(self.batcher.nodes_served),
            p=1,
            time=int(report.time),
            work=int(report.work),
            seed=cfg.seed,
            wall_s=uptime,
            phases=tuple(
                (ph.name, int(ph.time), int(ph.work), int(ph.steps))
                for ph in report.phases
            ),
            extra={
                "drain": self.drain_outcome or "unknown",
                "drain_reason": reason,
                "admitted": self.admission.admitted,
                "served": self.batcher.served + self._direct_served,
                "shed": dict(self.admission.shed_counts),
                "timeouts": self.batcher.timeouts,
                "errors": self.batcher.errors,
                "deadline_shed": self.batcher.deadline_shed,
                "retries": self.batcher.retries,
                "engine_faults": self.batcher.engine_faults,
                "degraded": self.batcher.degraded,
                "batches": self.batcher.batches,
                "cache": self.cache.stats(),
                "workers": cfg.workers,
                "max_queue_depth": cfg.max_queue_depth,
                "max_batch_items": cfg.max_batch_items,
                # The serialization byte ledger (REPRO_RESOURCES): the
                # exact bytes this server pushed over the pool boundary.
                **({"resources": _resources.ledger_snapshot()}
                   if _resources.enabled() else {}),
            },
        )
        self.manifest_record = record
        if cfg.manifest_path:
            append_record(cfg.manifest_path, record)

    def run(self) -> int:
        """Blocking entry for ``repro serve``: serve until signalled."""
        async def main() -> None:
            await self.start()
            self.install_signal_handlers()
            print(f"serving on http://{self.config.host}:{self.port}",
                  flush=True)
            await self.wait_stopped()

        try:
            asyncio.run(main())
        except KeyboardInterrupt:  # pragma: no cover - direct ^C race
            pass
        return 0

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    parsed = await _read_request(
                        reader, max_body=self.config.max_request_bytes)
                except HttpError as exc:
                    writer.write(_encode_response(
                        exc.status,
                        json.dumps({"error": str(exc)}).encode() + b"\n",
                        close=True,
                    ))
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if parsed is None:
                    break
                method, target, headers, body = parsed
                METRICS.counter("service.requests").inc()
                if (method == "GET"
                        and target.split("?", 1)[0] == "/debug/stream"):
                    # SSE: an open-ended chunked-by-frame response that
                    # never fits the one-shot request/response loop.
                    await self._stream_debug(writer, target)
                    break
                status, payload = await self._route(method, target, body)
                close = headers.get("connection", "").lower() == "close"
                if isinstance(payload, bytes):
                    raw, ctype = payload, "text/plain; version=0.0.4"
                    extra: tuple[tuple[str, str], ...] = ()
                else:
                    raw = json.dumps(payload).encode() + b"\n"
                    ctype = "application/json"
                    extra = ()
                    if status in (429, 503):
                        extra = (("Retry-After",
                                  f"{self.config.retry_after_s:g}"),)
                writer.write(_encode_response(
                    status, raw, content_type=ctype, extra_headers=extra,
                    close=close,
                ))
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - socket already gone
                pass

    # -- routing -----------------------------------------------------------

    async def _route(
        self, method: str, target: str, body: bytes,
    ) -> tuple[int, Any]:
        path = target.split("?", 1)[0]
        try:
            if method == "GET":
                if path == "/healthz":
                    uptime = (time.monotonic() - self.started_at
                              if self.started_at is not None else 0.0)
                    return 200, {"status": "ok",
                                 "uptime_s": round(uptime, 3)}
                if path == "/readyz":
                    if self.admission.draining:
                        return 503, {"status": "draining"}
                    return 200, {
                        "status": "ready",
                        "queue_depth": self.admission.depth,
                        "inflight_bytes": self.admission.inflight_bytes,
                    }
                if path == "/metrics":
                    from ..telemetry.export import prometheus_exposition

                    return 200, prometheus_exposition(METRICS).encode()
                if path == "/debug/vars":
                    return 200, self._debug_vars()
                return 404, {"error": f"no such path: {path}"}
            if method == "POST":
                if path == "/v1/match":
                    return await self._handle_match(body, single=True)
                if path == "/v1/batch":
                    return await self._handle_match(body, single=False)
                return 404, {"error": f"no such path: {path}"}
            return 405, {"error": f"method {method} not supported"}
        except Exception as exc:  # noqa: BLE001 - the 500 of last resort
            METRICS.counter("service.errors").inc()
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    # -- live view -----------------------------------------------------------

    def _debug_vars(self) -> dict[str, Any]:
        """The ``/debug/vars`` document: window aggregates + lifetime
        totals, one JSON object (also each SSE frame)."""
        uptime = (time.monotonic() - self.started_at
                  if self.started_at is not None else 0.0)
        cfg = self.config
        return {
            "uptime_s": round(uptime, 3),
            "live": self.live.snapshot(),
            "service": {
                "draining": self.admission.draining,
                "queue_depth": self.admission.depth,
                "inflight_bytes": self.admission.inflight_bytes,
                "admitted": self.admission.admitted,
                "shed": dict(self.admission.shed_counts),
            },
            "totals": {
                "served": self.batcher.served + self._direct_served,
                "batches": self.batcher.batches,
                "timeouts": self.batcher.timeouts,
                "errors": self.batcher.errors,
                "retries": self.batcher.retries,
                "degraded": self.batcher.degraded,
                "deadline_shed": self.batcher.deadline_shed,
                "engine_faults": self.batcher.engine_faults,
                "nodes_served": self.batcher.nodes_served,
                "feedback_records": self.batcher.feedback_records,
                "cache": self.cache.stats(),
            },
            "config": {
                "algorithm": cfg.algorithm,
                "backend": cfg.backend,
                "workers": cfg.workers,
                "feedback": cfg.feedback,
                "slo_p95_ms": cfg.slo_p95_ms,
                "slo_availability": cfg.slo_availability,
                "live_window_s": cfg.live_window_s,
            },
        }

    async def _stream_debug(
        self, writer: asyncio.StreamWriter, target: str,
    ) -> None:
        """Serve ``/debug/stream``: the vars document as SSE frames.

        ``?interval=`` overrides the frame period,  ``?frames=N``
        closes after N frames (0: stream until drain/disconnect).
        The first frame is written immediately so a probe with
        ``frames=1`` never waits an interval.
        """
        params = urllib.parse.parse_qs(target.partition("?")[2])
        try:
            interval = float(params.get(
                "interval", [self.config.stream_interval_s])[0])
            frames = int(params.get("frames", ["0"])[0])
        except (TypeError, ValueError):
            writer.write(_encode_response(
                400,
                b'{"error": "interval/frames must be numeric"}\n',
                close=True,
            ))
            await writer.drain()
            return
        interval = min(max(interval, 0.05), 60.0)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        while True:
            frame = json.dumps(self._debug_vars())
            writer.write(b"data: " + frame.encode("utf-8") + b"\n\n")
            await writer.drain()
            sent += 1
            if frames and sent >= frames:
                return
            if self.admission.draining or self._stopped.is_set():
                return
            try:
                await asyncio.wait_for(self._stopped.wait(), interval)
                return  # stopped while waiting: no further frames
            except (asyncio.TimeoutError, TimeoutError):
                continue

    def _observe_unqueued(
        self,
        trace: TraceContext | None,
        ingress_at: float,
        entries: list[Entry],
        status: int,
        *,
        hits: int,
        lookups: int,
    ) -> None:
        """Live + trace accounting for requests answered without ever
        entering the queue (full cache hits, sheds) — the batcher does
        the same for everything it resolves."""
        latency_ms = (time.perf_counter() - ingress_at) * 1000.0
        self.live.observe_request(
            latency_ms=latency_ms, status=status,
            cache_hits=hits, cache_lookups=lookups,
        )
        if trace is not None and telemetry_enabled():
            tracer = get_tracer()
            span_id = trace.span_id
            sp = Span(
                "service.request",
                span_id if span_id is not None else tracer.next_id(),
                None,
                ingress_at,
                {
                    "status": status,
                    "latency_ms": round(latency_ms, 3),
                    "entries": len(entries),
                    "n_total": sum(e.workload.n for e in entries),
                    "cache_hits": hits,
                    "cache_lookups": lookups,
                },
                tracer,
                trace.trace_id,
            )
            sp.end = time.perf_counter()
            sp.status = "ok" if status == 200 else "error"
            tracer.emit_foreign(sp)

    async def _handle_match(
        self, body: bytes, *, single: bool,
    ) -> tuple[int, dict[str, Any]]:
        ingress_at = time.perf_counter()
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(data, dict):
            return 400, {"error": "request body must be a JSON object"}
        try:
            if single:
                specs: list[Any] = [data]
            else:
                specs = data.get("lists")
                if not isinstance(specs, list) or not specs:
                    return 400, {
                        "error": "'lists' must be a non-empty array"}
                defaults = {
                    key: data[key]
                    for key in ("algorithm", "backend") if key in data
                }
                specs = [
                    {**defaults, **spec} if isinstance(spec, dict) else spec
                    for spec in specs
                ]
            workloads = [
                parse_workload(
                    spec,
                    default_algorithm=self.config.algorithm,
                    default_backend=self.config.backend,
                )
                for spec in specs
            ]
        except WorkloadError as exc:
            return 400, {"error": str(exc)}

        trace: TraceContext | None = None
        if telemetry_enabled():
            # Deterministic request identity: the first workload's
            # canonical cache key plus this process's ingress sequence
            # number, with the root span id preallocated so children
            # can parent under a span that is emitted only at finish.
            self._ingress_seq += 1
            trace = TraceContext(
                derive_trace_id(workloads[0].cache_key(),
                                self._ingress_seq),
                get_tracer().next_id(),
            )

        try:
            deadline_ms = float(data.get(
                "deadline_ms", self.config.default_deadline_ms))
        except (TypeError, ValueError):
            return 400, {"error": "'deadline_ms' must be a number"}
        deadline_ms = min(max(deadline_ms, 1.0), self.config.max_deadline_ms)
        use_cache = bool(data.get("cache", True)) and bool(
            self.config.cache_size)

        entries = []
        for workload in workloads:
            entry = Entry(workload=workload,
                          cache="miss" if use_cache else "off")
            if use_cache:
                hit = self.cache.get(workload.cache_key())
                if hit is not None:
                    entry.payload = dict(hit)
                    entry.cache = "hit"
            entries.append(entry)

        loop = asyncio.get_running_loop()
        now = loop.time()
        if all(entry.payload is not None for entry in entries):
            # Every list was cached: answer without queue or compute.
            self._direct_served += 1
            METRICS.counter("service.served").inc()
            METRICS.histogram("service.latency_ms").observe(0.0)
            self._observe_unqueued(trace, ingress_at, entries, 200,
                                   hits=len(entries),
                                   lookups=len(entries))
            payloads = [{**e.payload, "cache": e.cache} for e in entries]
            extra = ({"trace_id": trace.trace_id}
                     if trace is not None else {})
            if single:
                return 200, {**payloads[0], "latency_ms": 0.0, **extra}
            return 200, {"results": payloads, "latency_ms": 0.0, **extra}

        request = PendingRequest(
            entries=entries,
            deadline=now + deadline_ms / 1000.0,
            enqueued_at=now,
            future=loop.create_future(),
            single=single,
            use_cache=use_cache,
            trace=trace,
            ingress_at=ingress_at,
        )
        reason = self.admission.try_admit(request)
        if reason is not None:
            status = 503 if reason == "draining" else 429
            hits = sum(1 for e in entries if e.cache == "hit")
            self._observe_unqueued(
                trace, ingress_at, entries, status,
                hits=hits, lookups=len(entries) if use_cache else 0)
            return status, {
                "error": f"request shed: {reason}",
                "retry_after_s": self.config.retry_after_s,
            }
        self._outstanding.add(request)
        request.future.add_done_callback(
            lambda _f: self._outstanding.discard(request))
        try:
            # The batcher resolves every admitted future; the extra
            # grace only guards against a crashed batcher task.
            status, payload = await asyncio.wait_for(
                request.future,
                deadline_ms / 1000.0 + self.config.drain_deadline_s + 10.0,
            )
        except (asyncio.TimeoutError, TimeoutError):  # pragma: no cover
            METRICS.counter("service.errors").inc()
            return 500, {"error": "internal: batcher unresponsive"}
        return status, payload
