"""Request workloads: parsing, validation, and canonical identity.

A client describes each list either *explicitly* (``{"next": [...]}``,
the successor array :class:`~repro.lists.linked_list.LinkedList`
takes) or as a *spec* (``{"n": 4096, "layout": "random", "seed": 7}``)
the server generates with the same layout makers the CLI uses.  Both
forms normalize into a :class:`Workload` carrying the built list and a
**canonical identity**: the very key
:meth:`repro.telemetry.runrecord.RunRecord.key` defines, so the
response cache, the run manifest, and the perf gate all agree on what
"the same workload" means.  Explicit lists are identified by a SHA-256
digest of their pointer bytes; specs by ``(n, layout, seed)``.

Parsing raises :class:`WorkloadError` (→ HTTP 400) on anything
malformed — a structurally invalid list is a *client* error here,
caught before admission, so it can never surface as a 500 later.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from ..core.maximal_matching import ALGORITHMS
from ..errors import InvalidListError, InvalidParameterError, ReproError
from ..lists import (
    bit_reversal_list,
    blocked_list,
    gray_code_list,
    interleaved_list,
    random_list,
    reversed_list,
    sawtooth_list,
    sequential_list,
)
from ..lists.linked_list import LinkedList
from ..telemetry.runrecord import RunRecord

__all__ = ["WorkloadError", "Workload", "parse_workload", "LAYOUTS"]

#: Hard bound on a single list's size; a spec beyond it is a client
#: error (explicit lists are already bounded by the HTTP body limit).
MAX_SPEC_N = 1 << 22

#: Server-side layout makers, mirroring the CLI's ``--layout`` choices.
LAYOUTS: dict[str, Callable[[int, int], LinkedList]] = {
    "random": lambda n, seed: random_list(n, rng=seed),
    "sequential": lambda n, seed: sequential_list(n),
    "reversed": lambda n, seed: reversed_list(n),
    "sawtooth": lambda n, seed: sawtooth_list(n),
    "blocked": lambda n, seed: blocked_list(n, block=max(1, n // 8),
                                            rng=seed),
    "gray": lambda n, seed: gray_code_list(n),
    "bitrev": lambda n, seed: bit_reversal_list(n),
    "interleaved": lambda n, seed: interleaved_list(n, ways=max(1, n // 16)),
}


class WorkloadError(ReproError, ValueError):
    """A request described an invalid workload (HTTP 400)."""


@dataclass(frozen=True)
class Workload:
    """One validated list plus the identity it is cached/recorded under.

    ``backend`` is always a *concrete* backend name: a request asking
    for ``"auto"`` is resolved through :mod:`repro.planner` during
    parsing — before admission, and in particular before the
    micro-batcher's per-(algorithm, backend) fusion groups entries —
    with the original ask kept in ``requested_backend`` and the full
    decision in ``planner``.  Cache/record identity uses the resolved
    backend, so an ``"auto"`` request and an explicit request for the
    chosen backend share cache entries (they are the same computation).
    """

    lst: LinkedList
    algorithm: str
    backend: str
    #: ``("spec", n, layout, seed)`` or ``("digest", sha256hex)``.
    identity: tuple
    #: ``"auto"`` when the planner resolved the backend; else ``None``.
    requested_backend: str | None = None
    #: The planner decision (JSON-able), when ``requested_backend`` set.
    planner: Mapping[str, Any] | None = None

    @property
    def n(self) -> int:
        return int(self.lst.n)

    @property
    def nbytes(self) -> int:
        """Admission weight: the ``int64`` pointer arena of the list."""
        return int(self.lst.n) * 8

    def record(self, **extra: Any) -> RunRecord:
        """The workload as a ``kind="service"`` :class:`RunRecord` stub."""
        kind, *rest = self.identity
        if kind == "spec":
            n, layout, seed = rest
            ident_extra = {"layout": layout}
        else:
            seed = None
            ident_extra = {"digest": rest[0]}
        return RunRecord(
            kind="service", algorithm=self.algorithm, backend=self.backend,
            n=self.n, p=1, seed=seed, time=0, work=0,
            extra={**ident_extra, **extra},
        )

    def cache_key(self) -> tuple:
        """Canonical identity — :meth:`RunRecord.key` of the stub record."""
        return self.record().key()


def _parse_explicit(next_field: Any) -> tuple[LinkedList, tuple]:
    try:
        arr = np.asarray(next_field, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as exc:
        raise WorkloadError(f"'next' is not an int64 array: {exc}") from None
    if arr.ndim != 1 or arr.size == 0:
        raise WorkloadError(
            f"'next' must be a non-empty 1-d array, got shape {arr.shape}"
        )
    try:
        lst = LinkedList(arr)
    except (InvalidListError, InvalidParameterError) as exc:
        raise WorkloadError(f"invalid linked list: {exc}") from None
    digest = hashlib.sha256(np.ascontiguousarray(lst.next).tobytes())
    return lst, ("digest", digest.hexdigest())


def _parse_spec(body: Mapping[str, Any]) -> tuple[LinkedList, tuple]:
    try:
        n = int(body["n"])
    except (TypeError, ValueError) as exc:
        raise WorkloadError(f"'n' must be an integer: {exc}") from None
    layout = body.get("layout", "random")
    if layout not in LAYOUTS:
        raise WorkloadError(
            f"unknown layout {layout!r}; choose from {sorted(LAYOUTS)}"
        )
    try:
        seed = int(body.get("seed", 0))
    except (TypeError, ValueError) as exc:
        raise WorkloadError(f"'seed' must be an integer: {exc}") from None
    if not 1 <= n <= MAX_SPEC_N:
        raise WorkloadError(f"'n' must be in [1, {MAX_SPEC_N}], got {n}")
    try:
        lst = LAYOUTS[layout](n, seed)
    except (InvalidParameterError, ValueError) as exc:
        raise WorkloadError(f"cannot build {layout}({n}): {exc}") from None
    return lst, ("spec", n, layout, seed)


def parse_workload(
    body: Mapping[str, Any],
    *,
    default_algorithm: str,
    default_backend: str,
) -> Workload:
    """Normalize one request body (or one ``lists[]`` entry) to a
    :class:`Workload`, raising :class:`WorkloadError` on bad input."""
    if not isinstance(body, Mapping):
        raise WorkloadError(
            f"workload must be a JSON object, got {type(body).__name__}"
        )
    algorithm = body.get("algorithm", default_algorithm)
    backend = body.get("backend", default_backend)
    if algorithm not in ALGORITHMS:
        raise WorkloadError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        )
    from ..backends import AUTO, backend_choices

    if backend not in backend_choices():
        raise WorkloadError(
            f"unknown backend {backend!r}; choose from "
            f"{backend_choices()}"
        )
    if "next" in body:
        lst, identity = _parse_explicit(body["next"])
    elif "n" in body:
        lst, identity = _parse_spec(body)
    else:
        raise WorkloadError(
            "workload needs either 'next' (explicit successor array) or "
            "'n' (+ optional 'layout'/'seed' spec)"
        )
    requested_backend = None
    planner_extra = None
    if backend == AUTO:
        from ..planner import ExecutionPolicy, decide_for

        layout = identity[2] if identity[0] == "spec" else None
        try:
            decision = decide_for(
                ExecutionPolicy(layout=layout),
                algorithm=algorithm, n=int(lst.n),
            )
        except ReproError as exc:
            raise WorkloadError(
                f"planner cannot resolve backend='auto' for "
                f"{algorithm!r}: {exc}"
            ) from None
        requested_backend = AUTO
        planner_extra = decision.to_extra()
        backend = decision.backend
    return Workload(lst=lst, algorithm=algorithm, backend=backend,
                    identity=identity,
                    requested_backend=requested_backend,
                    planner=planner_extra)
