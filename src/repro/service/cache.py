"""LRU response cache keyed by canonical workload identity.

The key is :meth:`Workload.cache_key` — the
:meth:`~repro.telemetry.runrecord.RunRecord.key` of the workload's
service record — so two requests hit the same entry exactly when the
perf gate would pair their manifests: same algorithm, backend, and
list identity (spec ``(n, layout, seed)`` or content digest).  Values
are finished response payloads (plain dicts), so a hit skips
admission, queueing, and compute entirely.

Hits, misses, and evictions are counted in the process
:data:`~repro.telemetry.metrics.METRICS` registry
(``service.cache.*``) — the service's metrics are its operational
surface and are recorded regardless of the span-telemetry flag.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from ..telemetry.metrics import METRICS

__all__ = ["ResponseCache"]


class ResponseCache:
    """Bounded LRU of ``cache_key -> response payload`` dicts.

    ``capacity=0`` disables the cache (every lookup misses, nothing is
    stored).  Not thread-safe by design: the service only touches it
    from the event loop.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        # Per-instance counts feed this server's manifest; the global
        # METRICS bumps feed /metrics (and accumulate process-wide).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[tuple, dict[str, Any]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> dict[str, Any] | None:
        """The cached payload for ``key`` (refreshed to most-recent), or
        ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            METRICS.counter("service.cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        METRICS.counter("service.cache.hits").inc()
        return entry

    def put(self, key: tuple, payload: dict[str, Any]) -> None:
        """Insert/refresh ``key``, evicting the least-recent overflow."""
        if self.capacity == 0:
            return
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            METRICS.counter("service.cache.evictions").inc()

    def stats(self) -> dict[str, int]:
        """This instance's lifetime counters (manifest material)."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
