"""Service tuning knobs, frozen at construction.

Every limit the admission/batching/drain machinery enforces lives in
one validated, immutable :class:`ServiceConfig`, so a running server
can be described by a single object (it is echoed into the final
RunRecord manifest).  The defaults suit an interactive demo; the CLI
(``repro serve``) and the traffic benchmark override them per run.

All deadlines and delays are wall-clock seconds unless the name says
``_ms``; byte limits count the ``int64`` node arenas of queued lists
(8 bytes per node), the quantity that actually bounds resident memory.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

from ..errors import InvalidParameterError

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable configuration of one :class:`~repro.service.server.MatchingService`.

    Attributes
    ----------
    host / port:
        Bind address.  ``port=0`` asks the OS for a free port (the
        bound port is reported by
        :attr:`~repro.service.server.MatchingService.port`).
    algorithm / backend / workers:
        Default compute path for requests that do not choose their
        own: forwarded to
        :func:`repro.backends.batch.batch_maximal_matching`.
    max_queue_depth:
        Admission bound on *queued* requests.  Beyond it new requests
        are shed with 429 + ``Retry-After`` — never buffered.
    max_inflight_bytes:
        Admission bound on the summed node-arena bytes of queued plus
        in-compute requests (8 bytes per node).
    max_batch_items:
        The micro-batcher dispatches once it holds this many requests.
    max_batch_delay_ms:
        ... or once the oldest queued request has waited this long.
    default_deadline_ms / max_deadline_ms:
        Per-request deadline when the client sends none, and the cap
        on what a client may ask for.
    max_request_bytes:
        HTTP body size bound (413 beyond it) — the parser never
        buffers more than this per connection.
    retry_after_s:
        Hint sent in ``Retry-After`` on 429/503 responses.
    max_retries / base_backoff_s / max_backoff_s:
        Jittered-exponential retry envelope around *pool* failures
        (see :data:`repro.parallel.executor.POOL_ERRORS`).  Engine
        errors skip retries and go straight to the per-request
        resilience fallback.
    cache_size:
        LRU response-cache capacity in entries (0 disables caching).
    drain_deadline_s:
        On SIGTERM/SIGINT the server stops accepting and flushes the
        queue for at most this long; whatever is still queued then is
        answered 503.
    manifest_path:
        Where the final RunRecord manifest is appended on drain
        (empty string: no manifest).
    seed:
        Seeds the backoff jitter — two runs of the same fault script
        retry on the same schedule.
    compute_threads:
        Size of the thread pool the batcher dispatches compute into
        (1 serializes batches, the deterministic default).
    planner_history:
        ``runs.jsonl`` manifest seeding the process-default
        :class:`repro.planner.Planner` at server start, so requests
        with ``backend="auto"`` (or ``backend: "auto"`` as the server
        default above) decide from measured history instead of
        cold-start priors.  Empty string: keep whatever default
        planner the process has (``$REPRO_PLANNER_HISTORY`` included).
    feedback:
        When true, the micro-batcher closes the telemetry→planner
        loop: every ``feedback_sample``-th fused batch is attributed
        back to its per-(algorithm, backend, n-bucket) workloads as
        ``kind="matching"`` observation records — ingested *live*
        into the process-default planner's model and appended to
        ``feedback_path`` so the next process learns too.  Off by
        default: feeding the planner is a deployment decision, not a
        side effect.
    feedback_sample:
        Record every Nth batch (1 = every batch).  Sampling bounds
        the feedback volume under sustained load.
    feedback_path:
        Where feedback observation records are appended.  Empty
        string: fall back to ``planner_history`` (learn in place), or
        record nothing when that is empty too.
    feedback_max_bytes:
        Size-based rotation bound for the feedback manifest: before
        an append would push the file past this, it is rolled to
        ``<path>.1`` (replacing any previous roll), so unattended
        servers never grow history without bound.
    slo_p95_ms / slo_availability:
        The service-level objective the live aggregator judges
        requests against: answered 200 within ``slo_p95_ms`` is good;
        the complement of ``slo_availability`` is the error budget the
        ``/debug/vars`` burn rate is measured in.
    live_window_s:
        Width of the rolling window behind ``/debug/vars`` and the
        SSE ``/debug/stream`` (per-second buckets).
    stream_interval_s:
        Default frame interval for ``/debug/stream`` (clients may
        override per request with ``?interval=``).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    algorithm: str = "match4"
    backend: str = "numpy"
    workers: int | None = None
    max_queue_depth: int = 64
    max_inflight_bytes: int = 64 << 20
    max_batch_items: int = 16
    max_batch_delay_ms: float = 5.0
    default_deadline_ms: float = 1000.0
    max_deadline_ms: float = 30000.0
    max_request_bytes: int = 32 << 20
    retry_after_s: float = 1.0
    max_retries: int = 2
    base_backoff_s: float = 0.05
    max_backoff_s: float = 1.0
    cache_size: int = 128
    drain_deadline_s: float = 5.0
    manifest_path: str = ""
    seed: int = 0
    compute_threads: int = 1
    planner_history: str = ""
    feedback: bool = False
    feedback_sample: int = 4
    feedback_path: str = ""
    feedback_max_bytes: int = 4 << 20
    slo_p95_ms: float = 500.0
    slo_availability: float = 0.999
    live_window_s: float = 60.0
    stream_interval_s: float = 1.0

    def __post_init__(self) -> None:
        positive = (
            "max_queue_depth", "max_inflight_bytes", "max_batch_items",
            "max_batch_delay_ms", "default_deadline_ms", "max_deadline_ms",
            "max_request_bytes", "retry_after_s", "base_backoff_s",
            "max_backoff_s", "drain_deadline_s", "compute_threads",
            "feedback_sample", "feedback_max_bytes", "slo_p95_ms",
            "live_window_s", "stream_interval_s",
        )
        for name in positive:
            value = getattr(self, name)
            if value <= 0:
                raise InvalidParameterError(
                    f"{name} must be > 0, got {value}"
                )
        if self.max_retries < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.cache_size < 0:
            raise InvalidParameterError(
                f"cache_size must be >= 0, got {self.cache_size}"
            )
        if self.port < 0:
            raise InvalidParameterError(
                f"port must be >= 0, got {self.port}"
            )
        if self.default_deadline_ms > self.max_deadline_ms:
            raise InvalidParameterError(
                f"default_deadline_ms ({self.default_deadline_ms}) exceeds "
                f"max_deadline_ms ({self.max_deadline_ms})"
            )
        if not 0.0 < self.slo_availability <= 1.0:
            raise InvalidParameterError(
                f"slo_availability must be in (0, 1], got "
                f"{self.slo_availability}"
            )
        if self.workers is not None and self.workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {self.workers}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (echoed into the final manifest)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
