"""Pluggable plan-scoring rules: one function per heuristic.

The planner does not hard-code a decision tree.  It runs an ordered
pipeline of *rules* (the rule-runner shape from SNIPPETS.md Snippet 2):
each rule is one function ``rule(ctx, plans) -> plans`` that inspects
the :class:`PlanContext` and the candidate list built so far, and
returns the (possibly extended or rescored) list for the next rule.
Adding a selection heuristic is one function plus one
:func:`register_planner_rule` call.

Default pipeline, in order:

``seed``
    One candidate per registered backend that implements the algorithm
    and accepts the input size (``Backend.limit``), unscored.
``history``
    Nearest-bucket lookup in the :class:`~repro.planner.model
    .PerformanceModel`; scores candidates with measured best wall-clock
    (scaled up the further the bucket match strayed).
``prior``
    Cold-start scores for anything history did not cover, estimated
    from the Brent cost account: the paper's machine charges ``work``
    operations; each backend turns an operation into host-seconds at a
    characteristic rate (per-pointer Python vs. one vectorized batch
    per round vs. batch + process-pool dispatch).  The constants are
    deliberately coarse — they only need to rank tiers sensibly until
    real history exists.
``worker_cap``
    Clamps worker counts to what the process-default
    :class:`~repro.parallel.config.ParallelConfig` will actually
    resolve — a plan learned on an 8-core host must not demand 8
    workers on a 2-core one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, TYPE_CHECKING

from ..errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .model import PerformanceModel
    from .policy import ExecutionPolicy

__all__ = [
    "PlanContext",
    "ScoredPlan",
    "PlannerRule",
    "planner_rules",
    "register_planner_rule",
    "unregister_planner_rule",
]


@dataclass(frozen=True)
class PlanContext:
    """Everything a rule may look at when scoring candidates."""

    algorithm: str
    n: int
    p: int = 1
    layout: str | None = None
    profile: str = "single"  #: ``"single"`` or ``"batch"``
    num_lists: int = 1
    model: Optional["PerformanceModel"] = None
    policy: Optional["ExecutionPolicy"] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "p": self.p,
            "layout": self.layout,
            "profile": self.profile,
            "num_lists": self.num_lists,
        }


@dataclass
class ScoredPlan:
    """One candidate execution plan and its estimated wall-clock.

    ``score`` is estimated seconds (lower wins); ``None`` means not yet
    scored.  ``rule``/``source`` say which rule priced it and whether
    the price is measured (``"history"``) or estimated (``"prior"``).
    """

    backend: str
    workers: int | None = None
    chunk_size: int | None = None
    score: float | None = None
    rule: str = ""
    source: str = ""
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "score": self.score,
            "rule": self.rule,
            "source": self.source,
            "reason": self.reason,
        }


PlannerRule = Callable[[PlanContext, List[ScoredPlan]], List[ScoredPlan]]


def rule_seed(ctx: PlanContext, plans: list[ScoredPlan]) -> list[ScoredPlan]:
    """Seed one unscored candidate per eligible backend."""
    from ..backends import BACKENDS

    have = {p.backend for p in plans}
    for name in sorted(BACKENDS):
        backend = BACKENDS[name]
        if name in have or not backend.supports(ctx.algorithm):
            continue
        if backend.limit is not None and ctx.n >= backend.limit:
            continue
        plans.append(ScoredPlan(backend=name, rule="seed"))
    return plans


#: Bucket-distance penalty: a measurement one power-of-two away is
#: trusted a bit less than an exact-bucket one.
_DISTANCE_PENALTY = 0.15


def rule_history(ctx: PlanContext,
                 plans: list[ScoredPlan]) -> list[ScoredPlan]:
    """Score candidates from measured history (nearest-bucket lookup)."""
    if ctx.model is None:
        return plans
    stats, distance = ctx.model.lookup(
        algorithm=ctx.algorithm, n=ctx.n, layout=ctx.layout,
        profile=ctx.profile,
    )
    if not stats:
        return plans
    penalty = 1.0 + _DISTANCE_PENALTY * distance
    best_per_backend: dict[str, Any] = {}
    for stat in stats.values():
        cur = best_per_backend.get(stat.backend)
        if cur is None or stat.best_wall_s < cur.best_wall_s:
            best_per_backend[stat.backend] = stat
    for plan in plans:
        stat = best_per_backend.get(plan.backend)
        if stat is None or not math.isfinite(stat.best_wall_s):
            continue
        plan.score = stat.best_wall_s * penalty
        plan.workers = stat.workers if stat.workers else plan.workers
        plan.rule = "history"
        plan.source = "history"
        plan.reason = (
            f"best of {stat.count} run(s) at bucket distance {distance}"
        )
    return plans


# Cold-start cost constants (seconds).  Estimated host cost of one
# Brent-charged operation per backend, plus fixed per-call overheads;
# coarse on purpose — see the module docstring.
REF_SECONDS_PER_OP = 2.5e-7
NUMPY_BASE_S = 3e-4
NUMPY_SECONDS_PER_OP = 4e-9
MP_DISPATCH_S = 2e-2
MP_BYTES_S_PER_NODE = 4e-8
#: Rough Brent work per node by tier (match1 pays the log factor).
_WORK_PER_NODE = {"match1": 24.0, "match2": 16.0, "match3": 10.0,
                  "match4": 8.0}


def _prior_wall_s(backend: str, algorithm: str, n: int,
                  workers: int | None) -> float:
    """Estimated wall seconds for one run, from the Brent account."""
    work = n * _WORK_PER_NODE.get(algorithm, 12.0)
    if backend == "reference":
        return work * REF_SECONDS_PER_OP
    numpy_wall = NUMPY_BASE_S + work * NUMPY_SECONDS_PER_OP
    if backend == "numpy":
        return numpy_wall
    if backend == "numpy-mp":
        w = max(1, workers or 1)
        # Only the cut-walk phase (~40% of engine time) parallelizes;
        # buffers are pickled to every worker on each dispatch.
        walk, rest = 0.4 * numpy_wall, 0.6 * numpy_wall
        return (rest + walk / w + MP_DISPATCH_S
                + n * MP_BYTES_S_PER_NODE * w)
    # Unknown backend: price it like the reference tier so it is
    # considered but never preferred without history.
    return work * REF_SECONDS_PER_OP


def rule_prior(ctx: PlanContext,
               plans: list[ScoredPlan]) -> list[ScoredPlan]:
    """Cold-start: price every still-unscored candidate."""
    from ..parallel.config import get_default_config

    for plan in plans:
        if plan.score is not None:
            continue
        workers = plan.workers
        if plan.backend == "numpy-mp" and workers is None:
            workers = get_default_config().resolve_workers()
        plan.score = _prior_wall_s(plan.backend, ctx.algorithm, ctx.n,
                                   workers)
        plan.workers = workers if plan.backend == "numpy-mp" else plan.workers
        plan.rule = "prior"
        plan.source = "prior"
        plan.reason = "cold-start Brent-cost estimate"
    return plans


def rule_worker_cap(ctx: PlanContext,
                    plans: list[ScoredPlan]) -> list[ScoredPlan]:
    """Clamp plan worker counts to the live ParallelConfig resolution."""
    from ..parallel.config import get_default_config

    policy_workers = ctx.policy.workers if ctx.policy else None
    cap = (policy_workers if policy_workers is not None
           else get_default_config().resolve_workers())
    for plan in plans:
        if plan.workers is not None and plan.workers > cap:
            plan.reason = (plan.reason + f"; workers {plan.workers} "
                           f"capped to {cap}").lstrip("; ")
            plan.workers = cap
    return plans


#: The default pipeline; mutated only through the helpers below.
_RULES: list[tuple[str, PlannerRule]] = [
    ("seed", rule_seed),
    ("history", rule_history),
    ("prior", rule_prior),
    ("worker_cap", rule_worker_cap),
]


def planner_rules() -> list[tuple[str, PlannerRule]]:
    """The current rule pipeline (copies; mutate via register/unregister)."""
    return list(_RULES)


def register_planner_rule(
    name: str,
    rule: PlannerRule,
    *,
    before: str | None = None,
    after: str | None = None,
) -> None:
    """Insert a rule into the pipeline (appended by default).

    ``before=``/``after=`` position it relative to an existing rule;
    duplicate names are rejected so pipelines stay unambiguous.
    """
    if before is not None and after is not None:
        raise InvalidParameterError("give at most one of before=/after=")
    if any(existing == name for existing, _ in _RULES):
        raise InvalidParameterError(
            f"planner rule {name!r} already registered"
        )
    anchor = before if before is not None else after
    if anchor is None:
        _RULES.append((name, rule))
        return
    for i, (existing, _) in enumerate(_RULES):
        if existing == anchor:
            _RULES.insert(i if before is not None else i + 1,
                          (name, rule))
            return
    raise InvalidParameterError(
        f"unknown anchor rule {anchor!r}; registered rules: "
        f"{[n for n, _ in _RULES]}"
    )


def unregister_planner_rule(name: str) -> None:
    """Remove a rule by name (:class:`InvalidParameterError` if absent)."""
    for i, (existing, _) in enumerate(_RULES):
        if existing == name:
            del _RULES[i]
            return
    raise InvalidParameterError(f"planner rule {name!r} is not registered")
