"""The planner: rank candidate plans, decide, remember the decision.

:class:`Planner` ties the pieces together — a
:class:`~repro.planner.model.PerformanceModel` (history), the rule
pipeline (:mod:`repro.planner.rules`), and race mode
(:mod:`repro.planner.race`).  ``backend="auto"`` anywhere in the API
routes through :meth:`Planner.decide`, which returns a
:class:`PlannerDecision`: the chosen plan, the rule that priced it,
every candidate considered, and whether a race is warranted.  The
decision is stamped into ``MatchResult.extras["planner"]`` by the
caller and emitted as a ``planner.decision`` telemetry event with
``planner.*`` counters.

A process-default planner (seeded from ``$REPRO_PLANNER_HISTORY`` when
set) serves callers that do not pass their own history; scope a
different one with :func:`using_planner`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from ..errors import InvalidParameterError
from ..telemetry.metrics import METRICS
from ..telemetry.spans import enabled as telemetry_enabled, event as telemetry_event
from .model import PerformanceModel
from .policy import PLANNER_MODES, ExecutionPolicy
from .rules import PlanContext, PlannerRule, ScoredPlan, planner_rules

__all__ = [
    "Planner",
    "PlannerDecision",
    "get_default_planner",
    "set_default_planner",
    "using_planner",
    "planner_for_policy",
    "decide_for",
]

#: Env var naming a ``runs.jsonl`` manifest the default planner loads.
HISTORY_ENV = "REPRO_PLANNER_HISTORY"

#: Env var setting the default planner's history decay half-life in
#: seconds (unset / empty / invalid: no decay).
HALF_LIFE_ENV = "REPRO_PLANNER_HALF_LIFE_S"


def _env_half_life() -> float | None:
    raw = os.environ.get(HALF_LIFE_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None

#: Deterministic tie-break order when two plans score identically.
_BACKEND_PREFERENCE = {"reference": 0, "numpy": 1, "numpy-mp": 2}


class PlannerDecision:
    """One resolved ``backend="auto"`` decision, fully accounted."""

    def __init__(
        self,
        *,
        plan: ScoredPlan,
        candidates: Sequence[ScoredPlan],
        context: PlanContext,
        mode: str,
        raced: bool = False,
        race_backends: tuple[str, ...] = (),
        race_info: dict[str, Any] | None = None,
    ) -> None:
        self.plan = plan
        self.candidates = list(candidates)
        self.context = context
        self.mode = mode
        self.raced = raced
        self.race_backends = race_backends
        self.race_info = race_info

    @property
    def backend(self) -> str:
        return self.plan.backend

    @property
    def workers(self) -> int | None:
        return self.plan.workers

    @property
    def rule(self) -> str:
        return self.plan.rule

    @property
    def source(self) -> str:
        return self.plan.source

    def to_extra(self) -> dict[str, Any]:
        """JSON-able form for ``MatchResult.extras`` / RunRecords."""
        out: dict[str, Any] = {
            "backend": self.plan.backend,
            "workers": self.plan.workers,
            "chunk_size": self.plan.chunk_size,
            "rule": self.plan.rule,
            "source": self.plan.source,
            "mode": self.mode,
            "raced": self.raced,
            "candidates": [c.to_dict() for c in self.candidates],
            "context": self.context.to_dict(),
        }
        if self.race_info:
            out["race"] = dict(self.race_info)
        return out


class Planner:
    """Ranks execution plans for a workload from history + rules."""

    def __init__(
        self,
        model: PerformanceModel | None = None,
        *,
        history: str | os.PathLike | None = None,
        rules: Sequence[tuple[str, PlannerRule]] | None = None,
        mode: str = "rules",
        half_life_s: float | None = None,
    ) -> None:
        if mode not in PLANNER_MODES:
            raise InvalidParameterError(
                f"unknown planner mode {mode!r}; choose from "
                f"{list(PLANNER_MODES)}"
            )
        if half_life_s is None:
            half_life_s = _env_half_life()
        self.model = model if model is not None else \
            PerformanceModel(half_life_s=half_life_s)
        self.history_path = os.fspath(history) if history else None
        if self.history_path:
            self.model.load(self.history_path)
        self._rules = list(rules) if rules is not None else None
        self.mode = mode

    @property
    def rules(self) -> list[tuple[str, PlannerRule]]:
        """This planner's pipeline (the live registry unless overridden)."""
        return list(self._rules) if self._rules is not None \
            else planner_rules()

    def decide(self, ctx: PlanContext, *,
               mode: str | None = None) -> PlannerDecision:
        """Run the rule pipeline and commit to the best-scored plan."""
        if ctx.model is None:
            ctx = PlanContext(
                algorithm=ctx.algorithm, n=ctx.n, p=ctx.p,
                layout=ctx.layout, profile=ctx.profile,
                num_lists=ctx.num_lists, model=self.model,
                policy=ctx.policy,
            )
        effective_mode = mode or self.mode
        if effective_mode not in PLANNER_MODES:
            raise InvalidParameterError(
                f"unknown planner mode {effective_mode!r}; choose from "
                f"{list(PLANNER_MODES)}"
            )
        plans: list[ScoredPlan] = []
        for name, rule in self.rules:
            out = rule(ctx, plans)
            if out is not None:
                plans = out
        scored = [p for p in plans if p.score is not None]
        if not scored:
            raise InvalidParameterError(
                f"planner found no executable backend for algorithm "
                f"{ctx.algorithm!r} at n={ctx.n}"
            )
        scored.sort(key=lambda p: (
            p.score, _BACKEND_PREFERENCE.get(p.backend, 99), p.backend,
        ))
        chosen = scored[0]

        raced = False
        race_backends: tuple[str, ...] = ()
        if effective_mode == "race" and chosen.source == "prior":
            # Unknown regime: race the oracle against the engine when
            # both are candidates, keep the winner, remember the loss.
            available = {p.backend for p in scored}
            if {"reference", "numpy"} <= available:
                raced = True
                race_backends = ("reference", "numpy")

        decision = PlannerDecision(
            plan=chosen, candidates=scored, context=ctx,
            mode=effective_mode, raced=raced,
            race_backends=race_backends,
        )
        if telemetry_enabled():
            METRICS.counter("planner.decisions").inc()
            METRICS.counter(f"planner.rule.{chosen.rule}").inc()
            if raced:
                METRICS.counter("planner.race.planned").inc()
            telemetry_event(
                "planner.decision",
                algorithm=ctx.algorithm, n=ctx.n, profile=ctx.profile,
                layout=ctx.layout, backend=chosen.backend,
                workers=chosen.workers, rule=chosen.rule,
                source=chosen.source, mode=effective_mode, raced=raced,
                candidates=len(scored),
            )
        return decision

    def observe_result(
        self,
        *,
        algorithm: str,
        backend: str,
        n: int,
        wall_s: float,
        workers: int | None = None,
        layout: str | None = None,
        profile: str = "single",
        lost: bool = False,
    ) -> None:
        """Feed a live measurement back into the model (race mode)."""
        self.model.observe(
            algorithm=algorithm, backend=backend, n=n, wall_s=wall_s,
            workers=workers, layout=layout, profile=profile, lost=lost,
        )


_DEFAULT_PLANNER: Planner | None = None


def get_default_planner() -> Planner:
    """The process-default planner (created lazily).

    On first use it loads ``$REPRO_PLANNER_HISTORY`` when that is set
    (decayed per ``$REPRO_PLANNER_HALF_LIFE_S`` when that is too); a
    missing or unreadable manifest leaves the model empty (priors).
    """
    global _DEFAULT_PLANNER
    if _DEFAULT_PLANNER is None:
        _DEFAULT_PLANNER = Planner(history=os.environ.get(HISTORY_ENV))
    return _DEFAULT_PLANNER


def set_default_planner(planner: Planner | None) -> None:
    """Replace the process-default planner (``None`` = reset to lazy)."""
    global _DEFAULT_PLANNER
    _DEFAULT_PLANNER = planner


@contextmanager
def using_planner(planner: Planner) -> Iterator[Planner]:
    """Scope the process-default planner, restoring on exit."""
    global _DEFAULT_PLANNER
    previous = _DEFAULT_PLANNER
    _DEFAULT_PLANNER = planner
    try:
        yield planner
    finally:
        _DEFAULT_PLANNER = previous


def decide_for(
    policy: ExecutionPolicy | None,
    *,
    algorithm: str,
    n: int,
    p: int = 1,
    profile: str = "single",
    num_lists: int = 1,
) -> PlannerDecision:
    """One-call ``backend="auto"`` resolution for the entry points."""
    planner = planner_for_policy(policy)
    ctx = PlanContext(
        algorithm=algorithm, n=n, p=p,
        layout=policy.layout if policy is not None else None,
        profile=profile, num_lists=num_lists,
        model=planner.model, policy=policy,
    )
    mode = policy.mode if policy is not None else None
    return planner.decide(ctx, mode=mode)


def planner_for_policy(policy: ExecutionPolicy | None) -> Planner:
    """The planner a call should use: its own history or the default."""
    if policy is not None and policy.history:
        return Planner(history=policy.history,
                       mode=policy.mode or "rules")
    planner = get_default_planner()
    if policy is not None and policy.mode and policy.mode != planner.mode:
        # Same model, caller's mode: cheap shim, shares the history.
        shim = Planner(planner.model, mode=policy.mode)
        shim.history_path = planner.history_path
        return shim
    return planner
