"""In-memory performance model built from ``runs.jsonl`` manifests.

The telemetry layer already persists, for every measured run, the
workload identity and the host wall-clock (:class:`~repro.telemetry
.runrecord.RunRecord`).  This module folds those records into the
lookup structure the planner ranks candidate plans against:

    (algorithm, profile, layout, n-bucket)  ->  {(backend, workers): stat}

- **n-bucket** is ``n.bit_length()``: runs at 4000 and 5000 nodes land
  in the same bucket, 4000 and 40000 do not — wall-clock within a
  power-of-two band is comparable, across bands it is not.
- **layout** is the workload-shape tag recorded by the CLI/benchmarks
  (``"random"``, ``"ring"``, ...); library callers usually do not know
  it, so lookups accept ``layout=None`` and aggregate across shapes.
- **profile** separates single-list runs (``"single"``) from fused
  batch runs (``"batch"``) — the regimes have different constants.

Robustness contract: a missing, empty, or corrupted manifest must
yield an *empty* model, never an exception — the planner then falls
back to its cold-start priors.  ``read_records`` already skips
malformed lines with a :class:`RuntimeWarning`; :meth:`PerformanceModel
.load` additionally swallows I/O errors and records that are not
usable observations (no wall-clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..telemetry.runrecord import RunRecord, read_records

__all__ = [
    "PlanStat",
    "PerformanceModel",
    "n_bucket",
    "MIN_WEIGHT",
]

#: How far (in powers of two) a nearest-bucket lookup may stray.
MAX_BUCKET_DISTANCE = 3

#: Records whose decay weight falls below this are aged out entirely —
#: at the default half-life that is five half-lives of staleness.
MIN_WEIGHT = 1.0 / 32.0


def n_bucket(n: int) -> int:
    """Bucket index for a list size: ``n.bit_length()``."""
    return int(n).bit_length()


@dataclass
class PlanStat:
    """Aggregated observations for one (backend, workers) candidate."""

    backend: str
    workers: int | None = None
    best_wall_s: float = float("inf")
    total_wall_s: float = 0.0
    count: int = 0
    weight: float = 0.0  #: decayed observation mass (== count w/o decay)
    losses: int = 0  #: times this plan lost a race

    def observe(self, wall_s: float, *, lost: bool = False,
                weight: float = 1.0) -> None:
        self.best_wall_s = min(self.best_wall_s, float(wall_s))
        self.total_wall_s += float(wall_s) * weight
        self.count += 1
        self.weight += weight
        if lost:
            self.losses += 1

    @property
    def mean_wall_s(self) -> float:
        return self.total_wall_s / self.weight if self.weight \
            else float("inf")

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "best_wall_s": self.best_wall_s,
            "mean_wall_s": self.mean_wall_s,
            "count": self.count,
            "weight": round(self.weight, 4),
            "losses": self.losses,
        }


def _record_workers(record: RunRecord) -> int | None:
    raw = record.extra.get("workers")
    if raw is None:
        return None
    try:
        workers = int(raw)
    except (TypeError, ValueError):
        return None
    return workers if workers >= 1 else None


def _record_layout(record: RunRecord) -> str | None:
    layout = record.extra.get("layout")
    return str(layout) if layout is not None else None


def _record_profile(record: RunRecord) -> str:
    return "batch" if record.extra.get("profile") == "batch" else "single"


class PerformanceModel:
    """The planner's memory: measured wall-clock per regime and plan.

    ``half_life_s`` enables **time decay** of persisted history: a
    record carrying an ``extra["ts"]`` wall-clock stamp (the service's
    feedback records do) is weighted ``2^(-(now - ts) / half_life_s)``
    during :meth:`ingest`, where *now* is the newest stamp in the
    batch — deterministic, no clock read.  A record older than about
    five half-lives (weight < :data:`MIN_WEIGHT`) is aged out
    entirely, so a machine's history tracks its present performance
    instead of averaging over hardware and code it no longer runs.
    Unstamped records never decay (hand-curated seeds stay at full
    weight), and live :meth:`observe` calls always count fully.
    """

    def __init__(self, *, half_life_s: float | None = None) -> None:
        if half_life_s is not None and half_life_s <= 0:
            raise ValueError(
                f"half_life_s must be > 0, got {half_life_s}")
        self._stats: dict[tuple, dict[tuple, PlanStat]] = {}
        self.half_life_s = half_life_s
        self.observations = 0
        self.aged_out = 0
        self.sources: list[str] = []

    @staticmethod
    def _regime(algorithm: str, profile: str, layout: str | None,
                bucket: int) -> tuple:
        return (algorithm, profile, layout, bucket)

    def observe(
        self,
        *,
        algorithm: str,
        backend: str,
        n: int,
        wall_s: float,
        workers: int | None = None,
        layout: str | None = None,
        profile: str = "single",
        lost: bool = False,
        weight: float = 1.0,
    ) -> None:
        """Record one measurement (also used live by race mode)."""
        if wall_s is None or wall_s < 0:
            return
        regime = self._regime(algorithm, profile, layout, n_bucket(n))
        plans = self._stats.setdefault(regime, {})
        plan_key = (backend, workers)
        stat = plans.get(plan_key)
        if stat is None:
            stat = plans[plan_key] = PlanStat(backend=backend,
                                              workers=workers)
        stat.observe(wall_s, lost=lost, weight=weight)
        self.observations += 1

    @staticmethod
    def _record_ts(record: RunRecord) -> float | None:
        try:
            ts = record.extra.get("ts")
            return float(ts) if ts is not None else None
        except (TypeError, ValueError):
            return None

    def ingest(self, records: Iterable[RunRecord]) -> int:
        """Fold records into the model; returns how many were usable.

        With :attr:`half_life_s` set, timestamped records are decayed
        against the newest timestamp in this batch; those below
        :data:`MIN_WEIGHT` are dropped (counted in :attr:`aged_out`).
        """
        records = list(records)
        now = 0.0
        if self.half_life_s is not None:
            stamps = [ts for r in records
                      if (ts := self._record_ts(r)) is not None]
            now = max(stamps) if stamps else 0.0
        used = 0
        for record in records:
            if record.wall_s is None:
                continue
            if record.kind not in ("matching", "bench"):
                continue
            weight = 1.0
            if self.half_life_s is not None:
                ts = self._record_ts(record)
                if ts is not None:
                    weight = 2.0 ** (-max(0.0, now - ts)
                                     / self.half_life_s)
                    if weight < MIN_WEIGHT:
                        self.aged_out += 1
                        continue
            self.observe(
                algorithm=record.algorithm,
                backend=record.backend,
                n=record.n,
                wall_s=record.wall_s,
                workers=_record_workers(record),
                layout=_record_layout(record),
                profile=_record_profile(record),
                weight=weight,
            )
            used += 1
        return used

    def load(self, path) -> int:
        """Ingest a ``runs.jsonl`` manifest; never raises.

        Missing files, I/O errors, and wholesale corruption all leave
        the model as-is (the planner falls back to priors); partially
        corrupt files contribute their parseable lines.
        """
        try:
            records = read_records(path)
        except (OSError, ValueError, KeyError, TypeError):
            return 0
        self.sources.append(str(path))
        return self.ingest(records)

    def lookup(
        self,
        *,
        algorithm: str,
        n: int,
        layout: str | None = None,
        profile: str = "single",
    ) -> tuple[dict[tuple, PlanStat], int]:
        """Best-matching stats for a regime, with the bucket distance.

        Tries, in order: the exact (layout, bucket); nearby buckets for
        the same layout (distance 1..:data:`MAX_BUCKET_DISTANCE`); then
        the same ladder aggregated across layouts when a specific
        layout found nothing.  Returns ``({}, -1)`` on a total miss.
        """
        bucket = n_bucket(n)
        for want_layout in ((layout,) if layout is None
                            else (layout, None)):
            for distance in range(MAX_BUCKET_DISTANCE + 1):
                for b in ({bucket} if distance == 0
                          else (bucket - distance, bucket + distance)):
                    if b < 1:
                        continue
                    found = self._collect(algorithm, profile,
                                          want_layout, b)
                    if found:
                        return found, distance
        return {}, -1

    def _collect(self, algorithm: str, profile: str,
                 layout: str | None, bucket: int) -> dict[tuple, PlanStat]:
        """Stats for one (layout, bucket); ``layout=None`` aggregates."""
        if layout is not None:
            regime = self._regime(algorithm, profile, layout, bucket)
            return dict(self._stats.get(regime, {}))
        merged: dict[tuple, PlanStat] = {}
        for (algo, prof, _lay, buck), plans in self._stats.items():
            if algo != algorithm or prof != profile or buck != bucket:
                continue
            for plan_key, stat in plans.items():
                agg = merged.get(plan_key)
                if agg is None:
                    agg = merged[plan_key] = PlanStat(
                        backend=stat.backend, workers=stat.workers)
                agg.best_wall_s = min(agg.best_wall_s, stat.best_wall_s)
                agg.total_wall_s += stat.total_wall_s
                agg.count += stat.count
                agg.weight += stat.weight
                agg.losses += stat.losses
        return merged

    def summary(self) -> dict[str, Any]:
        """Counts for diagnostics (``repro algorithms --plan``)."""
        return {
            "observations": self.observations,
            "regimes": len(self._stats),
            "sources": list(self.sources),
            "half_life_s": self.half_life_s,
            "aged_out": self.aged_out,
        }
