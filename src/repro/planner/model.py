"""In-memory performance model built from ``runs.jsonl`` manifests.

The telemetry layer already persists, for every measured run, the
workload identity and the host wall-clock (:class:`~repro.telemetry
.runrecord.RunRecord`).  This module folds those records into the
lookup structure the planner ranks candidate plans against:

    (algorithm, profile, layout, n-bucket)  ->  {(backend, workers): stat}

- **n-bucket** is ``n.bit_length()``: runs at 4000 and 5000 nodes land
  in the same bucket, 4000 and 40000 do not — wall-clock within a
  power-of-two band is comparable, across bands it is not.
- **layout** is the workload-shape tag recorded by the CLI/benchmarks
  (``"random"``, ``"ring"``, ...); library callers usually do not know
  it, so lookups accept ``layout=None`` and aggregate across shapes.
- **profile** separates single-list runs (``"single"``) from fused
  batch runs (``"batch"``) — the regimes have different constants.

Robustness contract: a missing, empty, or corrupted manifest must
yield an *empty* model, never an exception — the planner then falls
back to its cold-start priors.  ``read_records`` already skips
malformed lines with a :class:`RuntimeWarning`; :meth:`PerformanceModel
.load` additionally swallows I/O errors and records that are not
usable observations (no wall-clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..telemetry.runrecord import RunRecord, read_records

__all__ = [
    "PlanStat",
    "PerformanceModel",
    "n_bucket",
]

#: How far (in powers of two) a nearest-bucket lookup may stray.
MAX_BUCKET_DISTANCE = 3


def n_bucket(n: int) -> int:
    """Bucket index for a list size: ``n.bit_length()``."""
    return int(n).bit_length()


@dataclass
class PlanStat:
    """Aggregated observations for one (backend, workers) candidate."""

    backend: str
    workers: int | None = None
    best_wall_s: float = float("inf")
    total_wall_s: float = 0.0
    count: int = 0
    losses: int = 0  #: times this plan lost a race

    def observe(self, wall_s: float, *, lost: bool = False) -> None:
        self.best_wall_s = min(self.best_wall_s, float(wall_s))
        self.total_wall_s += float(wall_s)
        self.count += 1
        if lost:
            self.losses += 1

    @property
    def mean_wall_s(self) -> float:
        return self.total_wall_s / self.count if self.count else float("inf")

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "best_wall_s": self.best_wall_s,
            "mean_wall_s": self.mean_wall_s,
            "count": self.count,
            "losses": self.losses,
        }


def _record_workers(record: RunRecord) -> int | None:
    raw = record.extra.get("workers")
    if raw is None:
        return None
    try:
        workers = int(raw)
    except (TypeError, ValueError):
        return None
    return workers if workers >= 1 else None


def _record_layout(record: RunRecord) -> str | None:
    layout = record.extra.get("layout")
    return str(layout) if layout is not None else None


def _record_profile(record: RunRecord) -> str:
    return "batch" if record.extra.get("profile") == "batch" else "single"


class PerformanceModel:
    """The planner's memory: measured wall-clock per regime and plan."""

    def __init__(self) -> None:
        self._stats: dict[tuple, dict[tuple, PlanStat]] = {}
        self.observations = 0
        self.sources: list[str] = []

    @staticmethod
    def _regime(algorithm: str, profile: str, layout: str | None,
                bucket: int) -> tuple:
        return (algorithm, profile, layout, bucket)

    def observe(
        self,
        *,
        algorithm: str,
        backend: str,
        n: int,
        wall_s: float,
        workers: int | None = None,
        layout: str | None = None,
        profile: str = "single",
        lost: bool = False,
    ) -> None:
        """Record one measurement (also used live by race mode)."""
        if wall_s is None or wall_s < 0:
            return
        regime = self._regime(algorithm, profile, layout, n_bucket(n))
        plans = self._stats.setdefault(regime, {})
        plan_key = (backend, workers)
        stat = plans.get(plan_key)
        if stat is None:
            stat = plans[plan_key] = PlanStat(backend=backend,
                                              workers=workers)
        stat.observe(wall_s, lost=lost)
        self.observations += 1

    def ingest(self, records: Iterable[RunRecord]) -> int:
        """Fold records into the model; returns how many were usable."""
        used = 0
        for record in records:
            if record.wall_s is None:
                continue
            if record.kind not in ("matching", "bench"):
                continue
            self.observe(
                algorithm=record.algorithm,
                backend=record.backend,
                n=record.n,
                wall_s=record.wall_s,
                workers=_record_workers(record),
                layout=_record_layout(record),
                profile=_record_profile(record),
            )
            used += 1
        return used

    def load(self, path) -> int:
        """Ingest a ``runs.jsonl`` manifest; never raises.

        Missing files, I/O errors, and wholesale corruption all leave
        the model as-is (the planner falls back to priors); partially
        corrupt files contribute their parseable lines.
        """
        try:
            records = read_records(path)
        except (OSError, ValueError, KeyError, TypeError):
            return 0
        self.sources.append(str(path))
        return self.ingest(records)

    def lookup(
        self,
        *,
        algorithm: str,
        n: int,
        layout: str | None = None,
        profile: str = "single",
    ) -> tuple[dict[tuple, PlanStat], int]:
        """Best-matching stats for a regime, with the bucket distance.

        Tries, in order: the exact (layout, bucket); nearby buckets for
        the same layout (distance 1..:data:`MAX_BUCKET_DISTANCE`); then
        the same ladder aggregated across layouts when a specific
        layout found nothing.  Returns ``({}, -1)`` on a total miss.
        """
        bucket = n_bucket(n)
        for want_layout in ((layout,) if layout is None
                            else (layout, None)):
            for distance in range(MAX_BUCKET_DISTANCE + 1):
                for b in ({bucket} if distance == 0
                          else (bucket - distance, bucket + distance)):
                    if b < 1:
                        continue
                    found = self._collect(algorithm, profile,
                                          want_layout, b)
                    if found:
                        return found, distance
        return {}, -1

    def _collect(self, algorithm: str, profile: str,
                 layout: str | None, bucket: int) -> dict[tuple, PlanStat]:
        """Stats for one (layout, bucket); ``layout=None`` aggregates."""
        if layout is not None:
            regime = self._regime(algorithm, profile, layout, bucket)
            return dict(self._stats.get(regime, {}))
        merged: dict[tuple, PlanStat] = {}
        for (algo, prof, _lay, buck), plans in self._stats.items():
            if algo != algorithm or prof != profile or buck != bucket:
                continue
            for plan_key, stat in plans.items():
                agg = merged.get(plan_key)
                if agg is None:
                    agg = merged[plan_key] = PlanStat(
                        backend=stat.backend, workers=stat.workers)
                agg.best_wall_s = min(agg.best_wall_s, stat.best_wall_s)
                agg.total_wall_s += stat.total_wall_s
                agg.count += stat.count
                agg.losses += stat.losses
        return merged

    def summary(self) -> dict[str, Any]:
        """Counts for diagnostics (``repro algorithms --plan``)."""
        return {
            "observations": self.observations,
            "regimes": len(self._stats),
            "sources": list(self.sources),
        }
