"""Race mode: run two backends speculatively, keep the winner.

For a regime the model has never seen, the cheapest way to learn is to
measure: launch the reference oracle and the numpy engine concurrently
on the *same* input (the ``hybrid_ensemble_match`` shape from
SNIPPETS.md), keep whichever finishes first, and record both
wall-clocks — the loss included — so the planner's model knows the
regime next time.  This is only sound because of the backend
cost-accounting contract: both backends return bit-identical matchings,
stats, and CostReports, so "keep the winner" changes latency, never
the answer.  :func:`run_race` re-verifies that identity and raises
:class:`~repro.errors.VerificationError` on any divergence rather than
returning a result the loser disagrees with.

Measured wall-clocks are contended (two threads share the host; the
pure-Python reference tier also holds the GIL), which biases *both*
lanes the same way — good enough to learn a regime, and the recorded
observations are marked ``raced`` so later analysis can tell.

``handicap=`` adds seconds to a named backend's measured wall before
choosing the winner; it exists for deterministic tests ("seed a loser")
and A/B experiments, and is recorded in the race info when used.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from ..errors import VerificationError
from ..telemetry.metrics import METRICS
from ..telemetry.spans import enabled as telemetry_enabled, span as telemetry_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.result import MatchResult
    from .core import Planner
    from .rules import PlanContext

__all__ = ["run_race"]

#: Module-level default handicap (backend -> added seconds).  Tests
#: monkeypatch this to seed a deterministic loser through the public
#: ``backend="auto"`` path.
DEFAULT_HANDICAP: dict[str, float] = {}


def _identical(a: "MatchResult", b: "MatchResult") -> bool:
    return (
        np.array_equal(a.matching.tails, b.matching.tails)
        and a.report == b.report
        and a.stats == b.stats
    )


def run_race(
    lst,
    *,
    backends: tuple[str, ...],
    algorithm: str,
    p: int = 1,
    kwargs: Mapping[str, Any] | None = None,
    planner: "Planner | None" = None,
    ctx: "PlanContext | None" = None,
    handicap: Mapping[str, float] | None = None,
) -> tuple["MatchResult", dict[str, Any]]:
    """Run ``backends`` concurrently on ``lst``; return (winner, info).

    Every lane runs to completion (speculative execution, not
    cancellation — the engine has no preemption points), all lanes are
    checked bit-identical, both observations are fed back into
    ``planner``'s model (the losers flagged as losses), and the winning
    :class:`MatchResult` is returned unchanged along with a JSON-able
    race summary for ``extras``.
    """
    from ..core.maximal_matching import maximal_matching

    if len(backends) < 2:
        raise VerificationError(
            f"a race needs at least two backends, got {list(backends)}"
        )
    kwargs = dict(kwargs or {})
    if handicap is None:
        handicap = dict(DEFAULT_HANDICAP)

    def lane(backend: str) -> tuple[str, "MatchResult", float]:
        start = time.perf_counter()
        result = maximal_matching(
            lst, algorithm=algorithm, backend=backend, p=p, **kwargs,
        )
        return backend, result, time.perf_counter() - start

    with telemetry_span("planner.race", algorithm=algorithm,
                        backends=",".join(backends)):
        with ThreadPoolExecutor(max_workers=len(backends)) as pool:
            lanes = list(pool.map(lane, backends))

    by_backend = {backend: (result, wall)
                  for backend, result, wall in lanes}
    reference_backend, (reference_result, _) = next(iter(by_backend.items()))
    for backend, (result, _) in by_backend.items():
        if not _identical(reference_result, result):
            raise VerificationError(
                f"raced backends disagree: {reference_backend!r} vs "
                f"{backend!r} returned different matchings/costs"
            )

    def effective(item: tuple[str, tuple["MatchResult", float]]) -> float:
        backend, (_, wall) = item
        return wall + float(handicap.get(backend, 0.0))

    winner_backend, (winner_result, winner_wall) = min(
        by_backend.items(), key=effective,
    )

    n = int(winner_result.matching.lst.n)
    layout = ctx.layout if ctx is not None else None
    profile = ctx.profile if ctx is not None else "single"
    if planner is not None:
        for backend, (_, wall) in by_backend.items():
            planner.observe_result(
                algorithm=algorithm, backend=backend, n=n, wall_s=wall,
                layout=layout, profile=profile,
                lost=backend != winner_backend,
            )
        if planner.history_path:
            _append_race_records(
                planner.history_path, by_backend, winner_backend,
                layout=layout, profile=profile,
            )

    if telemetry_enabled():
        METRICS.counter("planner.race.runs").inc()
        METRICS.counter("planner.race.losses").inc(len(by_backend) - 1)

    info: dict[str, Any] = {
        "backends": list(backends),
        "winner": winner_backend,
        "walls_s": {backend: wall
                    for backend, (_, wall) in by_backend.items()},
    }
    if handicap:
        info["handicap_s"] = {k: float(v) for k, v in handicap.items()}
    return winner_result, info


def _append_race_records(path, by_backend, winner_backend, *,
                         layout, profile) -> None:
    """Persist both race lanes so the regime is known across processes.

    Best-effort: an unwritable history file must not fail the matching
    call that raced successfully.
    """
    from ..telemetry.runrecord import RunRecord, append_record

    try:
        for backend, (result, wall) in by_backend.items():
            extra: dict[str, Any] = {
                "planner_race": ("winner" if backend == winner_backend
                                 else "loser"),
            }
            if layout is not None:
                extra["layout"] = layout
            if profile == "batch":
                extra["profile"] = "batch"
            append_record(path, RunRecord.from_result(
                result, wall_s=wall, **extra,
            ))
    except OSError:
        pass
