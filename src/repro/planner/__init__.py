"""Cost-model-driven execution planning: ``backend="auto"``.

The planner closes the telemetry loop (ROADMAP item 4): the run
manifests the system already writes become the training data for
choosing how the next call should execute.  Pass ``backend="auto"`` to
:func:`repro.maximal_matching`, :func:`repro.batch_maximal_matching`,
:func:`repro.resilient_matching`, or ``repro serve`` and the planner

1. loads accumulated :class:`~repro.telemetry.runrecord.RunRecord`
   history into a :class:`PerformanceModel` keyed by
   (algorithm, batch profile, layout, n-bucket);
2. runs the pluggable rule pipeline (:mod:`repro.planner.rules`) to
   score candidate (backend, workers) plans — measured history first,
   Brent-cost cold-start priors where history is silent;
3. optionally races reference vs numpy on unknown regimes
   (:mod:`repro.planner.race`), keeping the winner and recording the
   loss so the regime is known next time;
4. stamps the full decision into ``MatchResult.extras["planner"]`` and
   the ``planner.*`` telemetry family.

:class:`ExecutionPolicy` is the uniform way to say all of this at
once — see :mod:`repro.planner.policy` — and ``docs/planner.md`` walks
through the whole subsystem.
"""

from .core import (
    Planner,
    PlannerDecision,
    decide_for,
    get_default_planner,
    planner_for_policy,
    set_default_planner,
    using_planner,
)
from .model import PerformanceModel, n_bucket
from .policy import PLANNER_MODES, ExecutionPolicy, resolve_policy
from .race import run_race
from .rules import (
    PlanContext,
    ScoredPlan,
    planner_rules,
    register_planner_rule,
    unregister_planner_rule,
)

__all__ = [
    "ExecutionPolicy",
    "PLANNER_MODES",
    "resolve_policy",
    "Planner",
    "PlannerDecision",
    "PerformanceModel",
    "PlanContext",
    "ScoredPlan",
    "decide_for",
    "get_default_planner",
    "set_default_planner",
    "using_planner",
    "planner_for_policy",
    "planner_rules",
    "register_planner_rule",
    "unregister_planner_rule",
    "run_race",
    "n_bucket",
]
