"""The unified :class:`ExecutionPolicy` every entry point accepts.

Before the planner, each entry point grew its own scattered execution
kwargs — ``backend=`` everywhere, ``workers=`` on the batch driver,
chunk size only reachable through :func:`repro.parallel.using_config`.
``ExecutionPolicy`` folds them into one frozen record that
:func:`repro.maximal_matching`, :func:`repro.batch_maximal_matching`,
:func:`repro.resilient_matching`, and ``repro serve`` all take as
``policy=``.  The scattered kwargs keep working; they are merged with
the policy by :func:`resolve_policy`, the one normalization path, which
rejects contradictions instead of silently picking a winner.

Deprecated spellings are translated here with a
:class:`DeprecationWarning`, mirroring the ``i=`` → ``iterations=``
precedent in :func:`repro.core.maximal_matching
.normalize_algorithm_kwargs`: ``planner_mode=`` is the deprecated alias
of ``mode=``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from ..errors import InvalidParameterError

__all__ = [
    "PLANNER_MODES",
    "ExecutionPolicy",
    "resolve_policy",
]

#: Valid planner modes: ``"rules"`` ranks candidates and commits to the
#: winner; ``"race"`` additionally races reference vs numpy when the
#: winning score came from a cold-start prior (unknown regime).
PLANNER_MODES = ("rules", "race")

#: Deprecated policy-kwarg spellings -> canonical field name.  One
#: translation table so there is exactly one deprecation-warning path.
_POLICY_ALIASES = {"planner_mode": "mode"}


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a matching call should execute, in one frozen record.

    Every field defaults to "unset" (``None``); entry points fill their
    own defaults after :func:`resolve_policy` merges the policy with any
    scattered kwargs.  ``mode`` defaults to ``"rules"`` since it only
    matters once the planner runs.

    Attributes
    ----------
    algorithm:
        Algorithm tier (``"match1"`` ... ``"match4"``, baselines).
    backend:
        Execution backend name, or ``"auto"`` to let the planner pick.
    workers:
        Worker-process count for the parallel tiers (scopes the default
        :class:`~repro.parallel.config.ParallelConfig` for the call).
    chunk_size:
        Minimum nodes per worker block for the chunked walker.
    mode:
        Planner mode, one of :data:`PLANNER_MODES`; only consulted when
        ``backend == "auto"``.
    history:
        Path of a ``runs.jsonl`` manifest seeding the planner's
        performance model (``None`` = the process-default planner).
    layout:
        Workload-shape hint (``"random"``, ``"ring"``, ...) sharpening
        the planner's history lookup; purely advisory.
    """

    algorithm: str | None = None
    backend: str | None = None
    workers: int | None = None
    chunk_size: int | None = None
    mode: str = "rules"
    history: str | None = None
    layout: str | None = None

    def __post_init__(self) -> None:
        if self.workers is not None:
            if not isinstance(self.workers, int) or isinstance(self.workers, bool):
                raise InvalidParameterError(
                    f"workers must be an int, got {self.workers!r}"
                )
            if self.workers < 1:
                raise InvalidParameterError(
                    f"workers must be >= 1, got {self.workers}"
                )
        if self.chunk_size is not None:
            if (not isinstance(self.chunk_size, int)
                    or isinstance(self.chunk_size, bool)):
                raise InvalidParameterError(
                    f"chunk_size must be an int, got {self.chunk_size!r}"
                )
            if self.chunk_size < 1:
                raise InvalidParameterError(
                    f"chunk_size must be >= 1, got {self.chunk_size}"
                )
        if self.mode not in PLANNER_MODES:
            raise InvalidParameterError(
                f"unknown planner mode {self.mode!r}; choose from "
                f"{list(PLANNER_MODES)}"
            )

    def merged(self, **overrides: Any) -> "ExecutionPolicy":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (only the set fields, for manifests/extras)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is not None and not (f.name == "mode"
                                          and value == "rules"):
                out[f.name] = value
        return out


def resolve_policy(
    policy: ExecutionPolicy | Mapping[str, Any] | None = None,
    *,
    defaults: Mapping[str, Any] | None = None,
    **kwargs: Any,
) -> ExecutionPolicy:
    """Merge a policy with scattered per-call kwargs — the one path.

    ``kwargs`` are the entry point's own execution kwargs (``backend=``,
    ``workers=``, ...), passed through verbatim; ``None`` means "not
    given".  Rules, in order:

    1. deprecated spellings (``planner_mode=``) are translated to the
       canonical field with a :class:`DeprecationWarning`;
    2. a kwarg given *and* set on the policy must agree, otherwise
       :class:`InvalidParameterError` — no silent precedence;
    3. remaining unset fields are filled from ``defaults``.

    A mapping is accepted in place of an :class:`ExecutionPolicy` (the
    service's JSON bodies); unknown keys are rejected.
    """
    canonical: dict[str, Any] = {}
    for key, value in kwargs.items():
        name = _POLICY_ALIASES.get(key, key)
        if name != key:
            warnings.warn(
                f"policy kwarg {key!r} is deprecated; use {name!r}",
                DeprecationWarning,
                stacklevel=3,
            )
        if name in canonical and canonical[name] is not None:
            raise InvalidParameterError(
                f"policy field {name!r} given twice (directly and via "
                f"its deprecated alias)"
            )
        canonical[name] = value

    field_names = {f.name for f in fields(ExecutionPolicy)}
    unknown = sorted(set(canonical) - field_names)
    if unknown:
        raise InvalidParameterError(
            f"unknown policy field(s) {unknown}; valid fields: "
            f"{sorted(field_names)}"
        )

    if policy is None:
        pol = ExecutionPolicy()
    elif isinstance(policy, ExecutionPolicy):
        pol = policy
    elif isinstance(policy, Mapping):
        bad = sorted(set(policy) - field_names)
        if bad:
            raise InvalidParameterError(
                f"unknown policy field(s) {bad}; valid fields: "
                f"{sorted(field_names)}"
            )
        pol = ExecutionPolicy(**dict(policy))
    else:
        raise InvalidParameterError(
            f"policy must be an ExecutionPolicy or a mapping, got "
            f"{type(policy).__name__}"
        )

    updates: dict[str, Any] = {}
    for name, value in canonical.items():
        if value is None:
            continue
        current = getattr(pol, name)
        default_mode = name == "mode" and current == "rules"
        if current is not None and not default_mode and current != value:
            raise InvalidParameterError(
                f"conflicting {name!r}: policy says {current!r} but the "
                f"call says {value!r} — set it in one place"
            )
        updates[name] = value
    if updates:
        pol = pol.merged(**updates)

    if defaults:
        fill = {
            name: value for name, value in defaults.items()
            if getattr(pol, name) is None
        }
        if fill:
            pol = pol.merged(**fill)
    return pol
