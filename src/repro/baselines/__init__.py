"""Baselines the paper compares against (explicitly or implicitly).

- :mod:`repro.baselines.sequential` — the greedy sequential walk: the
  ``T_1 = Theta(n)`` reference in the paper's optimality definition
  ``p*T = O(T_1)``.
- :mod:`repro.baselines.random_mate` — randomized coin-flip symmetry
  breaking (the paper's introduction dismisses the randomized prefix
  algorithms [13,16]; this is their matching kernel), with expected
  ``O(log n)`` rounds.
- :mod:`repro.baselines.wyllie` — Wyllie's pointer-jumping list
  ranking: the ``Theta(n log n)``-work baseline the matching-based
  optimal ranking of :mod:`repro.apps.ranking` is measured against.

Importing this package registers ``"sequential"`` and ``"random_mate"``
in :data:`repro.core.maximal_matching.ALGORITHMS`.
"""

from ..core.maximal_matching import ALGORITHMS, register_algorithm
from .sequential import sequential_matching
from .random_mate import random_mate_matching
from .wyllie import wyllie_ranks

if "sequential" not in ALGORITHMS:
    register_algorithm(
        "sequential", sequential_matching,
        paper_section="§1, the T_1 = Θ(n) bound in the optimality "
                      "definition p·T = O(T_1)",
    )
if "random_mate" not in ALGORITHMS:
    register_algorithm(
        "random_mate", random_mate_matching,
        paper_section="§1, the randomized symmetry breaking of [13,16] "
                      "the paper's deterministic algorithms replace",
    )

__all__ = ["sequential_matching", "random_mate_matching", "wyllie_ranks"]
