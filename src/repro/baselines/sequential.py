"""The sequential greedy baseline: ``T_1`` in the optimality definition.

One processor walks the list once, taking every pointer whose endpoints
are both still free — which on a path degenerates to "take a pointer,
skip the next, repeat, restarting after any skip".  ``Theta(n)`` time,
trivially maximal.  Every optimality claim in the benches divides a
parallel run's ``time * p`` by this baseline's time.
"""

from __future__ import annotations

import numpy as np

from .._util import require
from ..lists.linked_list import NIL, LinkedList
from ..pram.cost import CostModel, CostReport
from ..core.matching import Matching

__all__ = ["sequential_matching"]


def sequential_matching(
    lst: LinkedList, *, p: int = 1
) -> tuple[Matching, CostReport, None]:
    """Greedy maximal matching by one sequential walk.

    ``p`` is accepted for signature compatibility but the walk is
    charged as purely sequential work regardless (extra processors
    cannot help a single dependent chain).
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    cost = CostModel(p)
    nxt = lst.next
    chosen: list[int] = []
    v = lst.head
    with cost.phase("walk"):
        while v != NIL and nxt[v] != NIL:
            chosen.append(v)           # take <v, suc(v)>
            v = int(nxt[int(nxt[v])])  # skip <suc(v), ...>
        cost.sequential(lst.n)
    matching = Matching(lst, np.asarray(chosen, dtype=np.int64))
    return matching, cost.report(), None
