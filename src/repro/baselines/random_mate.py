"""Randomized coin-flip matching (random mate).

Each free node flips a fair coin; a still-addable pointer ``<a, b>``
joins the matching when ``a`` flipped heads and ``b`` tails — adjacent
pointers can never both qualify (they would need node ``b`` to be both
tails and heads).  Rounds repeat on the still-addable pointers until
none remain; each round removes each addable pointer with probability
1/4, so the expected round count is ``O(log n)`` — the randomized
bound the paper's deterministic algorithms are built to beat without
coins.

Determinism note: this is the library's only randomized component; it
takes an explicit seed/generator per DESIGN.md conventions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from ..errors import VerificationError
from ..lists.linked_list import NIL, LinkedList
from ..pram.cost import CostModel, CostReport
from ..core.matching import Matching

__all__ = ["RandomMateStats", "random_mate_matching"]


@dataclass(frozen=True)
class RandomMateStats:
    """Diagnostics of one random-mate run."""

    rounds: int
    seed_used: bool


def random_mate_matching(
    lst: LinkedList,
    *,
    p: int = 1,
    rng: np.random.Generator | int | None = 0,
    max_rounds: int | None = None,
) -> tuple[Matching, CostReport, RandomMateStats]:
    """Maximal matching by repeated random mating.

    Parameters
    ----------
    lst:
        Input list.
    p:
        Processor count for the cost accounting.
    rng:
        Seed or generator (defaults to seed 0 for reproducible tests;
        pass ``None`` for fresh entropy).
    max_rounds:
        Safety bound (default ``8 * log2 n + 16``); exhausting it
        raises — a vanishingly unlikely event that would indicate a
        broken generator.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    seed_used = not isinstance(rng, np.random.Generator)
    if seed_used:
        rng = np.random.default_rng(rng)
    n = lst.n
    nxt = lst.next
    cost = CostModel(p)
    if max_rounds is None:
        max_rounds = 8 * max(1, (max(2, n) - 1).bit_length()) + 16
    covered = np.zeros(n, dtype=bool)
    chosen = np.zeros(n, dtype=bool)
    tails = np.flatnonzero(nxt != NIL)
    rounds = 0
    with cost.phase("rounds"):
        while True:
            heads = nxt[tails]
            addable = ~covered[tails] & ~covered[heads]
            tails = tails[addable]
            if tails.size == 0:
                break
            if rounds >= max_rounds:
                raise VerificationError(
                    f"random mate did not converge in {max_rounds} rounds"
                )
            rounds += 1
            coins = rng.integers(0, 2, size=n)
            heads_now = nxt[tails]
            take = (coins[tails] == 1) & (coins[heads_now] == 0)
            add = tails[take]
            covered[add] = True
            covered[nxt[add]] = True
            chosen[add] = True
            cost.parallel(int(tails.size))
    matching = Matching(lst, np.flatnonzero(chosen))
    return matching, cost.report(), RandomMateStats(rounds, seed_used)
