"""Wyllie's pointer-jumping list ranking [16] — the non-optimal baseline.

``rank[v]`` (links from ``v`` to the tail) via ``ceil(log2 n)`` rounds
of ``rank[v] += rank[next[v]]; next[v] = next[next[v]]``.  Work
``Theta(n log n)`` against the sequential ``Theta(n)`` — the
inefficiency that motivates matching-based contraction ranking
(:mod:`repro.apps.ranking`), and the baseline E8 plots against it.

This is the vectorized, cost-accounted twin of the instruction-level
program :func:`repro.pram.primitives.run_pointer_jumping_ranks`; tests
assert the two agree.
"""

from __future__ import annotations

import numpy as np

from .._util import require
from ..lists.linked_list import NIL, LinkedList
from ..pram.cost import CostModel, CostReport

__all__ = ["wyllie_ranks"]


def wyllie_ranks(
    lst: LinkedList, *, p: int = 1
) -> tuple[np.ndarray, CostReport]:
    """Distance-to-tail ranks by pointer jumping.

    Returns ``(ranks, report)``; ``ranks[tail] == 0`` and
    ``ranks[head] == n - 1``.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    n = lst.n
    cost = CostModel(p)
    nxt = lst.next.copy()
    ranks = np.where(nxt == NIL, 0, 1).astype(np.int64)
    rounds = max(1, (max(2, n) - 1).bit_length())
    with cost.phase("jump"):
        for _ in range(rounds):
            live = nxt != NIL
            ranks[live] += ranks[nxt[live]]
            nxt[live] = nxt[nxt[live]]
            cost.parallel(n)
    return ranks, cost.report()
