"""List ranking — the problem that motivates the paper's machinery.

``rank[v]`` = number of links from ``v`` to the tail.  Three solvers:

- :func:`sequential_ranks` — the ``Theta(n)`` one-processor walk
  (the ``T_1`` reference).
- Wyllie's pointer jumping — ``Theta(n log n)`` work
  (:func:`repro.baselines.wyllie.wyllie_ranks`; re-exported through
  :func:`list_ranks`).
- :func:`contraction_ranks` — the work-optimal deterministic scheme
  the paper's matchings enable (Anderson–Miller [1] style): repeatedly
  compute a maximal matching, splice out every matched pointer's head
  (an independent set, so all splices commute), accumulate link
  weights, recurse on the ≤ 2/3-size remainder, then reinstate the
  spliced nodes level by level.  With Match4 as the matcher each level
  is optimal, giving ``O(n)`` total work.

The splice direction matters: a matched pointer ``<a, b>`` removes
``b`` (its head), and two removed heads are never adjacent — adjacency
would force two matched pointers to share ``b``.  Pointers whose head
is the current tail are skipped so the rank anchor survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .._util import require
from ..errors import InvalidParameterError
from ..lists.linked_list import NIL, LinkedList
from ..baselines.wyllie import wyllie_ranks
from ..core.maximal_matching import ALGORITHMS
from ..pram.cost import CostModel, CostReport

__all__ = [
    "sequential_ranks",
    "contraction_ranks",
    "list_ranks",
    "ContractionStats",
]


def sequential_ranks(lst: LinkedList) -> np.ndarray:
    """Distance-to-tail ranks by one sequential walk (the oracle)."""
    ranks = np.empty(lst.n, dtype=np.int64)
    ranks[lst.order] = np.arange(lst.n - 1, -1, -1, dtype=np.int64)
    return ranks


@dataclass(frozen=True)
class ContractionStats:
    """Diagnostics of one contraction-ranking run."""

    levels: int
    level_sizes: tuple[int, ...]
    base_size: int
    matcher: str


def contraction_ranks(
    lst: LinkedList,
    *,
    p: int = 1,
    matcher: str = "match4",
    base_size: int = 32,
    **matcher_kwargs: Any,
) -> tuple[np.ndarray, CostReport, ContractionStats]:
    """Work-optimal list ranking by matching contraction.

    Parameters
    ----------
    lst:
        Input list.
    p:
        Processor count for the cost accounting.
    matcher:
        Any algorithm registered in
        :data:`repro.core.maximal_matching.ALGORITHMS`.
    base_size:
        Below this many survivors, finish with a sequential walk.
    matcher_kwargs:
        Forwarded to the matcher (e.g. ``i=3`` for Match4).

    Returns ``(ranks, report, stats)``.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    require(base_size >= 4, f"base_size must be >= 4, got {base_size}")
    if matcher not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown matcher {matcher!r}; choose from {sorted(ALGORITHMS)}"
        )
    match_fn = ALGORITHMS[matcher]
    n = lst.n
    cost = CostModel(p)
    nxt = lst.next.copy()
    weight = np.where(nxt == NIL, 0, 1).astype(np.int64)
    alive = np.ones(n, dtype=bool)
    # Per removed node: (address, weight at removal, successor at removal).
    levels: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    level_sizes: list[int] = []

    with cost.phase("contract"):
        while int(alive.sum()) > base_size:
            live_nodes = np.flatnonzero(alive)
            m = live_nodes.size
            level_sizes.append(int(m))
            # Compress live addresses to 0..m-1 for the matcher (a
            # prefix-sums pass: O(m/p + log m)).
            new_id = np.full(n, NIL, dtype=np.int64)
            new_id[live_nodes] = np.arange(m, dtype=np.int64)
            sub_next = np.where(
                nxt[live_nodes] == NIL, NIL, new_id[nxt[live_nodes]]
            )
            cost.parallel(m)
            cost.sequential(max(1, (max(2, m) - 1).bit_length()))
            sub = LinkedList(sub_next, validate=False)
            matching, sub_report, _ = match_fn(sub, p=p, **matcher_kwargs)
            cost.absorb(sub_report)
            # Back to original addresses; drop the pointer into the tail.
            a = live_nodes[matching.tails]
            b = nxt[a]
            keep = nxt[b] != NIL
            a, b = a[keep], b[keep]
            if a.size == 0:
                # Only the tail pointer was matched; with maximality
                # this implies m <= 3 — finish at the base case.
                break
            # Splice: removed heads are pairwise non-adjacent, so these
            # parallel updates never race.
            levels.append((b, weight[b].copy(), nxt[b].copy()))
            weight[a] += weight[b]
            nxt[a] = nxt[b]
            alive[b] = False
            cost.parallel(int(a.size))

    # Base case: sequential weighted walk over the survivors.
    ranks = np.zeros(n, dtype=np.int64)
    with cost.phase("base"):
        live_nodes = np.flatnonzero(alive)
        head = lst.head  # the head is never spliced out (heads of
        # matched pointers are successors of their tails)
        order = []
        v = head
        while v != NIL:
            order.append(v)
            v = int(nxt[v])
        # ranks[v] = weight[v] + ranks[suc(v)]; the tail's weight is 0,
        # so one uniform accumulation covers it.
        acc = 0
        for v in reversed(order):
            acc += int(weight[v])
            ranks[v] = acc
        cost.sequential(len(order))
        _ = live_nodes

    # Expansion: reinstate levels in reverse.
    with cost.phase("expand"):
        for b, w_b, next_b in reversed(levels):
            ranks[b] = w_b + ranks[next_b]
            cost.parallel(int(b.size))

    stats = ContractionStats(
        levels=len(levels),
        level_sizes=tuple(level_sizes[: len(levels)]),
        base_size=base_size,
        matcher=matcher,
    )
    return ranks, cost.report(), stats


def list_ranks(
    lst: LinkedList,
    *,
    p: int = 1,
    algorithm: str = "contraction",
    **kwargs: Any,
) -> tuple[np.ndarray, CostReport]:
    """Dispatch list ranking: ``"contraction"``, ``"wyllie"``, or
    ``"sequential"``."""
    if algorithm == "contraction":
        ranks, report, _ = contraction_ranks(lst, p=p, **kwargs)
        return ranks, report
    if algorithm == "wyllie":
        return wyllie_ranks(lst, p=p)
    if algorithm == "sequential":
        cost = CostModel(p)
        cost.sequential(lst.n)
        return sequential_ranks(lst), cost.report()
    raise InvalidParameterError(
        f"unknown ranking algorithm {algorithm!r}"
    )
