"""Uniform linked-list contraction (Han 2020) atop maximal matchings.

Han's *Uniform Linked Lists Contraction* (arXiv:2002.05034) contracts
a linked list to a single node in rounds: each round computes a
maximal matching of the current list and merges every matched
pointer's head into its tail.  Matched pointers are endpoint-disjoint
(the paper's Lemma 1 invariant), so all merges of a round commute and
apply in one parallel step; maximality guarantees the matching covers
at least ``ceil((m-1)/3)`` pointers of an ``m``-node list, so every
round retires at least a third of the remaining pointers and the
schedule has ``O(log n)`` rounds — the "uniform" rate that gives the
scheme its name.

The contraction *tree* is returned as a ``parent`` array —
``parent[b] = a`` when pointer ``<a, b>`` was matched in some round —
plus per-round diagnostics.  The survivor accumulates merged payload
values, so ``values[survivor] == lst.values.sum()`` is a checkable
conservation invariant.

:func:`contract_dynamic` drives round 0 off a
:class:`~repro.dynamic.DynamicList`'s *maintained* matching instead of
computing one — the dynamic tier's matching is already maximal, so a
live session gets its first contraction round for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .._util import require
from ..errors import InvalidParameterError, VerificationError
from ..lists.linked_list import NIL, LinkedList
from ..core.matching import verify_maximal_matching
from ..core.maximal_matching import ALGORITHMS
from ..pram.cost import CostModel, CostReport

__all__ = [
    "UniformContractionStats",
    "contract_dynamic",
    "contraction_representatives",
    "uniform_contraction",
    "verify_contraction",
]


@dataclass(frozen=True)
class UniformContractionStats:
    """Diagnostics of one uniform-contraction run."""

    rounds: int
    level_sizes: tuple[int, ...]
    total_merges: int
    matcher: str
    seeded_round: bool

    @property
    def uniform_rate_held(self) -> bool:
        """Whether every round retired >= 1/4 of its nodes (the
        ``(m-1)/3`` guarantee with rounding slack)."""
        for before, after in zip(self.level_sizes, self.level_sizes[1:]):
            if before > 4 and (before - after) * 4 < before:
                return False
        return True


def uniform_contraction(
    lst: LinkedList,
    *,
    p: int = 1,
    matcher: str = "match4",
    first_tails: np.ndarray | None = None,
    **matcher_kwargs: Any,
) -> tuple[np.ndarray, CostReport, UniformContractionStats]:
    """Contract ``lst`` to one node; returns ``(parent, report, stats)``.

    ``parent[v]`` is the node ``v`` was merged into (:data:`NIL` for
    the unique survivor — the list's head, since merges always pull a
    pointer's head into its tail).

    ``first_tails`` optionally supplies round 0's maximal matching
    (tail addresses); it is verified, then later rounds use
    ``matcher``.  This is the hook the dynamic tier uses to feed its
    maintained matching in.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    if matcher not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown matcher {matcher!r}; choose from {sorted(ALGORITHMS)}"
        )
    match_fn = ALGORITHMS[matcher]
    n = lst.n
    cost = CostModel(p)
    nxt = lst.next.copy()
    values = lst.values.copy()
    alive = np.ones(n, dtype=bool)
    parent = np.full(n, NIL, dtype=np.int64)
    level_sizes: list[int] = [n]
    seeded = first_tails is not None
    first = True

    with cost.phase("contract"):
        while int(alive.sum()) > 1:
            live_nodes = np.flatnonzero(alive)
            m = live_nodes.size
            # Compress live addresses to 0..m-1 for the matcher.
            new_id = np.full(n, NIL, dtype=np.int64)
            new_id[live_nodes] = np.arange(m, dtype=np.int64)
            sub_next = np.where(
                nxt[live_nodes] == NIL, NIL, new_id[nxt[live_nodes]]
            )
            cost.parallel(m)
            sub = LinkedList(sub_next, validate=False)
            if first and seeded:
                tails = np.asarray(first_tails, dtype=np.int64)
                local = np.sort(new_id[tails])
                verify_maximal_matching(sub, local)
                cost.parallel(int(local.size))
            else:
                matching, sub_report, _ = match_fn(
                    sub, p=p, **matcher_kwargs)
                cost.absorb(sub_report)
                local = matching.tails
            first = False
            # Merge each matched pointer's head into its tail — the
            # endpoint-disjointness of a matching makes this one
            # conflict-free parallel step.
            a = live_nodes[local]
            b = nxt[a]
            parent[b] = a
            values[a] += values[b]
            nxt[a] = nxt[b]
            alive[b] = False
            cost.parallel(int(a.size))
            survivors = int(alive.sum())
            if survivors == m:
                raise VerificationError(
                    f"contraction stalled at {m} nodes: the round's "
                    f"matching was empty")
            level_sizes.append(survivors)

    survivor = int(np.flatnonzero(alive)[0])
    if values[survivor] != int(lst.values.sum()):
        raise VerificationError(
            "contraction lost payload: survivor accumulated "
            f"{int(values[survivor])} of {int(lst.values.sum())}")
    stats = UniformContractionStats(
        rounds=len(level_sizes) - 1,
        level_sizes=tuple(level_sizes),
        total_merges=n - 1,
        matcher=matcher,
        seeded_round=seeded,
    )
    return parent, cost.report(), stats


def contraction_representatives(parent: np.ndarray) -> np.ndarray:
    """Resolve every node to its final survivor through ``parent``.

    Pointer-chasing with path compression; ``O(n alpha)`` sequential,
    used by the verifier and by consumers that need cluster labels.
    """
    parent = np.asarray(parent, dtype=np.int64)
    rep = np.arange(parent.size, dtype=np.int64)
    for v in range(parent.size):
        chain = []
        r = v
        while parent[r] != NIL:
            chain.append(r)
            r = int(parent[r])
            if len(chain) > parent.size:
                raise VerificationError(
                    "parent array contains a cycle")
        for c in chain:
            rep[c] = r
    return rep


def verify_contraction(lst: LinkedList, parent: np.ndarray) -> None:
    """Check a contraction tree is complete and rooted at the head.

    Every node must resolve to a single common survivor, the survivor
    must be the only node without a parent, and the round count
    implied by tree depth must exist (acyclicity) — violations raise
    :class:`VerificationError`.
    """
    parent = np.asarray(parent, dtype=np.int64)
    if parent.size != lst.n:
        raise VerificationError(
            f"parent has {parent.size} entries for {lst.n} nodes")
    roots = np.flatnonzero(parent == NIL)
    if roots.size != 1:
        raise VerificationError(
            f"contraction must leave exactly 1 survivor, found "
            f"{roots.size}")
    if int(roots[0]) != lst.head:
        raise VerificationError(
            f"survivor {int(roots[0])} is not the head {lst.head}: "
            f"merges must pull heads into tails")
    rep = contraction_representatives(parent)
    if not np.all(rep == roots[0]):
        stray = int(np.flatnonzero(rep != roots[0])[0])
        raise VerificationError(
            f"node {stray} resolves to {int(rep[stray])}, not the "
            f"survivor {int(roots[0])}")


def contract_dynamic(
    dyn: Any, *, p: int = 1, matcher: str = "match4",
    **matcher_kwargs: Any,
) -> list[tuple[Any, np.ndarray, CostReport, UniformContractionStats]]:
    """Contract every component of a dynamic session.

    Round 0 of each component reuses the session's *maintained*
    matching (``first_tails``).  Each entry is ``(snapshot, parent,
    report, stats)``: ``parent`` is the contraction tree in the
    snapshot's local ids, and ``snapshot.nodes[local]`` translates any
    local id back to its arena address.  ``dyn`` is a
    :class:`~repro.dynamic.DynamicList`; typed loosely to keep the
    apps layer import-light.
    """
    out = []
    for snap in dyn.components():
        parent, report, stats = uniform_contraction(
            snap.lst, p=p, matcher=matcher,
            first_tails=snap.tails, **matcher_kwargs)
        out.append((snap, parent, report, stats))
    return out
