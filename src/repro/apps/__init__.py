"""Applications the paper names for its matching machinery.

"This algorithm can be used to compute a maximal independent set or a
3 coloring for a linked list" (abstract) — and the motivating problem
throughout the paper is the linked-list prefix.  This package builds
all three on the core library:

- :mod:`repro.apps.coloring` — 3-coloring of the list's nodes: the
  constant-size labels from iterated ``f`` are a 6-coloring, reduced to
  3 by three parallel recoloring rounds.
- :mod:`repro.apps.mis` — maximal independent set from the 3-coloring
  (three greedy parallel rounds) and directly from a maximal matching.
- :mod:`repro.apps.ranking` — optimal deterministic list ranking by
  matching contraction (the Anderson–Miller [1] scheme the paper cites,
  driven by any of this library's matching algorithms), against
  Wyllie's ``Theta(n log n)``-work pointer jumping.
- :mod:`repro.apps.prefix` — data-dependent prefix sums over the list
  via ranking.
- :mod:`repro.apps.contraction` — Han's uniform linked-list
  contraction (arXiv:2002.05034): contract to a single node in
  ``O(log n)`` matching-driven rounds, optionally seeded by a dynamic
  session's maintained matching.
"""

from .coloring import (
    six_coloring,
    three_coloring,
    three_coloring_via_matching,
    verify_coloring,
)
from .mis import (
    mis_from_coloring,
    mis_from_matching,
    verify_independent_set,
)
from .contraction import (
    UniformContractionStats,
    contract_dynamic,
    contraction_representatives,
    uniform_contraction,
    verify_contraction,
)
from .ranking import contraction_ranks, list_ranks, sequential_ranks
from .prefix import list_prefix_sums
from .fold import OPERATORS, list_prefix_fold, list_suffix_fold

__all__ = [
    "six_coloring",
    "three_coloring",
    "three_coloring_via_matching",
    "verify_coloring",
    "mis_from_coloring",
    "mis_from_matching",
    "verify_independent_set",
    "UniformContractionStats",
    "contract_dynamic",
    "contraction_representatives",
    "uniform_contraction",
    "verify_contraction",
    "contraction_ranks",
    "list_ranks",
    "sequential_ranks",
    "list_prefix_sums",
    "OPERATORS",
    "list_prefix_fold",
    "list_suffix_fold",
]
