"""3-coloring the nodes of a linked list (paper abstract's application).

Iterating the matching partition function on node addresses yields
constant-size node labels with adjacent nodes distinct — i.e. a
``c``-coloring of the path for a small constant ``c`` (at most 6, the
fixed point of the label-magnitude recurrence).  Three parallel
recoloring rounds then eliminate colors 5, 4, 3: all nodes of the
doomed color (an independent set, since the coloring is proper)
simultaneously pick the smallest color in ``{0,1,2}`` unused by their
neighbors — two neighbors can exclude at most two of three candidates.

Total: ``O(n G(n)/p + G(n))`` with the plain iteration, or plug the
Match3/Match4 partition machinery for their respective bounds; the
reduction itself is ``O(n/p)``.
"""

from __future__ import annotations

import numpy as np

from .._util import require
from ..errors import VerificationError
from ..lists.linked_list import NIL, LinkedList
from ..bits.iterated_log import G
from ..core.functions import FunctionKind, iterate_f
from ..pram.cost import CostModel, CostReport

__all__ = [
    "six_coloring",
    "three_coloring",
    "three_coloring_via_matching",
    "verify_coloring",
]


def six_coloring(
    lst: LinkedList,
    *,
    p: int = 1,
    kind: FunctionKind = "msb",
    rounds: int | None = None,
) -> tuple[np.ndarray, CostReport]:
    """Constant-size proper coloring by iterated ``f`` (colors < 6).

    ``rounds`` defaults to ``G(n)``.  Returns ``(colors, report)``.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    cost = CostModel(p)
    if rounds is None:
        rounds = G(lst.n)
    with cost.phase("iterate"):
        colors = iterate_f(lst, rounds, kind=kind, cost=cost)
    if lst.n > 1 and int(colors.max()) >= 6:
        raise VerificationError(
            f"colors not below 6 after {rounds} rounds; pass more rounds"
        )
    verify_coloring(lst, colors, 6)
    return colors, cost.report()


def three_coloring(
    lst: LinkedList,
    *,
    p: int = 1,
    kind: FunctionKind = "msb",
    rounds: int | None = None,
) -> tuple[np.ndarray, CostReport]:
    """Proper 3-coloring of the list's nodes.

    Runs :func:`six_coloring` then three reduction rounds.  Returns
    ``(colors, report)`` with colors in ``{0, 1, 2}``.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    colors, base_report = six_coloring(lst, p=p, kind=kind, rounds=rounds)
    colors = colors.copy()
    cost = CostModel(p)
    cost.absorb(base_report)
    nxt = lst.next
    pred = lst.pred
    with cost.phase("reduce"):
        for doomed in (5, 4, 3):
            sel = np.flatnonzero(colors == doomed)
            if sel.size == 0:
                cost.sequential(1)
                continue
            left = pred[sel]
            right = nxt[sel]
            lc = np.where(left != NIL, colors[np.where(left != NIL, left, 0)], -1)
            rc = np.where(right != NIL, colors[np.where(right != NIL, right, 0)], -1)
            c0 = np.int64(0)
            c1 = np.int64(1)
            bad0 = (lc == c0) | (rc == c0)
            bad1 = (lc == c1) | (rc == c1)
            colors[sel] = np.where(~bad0, c0, np.where(~bad1, c1, np.int64(2)))
            cost.parallel(int(sel.size))
    verify_coloring(lst, colors, 3)
    return colors, cost.report()


def verify_coloring(lst: LinkedList, colors: np.ndarray, k: int) -> None:
    """Check that ``colors`` is a proper coloring of the path with
    values in ``[0, k)``; raises :class:`VerificationError` otherwise."""
    colors = np.asarray(colors, dtype=np.int64)
    if colors.size != lst.n:
        raise VerificationError(
            f"colors has {colors.size} entries for {lst.n} nodes"
        )
    if colors.size and (int(colors.min()) < 0 or int(colors.max()) >= k):
        raise VerificationError(f"colors must lie in [0, {k})")
    nxt = lst.next
    v = np.flatnonzero(nxt != NIL)
    clash = colors[v] == colors[nxt[v]]
    if np.any(clash):
        bad = int(v[np.flatnonzero(clash)[0]])
        raise VerificationError(
            f"nodes {bad} and {int(nxt[bad])} are adjacent and share "
            f"color {int(colors[bad])}"
        )


def three_coloring_via_matching(
    lst: LinkedList,
    *,
    p: int = 1,
    matcher: str = "match4",
    base_size: int = 8,
    **matcher_kwargs,
) -> tuple[np.ndarray, CostReport]:
    """3-coloring built *literally* on maximal matchings (contraction).

    The abstract's claim — "this algorithm can be used to compute ...
    a 3 coloring for a linked list" — made concrete: compute a maximal
    matching, splice out every matched pointer's head (an independent
    set), recursively 3-color the at-most-2/3-size remainder, then
    reinstate the spliced nodes, each picking the smallest color its
    two (already colored) neighbors avoid.  ``O(log n)`` matching
    rounds, geometric work.

    An alternative to :func:`three_coloring` (which iterates ``f``
    directly); both are verified proper, and E8 compares their costs.
    """
    from ..core.maximal_matching import ALGORITHMS
    from ..errors import InvalidParameterError

    require(p >= 1, f"p must be >= 1, got {p}")
    require(base_size >= 2, f"base_size must be >= 2, got {base_size}")
    if matcher not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown matcher {matcher!r}; choose from {sorted(ALGORITHMS)}"
        )
    match_fn = ALGORITHMS[matcher]
    n = lst.n
    cost = CostModel(p)
    nxt = lst.next.copy()
    alive = np.ones(n, dtype=bool)
    levels: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    with cost.phase("contract"):
        while int(alive.sum()) > base_size:
            live_nodes = np.flatnonzero(alive)
            m = live_nodes.size
            new_id = np.full(n, NIL, dtype=np.int64)
            new_id[live_nodes] = np.arange(m, dtype=np.int64)
            sub_next = np.where(
                nxt[live_nodes] == NIL, NIL, new_id[nxt[live_nodes]]
            )
            cost.parallel(m)
            cost.sequential(max(1, (max(2, m) - 1).bit_length()))
            sub = LinkedList(sub_next, validate=False)
            matching, sub_report, _ = match_fn(sub, p=p, **matcher_kwargs)
            cost.absorb(sub_report)
            a = live_nodes[matching.tails]
            b = nxt[a]
            if b.size == 0:
                break
            # record (removed node, its pred, its suc at removal time)
            levels.append((b, a.copy(), nxt[b].copy()))
            nxt[a] = nxt[b]
            alive[b] = False
            cost.parallel(int(a.size))
    colors = np.zeros(n, dtype=np.int64)
    with cost.phase("base"):
        # 2-color the surviving path by alternation along a walk.
        live_head = lst.head  # heads are never spliced out
        c = 0
        v = live_head
        steps = 0
        while v != NIL:
            colors[v] = c
            c = 1 - c
            v = int(nxt[v])
            steps += 1
        cost.sequential(steps)
    with cost.phase("expand"):
        for b, a, c_next in reversed(levels):
            ca = colors[a]
            cb_right = np.where(c_next != NIL,
                                colors[np.where(c_next != NIL, c_next, 0)],
                                -1)
            c0, c1 = np.int64(0), np.int64(1)
            bad0 = (ca == c0) | (cb_right == c0)
            bad1 = (ca == c1) | (cb_right == c1)
            colors[b] = np.where(~bad0, c0, np.where(~bad1, c1, np.int64(2)))
            cost.parallel(int(b.size))
    verify_coloring(lst, colors, 3)
    return colors, cost.report()
