"""Maximal independent set of a linked list's nodes.

Two routes, both named by the paper:

- :func:`mis_from_coloring` — from a proper 3-coloring: admit color
  class 0 wholesale, then (two parallel rounds) admit any node of color
  1, then 2, whose neighbors are still all outside.  Each round touches
  an independent color class, so the greedy admissions never conflict.
- :func:`mis_from_matching` — from a maximal matching: admit every
  matched pointer's tail, then sweep the (constant-length) runs of
  uncovered nodes.  Matched tails are independent because two adjacent
  admitted tails would force two matched pointers to share a node.
"""

from __future__ import annotations

import numpy as np

from .._util import require
from ..errors import VerificationError
from ..lists.linked_list import NIL, LinkedList
from ..core.matching import Matching
from ..pram.cost import CostModel, CostReport

__all__ = ["mis_from_coloring", "mis_from_matching", "verify_independent_set"]


def mis_from_coloring(
    lst: LinkedList, colors: np.ndarray, *, p: int = 1
) -> tuple[np.ndarray, CostReport]:
    """Maximal independent set from a proper coloring with few colors.

    Returns ``(mask, report)`` where ``mask[v]`` says whether node ``v``
    is in the set.  Works for any proper coloring; cost is one parallel
    round per color class.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    colors = np.asarray(colors, dtype=np.int64)
    if colors.size != lst.n:
        raise VerificationError(
            f"colors has {colors.size} entries for {lst.n} nodes"
        )
    cost = CostModel(p)
    nxt = lst.next
    pred = lst.pred
    in_set = np.zeros(lst.n, dtype=bool)
    with cost.phase("admit"):
        for c in range(int(colors.max()) + 1 if colors.size else 0):
            sel = np.flatnonzero(colors == c)
            if sel.size == 0:
                cost.sequential(1)
                continue
            left = pred[sel]
            right = nxt[sel]
            left_in = np.where(
                left != NIL, in_set[np.where(left != NIL, left, 0)], False
            )
            right_in = np.where(
                right != NIL, in_set[np.where(right != NIL, right, 0)], False
            )
            in_set[sel[~(left_in | right_in)]] = True
            cost.parallel(int(sel.size))
    verify_independent_set(lst, in_set, maximal=True)
    return in_set, cost.report()


def mis_from_matching(
    lst: LinkedList, matching: Matching, *, p: int = 1
) -> tuple[np.ndarray, CostReport]:
    """Maximal independent set from a maximal matching.

    Admit each matched pointer's tail; nodes not covered by the
    matching form runs of length at most 2 between covered nodes (a run
    of 3 free nodes would leave an addable pointer), so one constant
    parallel repair round admits every free node whose neighbors are
    outside the set.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    cost = CostModel(p)
    nxt = lst.next
    pred = lst.pred
    in_set = np.zeros(lst.n, dtype=bool)
    with cost.phase("tails"):
        in_set[matching.tails] = True
        cost.parallel(matching.size)
    with cost.phase("repair"):
        # Free nodes (uncovered by the matching) form runs of length at
        # most 2 — a run of 3 would leave an addable pointer.  Structure
        # facts (each provable from "tails precede heads"): a free
        # node's left covered neighbor is always a matched *head*
        # (never in the set), and the covered node after a free run is
        # always a matched *tail* (in the set).  Hence one parallel
        # pass admitting every free *run leader* (left neighbor not
        # free) whose right neighbor is outside the set is enough: a
        # 2-run's leader is always admitted, covering the run's second
        # node; a 1-run's leader is admitted exactly when its right
        # neighbor is not already an in-set tail.
        covered = np.zeros(lst.n, dtype=bool)
        covered[matching.tails] = True
        covered[nxt[matching.tails]] = True
        free = np.flatnonzero(~covered)
        if free.size:
            left = pred[free]
            right = nxt[free]
            left_free = np.where(
                left != NIL, ~covered[np.where(left != NIL, left, 0)], False
            )
            right_in = np.where(
                right != NIL, in_set[np.where(right != NIL, right, 0)], False
            )
            in_set[free[~left_free & ~right_in]] = True
            cost.parallel(int(free.size))
    verify_independent_set(lst, in_set, maximal=True)
    return in_set, cost.report()


def verify_independent_set(
    lst: LinkedList, mask: np.ndarray, *, maximal: bool = False
) -> None:
    """Check independence (no two adjacent nodes in the set) and,
    optionally, maximality (every outside node has an inside neighbor).

    Raises :class:`VerificationError` naming the first offense.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.size != lst.n:
        raise VerificationError(
            f"mask has {mask.size} entries for {lst.n} nodes"
        )
    nxt = lst.next
    v = np.flatnonzero(nxt != NIL)
    both = mask[v] & mask[nxt[v]]
    if np.any(both):
        bad = int(v[np.flatnonzero(both)[0]])
        raise VerificationError(
            f"adjacent nodes {bad} and {int(nxt[bad])} are both in the set"
        )
    if not maximal:
        return
    pred = lst.pred
    out = np.flatnonzero(~mask)
    left = pred[out]
    right = nxt[out]
    left_in = np.where(left != NIL, mask[np.where(left != NIL, left, 0)], False)
    right_in = np.where(right != NIL, mask[np.where(right != NIL, right, 0)], False)
    lonely = ~(left_in | right_in)
    if np.any(lonely):
        bad = int(out[np.flatnonzero(lonely)[0]])
        raise VerificationError(
            f"node {bad} is outside the set with no inside neighbor: "
            f"the set is not maximal"
        )
