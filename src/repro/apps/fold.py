"""Data-dependent folds over a linked list (reference [15]'s problem).

The paper's lineage runs through Wagner–Han's *data dependent prefix
problem* [15]: combine per-node values along the list order with an
associative operator, where the order is known only through the
pointers.  List ranking is the special case ``op = +`` on all-ones;
this module provides the general form, built on the same
matching-contraction engine:

- :func:`list_suffix_fold` — ``out[v] = values[v] op values[suc(v)]
  op ... op values[tail]``;
- :func:`list_prefix_fold` — ``out[v] = values[head] op ... op
  values[v]`` (computed as a suffix fold of the mirrored list — the
  predecessor array *is* the reversed list, no ranking needed to build
  it);

with operators ``"sum"``, ``"max"``, ``"min"`` (any commutative
associative NumPy ufunc slots in via :data:`OPERATORS`).

Contraction correctness: each matched pointer ``<a, b>`` splices out
``b`` after folding ``acc[a] = op(acc[a], acc[b])`` — ``acc[v]`` always
holds the fold of the *contiguous run* of original nodes that ``v``
currently represents, so associativity alone justifies every merge.
Removed heads are pairwise non-adjacent, so all splices of one round
commute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from .._util import as_index_array, require
from ..errors import InvalidParameterError
from ..lists.linked_list import NIL, LinkedList
from ..core.maximal_matching import ALGORITHMS
from ..pram.cost import CostModel, CostReport

__all__ = ["OPERATORS", "list_suffix_fold", "list_prefix_fold"]

#: name -> elementwise combiner (associative; applied pairwise).
OPERATORS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
}


@dataclass(frozen=True)
class FoldStats:
    """Diagnostics of one contraction fold."""

    levels: int
    op: str
    matcher: str


def list_suffix_fold(
    lst: LinkedList,
    values: np.ndarray,
    *,
    op: str = "sum",
    p: int = 1,
    matcher: str = "match4",
    base_size: int = 32,
    **matcher_kwargs: Any,
) -> tuple[np.ndarray, CostReport, FoldStats]:
    """Fold each node's suffix of the list with ``op``.

    ``out[v] = values[v] op values[suc(v)] op ... op values[tail]``.

    Parameters mirror :func:`repro.apps.ranking.contraction_ranks`;
    the engine is the same, generalized from ``+``/ones to any
    registered operator and arbitrary values.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    require(base_size >= 4, f"base_size must be >= 4, got {base_size}")
    if op not in OPERATORS:
        raise InvalidParameterError(
            f"unknown operator {op!r}; choose from {sorted(OPERATORS)}"
        )
    if matcher not in ALGORITHMS:
        raise InvalidParameterError(
            f"unknown matcher {matcher!r}; choose from {sorted(ALGORITHMS)}"
        )
    combine = OPERATORS[op]
    match_fn = ALGORITHMS[matcher]
    values = as_index_array(values, name="values")
    n = lst.n
    if values.size != n:
        raise InvalidParameterError(
            f"values has {values.size} entries for {n} nodes"
        )
    cost = CostModel(p)
    nxt = lst.next.copy()
    acc = values.copy()
    alive = np.ones(n, dtype=bool)
    levels: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    with cost.phase("contract"):
        while int(alive.sum()) > base_size:
            live_nodes = np.flatnonzero(alive)
            m = live_nodes.size
            new_id = np.full(n, NIL, dtype=np.int64)
            new_id[live_nodes] = np.arange(m, dtype=np.int64)
            sub_next = np.where(
                nxt[live_nodes] == NIL, NIL, new_id[nxt[live_nodes]]
            )
            cost.parallel(m)
            cost.sequential(max(1, (max(2, m) - 1).bit_length()))
            sub = LinkedList(sub_next, validate=False)
            matching, sub_report, _ = match_fn(sub, p=p, **matcher_kwargs)
            cost.absorb(sub_report)
            a = live_nodes[matching.tails]
            b = nxt[a]
            if b.size == 0:
                break
            # record b's state *before* the splice: its own accumulated
            # run-fold and its successor at removal time.
            levels.append((b, acc[b].copy(), nxt[b].copy()))
            acc[a] = combine(acc[a], acc[b])
            nxt[a] = nxt[b]
            alive[b] = False
            cost.parallel(int(a.size))
    out = np.zeros(n, dtype=np.int64)
    with cost.phase("base"):
        order = []
        v = lst.head  # never spliced (heads of matched pointers are
        # successors)
        while v != NIL:
            order.append(v)
            v = int(nxt[v])
        running = None
        for v in reversed(order):
            running = acc[v] if running is None else int(
                combine(np.asarray([acc[v]]), np.asarray([running]))[0]
            )
            out[v] = running
        cost.sequential(len(order))
    with cost.phase("expand"):
        for b, acc_b, next_b in reversed(levels):
            has_suc = next_b != NIL
            out_b = acc_b.copy()
            hb = np.flatnonzero(has_suc)
            out_b[hb] = combine(acc_b[hb], out[next_b[hb]])
            out[b] = out_b
            cost.parallel(int(b.size))
    stats = FoldStats(levels=len(levels), op=op, matcher=matcher)
    return out, cost.report(), stats


def list_prefix_fold(
    lst: LinkedList,
    values: np.ndarray,
    *,
    op: str = "sum",
    p: int = 1,
    matcher: str = "match4",
    base_size: int = 32,
    **matcher_kwargs: Any,
) -> tuple[np.ndarray, CostReport, FoldStats]:
    """Fold each node's prefix of the list with ``op``.

    ``out[v] = values[head] op ... op values[v]``.  Implemented as the
    suffix fold of the *mirrored* list — the predecessor array already
    encodes the reversed order, so the mirror costs one O(n/p) pass and
    no ranking.
    """
    pred = lst.pred.copy()
    mirror = LinkedList(pred, validate=False)
    out, report, stats = list_suffix_fold(
        mirror, values, op=op, p=p, matcher=matcher,
        base_size=base_size, **matcher_kwargs,
    )
    return out, report, stats
