"""Data-dependent prefix sums over a linked list.

"Many previous linked list prefix algorithms [9,11,13,16] can be used
to compute a maximal matching" — and conversely, a maximal matching
machinery yields an optimal prefix algorithm: rank the list (any solver
from :mod:`repro.apps.ranking`), scatter values into rank order, run an
ordinary parallel prefix (``O(n/p + log n)``), and gather back.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .._util import as_index_array, require
from ..errors import InvalidParameterError
from ..lists.linked_list import LinkedList
from ..pram.cost import CostModel, CostReport
from .ranking import contraction_ranks, sequential_ranks
from ..baselines.wyllie import wyllie_ranks

__all__ = ["list_prefix_sums"]


def list_prefix_sums(
    lst: LinkedList,
    values: np.ndarray,
    *,
    p: int = 1,
    ranking: str = "contraction",
    **kwargs: Any,
) -> tuple[np.ndarray, CostReport]:
    """Inclusive prefix sums in list order.

    ``out[v]`` is the sum of ``values`` over all nodes from the head up
    to and including ``v``.  ``ranking`` picks the rank solver
    (``"contraction"``, ``"wyllie"``, or ``"sequential"``).

    Returns ``(out, report)``.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    values = as_index_array(values, name="values")
    n = lst.n
    if values.size != n:
        raise InvalidParameterError(
            f"values has {values.size} entries for {n} nodes"
        )
    cost = CostModel(p)
    if ranking == "contraction":
        ranks, rep, _ = contraction_ranks(lst, p=p, **kwargs)
        cost.absorb(rep)
    elif ranking == "wyllie":
        ranks, rep = wyllie_ranks(lst, p=p)
        cost.absorb(rep)
    elif ranking == "sequential":
        ranks = sequential_ranks(lst)
        cost.sequential(n)
    else:
        raise InvalidParameterError(f"unknown ranking {ranking!r}")
    with cost.phase("prefix"):
        # Position in list order = n - 1 - rank; scatter, scan, gather.
        position = n - 1 - ranks
        in_order = np.empty(n, dtype=np.int64)
        in_order[position] = values
        scanned = np.cumsum(in_order)
        out = scanned[position]
        cost.parallel(n)
        cost.sequential(max(1, (max(2, n) - 1).bit_length()))  # tree depth
    return out, cost.report()
