"""Multiprocess execution: sharded batches and chunked single lists.

The paper speaks in PRAM processors ``p``; this package is the
host-side counterpart — real worker *processes* mapped onto the two
decompositions the algorithms provably allow:

- :mod:`~repro.parallel.executor` shards
  :func:`repro.batch_maximal_matching` across a process pool (lists
  are independent; shard by node-balanced contiguous ranges, reassemble
  in input order);
- :mod:`~repro.parallel.chunked` distributes the engine's cut-walk
  phase for one huge list (cut segments are walk-independent by
  Lemma 1's endpoint disjointness), which is what the ``numpy-mp``
  backend runs.

Both modes are **bit-identical** to their serial counterparts by
construction and fall back to serial execution (with a
``parallel.fallback`` telemetry event) when the pool infrastructure
fails.  Configuration lives in one frozen
:class:`~repro.parallel.config.ParallelConfig`; see
``docs/parallel.md``.
"""

from __future__ import annotations

from .config import (
    MAX_DEFAULT_WORKERS,
    ParallelConfig,
    config_with_workers,
    get_default_config,
    set_default_config,
    using_config,
)
from .pools import drop_pool, get_pool, shutdown_pools
from .executor import run_sharded_batch, shard_bounds
from .chunked import ParallelWalker

__all__ = [
    "MAX_DEFAULT_WORKERS",
    "ParallelConfig",
    "config_with_workers",
    "get_default_config",
    "set_default_config",
    "using_config",
    "get_pool",
    "drop_pool",
    "shutdown_pools",
    "shard_bounds",
    "run_sharded_batch",
    "ParallelWalker",
]
