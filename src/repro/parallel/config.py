"""Configuration of the multiprocess execution layer.

One frozen :class:`ParallelConfig` answers every "how parallel?"
question the executor and the chunked engine ask: how many worker
processes, and how many nodes one worker block must carry before a
process hop is worth paying.  Validation happens at *config time* —
``ParallelConfig(workers=0)`` raises immediately, long before a pool
exists — so misconfiguration never surfaces as a mid-run worker error.

The worker count inherits the ``REPRO_WORKERS`` environment variable
when not set explicitly, and falls back to the host CPU count (capped
at :data:`MAX_DEFAULT_WORKERS`) when neither is given.  A process-wide
default config backs the ``numpy-mp`` backend, which
:func:`repro.maximal_matching` calls without a way to pass knobs
through; the CLI's ``--workers`` and the :func:`using_config` context
manager both retarget it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

from ..errors import InvalidParameterError

__all__ = [
    "MAX_DEFAULT_WORKERS",
    "ParallelConfig",
    "get_default_config",
    "set_default_config",
    "using_config",
]

#: Cap on the implicit (CPU-count) worker default; an explicit
#: ``workers=`` or ``REPRO_WORKERS`` goes as high as the caller likes.
MAX_DEFAULT_WORKERS = 8

#: Environment variable the worker count inherits from.
WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class ParallelConfig:
    """How the process-pool layer splits and dispatches work.

    Attributes
    ----------
    workers:
        Worker-process count.  ``None`` means "inherit": the
        ``REPRO_WORKERS`` environment variable if set, else the host
        CPU count capped at :data:`MAX_DEFAULT_WORKERS`.  Values below
        1 are rejected at construction time.
    chunk_size:
        Minimum nodes per worker block in the chunked (``numpy-mp``)
        single-list mode; a list shorter than ``2 * chunk_size`` runs
        its segment walk in-process.  The batch executor shards by
        whole lists and does not consult this.
    """

    workers: int | None = None
    chunk_size: int = 1 << 15

    def __post_init__(self) -> None:
        if self.workers is not None:
            if not isinstance(self.workers, int) or isinstance(
                    self.workers, bool):
                raise InvalidParameterError(
                    f"workers must be an int >= 1 or None, got "
                    f"{self.workers!r}"
                )
            if self.workers < 1:
                raise InvalidParameterError(
                    f"workers must be >= 1, got {self.workers}"
                )
        if self.chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    def resolve_workers(self) -> int:
        """The effective worker count (explicit, env, or CPU-derived)."""
        if self.workers is not None:
            return self.workers
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                value = int(env)
            except ValueError:
                raise InvalidParameterError(
                    f"{WORKERS_ENV}={env!r} is not an integer"
                ) from None
            if value < 1:
                raise InvalidParameterError(
                    f"{WORKERS_ENV} must be >= 1, got {value}"
                )
            return value
        return min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS)


_default_config = ParallelConfig()


def get_default_config() -> ParallelConfig:
    """The process-wide config the ``numpy-mp`` backend runs under."""
    return _default_config


def set_default_config(config: ParallelConfig) -> ParallelConfig:
    """Replace the process-wide config; returns the previous one."""
    global _default_config
    previous = _default_config
    _default_config = config
    return previous


@contextmanager
def using_config(config: ParallelConfig) -> Iterator[ParallelConfig]:
    """Scoped default-config override (tests, selfcheck, demos)."""
    previous = set_default_config(config)
    try:
        yield config
    finally:
        set_default_config(previous)


def config_with_workers(workers: int | None,
                        base: ParallelConfig | None = None) -> ParallelConfig:
    """A config like ``base`` (default: the process default) but with an
    explicit worker count — validation included, so ``workers=0`` fails
    here, at config time."""
    cfg = base if base is not None else get_default_config()
    if workers is None:
        return cfg
    return replace(cfg, workers=workers)
