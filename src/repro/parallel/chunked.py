"""Chunked single-list mode: the cut-walk phase across worker processes.

One huge list cannot be sharded like a batch — the label and sweep
rounds follow list order.  But after the local-minima **cut**, the
surviving pointers form segments whose walks never interact (the cut
kills both neighbors of every boundary: Lemma 1's endpoint
disjointness).  That is the one phase where the work decomposes into
truly independent pieces, so it is the one phase this module
distributes:

1. the parent runs labeling, the cut, and segment discovery exactly as
   the serial engine does;
2. the discovered segment starts are split into contiguous blocks, and
   each worker walks its block over the full ``NEXT``/live buffers
   (walks chase pointers through *address space*, so every worker
   needs the whole array — permuted layouts jump anywhere);
3. the parent ORs the per-block chosen masks and runs the sequential
   end-repair fix-up, untouched from the serial engine.

Because each segment's walk depends only on its own start (and the
shared immutable buffers), the union of the block results equals the
serial :func:`~repro.backends.engine.walk_segments` output *by
construction*, and the round count is the max over blocks — exactly
the serial max over segments.  Bit-identity is structural, not
approximate; ``docs/parallel.md`` spells out the argument.

:class:`ParallelWalker` plugs into the engine through the ``_walker``
hook on :func:`~repro.backends.engine.match1` /
:func:`~repro.backends.engine.match4`; the ``numpy-mp`` backend's
algorithm entries here are those functions with the walker bound to
the process-default :class:`~repro.parallel.config.ParallelConfig`.
"""

from __future__ import annotations

import pickle
from concurrent.futures import BrokenExecutor

import numpy as np

from ..backends import engine
from ..telemetry.metrics import METRICS
from ..telemetry.spans import event as telemetry_event, span as telemetry_span
from .config import ParallelConfig, get_default_config
from . import pools

__all__ = ["ParallelWalker", "match1", "match4"]

POOL_ERRORS = (BrokenExecutor, OSError, pickle.PicklingError)


def _walk_block_task(payload: tuple) -> tuple:
    """Worker entry: walk one block of segment starts.

    Top-level (pickled by reference).  Rebuilds the shared buffers from
    raw bytes and runs the exact serial kernel over its slice of
    starts; a :class:`~repro.errors.VerificationError` from the limit
    check propagates to the parent unchanged, matching serial behavior
    (a block exceeds the round limit iff one of its segments would have
    in the serial walk).
    """
    block, nxt_buf, live_buf, starts_buf, limit = payload
    nxt = np.frombuffer(nxt_buf, dtype=np.int64)
    live = np.frombuffer(live_buf, dtype=bool)
    starts = np.frombuffer(starts_buf, dtype=np.int64)
    idx, rounds = engine.walk_segments(nxt, live, starts, limit)
    return block, idx.tobytes(), rounds


class ParallelWalker:
    """A drop-in :func:`~repro.backends.engine.walk_segments` that walks
    blocks of segments in worker processes.

    Callable with the walker contract ``(nxt, live, starts, limit) ->
    (chosen_idx, rounds)``.  Dispatches only when it is worth a process
    hop: at least two blocks of ``config.chunk_size`` nodes each and at
    least two segment starts; otherwise (and on pool-infrastructure
    failure, after a ``parallel.fallback`` telemetry event) it runs the
    serial kernel in-process.  ``last_blocks`` records how many blocks
    the most recent call dispatched (0 = ran serial), for tests and
    diagnostics.

    A walker built without an explicit config resolves the
    process-default :class:`ParallelConfig` **per call**, not at
    construction — a long-lived walker therefore honors
    :func:`~repro.parallel.config.using_config` scopes (and planner
    worker overrides) active at call time.  Passing ``config=`` pins
    the walker to that config for its lifetime.
    """

    def __init__(self, config: ParallelConfig | None = None) -> None:
        self._config = config
        self.last_blocks = 0

    @property
    def config(self) -> ParallelConfig:
        """The config this call would use: the pinned one if given,
        else the live process default."""
        if self._config is not None:
            return self._config
        return get_default_config()

    def __call__(self, nxt: np.ndarray, live: np.ndarray,
                 starts: np.ndarray, limit: int,
                 ) -> tuple[np.ndarray, int]:
        cfg = self.config
        workers = cfg.resolve_workers()
        blocks = min(workers, live.size // cfg.chunk_size, int(starts.size))
        self.last_blocks = 0
        if blocks < 2:
            return engine.walk_segments(nxt, live, starts, limit)
        parts = np.array_split(starts, blocks)
        nxt_buf = np.ascontiguousarray(nxt).tobytes()
        live_buf = np.ascontiguousarray(live).tobytes()
        payloads = [
            (b, nxt_buf, live_buf, np.ascontiguousarray(part).tobytes(),
             limit)
            for b, part in enumerate(parts)
        ]
        try:
            with telemetry_span("engine.parallel_walk", blocks=blocks,
                                workers=workers, segments=int(starts.size)):
                pool = pools.get_pool(workers)
                futures = [pool.submit(_walk_block_task, pl)
                           for pl in payloads]
                results = [f.result() for f in futures]
        except POOL_ERRORS as exc:
            pools.drop_pool(workers)
            METRICS.counter("parallel.fallback").inc()
            telemetry_event(
                "parallel.fallback", stage="walk", workers=workers,
                error=f"{type(exc).__name__}: {exc}",
            )
            return engine.walk_segments(nxt, live, starts, limit)
        self.last_blocks = blocks
        chosen = np.zeros(live.size, dtype=bool)
        rounds = 0
        for _, idx_buf, block_rounds in results:
            chosen[np.frombuffer(idx_buf, dtype=np.int64)] = True
            rounds = max(rounds, block_rounds)
        return np.flatnonzero(chosen), rounds


def match1(lst, *, p: int = 1, **kwargs):
    """Match1 on the ``numpy-mp`` backend: the numpy engine with the
    cut-walk phase distributed per the process-default config."""
    return engine.match1(lst, p=p, _walker=ParallelWalker(), **kwargs)


def match4(lst, *, p: int = 1, **kwargs):
    """Match4 on the ``numpy-mp`` backend: the numpy engine with the
    cut-walk phase distributed per the process-default config."""
    return engine.match4(lst, p=p, _walker=ParallelWalker(), **kwargs)
