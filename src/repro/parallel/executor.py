"""Sharded batch execution across a process pool.

The batch driver's lists are independent by definition, so the batch
splits into contiguous *shards* — one per worker — each matched by the
serial numpy engine inside a worker process.  Everything a task ships
is pickle-cheap raw buffers:

- parent → worker: each list's ``NEXT`` array as ``int64`` bytes (the
  worker rebuilds ``LinkedList`` views without re-validating — the
  parent already did);
- worker → parent: per-list tail arrays as bytes, the shard's
  :class:`~repro.pram.cost.CostReport` (a frozen picklable dataclass),
  and — when the parent has telemetry enabled — the worker's captured
  span tree as plain dicts.

**Determinism.**  Shard boundaries are a pure function of the input
sizes and the worker count (:func:`shard_bounds`), results are
reassembled strictly by shard index, and each worker runs the same
bit-identical serial engine — so the returned matchings equal the
serial batch driver's for every input, regardless of the order in
which workers finish.  The aggregate report is the absorb (in shard
order) of the per-shard lockstep reports.

**Failure.**  Errors raised by the algorithm inside a worker
(:class:`~repro.errors.VerificationError` and friends) propagate to
the caller unchanged.  Pool *infrastructure* failures — a worker
process dying, fork refusal, pickling breakage — instead make
:func:`run_sharded_batch` drop the broken pool, emit a
``parallel.fallback`` telemetry event, and return ``None`` so the
caller reruns serially (the resilience posture: degraded, never
wrong).
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import BrokenExecutor
from typing import Any, Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..lists.linked_list import LinkedList
from ..core.matching import Matching
from ..pram.cost import CostModel, CostReport
from ..telemetry import resources as _resources
from ..telemetry.context import TraceContext, current_trace, using_trace
from ..telemetry.metrics import METRICS
from ..telemetry.spans import (
    Span,
    enabled as telemetry_enabled,
    event as telemetry_event,
    get_tracer,
    span as telemetry_span,
)
from . import pools

__all__ = ["shard_bounds", "run_sharded_batch"]

#: Pool-infrastructure failures that trigger the serial fallback.  An
#: algorithm error raised inside a worker is none of these and
#: propagates unchanged.
POOL_ERRORS = (BrokenExecutor, OSError, pickle.PicklingError)


def shard_bounds(sizes: Sequence[int], num_shards: int,
                 ) -> list[tuple[int, int]]:
    """Contiguous, node-balanced shard ranges over a list of sizes.

    Returns ``[(lo, hi), ...]`` half-open index ranges covering
    ``range(len(sizes))`` in order, at most ``num_shards`` of them,
    each non-empty.  Greedy by cumulative node weight (every list
    charges its node count plus one, so swarms of tiny lists still
    spread): a pure function of ``(sizes, num_shards)``, independent of
    anything runtime.
    """
    if num_shards < 1:
        raise InvalidParameterError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    m = len(sizes)
    k = min(num_shards, m)
    if k == 0:
        return []
    weights = [int(s) + 1 for s in sizes]
    remaining = sum(weights)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for s in range(k):
        shards_left = k - s
        if shards_left == 1:
            hi = m
        else:
            target = remaining / shards_left
            acc = 0
            hi = lo
            max_hi = m - (shards_left - 1)  # leave one list per later shard
            while hi < max_hi:
                acc += weights[hi]
                hi += 1
                if acc >= target:
                    break
            remaining -= acc
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _run_shard_task(payload: tuple) -> tuple:
    """Worker entry: match one shard's lists with the serial engine.

    Must stay a top-level importable function (it is pickled by
    reference).  Returns raw, picklable components only — never
    ``Matching`` objects, which drag the whole list along.
    """
    (shard, algorithm, backend, p, kwargs, raw_lists, want_spans,
     trace_id) = payload
    from ..backends.batch import batch_maximal_matching
    from ..telemetry import capture, disable

    lls = [
        LinkedList(np.frombuffer(buf, dtype=np.int64), validate=False)
        for buf in raw_lists
    ]
    t0 = time.perf_counter()
    if want_spans:
        # The parent's trace context rides in the payload: spans this
        # worker captures are tagged with the originating request's
        # trace id at creation time (their parentage is fixed on
        # replay, once the parent-side shard span exists).
        ctx = TraceContext(trace_id) if trace_id else None
        with using_trace(ctx), capture(reset_metrics=False) as sink:
            result = batch_maximal_matching(
                lls, algorithm=algorithm, backend=backend, p=p, **kwargs
            )
        span_dicts = [sp.to_dict() for sp in sink.spans]
    else:
        # Forked workers inherit whatever telemetry state the parent had
        # at pool creation; silence it so a cached pool never writes to
        # a sink the parent since reconfigured.
        disable()
        result = batch_maximal_matching(
            lls, algorithm=algorithm, backend=backend, p=p, **kwargs
        )
        span_dicts = []
    wall = time.perf_counter() - t0
    blobs = [np.ascontiguousarray(m.tails).tobytes() for m in result.matchings]
    return shard, blobs, result.report, span_dicts, wall


def _replay_spans(tracer, span_dicts: list[dict[str, Any]], shard: int,
                  parent_id: int, base_start: float,
                  trace_id: str | None = None) -> None:
    """Merge a worker's captured spans into the parent trace.

    Ids are remapped through :meth:`Tracer.next_id` so they never
    collide with locally started spans; the worker's root spans are
    re-parented under the ``shard.<i>`` span; start times are rebased
    so the shard's earliest span aligns with the shard span's start.
    Every replayed span gains a ``shard`` attribute, and keeps the
    trace id it was captured under (falling back to the parent-side
    ``trace_id`` for workers that predate trace propagation).
    """
    if not span_dicts:
        return
    t0 = min(d["start"] for d in span_dicts)
    idmap = {d["span_id"]: tracer.next_id() for d in span_dicts}
    for d in span_dicts:
        attrs = dict(d["attributes"])
        attrs["shard"] = shard
        sp = Span(
            d["name"],
            idmap[d["span_id"]],
            idmap.get(d["parent_id"], parent_id),
            base_start + (d["start"] - t0),
            attrs,
            tracer,
            d.get("trace_id") or trace_id,
        )
        sp.end = sp.start + d["duration_s"]
        sp.status = d["status"]
        tracer.emit_foreign(sp)


def run_sharded_batch(
    lls: Sequence[LinkedList],
    *,
    algorithm: str,
    p: int,
    kwargs: dict[str, Any],
    workers: int,
    backend: str = "numpy",
) -> tuple[tuple[Matching, ...], CostReport] | None:
    """Match a batch of lists across ``workers`` processes.

    ``kwargs`` must already be normalized (canonical names); ``backend``
    is what each worker runs *inside* its process (``numpy-mp`` callers
    pass ``numpy`` — a worker never nests pools).  Returns
    ``(matchings, report)`` with matchings in **input order** — shard
    results are reassembled by shard index, never by completion order —
    or ``None`` when the pool infrastructure failed and the caller
    should run serially.  Matchings are bit-identical to the serial
    batch driver's; the report is the shard-order absorb of the
    per-shard reports (for the reference backend this equals the serial
    report exactly, since both are the same in-order phase
    concatenation; the numpy arena fuses differently — see
    ``docs/parallel.md``).
    """
    bounds = shard_bounds([l.n for l in lls], workers)
    if len(bounds) < 2:
        return None
    want_spans = telemetry_enabled()
    ctx = current_trace() if want_spans else None
    trace_id = ctx.trace_id if ctx is not None else None
    payloads = [
        (
            shard,
            algorithm,
            backend,
            p,
            dict(kwargs),
            [lst.next.tobytes() for lst in lls[lo:hi]],
            want_spans,
            trace_id,
        )
        for shard, (lo, hi) in enumerate(bounds)
    ]
    try:
        pool = pools.get_pool(workers)
        futures = [pool.submit(_run_shard_task, pl) for pl in payloads]
        results = [f.result() for f in futures]
    except POOL_ERRORS as exc:
        pools.drop_pool(workers)
        METRICS.counter("parallel.fallback").inc()
        telemetry_event(
            "parallel.fallback", stage="batch", workers=workers,
            error=f"{type(exc).__name__}: {exc}",
        )
        return None

    by_shard = {res[0]: res for res in results}
    cost = CostModel(p)
    matchings: list[Matching] = []
    tracer = get_tracer()
    track_bytes = _resources.enabled()
    for shard, (lo, hi) in enumerate(bounds):
        _, blobs, report, span_dicts, wall = by_shard[shard]
        cost.absorb(report)
        out_b = in_b = replay_b = 0
        if track_bytes:
            # The exact serialized payload of this hop: the raw NEXT
            # buffers shipped out, the raw tail buffers shipped back,
            # and the pickled span dicts riding the result.
            out_b = sum(len(buf) for buf in payloads[shard][5])
            in_b = sum(len(blob) for blob in blobs)
            if span_dicts:
                replay_b = len(pickle.dumps(span_dicts))
            _resources.account_shard(
                bytes_out=out_b, bytes_in=in_b,
                span_replay_bytes=replay_b,
            )
        if want_spans and telemetry_enabled():
            nodes = int(sum(l.n for l in lls[lo:hi]))
            with telemetry_span(
                f"shard.{shard}", shard=shard, lo=lo, hi=hi,
                num_lists=hi - lo, nodes=nodes, worker_wall_s=wall,
            ) as sp:
                if track_bytes:
                    sp.set(bytes_out=out_b, bytes_in=in_b,
                           span_replay_b=replay_b)
                _replay_spans(tracer, span_dicts, shard, sp.span_id,
                              sp.start, trace_id)
        for j, blob in enumerate(blobs):
            tails = np.frombuffer(blob, dtype=np.int64)
            matchings.append(Matching(lls[lo + j], tails, pre_verified=True))
    return tuple(matchings), cost.report()
