"""Cached worker pools with health checks.

Spawning a :class:`~concurrent.futures.ProcessPoolExecutor` costs
fork + import per worker — far more than one small matching — so the
executor layer reuses pools across calls, one per worker count.  The
cache can go stale: a worker that died (OOM kill, ``os._exit`` in a
task, a SIGKILL'd child) permanently breaks its executor, and handing
that corpse back to a caller guarantees a :class:`BrokenExecutor` on
the next submit.  :func:`get_pool` therefore health-checks the cached
pool before returning it — passively (the executor's broken flag)
always, actively (a round-trip probe task) on request — and rebuilds a
broken pool once, emitting a ``parallel.pool_rebuilt`` telemetry event
and counter so operators can see churn.

A pool that breaks *mid-call* is still dropped by the caller via
:func:`drop_pool` so the next request builds a fresh one;
:func:`shutdown_pools` tears everything down and is registered at
interpreter exit.

The cache is keyed by **worker count only**, deliberately.  A pool's
contents are config-independent — workers are blank interpreters that
receive self-contained payloads, and per-call knobs like
``chunk_size`` are consumed by the *parent* when it slices work, never
by the pool.  So when the planner (or a ``using_config`` scope)
changes worker counts mid-process, each count maps to its own cached
pool and switching between them is safe; keying on the full config
would only multiply identical pools per ``chunk_size`` value.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor

from ..telemetry.metrics import METRICS
from ..telemetry.spans import event as telemetry_event

__all__ = ["get_pool", "drop_pool", "pool_is_healthy", "shutdown_pools"]

_POOLS: dict[int, ProcessPoolExecutor] = {}

#: Wall-clock budget for one active probe round-trip.  Generous: the
#: probe only pays this on a pool that is wedged, not merely busy.
PROBE_TIMEOUT_S = 10.0


def _probe_task() -> int:  # pragma: no cover - runs in the worker
    """Trivial round-trip payload for the active health probe."""
    return os.getpid()


def pool_is_healthy(
    pool: ProcessPoolExecutor, *, probe: bool = False,
) -> bool:
    """Whether ``pool`` can still accept and complete work.

    The passive check reads the executor's broken/shutdown flags —
    free, but only sees failures the executor has already noticed.
    With ``probe=True`` a trivial task is round-tripped through a
    worker, which additionally catches pools whose children died
    silently since the last submit.
    """
    if getattr(pool, "_broken", False):
        return False
    if getattr(pool, "_shutdown_thread", False):
        return False
    if probe:
        try:
            pool.submit(_probe_task).result(timeout=PROBE_TIMEOUT_S)
        except Exception:  # noqa: BLE001 - any failure means unhealthy
            return False
    return True


def get_pool(
    workers: int, *, probe: bool = False,
) -> ProcessPoolExecutor:
    """The shared pool with ``workers`` processes (created on demand).

    A cached pool that fails its health check is shut down and rebuilt
    once, with a ``parallel.pool_rebuilt`` event/counter recording the
    eviction; the returned executor is always freshly verified-or-new.
    """
    pool = _POOLS.get(workers)
    if pool is not None and not pool_is_healthy(pool, probe=probe):
        drop_pool(workers)
        pool = None
        METRICS.counter("parallel.pool_rebuilt").inc()
        telemetry_event("parallel.pool_rebuilt", workers=workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def drop_pool(workers: int) -> None:
    """Forget (and shut down) the cached pool for ``workers``, if any."""
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def shutdown_pools() -> None:
    """Shut down every cached pool (idempotent; runs at exit)."""
    for workers in list(_POOLS):
        drop_pool(workers)


atexit.register(shutdown_pools)
