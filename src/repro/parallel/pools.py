"""Cached worker pools.

Spawning a :class:`~concurrent.futures.ProcessPoolExecutor` costs
fork + import per worker — far more than one small matching — so the
executor layer reuses pools across calls, one per worker count.  A
pool that breaks (a worker died, the OS refused a fork) is dropped
from the cache by :func:`drop_pool` so the next request builds a fresh
one; :func:`shutdown_pools` tears everything down and is registered at
interpreter exit.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor

__all__ = ["get_pool", "drop_pool", "shutdown_pools"]

_POOLS: dict[int, ProcessPoolExecutor] = {}


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool with ``workers`` processes (created on demand)."""
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def drop_pool(workers: int) -> None:
    """Forget (and shut down) the cached pool for ``workers``, if any."""
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def shutdown_pools() -> None:
    """Shut down every cached pool (idempotent; runs at exit)."""
    for workers in list(_POOLS):
        drop_pool(workers)


atexit.register(shutdown_pools)
