"""Brent's theorem, executable: run an ``m``-processor program on ``p``.

Brent's simulation states that any synchronous parallel step of width
``m`` runs on ``p <= m`` processors in ``ceil(m/p)`` time.  The subtle
part — routinely hand-waved — is *synchrony*: all of the logical
step's reads must observe pre-step memory, even though one physical
processor now performs several logical processors' operations in
sequence.  This module gets that right by splitting every logical step
into a **read phase** and a **write phase**: each physical processor
spends ``chunk = ceil(m/p)`` machine steps servicing its logical
processors' reads (buffering the results), then ``chunk`` steps
issuing their writes.  Globally, every read of logical step ``k``
happens strictly before every write of logical step ``k``, so the
simulated execution is step-for-step equivalent to the ``m``-processor
run — which the tests verify by comparing final memories exactly.

Caveat (inherent to Brent simulation, stated rather than hidden): the
machine's EREW/CREW conflict detection sees the *physical* schedule,
where a logical step's accesses are spread over ``2·chunk`` machine
steps — so logical-step conflicts go undetected when ``p < m``.
Certify a program's memory discipline at ``p = m`` (where the phases
are width-1 and the checker sees everything); use virtualization for
the time scaling.
"""

from __future__ import annotations

from typing import Generator, Sequence

import numpy as np

from .._util import ceil_div, require
from ..errors import ProgramError
from .machine import PRAM, MachineReport, ProgramFactory
from .program import Halt, LocalBarrier, Read, Write

__all__ = ["virtualize", "run_virtualized"]


def virtualize(
    factories: Sequence[ProgramFactory],
    p: int,
) -> list[ProgramFactory]:
    """Wrap ``m`` logical program factories into ``p`` physical ones.

    Logical processor ``j`` is served by physical processor
    ``j // chunk``; logical pids and counts are forwarded unchanged, so
    the wrapped programs cannot tell they are being simulated.
    """
    m = len(factories)
    require(m >= 1, "need at least one logical processor")
    require(1 <= p <= m, f"need 1 <= p <= m, got p={p}, m={m}")
    chunk = ceil_div(m, p)

    def make_physical(phys: int) -> ProgramFactory:
        owned = list(range(phys * chunk, min(m, (phys + 1) * chunk)))

        def physical(_pid: int, _nprocs: int) -> Generator:
            gens: dict[int, Generator] = {
                j: factories[j](j, m) for j in owned
            }
            pending: dict[int, object] = {}
            # prime every logical processor to its first instruction
            for j in list(gens):
                try:
                    pending[j] = next(gens[j])
                except StopIteration:
                    del gens[j]
            while gens:
                inbox: dict[int, int] = {}
                # ---- read phase: chunk slots ----
                for slot in range(chunk):
                    j = owned[slot] if slot < len(owned) else None
                    instr = pending.get(j) if j in gens else None
                    if isinstance(instr, Read):
                        inbox[j] = yield instr
                    else:
                        yield LocalBarrier()
                # ---- write phase: chunk slots ----
                for slot in range(chunk):
                    j = owned[slot] if slot < len(owned) else None
                    instr = pending.get(j) if j in gens else None
                    if isinstance(instr, Write):
                        yield instr
                    else:
                        yield LocalBarrier()
                # ---- advance every live logical processor ----
                for j in list(gens):
                    instr = pending.get(j)
                    if isinstance(instr, Halt):
                        gens[j].close()
                        del gens[j]
                        pending.pop(j, None)
                        continue
                    if not isinstance(instr, (Read, Write, LocalBarrier)):
                        raise ProgramError(
                            f"logical processor {j} yielded {instr!r}"
                        )
                    try:
                        if isinstance(instr, Read):
                            pending[j] = gens[j].send(inbox[j])
                        else:
                            pending[j] = next(gens[j])
                    except StopIteration:
                        del gens[j]
                        pending.pop(j, None)

        return physical

    return [make_physical(phys) for phys in range(p)]


def run_virtualized(
    factories: Sequence[ProgramFactory],
    *,
    p: int,
    memory_size: int,
    mode: str = "CREW",
    initial_memory: np.ndarray | Sequence[int] | None = None,
    max_steps: int = 10_000_000,
) -> MachineReport:
    """Run ``m`` logical programs on ``p`` physical processors.

    Convenience wrapper building the machine; see :func:`virtualize`
    for semantics and the conflict-detection caveat (hence the default
    ``mode="CREW"`` here).
    """
    machine = PRAM(memory_size, mode=mode, initial_memory=initial_memory)
    return machine.run(virtualize(factories, p), max_steps=max_steps)
