"""Deterministic fault injection for the instruction-level simulator.

A :class:`FaultPlan` is a seeded, fully deterministic schedule of
faults to inject into a :meth:`repro.pram.machine.PRAM.run`: the same
plan against the same programs produces a bit-identical
:class:`repro.pram.machine.MachineReport` every time, which is what
makes fault-injection experiments reproducible and recovery testable.

Three fault species cover the classic transient-failure taxonomy:

- :class:`ProcessorCrash` — crash-stop: the processor dies at the
  *start* of step ``step``; its pending instruction for that step is
  never executed and it yields nothing further.
- :class:`BitFlip` — a single-event upset: one bit of one shared cell
  is XOR-flipped at the *end* of step ``step`` (after the step's
  writes commit), so the corruption is visible from step ``step + 1``.
- :class:`DroppedWrite` — a lost store: the write issued by processor
  ``pid`` at step ``step`` silently vanishes in the memory system (it
  is neither conflict-checked nor committed); the processor proceeds
  believing it succeeded.

Every injected fault is recorded as a :class:`FaultEvent` in
``MachineReport.faults`` — observability is the contract the recovery
layers (:mod:`repro.pram.checkpoint`, :mod:`repro.resilience`) build
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

import numpy as np

from .._util import require

__all__ = [
    "ProcessorCrash",
    "BitFlip",
    "DroppedWrite",
    "Fault",
    "FaultEvent",
    "FaultPlan",
]


@dataclass(frozen=True)
class ProcessorCrash:
    """Crash-stop of processor ``pid`` at the start of step ``step``."""

    step: int
    pid: int


@dataclass(frozen=True)
class BitFlip:
    """XOR-flip of ``bit`` of cell ``addr`` at the end of step ``step``."""

    step: int
    addr: int
    bit: int


@dataclass(frozen=True)
class DroppedWrite:
    """The write issued by ``pid`` at step ``step`` is silently lost."""

    step: int
    pid: int


Fault = Union[ProcessorCrash, BitFlip, DroppedWrite]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in ``MachineReport.faults``.

    Attributes
    ----------
    step:
        The synchronous step at which the fault fired.
    kind:
        ``"crash"``, ``"bit_flip"``, or ``"dropped_write"``.
    fault:
        The plan entry that fired.
    effective:
        Whether the fault changed anything (a crash of an
        already-finished processor or a dropped write on a step where
        the processor was not writing is recorded but ineffective).
    detail:
        Human-readable description (old/new cell values for flips,
        the lost ``(addr, value)`` for dropped writes).
    """

    step: int
    kind: str
    fault: Fault
    effective: bool
    detail: str = ""


def _kind_of(fault: Fault) -> str:
    if isinstance(fault, ProcessorCrash):
        return "crash"
    if isinstance(fault, BitFlip):
        return "bit_flip"
    if isinstance(fault, DroppedWrite):
        return "dropped_write"
    raise TypeError(f"not a fault: {fault!r}")


class FaultPlan:
    """An immutable, deterministic schedule of faults.

    Parameters
    ----------
    faults:
        The fault instances to inject.  Steps are 1-based (matching
        ``MachineReport.steps``); faults scheduled past the end of the
        run simply never fire.

    Examples
    --------
    >>> plan = FaultPlan([ProcessorCrash(step=12, pid=3),
    ...                   BitFlip(step=20, addr=5, bit=7)])
    >>> len(plan)
    2
    >>> [f.step for f in plan.faults_at(12)]
    [12]
    """

    __slots__ = ("_faults",)

    def __init__(self, faults: Iterable[Fault]) -> None:
        entries = tuple(faults)
        for f in entries:
            kind = _kind_of(f)  # raises TypeError on junk
            require(f.step >= 1, f"fault steps are 1-based, got {f.step}")
            if kind == "bit_flip":
                require(0 <= f.bit < 64,
                        f"bit must be in [0, 64), got {f.bit}")
                require(f.addr >= 0, f"addr must be >= 0, got {f.addr}")
            else:
                require(f.pid >= 0, f"pid must be >= 0, got {f.pid}")
        self._faults = tuple(sorted(
            entries, key=lambda f: (f.step, _kind_of(f), repr(f))
        ))

    @property
    def faults(self) -> tuple[Fault, ...]:
        return self._faults

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self._faults)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._faults == other._faults

    def __hash__(self) -> int:
        return hash(self._faults)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self._faults)!r})"

    @property
    def max_step(self) -> int:
        """Largest scheduled step (0 for an empty plan)."""
        return max((f.step for f in self._faults), default=0)

    def faults_at(self, step: int) -> tuple[Fault, ...]:
        """The faults scheduled for synchronous step ``step``."""
        return tuple(f for f in self._faults if f.step == step)

    def without(self, fired: Iterable[Fault]) -> "FaultPlan":
        """A new plan with the given (already handled) faults removed."""
        gone = set(fired)
        return FaultPlan(f for f in self._faults if f not in gone)

    def validate_for(self, nprocs: int, memory_size: int) -> None:
        """Check every fault targets an existing processor / cell."""
        for f in self._faults:
            if isinstance(f, BitFlip):
                require(
                    f.addr < memory_size,
                    f"BitFlip addr {f.addr} out of bounds for memory of "
                    f"size {memory_size}",
                )
            else:
                require(
                    f.pid < nprocs,
                    f"{_kind_of(f)} pid {f.pid} out of range for "
                    f"{nprocs} processors",
                )

    @classmethod
    def random(
        cls,
        *,
        seed: int,
        nprocs: int,
        memory_size: int,
        max_step: int,
        crashes: int = 1,
        flips: int = 1,
        drops: int = 0,
    ) -> "FaultPlan":
        """A seeded random plan — deterministic for a fixed seed.

        Parameters
        ----------
        seed:
            Seed for :func:`numpy.random.default_rng`.
        nprocs, memory_size:
            Targets are drawn uniformly below these bounds.
        max_step:
            Steps are drawn uniformly from ``[1, max_step]``.
        crashes, flips, drops:
            How many faults of each species to draw.
        """
        require(max_step >= 1, f"max_step must be >= 1, got {max_step}")
        require(nprocs >= 1, f"nprocs must be >= 1, got {nprocs}")
        require(memory_size >= 1,
                f"memory_size must be >= 1, got {memory_size}")
        rng = np.random.default_rng(seed)
        faults: list[Fault] = []
        for _ in range(crashes):
            faults.append(ProcessorCrash(
                step=int(rng.integers(1, max_step + 1)),
                pid=int(rng.integers(0, nprocs)),
            ))
        for _ in range(flips):
            faults.append(BitFlip(
                step=int(rng.integers(1, max_step + 1)),
                addr=int(rng.integers(0, memory_size)),
                bit=int(rng.integers(0, 64)),
            ))
        for _ in range(drops):
            faults.append(DroppedWrite(
                step=int(rng.integers(1, max_step + 1)),
                pid=int(rng.integers(0, nprocs)),
            ))
        return cls(faults)
