"""Checkpointing and deterministic restart for instruction-level runs.

A crashed or corrupted PRAM run should not mean starting over.  This
module snapshots a :class:`repro.pram.machine.LockstepExecution` at a
fixed step cadence and can *resume* from any snapshot:

- A :class:`Checkpoint` stores the step number, a copy of shared
  memory, each processor's *delivery log* (the sequence of values the
  machine sent into its generator), and which processors had finished.
- Resuming replays each delivery log against a fresh generator.  Local
  computation between yields is deterministic, so the replay
  reconstructs every processor's private registers and pending
  instruction exactly as they were — without touching shared memory —
  and execution then continues from the snapshot's memory image.

:func:`run_with_recovery` builds the full recovery loop on top: run
with a :class:`repro.pram.faults.FaultPlan`, and the moment a fault
fires, roll back to the last checkpoint taken *before* it, suppress
that fault (it was transient), and resume.  Each restart consumes at
least one fault, so the loop terminates after at most ``len(plan)``
restarts with a final state **bit-identical to the fault-free run** —
deterministic replay is what makes that guarantee checkable, and the
tests check it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require
from ..errors import DeadlockError, PRAMError
from ..telemetry.metrics import METRICS
from ..telemetry.spans import enabled as telemetry_enabled, event as telemetry_event
from .faults import FaultEvent, FaultPlan
from .machine import LockstepExecution, MachineReport, ProgramFactory
from .memory import AccessMode, SharedMemory

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "RecoveryOutcome",
    "run_with_recovery",
]


@dataclass(frozen=True)
class Checkpoint:
    """One resumable snapshot of a lockstep execution.

    Attributes
    ----------
    step:
        The synchronous step count at snapshot time.
    memory:
        Copy of the shared-memory contents.
    deliveries:
        Per-processor tuple of the values delivered into its generator
        so far (``None`` entries are plain ``next`` advances).
    done:
        Per-processor finished flags.
    """

    step: int
    memory: np.ndarray
    deliveries: tuple[tuple[int | None, ...], ...]
    done: tuple[bool, ...]

    @classmethod
    def capture(cls, execution: LockstepExecution) -> "Checkpoint":
        """Snapshot a running execution (which must record deliveries)."""
        require(
            execution.deliveries is not None,
            "checkpointing needs record_deliveries=True on the execution",
        )
        return cls(
            step=execution.steps,
            memory=execution.memory.snapshot(),
            deliveries=tuple(tuple(log) for log in execution.deliveries),
            done=tuple(execution.done),
        )


class CheckpointStore:
    """A bounded in-order collection of checkpoints.

    Parameters
    ----------
    interval:
        Snapshot cadence in synchronous steps.
    keep:
        How many snapshots to retain (older ones are discarded; the
        recovery loop only ever resumes from the latest clean one).
    """

    def __init__(self, interval: int = 64, *, keep: int = 4) -> None:
        require(interval >= 1, f"interval must be >= 1, got {interval}")
        require(keep >= 1, f"keep must be >= 1, got {keep}")
        self.interval = interval
        self.keep = keep
        self.checkpoints: list[Checkpoint] = []
        self.taken = 0

    def maybe_capture(self, execution: LockstepExecution) -> bool:
        """Snapshot if the execution just completed a full interval."""
        if execution.steps % self.interval != 0:
            return False
        self.checkpoints.append(Checkpoint.capture(execution))
        self.taken += 1
        if len(self.checkpoints) > self.keep:
            del self.checkpoints[0]
        return True

    @property
    def latest(self) -> Checkpoint | None:
        return self.checkpoints[-1] if self.checkpoints else None


def resume_from_checkpoint(
    checkpoint: Checkpoint,
    programs: list[ProgramFactory] | tuple[ProgramFactory, ...],
    *,
    mode: AccessMode | str,
    fault_plan: FaultPlan | None = None,
    trace: bool = False,
    record_deliveries: bool = True,
) -> LockstepExecution:
    """Rebuild a live execution from a checkpoint (see module docs)."""
    memory = SharedMemory(checkpoint.memory.size, mode, checkpoint.memory)
    return LockstepExecution.resume(
        memory,
        programs,
        steps=checkpoint.step,
        deliveries=checkpoint.deliveries,
        done=checkpoint.done,
        fault_plan=fault_plan,
        trace=trace,
        record_deliveries=record_deliveries,
    )


@dataclass(frozen=True)
class RecoveryOutcome:
    """Result of :func:`run_with_recovery`.

    Attributes
    ----------
    report:
        The final (clean) run's :class:`MachineReport`, with the
        ``faults`` field holding *every* event fired across all
        attempts.
    events:
        All fired fault events, in firing order.
    restarts:
        Number of rollback-and-resume cycles performed.
    resumed_from:
        The checkpoint step each restart resumed from (0 means a full
        restart from the initial state).
    """

    report: MachineReport
    events: tuple[FaultEvent, ...]
    restarts: int
    resumed_from: tuple[int, ...]

    @property
    def recovered(self) -> bool:
        """True iff at least one fault fired and was recovered from."""
        return len(self.events) > 0


def run_with_recovery(
    programs: list[ProgramFactory] | tuple[ProgramFactory, ...],
    *,
    memory_size: int,
    mode: AccessMode | str = AccessMode.CREW,
    initial_memory: np.ndarray | list | None = None,
    fault_plan: FaultPlan | None = None,
    interval: int = 64,
    max_steps: int = 1_000_000,
    max_restarts: int | None = None,
    budget_note: str | None = None,
) -> RecoveryOutcome:
    """Run to completion despite injected faults, via checkpoint-restart.

    The execution checkpoints shared memory and the delivery logs every
    ``interval`` steps.  The moment a fault fires (or a
    :class:`PRAMError` surfaces after one fired), the attempt is
    abandoned: the run rolls back to the latest checkpoint predating
    the damage, removes the fired fault(s) from the plan (transient
    faults do not repeat), and resumes.  Because the simulator is
    deterministic, the recovered final memory is bit-identical to a
    fault-free run's — the strongest possible recovery guarantee, and
    the one the selfcheck asserts.

    A :class:`PRAMError` raised when *no* fault has fired is a genuine
    program bug and is re-raised unchanged.

    Returns a :class:`RecoveryOutcome`.
    """
    if max_restarts is None:
        max_restarts = (len(fault_plan) if fault_plan is not None else 0) + 2
    plan = fault_plan
    resume_ckpt: Checkpoint | None = None
    all_events: list[FaultEvent] = []
    resumed_from: list[int] = []
    restarts = 0
    while True:
        if resume_ckpt is None:
            memory = SharedMemory(memory_size, mode, initial_memory)
            execution = LockstepExecution(
                memory, programs, fault_plan=plan, record_deliveries=True,
            )
        else:
            execution = resume_from_checkpoint(
                resume_ckpt, programs, mode=mode, fault_plan=plan,
            )
        store = CheckpointStore(interval)
        error: PRAMError | None = None
        try:
            while not execution.finished and not execution.fault_events:
                if execution.steps >= max_steps:
                    note = f" [budget: {budget_note}]" if budget_note else ""
                    raise DeadlockError(
                        f"run exceeded max_steps={max_steps} with "
                        f"{execution.live} processors still live{note}"
                    )
                execution.step()
                if not execution.fault_events:
                    store.maybe_capture(execution)
        except PRAMError as exc:
            if not execution.fault_events:
                raise
            error = exc
        if execution.finished and not execution.fault_events:
            report = execution.build_report()
            report = MachineReport(
                steps=report.steps,
                nprocs=report.nprocs,
                memory=report.memory,
                peak_step_footprint=report.peak_step_footprint,
                trace=report.trace,
                faults=tuple(all_events),
            )
            if telemetry_enabled():
                METRICS.counter("pram.rollbacks").inc(restarts)
                METRICS.counter("pram.faults.recovered").inc(len(all_events))
                telemetry_event(
                    "pram.recovery", steps=report.steps,
                    restarts=restarts, faults=len(all_events),
                )
            return RecoveryOutcome(
                report=report,
                events=tuple(all_events),
                restarts=restarts,
                resumed_from=tuple(resumed_from),
            )
        # A fault fired (and possibly broke the run): roll back.
        _ = error
        fired = list(execution.fault_events)
        all_events.extend(fired)
        if restarts >= max_restarts:
            raise PRAMError(
                f"recovery gave up after {restarts} restarts with "
                f"{len(all_events)} faults fired"
            )
        assert plan is not None  # events can only come from a plan
        plan = plan.without(e.fault for e in fired)
        # Checkpoints captured this attempt predate the fault (capture
        # stops at the first event), so the latest one is clean; fall
        # back to the previous resume point, then to a full restart.
        if store.latest is not None:
            resume_ckpt = store.latest
        resumed_from.append(resume_ckpt.step if resume_ckpt else 0)
        restarts += 1
