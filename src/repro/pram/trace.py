"""Space-time renderings of traced PRAM runs.

A run launched with ``trace=True`` records every step's memory traffic;
this module turns that record into ASCII diagrams:

- :func:`processor_activity` — processors × steps: which processors
  issued a read (``r``), a write (``w``), or idled (``.``) at each
  step.  On a WalkDown2 run the pipelined diagonal fill/drain of
  Lemma 7 is directly visible.
- :func:`memory_heat` — cells × steps access counts, collapsed into a
  per-cell total ("which cells are hot").
- :func:`utilization` — the fraction of processor-steps doing memory
  work, the simplest one-number summary of a schedule's quality.

All three renderers take the same ``step_range``/``max_steps`` window,
so a profiler can ask each of them about the *same* slice of a run
(``repro.telemetry.profiling`` relies on this).
"""

from __future__ import annotations

from .._util import require
from .machine import MachineReport, StepTrace

__all__ = ["processor_activity", "memory_heat", "utilization",
           "select_steps"]


def _require_trace(report: MachineReport) -> None:
    if report.trace is None:
        raise ValueError(
            "this report has no trace; launch the run with trace=True"
        )


def select_steps(
    report: MachineReport,
    *,
    step_range: tuple[int, int] | None = None,
    max_steps: int | None = None,
) -> list[StepTrace]:
    """The traced steps inside the requested window.

    ``step_range`` is inclusive 1-based ``(lo, hi)`` (default: the
    whole run); ``max_steps`` additionally clips the window to its
    first ``max_steps`` steps.  Every renderer in this module — and
    the profiler's occupancy grid — windows through this one helper,
    so their notions of "the same slice" agree.
    """
    _require_trace(report)
    assert report.trace is not None
    lo, hi = step_range if step_range else (1, max(report.steps, 1))
    require(1 <= lo <= hi, "invalid step range")
    if max_steps is not None:
        require(max_steps >= 1, "max_steps must be >= 1")
        hi = min(hi, lo + max_steps - 1)
    return [t for t in report.trace if lo <= t.step <= hi]


def processor_activity(
    report: MachineReport,
    *,
    max_procs: int = 64,
    max_steps: int = 200,
    step_range: tuple[int, int] | None = None,
) -> str:
    """Render the processors × steps activity grid.

    One row per processor, one column per step: ``r`` read, ``w``
    write, ``.`` idle.  Clipped to ``max_procs`` rows and ``max_steps``
    columns (or the explicit ``step_range``).
    """
    steps = select_steps(report, step_range=step_range, max_steps=max_steps)
    lo = step_range[0] if step_range else 1
    nproc = min(report.nprocs, max_procs)
    rows = []
    header = f"processor activity, steps {lo}..{steps[-1].step if steps else lo}"
    rows.append(header)
    for pid in range(nproc):
        cells = []
        for t in steps:
            if pid in t.writes:
                cells.append("w")
            elif pid in t.reads:
                cells.append("r")
            else:
                cells.append(".")
        rows.append(f"P{pid:<4d}|" + "".join(cells))
    if report.nprocs > nproc:
        rows.append(f"... ({report.nprocs - nproc} more processors)")
    return "\n".join(rows)


def memory_heat(
    report: MachineReport,
    *,
    buckets: int = 64,
    step_range: tuple[int, int] | None = None,
    max_steps: int | None = None,
) -> str:
    """Per-cell access totals folded into ``buckets`` address buckets,
    rendered as a bar chart.

    The optional ``step_range``/``max_steps`` window restricts the
    count to those steps (same semantics as
    :func:`processor_activity`); the default covers the whole run.
    """
    steps = select_steps(report, step_range=step_range, max_steps=max_steps)
    size = report.memory.size
    require(buckets >= 1, "need at least one bucket")
    buckets = min(buckets, size)
    counts = [0] * buckets
    for t in steps:
        for addr in t.reads.values():
            counts[addr * buckets // size] += 1
        for addr, _ in t.writes.values():
            counts[addr * buckets // size] += 1
    peak = max(counts) if counts else 0
    lines = [f"memory heat ({size} cells in {buckets} buckets, peak {peak})"]
    width = 40
    for b, c in enumerate(counts):
        bar = "#" * (0 if peak == 0 else round(c / peak * width))
        lo = b * size // buckets
        hi = (b + 1) * size // buckets - 1
        lines.append(f"[{lo:>6}..{hi:>6}] {bar} {c}")
    return "\n".join(lines)


def utilization(
    report: MachineReport,
    *,
    step_range: tuple[int, int] | None = None,
    max_steps: int | None = None,
) -> float:
    """Fraction of processor-steps that touched memory.

    1.0 would mean every processor did useful memory work every step;
    idle padding (lockstep alignment, pipeline ramps) lowers it.  With
    a ``step_range``/``max_steps`` window the fraction is computed over
    the windowed steps only (same semantics as
    :func:`processor_activity`).
    """
    steps = select_steps(report, step_range=step_range, max_steps=max_steps)
    total = len(steps) * report.nprocs
    if total == 0:
        return 0.0
    busy = sum(len(t.reads) + len(t.writes) for t in steps)
    return busy / total
