"""Brent-scheduled cost accounting for the vectorized algorithm tier.

Every algorithm in :mod:`repro.core` executes its data movement with
NumPy but *narrates* its parallel structure to a :class:`CostModel`:
each call to :meth:`CostModel.parallel` declares one synchronous PRAM
step of a given width (how many processors the paper's pseudocode would
activate), and the model charges ``ceil(width / p)`` time units — the
standard Brent simulation of a width-``m`` step on ``p`` physical
processors — plus ``width`` units of work.

The resulting :class:`CostReport` is the quantity all benchmark tables
plot: it is exact (not asymptotic) for the concrete schedules our
implementations use, so the paper's curves ``O(n log i / p +
log^(i) n + log i)`` appear with their constants.

Phases let a report attribute time to algorithm stages ("sort",
"walkdown2", ...) so E4 can show Match2's sort dominating and E6 can
show Match4 removing it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from .._util import ceil_div, require
from ..telemetry import resources as _resources
from ..telemetry.spans import span as _telemetry_span

__all__ = ["CostModel", "CostReport", "PhaseCost"]


@dataclass
class PhaseCost:
    """Accumulated cost of one named algorithm phase."""

    name: str
    time: int = 0
    work: int = 0
    steps: int = 0

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.name}: time={self.time} work={self.work} steps={self.steps}"


@dataclass(frozen=True)
class CostReport:
    """Immutable summary of a timed run.

    Attributes
    ----------
    p:
        Processor count the schedule was charged against.
    time:
        Total synchronous PRAM steps (Brent-scheduled).
    work:
        Total operations across all processors (time×width summed);
        ``work / n`` near 1 certifies an optimal algorithm.
    phases:
        Per-phase breakdown, in execution order.
    """

    p: int
    time: int
    work: int
    phases: tuple[PhaseCost, ...] = ()

    @property
    def cost(self) -> int:
        """The time-processor product ``time * p`` — the quantity the
        paper's optimality definition compares against ``T_1``."""
        return self.time * self.p

    def phase(self, name: str) -> PhaseCost:
        """Look up a phase by name (raises ``KeyError`` if absent)."""
        for ph in self.phases:
            if ph.name == name:
                return ph
        raise KeyError(name)

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        lines = [f"CostReport(p={self.p}, time={self.time}, work={self.work})"]
        lines += [f"  {ph}" for ph in self.phases]
        return "\n".join(lines)


class CostModel:
    """Accumulates Brent-scheduled time/work for one algorithm run.

    Parameters
    ----------
    p:
        Number of physical processors to charge against (>= 1).

    Examples
    --------
    >>> cm = CostModel(p=4)
    >>> with cm.phase("scan"):
    ...     cm.parallel(10)          # one step, width 10 -> ceil(10/4) = 3
    >>> cm.report().time
    3
    """

    def __init__(self, p: int) -> None:
        require(p >= 1, f"processor count must be >= 1, got {p}")
        self.p = int(p)
        self._time = 0
        self._work = 0
        self._phases: list[PhaseCost] = []
        self._stack: list[PhaseCost] = []

    # -- charging ----------------------------------------------------------

    def parallel(self, width: int, depth: int = 1) -> None:
        """Charge ``depth`` synchronous steps each of ``width`` processors.

        Brent time: ``depth * ceil(width / p)``; work ``depth * width``.
        A zero-width step is free (algorithms may legitimately activate
        an empty set, e.g. an empty matching class in Match2 step 3).
        """
        require(width >= 0, f"width must be >= 0, got {width}")
        require(depth >= 0, f"depth must be >= 0, got {depth}")
        if width == 0 or depth == 0:
            return
        t = depth * ceil_div(width, self.p)
        w = depth * width
        self._charge(t, w, depth)

    def sequential(self, steps: int) -> None:
        """Charge an inherently serial segment: ``steps`` time, ``steps`` work.

        Used for the additive terms in the paper's bounds (``log n``
        rounds of a tree, ``G(n)`` iterations of a loop whose body is a
        full-width parallel step are charged via ``parallel``; this is
        for single-processor work on the critical path).
        """
        require(steps >= 0, f"steps must be >= 0, got {steps}")
        if steps:
            self._charge(steps, steps, steps)

    def per_processor(self, local_steps: int) -> None:
        """Charge every processor doing ``local_steps`` private steps.

        Time ``local_steps``; work ``local_steps * p``.  This is how
        Match4's per-column sequential sorts are charged: each of the
        ``y`` column-processors spends ``O(x)`` local time
        simultaneously.
        """
        require(local_steps >= 0, f"local_steps must be >= 0, got {local_steps}")
        if local_steps:
            self._charge(local_steps, local_steps * self.p, local_steps)

    def _charge(self, time: int, work: int, steps: int) -> None:
        self._time += time
        self._work += work
        if self._stack:
            ph = self._stack[-1]
            ph.time += time
            ph.work += work
            ph.steps += steps

    # -- structure ----------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseCost]:
        """Group subsequent charges under ``name`` (non-reentrant nesting:
        charges inside a nested phase count toward the *innermost* phase
        only, and toward the run total exactly once).

        When telemetry is enabled, each phase is also a ``phase.<name>``
        span carrying the accumulated time/work/steps — this is the one
        place the whole algorithm tier (reference and numpy backends
        alike) reports its phase structure and per-phase wall-clock.
        When resource accounting is enabled
        (:mod:`repro.telemetry.resources`), the same hook also records
        the phase's wall-clock and tracemalloc net/peak allocation
        (attached to the span as ``alloc_net_b`` / ``alloc_peak_b``);
        disabled, both layers cost one flag check each.
        """
        ph = PhaseCost(name)
        self._phases.append(ph)
        self._stack.append(ph)
        with _telemetry_span("phase." + name) as sp:
            rt = _resources.phase_begin(name)
            try:
                yield ph
            finally:
                self._stack.pop()
                sp.set(time=ph.time, work=ph.work, steps=ph.steps)
                if rt is not None:
                    _resources.phase_end(rt, ph, sp)

    def absorb(self, report: CostReport) -> None:
        """Fold a finished sub-run's report into this model.

        Adds the report's time and work to the totals (and to the
        current phase, if any) and appends its phases to this model's
        phase list — used when one algorithm invokes another as a
        subroutine (e.g. contraction ranking calling Match4 per level).
        The sub-run must have been charged against the same ``p``.
        """
        require(report.p == self.p,
                f"cannot absorb a report charged at p={report.p} into a "
                f"model at p={self.p}")
        self._charge(report.time, report.work, 0)
        self._phases.extend(report.phases)

    # -- results -------------------------------------------------------------

    @property
    def time(self) -> int:
        """Time accumulated so far."""
        return self._time

    @property
    def work(self) -> int:
        """Work accumulated so far."""
        return self._work

    def report(self) -> CostReport:
        """Freeze the accumulated costs into a :class:`CostReport`."""
        return CostReport(
            p=self.p,
            time=self._time,
            work=self._work,
            phases=tuple(self._phases),
        )
