"""Instruction vocabulary for instruction-level PRAM programs.

A PRAM *program* is a Python generator function with signature
``program(pid: int, nprocs: int) -> Generator``.  Each ``yield`` hands
the machine exactly one instruction and consumes exactly one
synchronous machine step; ``yield Read(addr)`` additionally evaluates
to the value read.  Local computation between yields is free, matching
the standard PRAM convention that a step is "read, compute, write".

Instructions:

- :class:`Read`  — read one shared cell; the yield expression returns
  its value (the value *before* any write of the same step).
- :class:`Write` — write one shared cell; visible from the next step.
- :class:`LocalBarrier` — spend a step doing nothing (used to keep
  lockstep phases aligned, e.g. WalkDown2's idle "increment count"
  steps).
- :class:`Halt` — stop this processor early (returning from the
  generator is equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Read", "Write", "LocalBarrier", "Halt", "Instruction"]


@dataclass(frozen=True)
class Read:
    """Read shared cell ``addr``; the ``yield`` evaluates to the value."""

    addr: int


@dataclass(frozen=True)
class Write:
    """Write ``value`` to shared cell ``addr`` at the end of this step."""

    addr: int
    value: int


@dataclass(frozen=True)
class LocalBarrier:
    """Consume one step without touching shared memory."""


@dataclass(frozen=True)
class Halt:
    """Terminate this processor immediately."""


Instruction = Read | Write | LocalBarrier | Halt
