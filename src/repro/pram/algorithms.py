"""The paper's algorithms as instruction-level PRAM programs.

The vectorized implementations in :mod:`repro.core` charge a cost model
but execute as NumPy kernels.  This module re-implements the paper's
pipeline as *literal lockstep programs* for the conflict-checked
machine — each processor a generator, one shared-memory operation per
synchronous step — so the memory-model claims become machine-checked
facts rather than prose:

- :func:`run_iterate_f` — steps 1–2 of Match1 on ``p <= n``
  processors, EREW-clean (label reads are exclusive because ``NEXT`` is
  injective; rounds are double-buffered when ``p < n`` so a Brent-
  simulated round still reads only pre-round labels).
- :func:`run_match1` — the complete Match1 (iterate, cut at local
  minima, walk sublists) on ``n`` processors, EREW-clean.
- :func:`run_match3` — the complete Match3; its table-lookup step
  makes the appendix's copy discussion executable (EREW needs
  per-processor copies of ``T``; one shared copy forces CREW — both
  machine-checked).
- :func:`run_match2` — the complete Match2, with its integer sort
  realized as per-value EREW prefix-sum passes plus an EREW broadcast
  tree for each pass total — the ``log n``-additive sort cost as
  actual machine steps.
- :func:`run_match4` — the complete Match4 on ``y`` column processors:
  per-column local sorts, the WalkDown1 row sweep, the WalkDown2
  count/index automaton, cut and walk.  Perhaps surprisingly, the whole
  program is EREW-clean: the apparent hazard — two pointers processed
  in one step consulting a shared neighbor (``<a,b>`` and
  ``<a', pred(a)>`` both care about pointer ``<pred(a), a>``) — never
  collides at the memory, because "read my predecessor's label" and
  "read my successor's label" are separate instructions landing on
  separate lockstep sub-steps, and each family's targets are distinct
  by injectivity of ``PRED`` resp. ``NEXT``.  The machine *checks*
  this: the test suite runs it under ``mode="EREW"``.

Processors keep private Python state between yields (registers); only
``yield``-ed operations touch shared memory, and every branch of every
phase is padded to a fixed yield count so all processors stay on the
same step schedule — the alignment arguments in the docstrings below
are what the EREW claims rest on.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from .._util import ceil_div, require
from ..bits.iterated_log import G
from ..lists.linked_list import NIL, LinkedList
from .faults import FaultPlan
from .machine import PRAM, MachineReport
from .program import LocalBarrier, Read, Write

__all__ = [
    "run_iterate_f",
    "run_match1",
    "run_match2",
    "run_match3",
    "run_match4",
    "step_budget",
]


def step_budget(n: int, p: int) -> tuple[int, str]:
    """Derive a lockstep budget for an ``n``-node run on ``p`` processors.

    Every instruction-level pipeline here executes a fixed number of
    yields per node served, and each processor serves ``ceil(n/p)``
    nodes; the per-node constant is bounded by a small multiple of the
    walk length and, for Match2, by ``S * O(log n)`` prefix/broadcast
    steps with ``S = O(log n)`` — all comfortably below
    ``256 * ceil(lg n)^2``.  The budget is therefore

        ``max_steps = 256 * ceil(n/p) * ceil(lg n)^2 + 4096``

    — generous enough that no correct run can hit it, tight enough
    that a livelocked run dies in seconds rather than hours.  Returns
    ``(budget, formula)`` so the formula can be included in the
    :class:`repro.errors.DeadlockError` message.
    """
    require(n >= 1, f"n must be >= 1, got {n}")
    require(p >= 1, f"p must be >= 1, got {p}")
    chunk = ceil_div(n, p)
    lg = max(1, int(n).bit_length())
    budget = 256 * chunk * lg * lg + 4096
    formula = (
        f"256*ceil(n/p)*ceil(lg n)^2 + 4096 = 256*{chunk}*{lg}^2 + 4096 "
        f"= {budget} (n={n}, p={p})"
    )
    return budget, formula


def _run_program(
    program,
    nprocs: int,
    *,
    memory_size: int,
    mode: str,
    initial_memory: np.ndarray,
    n: int,
    trace: bool = False,
    fault_plan: FaultPlan | None = None,
    recover: bool = False,
    checkpoint_interval: int = 64,
) -> MachineReport:
    """Launch ``nprocs`` copies of ``program``, with optional faults.

    With ``recover=True`` (and a fault plan) the run goes through
    :func:`repro.pram.checkpoint.run_with_recovery`: faults still fire
    and are recorded, but the run rolls back to the last clean
    checkpoint and resumes, so the returned report's memory is
    bit-identical to a fault-free run's.
    """
    budget, formula = step_budget(n, nprocs)
    if recover and fault_plan is not None:
        from .checkpoint import run_with_recovery

        outcome = run_with_recovery(
            [program] * nprocs,
            memory_size=memory_size,
            mode=mode,
            initial_memory=initial_memory,
            fault_plan=fault_plan,
            interval=checkpoint_interval,
            max_steps=budget,
            budget_note=formula,
        )
        return outcome.report
    machine = PRAM(memory_size, mode=mode, initial_memory=initial_memory)
    return machine.run(
        [program] * nprocs,
        max_steps=budget,
        trace=trace,
        fault_plan=fault_plan,
        budget_note=formula,
    )


def _f_msb_local(a: int, b: int) -> int:
    """Local-register evaluation of ``f`` (one PRAM instruction)."""
    x = a ^ b
    k = x.bit_length() - 1
    return 2 * k + ((a >> k) & 1)


def _mex3_local(base: int, l1: int, l2: int) -> int:
    """Smallest of {base, base+1, base+2} avoiding l1 and l2."""
    for c in (base, base + 1, base + 2):
        if c != l1 and c != l2:
            return c
    raise AssertionError("unreachable: two exclusions, three candidates")


# ---------------------------------------------------------------------------
# iterate f
# ---------------------------------------------------------------------------

def run_iterate_f(
    lst: LinkedList,
    rounds: int,
    *,
    p: int | None = None,
    mode: str = "EREW",
) -> tuple[np.ndarray, MachineReport]:
    """Steps 1–2 of Match1 as a PRAM program.

    Memory map: ``[0, n)`` labels, ``[n, 2n)`` circular ``NEXT``
    (static), ``[2n, 3n)`` the double buffer.

    With ``p == n`` (default) each round is four steps (read own
    ``NEXT``, read own label, read successor's label, write own label);
    reads precede the write inside the round, so no buffering is
    needed.  With ``p < n`` each processor serves ``ceil(n/p)`` nodes
    per round and new labels go to the buffer first, then a copy pass
    commits them — otherwise a processor would read a *new* label
    mid-round and the run would not be a synchronous PRAM round.

    Returns ``(labels, report)``.
    """
    require(rounds >= 0, f"rounds must be >= 0, got {rounds}")
    n = lst.n
    if p is None:
        p = n
    require(1 <= p <= n, f"p must be in [1, n], got {p}")
    cnext = lst.circular_next()
    mem = np.zeros(3 * n, dtype=np.int64)
    mem[:n] = np.arange(n)
    mem[n:2 * n] = cnext
    chunk = ceil_div(n, p)

    def program(pid: int, nprocs: int) -> Generator:
        for _ in range(rounds):
            new: dict[int, int] = {}
            for slot in range(chunk):
                v = pid * chunk + slot
                if v < n:
                    j = yield Read(n + v)
                    lv = yield Read(v)
                    lj = yield Read(j)
                    new[v] = _f_msb_local(lv, lj)
                    yield Write(2 * n + v, new[v])
                else:
                    for _ in range(4):
                        yield LocalBarrier()
            # commit pass: copy buffer back (exclusive, own cells)
            for slot in range(chunk):
                v = pid * chunk + slot
                if v < n:
                    val = yield Read(2 * n + v)
                    yield Write(v, val)
                else:
                    yield LocalBarrier()
                    yield LocalBarrier()

    machine = PRAM(3 * n, mode=mode, initial_memory=mem)
    report = machine.run([program] * p)
    return report.memory[:n].copy(), report


# ---------------------------------------------------------------------------
# Match1
# ---------------------------------------------------------------------------

def run_match1(
    lst: LinkedList,
    *,
    rounds: int | None = None,
    mode: str = "EREW",
    max_walk: int = 24,
    trace: bool = False,
    fault_plan: FaultPlan | None = None,
    recover: bool = False,
    checkpoint_interval: int = 64,
) -> tuple[np.ndarray, MachineReport]:
    """The complete Match1 as an ``n``-processor EREW program.

    Memory map: ``[0,n)`` labels, ``[n,2n)`` circular ``NEXT``,
    ``[2n,3n)`` real ``NEXT`` (``NIL`` encoded as ``n`` pointing at a
    scratch sentinel block), ``[3n,4n)`` ``PRED`` (head's encoded
    likewise), ``[4n,5n)`` cut flags, ``[5n,6n)`` chosen flags, plus a
    sentinel cell.

    EREW legality per phase: the iterate phase is the ``p = n`` case of
    :func:`run_iterate_f`; the cut phase reads ``label[pred(v)]`` and
    ``label[suc(v)]`` (exclusive by injectivity of ``PRED``/``NEXT``)
    at distinct step indices; walkers traverse disjoint sublists, so
    their reads/writes never meet, and every walker executes exactly
    ``max_walk`` fixed-shape iterations (idling once its sublist ends)
    to preserve alignment.

    Returns ``(chosen_tails, report)``.
    """
    n = lst.n
    require(n >= 1, "need at least one node")
    if rounds is None:
        rounds = G(n)
    if n == 1:
        machine = PRAM(1, mode=mode)
        report = machine.run([lambda pid, np_: iter(())])
        return np.empty(0, dtype=np.int64), report
    # Memory map:
    #   labels   [0, n)
    #   cnext    [n, 2n)    circular NEXT (static)
    #   rnext    [2n, 3n)   real NEXT, NIL encoded as 6n
    #   pred     [3n, 4n)   PRED, head's encoded as 6n
    #   cut      [4n, 5n)
    #   chosen   [5n, 6n)
    #   sentinel [6n]       the nil stand-in; never actually Read
    mem = np.zeros(6 * n + 1, dtype=np.int64)
    mem[:n] = np.arange(n)
    mem[n:2 * n] = lst.circular_next()
    rnext = lst.next.copy()
    rnext[rnext == NIL] = 6 * n
    mem[2 * n:3 * n] = rnext
    pred = lst.pred.copy()
    pred[pred == NIL] = 6 * n
    mem[3 * n:4 * n] = pred
    mem[4 * n:5 * n] = 0

    def program(v: int, nprocs: int) -> Generator:
        # ---- phase 1: iterate f (4 yields per round) ----
        for _ in range(rounds):
            j = yield Read(n + v)
            lv = yield Read(v)
            lj = yield Read(j)
            yield Write(v, _f_msb_local(lv, lj))
        # ---- phase 2: cut at strict local minima (interior only) ----
        pv = yield Read(3 * n + v)
        sv = yield Read(2 * n + v)
        lv = yield Read(v)
        interior = pv != 6 * n and sv != 6 * n
        if interior:
            lp = yield Read(pv)
            ls = yield Read(sv)
            cut = 1 if (lp > lv and lv < ls) else 0
            yield Write(4 * n + v, cut)
        else:
            yield LocalBarrier()
            yield LocalBarrier()
            yield LocalBarrier()
        # ---- phase 3: find segment starts ----
        # start iff I have a pointer (sv != sentinel) and (no pred or
        # pred's pointer cut).
        if sv != 6 * n and pv != 6 * n:
            pc = yield Read(4 * n + pv)
            start = pc == 1
        else:
            yield LocalBarrier()
            start = sv != 6 * n and pv == 6 * n  # the head's pointer
        # ---- phase 4: walk my sublist ----
        # Fixed max_walk iterations of exactly six yields each; walkers
        # own disjoint sublists, so all their reads/writes are
        # exclusive regardless of which branch pads.  Invariant on an
        # active `cur`: pointer <cur, suc(cur)> exists and is uncut.
        cur = v if start else -1
        for _ in range(max_walk):
            if cur < 0:
                for _ in range(6):
                    yield LocalBarrier()
                continue
            yield Write(5 * n + cur, 1)        # choose <cur, suc(cur)>
            w1 = yield Read(2 * n + cur)       # the skipped tail
            w1n = yield Read(2 * n + w1)       # does <w1, .> exist?
            if w1n == 6 * n:
                cur = -1
                for _ in range(3):
                    yield LocalBarrier()
                continue
            c1 = yield Read(4 * n + w1)        # is <w1, .> cut?
            if c1 == 1:
                cur = -1
                yield LocalBarrier()
                yield LocalBarrier()
                continue
            w2 = w1n
            w2n = yield Read(2 * n + w2)       # does <w2, .> exist?
            if w2n == 6 * n:
                cur = -1
                yield LocalBarrier()
                continue
            c2 = yield Read(4 * n + w2)        # is <w2, .> cut?
            cur = w2 if c2 == 0 else -1
        # ---- phase 5: end repair (see core.cutwalk docstring) ----
        # The unique owner of the list's final pointer re-adds it when
        # both its endpoints stayed free; at most one processor enters
        # the branch, so its reads are trivially exclusive.
        if sv != 6 * n:
            svn = yield Read(2 * n + sv)
        else:
            svn = -1
            yield LocalBarrier()
        if sv != 6 * n and svn == 6 * n and pv != 6 * n:
            ch_me = yield Read(5 * n + v)
            ch_pred = yield Read(5 * n + pv)
            if ch_me == 0 and ch_pred == 0:
                yield Write(5 * n + v, 1)
            else:
                yield LocalBarrier()
        else:
            for _ in range(3):
                yield LocalBarrier()
        _ = lv

    report = _run_program(
        program, n, memory_size=6 * n + 1, mode=mode, initial_memory=mem,
        n=n, trace=trace, fault_plan=fault_plan, recover=recover,
        checkpoint_interval=checkpoint_interval,
    )
    chosen = np.flatnonzero(report.memory[5 * n:6 * n] == 1)
    return chosen, report


# ---------------------------------------------------------------------------
# Match4
# ---------------------------------------------------------------------------

def run_match4(
    lst: LinkedList,
    *,
    i: int = 2,
    mode: str = "EREW",
    max_walk: int = 24,
    trace: bool = False,
    fault_plan: FaultPlan | None = None,
    recover: bool = False,
    checkpoint_interval: int = 64,
) -> tuple[np.ndarray, MachineReport]:
    """The complete Match4 as a ``y``-column-processor PRAM program.

    One processor per column of the ``x = Theta(log^(i) n)``-row view;
    each runs, in lockstep with the others: the iterated-``f``
    partition (double-buffered, since ``p = y < n``), a *local* stable
    counting sort of its own column, the WalkDown1 row sweep over
    inter-row pointers, the literal WalkDown2 count/index automaton
    over intra-row pointers, the local-minima cut, the sublist walk,
    and the end repair.

    A result worth stating: the whole program is **EREW-legal**.  The
    apparent hazard — two pointers processed in one step consulting a
    shared neighbor pointer's label — never materializes because a
    PRAM processor reads one cell per instruction anyway, and in the
    lockstep schedule all "read my predecessor's label" instructions
    land on one sub-step (targets distinct by injectivity of ``PRED``)
    while all "read my successor's label" instructions land on another
    (distinct by injectivity of ``NEXT``).  The machine verifies this
    by running clean under ``mode="EREW"``.

    Returns ``(chosen_tails, report)``; tests assert the result is
    bit-identical to the vectorized :func:`repro.core.match4.match4`.
    """
    from ..core.match4 import plan_rows

    n = lst.n
    require(n >= 1, "need at least one node")
    if n == 1:
        machine = PRAM(1, mode=mode)
        report = machine.run([lambda pid, np_: iter(())])
        return np.empty(0, dtype=np.int64), report
    x = plan_rows(n, i)
    y = ceil_div(n, x)
    # Memory map:
    #   LBL    [0, n)      iterated-f labels
    #   BUF    [n, 2n)     double buffer for LBL
    #   CNEXT  [2n, 3n)    circular NEXT (static)
    #   RNEXT  [3n, 4n)    real NEXT, NIL -> SENT
    #   PRED   [4n, 5n)    PRED, head -> SENT
    #   ROW    [5n, 6n)    row of each node after the column sorts
    #   L6     [6n, 7n)    six-set labels, init -1
    #   CUT    [7n, 8n)
    #   CHOSEN [8n, 9n)
    SENT = 9 * n
    mem = np.zeros(9 * n + 1, dtype=np.int64)
    mem[:n] = np.arange(n)
    mem[2 * n:3 * n] = lst.circular_next()
    rnext = lst.next.copy()
    rnext[rnext == NIL] = SENT
    mem[3 * n:4 * n] = rnext
    pred = lst.pred.copy()
    pred[pred == NIL] = SENT
    mem[4 * n:5 * n] = pred
    mem[6 * n:7 * n] = -1

    def program(c: int, nprocs: int) -> Generator:
        col = [v for v in range(c * x, min(n, (c + 1) * x))]

        # ---- phase 1: iterate f, i rounds, double-buffered ----
        for _ in range(i):
            for slot in range(x):
                if slot < len(col):
                    v = col[slot]
                    j = yield Read(2 * n + v)
                    lv = yield Read(v)
                    lj = yield Read(j)
                    yield Write(n + v, _f_msb_local(lv, lj))
                else:
                    for _ in range(4):
                        yield LocalBarrier()
            for slot in range(x):
                if slot < len(col):
                    v = col[slot]
                    val = yield Read(n + v)
                    yield Write(v, val)
                else:
                    yield LocalBarrier()
                    yield LocalBarrier()

        # ---- phase 2: local stable counting sort of my column ----
        labels: list[int] = []
        for slot in range(x):
            if slot < len(col):
                labels.append((yield Read(col[slot])))
            else:
                yield LocalBarrier()
        order = sorted(range(len(col)), key=lambda s: labels[s])
        sorted_nodes = [col[s] for s in order]      # row r -> node
        sorted_labels = [labels[s] for s in order]
        for r in range(x):
            if r < len(sorted_nodes):
                yield Write(5 * n + sorted_nodes[r], r)
            else:
                yield LocalBarrier()

        # ---- phase 3: WalkDown1 over inter-row pointers ----
        # Cache each row's successor and its row for phase 4.
        suc_of: list[int] = [SENT] * x
        row_of_suc: list[int] = [-1] * x
        for r in range(x):
            v = sorted_nodes[r] if r < len(sorted_nodes) else -1
            if v >= 0:
                b = yield Read(3 * n + v)
                suc_of[r] = b
            else:
                b = SENT
                yield LocalBarrier()
            if v >= 0 and b != SENT:
                rb = yield Read(5 * n + b)
                row_of_suc[r] = rb
            else:
                rb = -1
                yield LocalBarrier()
            inter = v >= 0 and b != SENT and rb != r
            if inter:
                pv = yield Read(4 * n + v)
            else:
                pv = SENT
                yield LocalBarrier()
            if inter and pv != SENT:
                l1 = yield Read(6 * n + pv)
            else:
                l1 = -1
                yield LocalBarrier()
            if inter:
                l2 = yield Read(6 * n + b)
                yield Write(6 * n + v, _mex3_local(0, l1, l2))
            else:
                yield LocalBarrier()
                yield LocalBarrier()

        # ---- phase 4: WalkDown2 automaton over intra-row pointers ----
        count = 0
        index = 0
        for _ in range(2 * x - 1):
            fire = (
                index <= x - 1
                and index < len(sorted_labels)
                and sorted_labels[index] == count
            )
            if fire:
                v = sorted_nodes[index]
                b = suc_of[index]
                intra = b != SENT and row_of_suc[index] == index
                index += 1
            else:
                v = -1
                intra = False
                if index <= x - 1 and index < len(sorted_labels):
                    count += 1
                elif index <= x - 1:
                    count += 1  # padding rows: the automaton idles
            if intra:
                pv = yield Read(4 * n + v)
            else:
                pv = SENT
                yield LocalBarrier()
            if intra and pv != SENT:
                l1 = yield Read(6 * n + pv)
            else:
                l1 = -1
                yield LocalBarrier()
            if intra:
                l2 = yield Read(6 * n + b)
                yield Write(6 * n + v, _mex3_local(3, l1, l2))
            else:
                yield LocalBarrier()
                yield LocalBarrier()

        # ---- phase 5: cut at strict local minima (interior only) ----
        cut_info: list[tuple[int, int, int]] = []
        for slot in range(x):
            if slot < len(col):
                v = col[slot]
                pv = yield Read(4 * n + v)
                sv = yield Read(3 * n + v)
                lv = yield Read(6 * n + v)
                cut_info.append((v, pv, sv))
                if pv != SENT and sv != SENT:
                    lp = yield Read(6 * n + pv)
                    ls = yield Read(6 * n + sv)
                    yield Write(7 * n + v,
                                1 if (lp > lv and lv < ls) else 0)
                else:
                    for _ in range(3):
                        yield LocalBarrier()
            else:
                for _ in range(6):
                    yield LocalBarrier()

        # ---- phase 6: segment starts + sublist walks ----
        for slot in range(x):
            if slot < len(cut_info):
                v, pv, sv = cut_info[slot]
                if sv != SENT and pv != SENT:
                    pc = yield Read(7 * n + pv)
                    start = pc == 1
                else:
                    yield LocalBarrier()
                    start = sv != SENT and pv == SENT
            else:
                v = -1
                start = False
                yield LocalBarrier()
            cur = v if start else -1
            for _ in range(max_walk):
                if cur < 0:
                    for _ in range(6):
                        yield LocalBarrier()
                    continue
                yield Write(8 * n + cur, 1)
                w1 = yield Read(3 * n + cur)
                w1n = yield Read(3 * n + w1)
                if w1n == SENT:
                    cur = -1
                    for _ in range(3):
                        yield LocalBarrier()
                    continue
                c1 = yield Read(7 * n + w1)
                if c1 == 1:
                    cur = -1
                    yield LocalBarrier()
                    yield LocalBarrier()
                    continue
                w2 = w1n
                w2n = yield Read(3 * n + w2)
                if w2n == SENT:
                    cur = -1
                    yield LocalBarrier()
                    continue
                c2 = yield Read(7 * n + w2)
                cur = w2 if c2 == 0 else -1

        # ---- phase 7: end repair (unique owner of the last pointer) ----
        for slot in range(x):
            if slot < len(cut_info):
                v, pv, sv = cut_info[slot]
                if sv != SENT:
                    svn = yield Read(3 * n + sv)
                else:
                    svn = -1
                    yield LocalBarrier()
                if sv != SENT and svn == SENT and pv != SENT:
                    ch_me = yield Read(8 * n + v)
                    ch_pred = yield Read(8 * n + pv)
                    if ch_me == 0 and ch_pred == 0:
                        yield Write(8 * n + v, 1)
                    else:
                        yield LocalBarrier()
                else:
                    for _ in range(3):
                        yield LocalBarrier()
            else:
                for _ in range(4):
                    yield LocalBarrier()

    report = _run_program(
        program, y, memory_size=9 * n + 1, mode=mode, initial_memory=mem,
        n=n, trace=trace, fault_plan=fault_plan, recover=recover,
        checkpoint_interval=checkpoint_interval,
    )
    chosen = np.flatnonzero(report.memory[8 * n:9 * n] == 1)
    return chosen, report


# ---------------------------------------------------------------------------
# Match2
# ---------------------------------------------------------------------------

def run_match2(
    lst: LinkedList,
    *,
    partition_rounds: int = 2,
    mode: str = "EREW",
    fault_plan: FaultPlan | None = None,
    recover: bool = False,
    checkpoint_interval: int = 64,
) -> tuple[np.ndarray, MachineReport]:
    """The complete Match2 as an EREW program on ``m = 2^ceil(lg n)``
    processors (the padding processors serve the prefix tree only).

    Step 2's integer sort is realized the textbook EREW way: one
    prefix-sum pass (up-sweep, down-sweep over a ``m``-cell tree) per
    set value computes every member's sorted offset, followed by an
    EREW *broadcast tree* distributing the pass total — the paper's
    ``O(log n)``-additive sort term appears as real machine steps, per
    pass.  Step 3 sweeps the sets in value order; within a set the
    endpoints are pairwise disjoint, so the DONE bookkeeping is
    exclusive and the machine's EREW checker stays quiet.

    Memory map: ``[0,n)`` labels; ``[n,2n)`` circular ``NEXT``;
    ``[2n,3n)`` real ``NEXT`` (nil -> sentinel); ``[3n,4n)`` DONE;
    ``[4n,5n)`` chosen; ``[5n,6n)`` sorted-position scratch; tree
    ``[6n, 6n+m)``; broadcast ``[6n+m, 6n+2m)``.

    Returns ``(chosen_tails, report)``.
    """
    require(partition_rounds >= 1,
            f"partition_rounds must be >= 1, got {partition_rounds}")
    n = lst.n
    require(n >= 1, "need at least one node")
    if n == 1:
        machine = PRAM(1, mode=mode)
        report = machine.run([lambda pid, np_: iter(())])
        return np.empty(0, dtype=np.int64), report
    from .._util import next_power_of_two
    from ..core.functions import max_label_after

    m = next_power_of_two(n)
    S = max_label_after(n, partition_rounds)
    TREE = 6 * n
    BCAST = 6 * n + m
    SENTINEL = 6 * n + 2 * m
    mem = np.zeros(SENTINEL + 1, dtype=np.int64)
    mem[:n] = np.arange(n)
    mem[n:2 * n] = lst.circular_next()
    rnext = lst.next.copy()
    rnext[rnext == NIL] = SENTINEL
    mem[2 * n:3 * n] = rnext
    levels = m.bit_length() - 1

    def program(v: int, nprocs: int) -> Generator:
        real = v < n
        # ---- step 1: partition (4 yields per round + 2 reads) ----
        for _ in range(partition_rounds):
            if real:
                j = yield Read(n + v)
                lv = yield Read(v)
                lj = yield Read(j)
                yield Write(v, _f_msb_local(lv, lj))
            else:
                for _ in range(4):
                    yield LocalBarrier()
        if real:
            my_label = yield Read(v)
            sv = yield Read(2 * n + v)
        else:
            my_label, sv = -1, SENTINEL
            yield LocalBarrier()
            yield LocalBarrier()
        has_ptr = real and sv != SENTINEL

        # ---- step 2: counting sort, one scan+broadcast per value ----
        my_rank = -1
        base = 0
        for k in range(S):
            flag = 1 if (has_ptr and my_label == k) else 0
            yield Write(TREE + v, flag if real else 0)
            # up-sweep
            for d in range(levels):
                stride = 1 << (d + 1)
                half = 1 << d
                if (v + 1) % stride == 0:
                    left = yield Read(TREE + v - half)
                    own = yield Read(TREE + v)
                    yield Write(TREE + v, left + own)
                else:
                    for _ in range(3):
                        yield LocalBarrier()
            # down-sweep (inclusive scan)
            for d in range(levels - 2, -1, -1):
                stride = 1 << (d + 1)
                half = 1 << d
                if v >= stride and (v + 1 - half) % stride == 0:
                    carry = yield Read(TREE + v - half)
                    own = yield Read(TREE + v)
                    yield Write(TREE + v, carry + own)
                else:
                    for _ in range(3):
                        yield LocalBarrier()
            inclusive = yield Read(TREE + v)
            if flag:
                my_rank = base + inclusive - 1
            # EREW broadcast of the pass total (the inclusive value at
            # the last *real* cell): seed, then doubling rounds.
            if v == n - 1:
                yield Write(BCAST + 0, inclusive)
            else:
                yield LocalBarrier()
            for d in range(levels):
                lo = 1 << d
                if v < lo and v + lo < n:
                    val = yield Read(BCAST + v)
                    yield Write(BCAST + v + lo, val)
                else:
                    yield LocalBarrier()
                    yield LocalBarrier()
            if real:
                total = yield Read(BCAST + v)
            else:
                total = 0
                yield LocalBarrier()
            base += total
        if has_ptr:
            yield Write(5 * n + my_rank, v)  # the sorted pointer array
        else:
            yield LocalBarrier()

        # ---- step 3: sweep sets in value order ----
        for k in range(S):
            if has_ptr and my_label == k:
                da = yield Read(3 * n + v)
                db = yield Read(3 * n + sv)
                if not da and not db:
                    yield Write(3 * n + v, 1)
                    yield Write(3 * n + sv, 1)
                    yield Write(4 * n + v, 1)
                else:
                    for _ in range(3):
                        yield LocalBarrier()
            else:
                for _ in range(5):
                    yield LocalBarrier()

    report = _run_program(
        program, m, memory_size=SENTINEL + 1, mode=mode,
        initial_memory=mem, n=n, fault_plan=fault_plan, recover=recover,
        checkpoint_interval=checkpoint_interval,
    )
    chosen = np.flatnonzero(report.memory[4 * n:5 * n] == 1)
    return chosen, report


# ---------------------------------------------------------------------------
# Match3
# ---------------------------------------------------------------------------

def run_match3(
    lst: LinkedList,
    *,
    crunch_rounds: int = 3,
    doubling_rounds: int = 1,
    mode: str = "EREW",
    table_copies: bool | None = None,
    max_walk: int = 24,
    fault_plan: FaultPlan | None = None,
    recover: bool = False,
    checkpoint_interval: int = 64,
) -> tuple[np.ndarray, MachineReport]:
    """The complete Match3 as an ``n``-processor PRAM program.

    The lookup step is where the appendix's table-copy discussion
    becomes executable: with a *single* shared table, two processors
    holding equal packed windows read the same cell in the same step —
    a concurrent read, so the program is CREW.  With ``table_copies``
    (the default under ``mode="EREW"``), every processor probes its own
    private copy — "to run our algorithms on the EREW model ... we
    need copies of T to be set up in the preprocessing stage" — and the
    machine's checker confirms the run is then exclusive.

    Memory map: ``[0,n)`` labels; ``[n,2n)`` circular ``NEXT``
    (mutated by the doubling); ``[2n,3n)`` real ``NEXT``
    (nil -> sentinel); ``[3n,4n)`` ``PRED``; ``[4n,5n)`` cut;
    ``[5n,6n)`` chosen; tables from ``6n`` (one copy, or ``n`` copies
    of ``cells`` each).

    Returns ``(chosen_tails, report)``; tests assert bit-identity with
    the vectorized :func:`repro.core.match3.match3` under the same
    plan.
    """
    from ..bits.lookup import build_table_direct
    from ..core.functions import max_label_after, pair_function

    n = lst.n
    require(n >= 1, "need at least one node")
    require(crunch_rounds >= 1, "crunch_rounds must be >= 1")
    require(doubling_rounds >= 1, "doubling_rounds must be >= 1")
    if n == 1:
        machine = PRAM(1, mode=mode)
        report = machine.run([lambda pid, np_: iter(())])
        return np.empty(0, dtype=np.int64), report
    if table_copies is None:
        table_copies = mode.upper() == "EREW"
    bound = max_label_after(n, crunch_rounds)
    b = max(1, (bound - 1).bit_length())
    arity = 1 << doubling_rounds
    table = build_table_direct(
        pair_function("msb"), arity=arity, bits_per_arg=b,
        memory_limit=1 << 20,
    )
    cells = table.size
    copies = n if table_copies else 1
    TBASE = 6 * n
    SENT = TBASE + copies * cells
    mem = np.zeros(SENT + 1, dtype=np.int64)
    mem[:n] = np.arange(n)
    mem[n:2 * n] = lst.circular_next()
    rnext = lst.next.copy()
    rnext[rnext == NIL] = SENT
    mem[2 * n:3 * n] = rnext
    pred = lst.pred.copy()
    pred[pred == NIL] = SENT
    mem[3 * n:4 * n] = pred
    for c in range(copies):
        mem[TBASE + c * cells:TBASE + (c + 1) * cells] = table.table

    def program(v: int, nprocs: int) -> Generator:
        # ---- steps 1-2: number crunching ----
        for _ in range(crunch_rounds):
            j = yield Read(n + v)
            lv = yield Read(v)
            lj = yield Read(j)
            yield Write(v, _f_msb_local(lv, lj))
        # ---- step 3: doubling concatenation ----
        width = 1
        for _ in range(doubling_rounds):
            j = yield Read(n + v)
            lv = yield Read(v)
            lj = yield Read(j)
            jj = yield Read(n + j)
            yield Write(v, (lv << (b * width)) | lj)
            yield Write(n + v, jj)
            width *= 2
        # ---- step 4: table lookup ----
        key = yield Read(v)
        base = TBASE + (v * cells if table_copies else 0)
        label = yield Read(base + key)
        yield Write(v, label)
        # ---- steps 5-6: cut + walk + end repair (as in Match1) ----
        pv = yield Read(3 * n + v)
        sv = yield Read(2 * n + v)
        lv = yield Read(v)
        if pv != SENT and sv != SENT:
            lp = yield Read(pv)
            ls = yield Read(sv)
            yield Write(4 * n + v, 1 if (lp > lv and lv < ls) else 0)
        else:
            for _ in range(3):
                yield LocalBarrier()
        if sv != SENT and pv != SENT:
            pc = yield Read(4 * n + pv)
            start = pc == 1
        else:
            yield LocalBarrier()
            start = sv != SENT and pv == SENT
        cur = v if start else -1
        for _ in range(max_walk):
            if cur < 0:
                for _ in range(6):
                    yield LocalBarrier()
                continue
            yield Write(5 * n + cur, 1)
            w1 = yield Read(2 * n + cur)
            w1n = yield Read(2 * n + w1)
            if w1n == SENT:
                cur = -1
                for _ in range(3):
                    yield LocalBarrier()
                continue
            c1 = yield Read(4 * n + w1)
            if c1 == 1:
                cur = -1
                yield LocalBarrier()
                yield LocalBarrier()
                continue
            w2 = w1n
            w2n = yield Read(2 * n + w2)
            if w2n == SENT:
                cur = -1
                yield LocalBarrier()
                continue
            c2 = yield Read(4 * n + w2)
            cur = w2 if c2 == 0 else -1
        if sv != SENT:
            svn = yield Read(2 * n + sv)
        else:
            svn = -1
            yield LocalBarrier()
        if sv != SENT and svn == SENT and pv != SENT:
            ch_me = yield Read(5 * n + v)
            ch_pred = yield Read(5 * n + pv)
            if ch_me == 0 and ch_pred == 0:
                yield Write(5 * n + v, 1)
            else:
                yield LocalBarrier()
        else:
            for _ in range(3):
                yield LocalBarrier()

    report = _run_program(
        program, n, memory_size=SENT + 1, mode=mode, initial_memory=mem,
        n=n, fault_plan=fault_plan, recover=recover,
        checkpoint_interval=checkpoint_interval,
    )
    chosen = np.flatnonzero(report.memory[5 * n:6 * n] == 1)
    return chosen, report
