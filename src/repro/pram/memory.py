"""Conflict-checked shared memory for the instruction-level simulator.

The PRAM variants differ only in which same-step collisions they allow
(Snir [14], Borodin–Hopcroft [2]):

=============  ==================  =====================================
mode           concurrent reads    concurrent writes
=============  ==================  =====================================
EREW           forbidden           forbidden
CREW           allowed             forbidden
CRCW_COMMON    allowed             allowed iff all write the same value
CRCW_ARBITRARY allowed             allowed; an arbitrary one wins (we
                                   pick the lowest pid, and tests that
                                   rely on arbitrariness must pass under
                                   *any* winner)
CRCW_PRIORITY  allowed             allowed; lowest pid wins by contract
=============  ==================  =====================================

:meth:`SharedMemory.apply_step` takes *all* of one step's accesses at
once so the rules can be enforced exactly: reads are serviced from the
pre-step state, conflicts diagnosed, then writes committed.
"""

from __future__ import annotations

from collections import defaultdict
from enum import Enum
from typing import Mapping, Sequence

import numpy as np

from .._util import require
from ..errors import MemoryConflictError

__all__ = ["AccessMode", "SharedMemory"]


class AccessMode(str, Enum):
    """Memory conflict-resolution rule of a PRAM variant."""

    EREW = "EREW"
    CREW = "CREW"
    CRCW_COMMON = "CRCW_COMMON"
    CRCW_ARBITRARY = "CRCW_ARBITRARY"
    CRCW_PRIORITY = "CRCW_PRIORITY"

    @property
    def allows_concurrent_read(self) -> bool:
        return self is not AccessMode.EREW

    @property
    def allows_concurrent_write(self) -> bool:
        return self in (
            AccessMode.CRCW_COMMON,
            AccessMode.CRCW_ARBITRARY,
            AccessMode.CRCW_PRIORITY,
        )


class SharedMemory:
    """A flat array of int64 cells with per-step conflict enforcement.

    Parameters
    ----------
    size:
        Number of cells.
    mode:
        The :class:`AccessMode` to enforce.
    initial:
        Optional initial contents (defaults to zeros).
    """

    def __init__(
        self,
        size: int,
        mode: AccessMode | str = AccessMode.CREW,
        initial: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        require(size >= 0, f"memory size must be >= 0, got {size}")
        self.mode = AccessMode(mode)
        if initial is None:
            self._cells = np.zeros(size, dtype=np.int64)
        else:
            arr = np.asarray(initial, dtype=np.int64)
            require(arr.size == size,
                    f"initial contents size {arr.size} != memory size {size}")
            self._cells = arr.copy()
        self.size = size
        #: Peak number of distinct cells touched in any single step —
        #: reported so tests can confirm bandwidth expectations.
        self.peak_step_footprint = 0

    def __getitem__(self, addr: int) -> int:
        """Debug/verification access (not a PRAM operation)."""
        return int(self._cells[addr])

    def snapshot(self) -> np.ndarray:
        """A copy of the current contents (verification use)."""
        return self._cells.copy()

    def load(self, addr: int) -> int:
        self._bounds(addr)
        return int(self._cells[addr])

    def _bounds(self, addr: int) -> None:
        if not 0 <= addr < self.size:
            raise MemoryConflictError(
                f"address {addr} out of bounds for memory of size {self.size}"
            )

    def flip_bit(self, addr: int, bit: int) -> tuple[int, int]:
        """XOR-flip one bit of one cell (fault injection only).

        This is *not* a PRAM operation: it models a single-event upset
        in the memory system, injected by the machine between steps
        when a :class:`repro.pram.faults.BitFlip` fires.  Returns
        ``(old_value, new_value)`` so the event can be recorded.
        """
        self._bounds(addr)
        require(0 <= bit < 64, f"bit must be in [0, 64), got {bit}")
        old = int(self._cells[addr])
        # XOR through a uint64 view: shifting into bit 63 of an int64
        # would overflow, but the flip is well-defined on the raw word.
        cell = self._cells[addr:addr + 1].view(np.uint64)
        cell ^= np.uint64(1) << np.uint64(bit)
        return old, int(self._cells[addr])

    def apply_step(
        self,
        reads: Mapping[int, int],
        writes: Mapping[int, tuple[int, int]],
        *,
        dropped: frozenset[int] | set[int] = frozenset(),
    ) -> dict[int, int]:
        """Execute one synchronous step of accesses.

        Parameters
        ----------
        reads:
            ``{pid: addr}`` for every processor reading this step.
        writes:
            ``{pid: (addr, value)}`` for every processor writing.
        dropped:
            Pids whose writes this step are lost in the memory system
            (fault injection): a dropped write is bounds-checked but
            neither conflict-checked nor committed — the store never
            reached the memory, so it cannot collide with anything.

        Returns
        -------
        dict
            ``{pid: value}`` read results, from the pre-step state.

        Raises
        ------
        MemoryConflictError
            On any access pattern the mode forbids, with a message
            naming the cell and the colliding processors.
        """
        read_cells: dict[int, list[int]] = defaultdict(list)
        for pid, addr in reads.items():
            self._bounds(addr)
            read_cells[addr].append(pid)
        write_cells: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for pid, (addr, value) in writes.items():
            self._bounds(addr)
            if pid in dropped:
                continue
            write_cells[addr].append((pid, value))

        footprint = len(set(read_cells) | set(write_cells))
        self.peak_step_footprint = max(self.peak_step_footprint, footprint)

        mode = self.mode
        if not mode.allows_concurrent_read:
            for addr, pids in read_cells.items():
                if len(pids) > 1:
                    raise MemoryConflictError(
                        f"EREW violation: processors {sorted(pids)} read "
                        f"cell {addr} in the same step"
                    )
            # EREW also forbids a read and a write on one cell together.
            for addr in set(read_cells) & set(write_cells):
                rp = sorted(read_cells[addr])
                wp = sorted(pid for pid, _ in write_cells[addr])
                raise MemoryConflictError(
                    f"EREW violation: cell {addr} read by {rp} and "
                    f"written by {wp} in the same step"
                )
        for addr, writers in write_cells.items():
            if len(writers) <= 1:
                continue
            if not mode.allows_concurrent_write:
                raise MemoryConflictError(
                    f"{mode.value} violation: processors "
                    f"{sorted(p for p, _ in writers)} write cell {addr} "
                    f"in the same step"
                )
            if mode is AccessMode.CRCW_COMMON:
                values = {v for _, v in writers}
                if len(values) > 1:
                    raise MemoryConflictError(
                        f"CRCW_COMMON violation: cell {addr} written with "
                        f"distinct values {sorted(values)}"
                    )

        results = {pid: int(self._cells[addr]) for pid, addr in reads.items()}

        for addr, writers in write_cells.items():
            if len(writers) == 1:
                self._cells[addr] = writers[0][1]
            else:
                # COMMON: all equal. ARBITRARY/PRIORITY: lowest pid wins.
                winner = min(writers, key=lambda pv: pv[0])
                self._cells[addr] = winner[1]
        return results
