"""The synchronous PRAM machine driving instruction-level programs.

The machine advances all live processors in lockstep: at each step it
collects every processor's pending instruction, hands the step's reads
and writes to :class:`repro.pram.memory.SharedMemory` (which enforces
the access mode), delivers read results, and moves on.  Processors are
plain generators (see :mod:`repro.pram.program`), so algorithm code
reads like the paper's pseudocode.

A processor finishes by returning or yielding :class:`Halt`; the run
finishes when every processor has finished.  Runs are bounded by
``max_steps`` to convert accidental livelock into a diagnosable
:class:`repro.errors.DeadlockError`.

Execution is factored into :class:`LockstepExecution`, a mutable state
object advanced one synchronous step at a time.  :meth:`PRAM.run`
drives it to completion; :mod:`repro.pram.checkpoint` drives it with
periodic snapshots and can *resume* one from a snapshot.  Faults from
a :class:`repro.pram.faults.FaultPlan` are injected at exact steps and
recorded in the report — see :mod:`repro.pram.faults` for the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Sequence

import numpy as np

from .._util import require
from ..errors import DeadlockError, ProgramError
from ..telemetry.metrics import METRICS
from ..telemetry.spans import enabled as telemetry_enabled, span as telemetry_span
from .faults import BitFlip, DroppedWrite, FaultEvent, FaultPlan, ProcessorCrash
from .memory import AccessMode, SharedMemory
from .program import Halt, Instruction, LocalBarrier, Read, Write

__all__ = ["PRAM", "MachineReport", "LockstepExecution"]

#: A program factory: called with (pid, nprocs), returns the processor
#: generator.
ProgramFactory = Callable[[int, int], Generator]


@dataclass(frozen=True)
class StepTrace:
    """One synchronous step's memory traffic (tracing runs only)."""

    step: int
    reads: dict[int, int]
    writes: dict[int, tuple[int, int]]


@dataclass(frozen=True)
class MachineReport:
    """Outcome of one PRAM run.

    Attributes
    ----------
    steps:
        Synchronous steps executed (the paper's time measure).
    nprocs:
        Number of processors the run was launched with.
    memory:
        The final shared memory contents.
    peak_step_footprint:
        Largest number of distinct cells touched in one step.
    trace:
        Per-step memory traffic when the run was launched with
        ``trace=True`` (else ``None``); consumed by
        :mod:`repro.pram.trace`'s renderers.
    faults:
        Every injected fault that fired during the run, in step order
        (empty for fault-free runs).  Recovery wrappers merge the
        events of all attempts into the final report so no fault is
        ever silently swallowed.
    """

    steps: int
    nprocs: int
    memory: np.ndarray
    peak_step_footprint: int
    trace: tuple[StepTrace, ...] | None = None
    faults: tuple[FaultEvent, ...] = ()

    @property
    def cost(self) -> int:
        """Time-processor product."""
        return self.steps * self.nprocs


class LockstepExecution:
    """Mutable lockstep state, advanced one synchronous step at a time.

    Parameters
    ----------
    memory:
        The shared memory to execute against (mutated in place).
    programs:
        One factory per processor.
    fault_plan:
        Optional :class:`FaultPlan`; fired faults land in
        :attr:`fault_events`.
    trace:
        Record per-step memory traffic.
    record_deliveries:
        Keep, per processor, the sequence of values sent into its
        generator (``None`` for a plain ``next``).  This is the
        *delivery log* that makes checkpoints resumable: replaying the
        log against fresh generators deterministically reconstructs
        every processor's private state (see
        :mod:`repro.pram.checkpoint`).
    """

    def __init__(
        self,
        memory: SharedMemory,
        programs: Sequence[ProgramFactory],
        *,
        fault_plan: FaultPlan | None = None,
        trace: bool = False,
        record_deliveries: bool = False,
    ) -> None:
        require(len(programs) >= 1, "need at least one processor")
        if fault_plan is not None:
            fault_plan.validate_for(len(programs), memory.size)
        self.memory = memory
        self.programs = tuple(programs)
        self.nprocs = len(programs)
        self.fault_plan = fault_plan
        self.traces: list[StepTrace] | None = [] if trace else None
        self.deliveries: list[list[int | None]] | None = (
            [[] for _ in programs] if record_deliveries else None
        )
        self.fault_events: list[FaultEvent] = []
        self.steps = 0
        self.procs: list[Generator | None] = [
            factory(pid, self.nprocs)
            for pid, factory in enumerate(self.programs)
        ]
        #: True once a processor has finished (returned / Halted /
        #: crashed) — distinguishes "no pending instruction because
        #: done" in checkpoints.
        self.done: list[bool] = [False] * self.nprocs
        self.live = self.nprocs
        self.pending: list[Instruction | None] = [None] * self.nprocs
        # Prime: advance each generator to its first yield.
        for pid in range(self.nprocs):
            self.pending[pid] = self._advance(pid, None)
            if self.pending[pid] is None:
                self._finish(pid)

    # -- alternate constructor: resume from a checkpoint ---------------

    @classmethod
    def resume(
        cls,
        memory: SharedMemory,
        programs: Sequence[ProgramFactory],
        *,
        steps: int,
        deliveries: Sequence[Sequence[int | None]],
        done: Sequence[bool],
        fault_plan: FaultPlan | None = None,
        trace: bool = False,
        record_deliveries: bool = True,
    ) -> "LockstepExecution":
        """Reconstruct an execution at a checkpointed step.

        ``memory`` must already hold the checkpoint's snapshot.  Each
        processor's generator is rebuilt by *replaying* its delivery
        log: local computation between yields is deterministic, so
        feeding the recorded read results back in restores the exact
        private state (and pending instruction) the processor had when
        the checkpoint was taken — without ever touching shared
        memory.
        """
        require(len(deliveries) == len(programs) == len(done),
                "deliveries/programs/done must align")
        self = cls.__new__(cls)
        self.memory = memory
        self.programs = tuple(programs)
        self.nprocs = len(programs)
        if fault_plan is not None:
            fault_plan.validate_for(self.nprocs, memory.size)
        self.fault_plan = fault_plan
        self.traces = [] if trace else None
        self.deliveries = (
            [list(log) for log in deliveries] if record_deliveries else None
        )
        self.fault_events = []
        self.steps = steps
        self.procs = []
        self.done = list(done)
        self.pending = []
        for pid, factory in enumerate(self.programs):
            gen: Generator | None = factory(pid, self.nprocs)
            last: Instruction | None = None
            try:
                for send in deliveries[pid]:
                    last = next(gen) if send is None else gen.send(send)
            except StopIteration:
                gen = None
                last = None
            if self.done[pid]:
                if gen is not None:
                    gen.close()
                    gen = None
                last = None
            self.procs.append(gen)
            self.pending.append(last)
        self.live = sum(
            1 for pid in range(self.nprocs)
            if not self.done[pid] and self.procs[pid] is not None
        )
        return self

    # -- stepping ------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True when every processor has finished."""
        return self.live <= 0

    def step(self) -> None:
        """Execute one synchronous step (all live processors at once)."""
        self.steps += 1
        step = self.steps
        faults = (
            self.fault_plan.faults_at(step)
            if self.fault_plan is not None else ()
        )
        # Crash-stops fire first: the victim's pending instruction for
        # this step is never executed.
        for f in faults:
            if isinstance(f, ProcessorCrash):
                alive = self.procs[f.pid] is not None
                if alive:
                    self.procs[f.pid].close()
                    self.procs[f.pid] = None
                    self.pending[f.pid] = None
                    self._finish(f.pid)
                self.fault_events.append(FaultEvent(
                    step, "crash", f, effective=alive,
                    detail=(f"processor {f.pid} crash-stopped" if alive
                            else f"processor {f.pid} already finished"),
                ))
        reads: dict[int, int] = {}
        writes: dict[int, tuple[int, int]] = {}
        for pid, instr in enumerate(self.pending):
            if instr is None:
                continue
            if isinstance(instr, Read):
                reads[pid] = instr.addr
            elif isinstance(instr, Write):
                writes[pid] = (instr.addr, int(instr.value))
            elif isinstance(instr, LocalBarrier):
                pass
            elif isinstance(instr, Halt):
                self.procs[pid].close()
                self.procs[pid] = None
                self.pending[pid] = None
                self._finish(pid)
            else:
                raise ProgramError(
                    f"processor {pid} yielded {instr!r}, which is not "
                    f"an instruction"
                )
        dropped: set[int] = set()
        for f in faults:
            if isinstance(f, DroppedWrite):
                writing = f.pid in writes
                if writing:
                    dropped.add(f.pid)
                    addr, value = writes[f.pid]
                    detail = (f"write of {value} to cell {addr} by "
                              f"processor {f.pid} lost")
                else:
                    detail = f"processor {f.pid} was not writing"
                self.fault_events.append(FaultEvent(
                    step, "dropped_write", f, effective=writing,
                    detail=detail,
                ))
        results = self.memory.apply_step(reads, writes, dropped=dropped)
        if self.traces is not None:
            self.traces.append(StepTrace(step, dict(reads), dict(writes)))
        # Transient bit-flips commit after the step's writes: the
        # corruption is what the *next* step reads.
        for f in faults:
            if isinstance(f, BitFlip):
                old, new = self.memory.flip_bit(f.addr, f.bit)
                self.fault_events.append(FaultEvent(
                    step, "bit_flip", f, effective=True,
                    detail=(f"cell {f.addr} bit {f.bit}: "
                            f"{old} -> {new}"),
                ))
        for pid in list(reads) + list(writes) + [
            i for i, ins in enumerate(self.pending)
            if isinstance(ins, LocalBarrier)
        ]:
            self.pending[pid] = self._advance(pid, results.get(pid))
            if self.pending[pid] is None:
                self._finish(pid)

    def build_report(self) -> MachineReport:
        """Freeze the current state into a :class:`MachineReport`."""
        return MachineReport(
            steps=self.steps,
            nprocs=self.nprocs,
            memory=self.memory.snapshot(),
            peak_step_footprint=self.memory.peak_step_footprint,
            trace=tuple(self.traces) if self.traces is not None else None,
            faults=tuple(self.fault_events),
        )

    # -- internals -----------------------------------------------------

    def _finish(self, pid: int) -> None:
        if not self.done[pid]:
            self.done[pid] = True
            self.live -= 1

    def _advance(self, pid: int, send: int | None) -> Instruction | None:
        gen = self.procs[pid]
        if gen is None:
            return None
        if self.deliveries is not None:
            self.deliveries[pid].append(send)
        try:
            if send is None:
                return next(gen)
            return gen.send(send)
        except StopIteration:
            self.procs[pid] = None
            return None


class PRAM:
    """A ``p``-processor synchronous PRAM with conflict enforcement.

    Parameters
    ----------
    memory_size:
        Number of shared cells.
    mode:
        Access mode (:class:`repro.pram.memory.AccessMode` or its name).
    initial_memory:
        Optional initial shared-memory contents.

    Examples
    --------
    Two processors swap two cells through a scratch area:

    >>> def swapper(pid, nprocs):
    ...     v = yield Read(pid)          # step 1: read own cell
    ...     yield Write(2 + pid, v)      # step 2: stash
    ...     v = yield Read(2 + (1 - pid))  # step 3: read the other stash
    ...     yield Write(pid, v)          # step 4: write back swapped
    >>> machine = PRAM(4, mode="EREW", initial_memory=[10, 20, 0, 0])
    >>> report = machine.run([swapper, swapper])
    >>> report.memory[:2].tolist(), report.steps
    ([20, 10], 4)
    """

    def __init__(
        self,
        memory_size: int,
        mode: AccessMode | str = AccessMode.CREW,
        initial_memory: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        self.memory = SharedMemory(memory_size, mode, initial_memory)
        self.mode = self.memory.mode

    def run(
        self,
        programs: Sequence[ProgramFactory],
        *,
        max_steps: int = 1_000_000,
        trace: bool = False,
        fault_plan: FaultPlan | None = None,
        budget_note: str | None = None,
    ) -> MachineReport:
        """Execute the given programs to completion in lockstep.

        Parameters
        ----------
        programs:
            One factory per processor; processor ``i`` runs
            ``programs[i](i, len(programs))``.
        max_steps:
            Step budget; exceeding it raises :class:`DeadlockError`.
        trace:
            Record every step's memory traffic into the report (for
            the space-time renderers; costs memory proportional to the
            run's total traffic).
        fault_plan:
            Optional deterministic fault schedule
            (:class:`repro.pram.faults.FaultPlan`).  Faults fire at
            their exact steps and are recorded in the report's
            ``faults``; the run itself continues (crash-stop kills one
            processor, not the machine).  For *recovery* — resuming a
            faulted run from a checkpoint — see
            :func:`repro.pram.checkpoint.run_with_recovery`.
        budget_note:
            Optional derivation of ``max_steps`` (e.g. the budget
            formula), included in the :class:`DeadlockError` message.
        """
        with telemetry_span(
            "pram.run", nprocs=len(programs), mode=self.mode.name,
        ) as sp:
            execution = LockstepExecution(
                self.memory, programs, fault_plan=fault_plan, trace=trace,
            )
            while not execution.finished:
                if execution.steps >= max_steps:
                    note = f" [budget: {budget_note}]" if budget_note else ""
                    raise DeadlockError(
                        f"run exceeded max_steps={max_steps} with "
                        f"{execution.live} processors still live{note}"
                    )
                execution.step()
            report = execution.build_report()
            if telemetry_enabled():
                sp.set(steps=report.steps, faults=len(report.faults))
                METRICS.counter("pram.lockstep.steps").inc(report.steps)
                METRICS.counter("pram.faults.fired").inc(len(report.faults))
        return report
