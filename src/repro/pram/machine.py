"""The synchronous PRAM machine driving instruction-level programs.

The machine advances all live processors in lockstep: at each step it
collects every processor's pending instruction, hands the step's reads
and writes to :class:`repro.pram.memory.SharedMemory` (which enforces
the access mode), delivers read results, and moves on.  Processors are
plain generators (see :mod:`repro.pram.program`), so algorithm code
reads like the paper's pseudocode.

A processor finishes by returning or yielding :class:`Halt`; the run
finishes when every processor has finished.  Runs are bounded by
``max_steps`` to convert accidental livelock into a diagnosable
:class:`repro.errors.DeadlockError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Sequence

import numpy as np

from .._util import require
from ..errors import DeadlockError, ProgramError
from .memory import AccessMode, SharedMemory
from .program import Halt, Instruction, LocalBarrier, Read, Write

__all__ = ["PRAM", "MachineReport"]

#: A program factory: called with (pid, nprocs), returns the processor
#: generator.
ProgramFactory = Callable[[int, int], Generator]


@dataclass(frozen=True)
class StepTrace:
    """One synchronous step's memory traffic (tracing runs only)."""

    step: int
    reads: dict[int, int]
    writes: dict[int, tuple[int, int]]


@dataclass(frozen=True)
class MachineReport:
    """Outcome of one PRAM run.

    Attributes
    ----------
    steps:
        Synchronous steps executed (the paper's time measure).
    nprocs:
        Number of processors the run was launched with.
    memory:
        The final shared memory contents.
    peak_step_footprint:
        Largest number of distinct cells touched in one step.
    trace:
        Per-step memory traffic when the run was launched with
        ``trace=True`` (else ``None``); consumed by
        :mod:`repro.pram.trace`'s renderers.
    """

    steps: int
    nprocs: int
    memory: np.ndarray
    peak_step_footprint: int
    trace: tuple[StepTrace, ...] | None = None

    @property
    def cost(self) -> int:
        """Time-processor product."""
        return self.steps * self.nprocs


class PRAM:
    """A ``p``-processor synchronous PRAM with conflict enforcement.

    Parameters
    ----------
    memory_size:
        Number of shared cells.
    mode:
        Access mode (:class:`repro.pram.memory.AccessMode` or its name).
    initial_memory:
        Optional initial shared-memory contents.

    Examples
    --------
    Two processors swap two cells through a scratch area:

    >>> def swapper(pid, nprocs):
    ...     v = yield Read(pid)          # step 1: read own cell
    ...     yield Write(2 + pid, v)      # step 2: stash
    ...     v = yield Read(2 + (1 - pid))  # step 3: read the other stash
    ...     yield Write(pid, v)          # step 4: write back swapped
    >>> machine = PRAM(4, mode="EREW", initial_memory=[10, 20, 0, 0])
    >>> report = machine.run([swapper, swapper])
    >>> report.memory[:2].tolist(), report.steps
    ([20, 10], 4)
    """

    def __init__(
        self,
        memory_size: int,
        mode: AccessMode | str = AccessMode.CREW,
        initial_memory: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        self.memory = SharedMemory(memory_size, mode, initial_memory)
        self.mode = self.memory.mode

    def run(
        self,
        programs: Sequence[ProgramFactory],
        *,
        max_steps: int = 1_000_000,
        trace: bool = False,
    ) -> MachineReport:
        """Execute the given programs to completion in lockstep.

        Parameters
        ----------
        programs:
            One factory per processor; processor ``i`` runs
            ``programs[i](i, len(programs))``.
        max_steps:
            Step budget; exceeding it raises :class:`DeadlockError`.
        trace:
            Record every step's memory traffic into the report (for
            the space-time renderers; costs memory proportional to the
            run's total traffic).
        """
        require(len(programs) >= 1, "need at least one processor")
        traces: list[StepTrace] | None = [] if trace else None
        nprocs = len(programs)
        procs: list[Generator | None] = [
            factory(pid, nprocs) for pid, factory in enumerate(programs)
        ]
        # Pending value to send into each generator (read results).
        inbox: list[int | None] = [None] * nprocs
        live = nprocs
        steps = 0
        # Prime: advance each generator to its first yield.
        pending: list[Instruction | None] = [None] * nprocs
        for pid in range(nprocs):
            pending[pid] = self._advance(procs, pid, None)
            if pending[pid] is None:
                live -= 1
        while live > 0:
            if steps >= max_steps:
                raise DeadlockError(
                    f"run exceeded max_steps={max_steps} with {live} "
                    f"processors still live"
                )
            steps += 1
            reads: dict[int, int] = {}
            writes: dict[int, tuple[int, int]] = {}
            for pid, instr in enumerate(pending):
                if instr is None:
                    continue
                if isinstance(instr, Read):
                    reads[pid] = instr.addr
                elif isinstance(instr, Write):
                    writes[pid] = (instr.addr, int(instr.value))
                elif isinstance(instr, LocalBarrier):
                    pass
                elif isinstance(instr, Halt):
                    procs[pid].close()
                    procs[pid] = None
                    pending[pid] = None
                    live -= 1
                else:
                    raise ProgramError(
                        f"processor {pid} yielded {instr!r}, which is not "
                        f"an instruction"
                    )
            results = self.memory.apply_step(reads, writes)
            if traces is not None:
                traces.append(StepTrace(steps, dict(reads), dict(writes)))
            for pid in list(reads) + list(writes) + [
                i for i, ins in enumerate(pending)
                if isinstance(ins, LocalBarrier)
            ]:
                send = results.get(pid)
                pending[pid] = self._advance(procs, pid, send)
                if pending[pid] is None:
                    live -= 1
        return MachineReport(
            steps=steps,
            nprocs=nprocs,
            memory=self.memory.snapshot(),
            peak_step_footprint=self.memory.peak_step_footprint,
            trace=tuple(traces) if traces is not None else None,
        )

    @staticmethod
    def _advance(
        procs: list[Generator | None], pid: int, send: int | None
    ) -> Instruction | None:
        gen = procs[pid]
        if gen is None:
            return None
        try:
            if send is None:
                return next(gen)
            return gen.send(send)
        except StopIteration:
            procs[pid] = None
            return None
