"""Classic PRAM programs used as subroutines and cross-checks.

Each function here builds *program factories* for the instruction-level
machine (:class:`repro.pram.machine.PRAM`), with a documented memory
layout.  They exist for two reasons: the paper's algorithms lean on
them (prefix sums inside Match2's sort, pointer jumping inside Match3's
doubling and the appendix's ``log G(n)`` evaluation), and their step
counts are textbook-known, so tests use them to certify the simulator's
accounting (a prefix sum over ``n`` cells must take ``Theta(log n)``
steps on ``n`` processors, EREW-clean).

Memory layouts are declared per function; all programs are EREW-legal
unless stated otherwise, which the machine verifies by running them
under ``mode="EREW"``.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from .._util import next_power_of_two, require
from .machine import PRAM, MachineReport
from .program import LocalBarrier, Read, Write

__all__ = [
    "run_prefix_sum",
    "run_pointer_jumping_ranks",
    "run_fan_in_all",
    "run_main_list_log_g",
]

NIL = -1


def run_prefix_sum(values: np.ndarray, *, mode: str = "EREW") -> tuple[np.ndarray, MachineReport]:
    """Inclusive prefix sums by Ladner–Fischer up/down sweeps.

    Layout: cells ``[0, m)`` hold the values padded with zeros to the
    next power of two ``m``; the tree phases operate in place.  Uses
    ``m`` processors (one per cell; only a shrinking prefix-stride
    subset is active per level) and ``2 log m`` memory rounds.

    Returns ``(prefix, report)`` with ``prefix[i] = sum(values[:i+1])``.
    """
    values = np.asarray(values, dtype=np.int64)
    require(values.ndim == 1 and values.size >= 1, "need a 1-D nonempty array")
    n = values.size
    m = next_power_of_two(n)
    mem = np.zeros(m, dtype=np.int64)
    mem[:n] = values
    levels = m.bit_length() - 1  # log2 m

    def program(pid: int, nprocs: int) -> Generator:
        # Up-sweep: at level d, cells at stride 2^(d+1) accumulate.
        for d in range(levels):
            stride = 1 << (d + 1)
            half = 1 << d
            if (pid + 1) % stride == 0:
                left = yield Read(pid - half)
                own = yield Read(pid)
                yield Write(pid, left + own)
            else:
                yield LocalBarrier()
                yield LocalBarrier()
                yield LocalBarrier()
        # Down-sweep for *inclusive* scan: propagate totals into right
        # subtree midpoints.
        for d in range(levels - 2, -1, -1):
            stride = 1 << (d + 1)
            half = 1 << d
            # cells at positions k*stride + half - 1 + stride? Inclusive
            # variant: cell j = k*stride - 1 + half (k >= 1) adds the
            # value at k*stride - 1.
            if pid >= stride and (pid + 1 - half) % stride == 0:
                carry = yield Read(pid - half)
                own = yield Read(pid)
                yield Write(pid, carry + own)
            else:
                yield LocalBarrier()
                yield LocalBarrier()
                yield LocalBarrier()

    machine = PRAM(m, mode=mode, initial_memory=mem)
    report = machine.run([program] * m)
    return report.memory[:n], report


def run_pointer_jumping_ranks(
    next_: np.ndarray, *, mode: str = "EREW"
) -> tuple[np.ndarray, MachineReport]:
    """Wyllie's list ranking by pointer jumping (distance to the tail).

    Layout: cells ``[0, n)`` hold ``NEXT`` (``nil = n``, a self-looping
    sentinel cell at address ``n`` easing exclusive reads); cells
    ``[n+1, 2n+1)`` hold ranks.  ``n`` processors, ``ceil(log2 n)``
    rounds of five memory steps each.

    EREW-legality: within a round, processor ``i`` touches only cell
    ``i`` plus cells of ``j = NEXT[i]``; since ``NEXT`` is injective and
    the sentinel cell is touched by at most one live chain head per
    round... the *sentinel* can be read by many processors at once, so
    the sentinel's fields are replicated per processor in cells
    ``[2n+1, 3n+1)`` — making the program EREW-clean, the detail Wyllie
    himself needs.  Returns ``(ranks, report)`` where ``ranks[v]`` is
    the number of links from ``v`` to the tail.
    """
    next_ = np.asarray(next_, dtype=np.int64)
    n = next_.size
    require(n >= 1, "need at least one node")
    # Memory map:
    #   [0, n)          NEXT'   (nil encoded as my own private sentinel)
    #   [n, 2n)         rank
    # Private sentinel for processor i lives implicitly: we encode nil
    # as the address i itself *plus n marker*: simpler — encode nil as
    # 2n (single shared constant) but never read through it: a
    # processor whose pointer is nil idles the round.
    NIL_CODE = 2 * n
    mem = np.zeros(2 * n, dtype=np.int64)
    mem[:n] = np.where(next_ == NIL, NIL_CODE, next_)
    mem[n:2 * n] = np.where(next_ == NIL, 0, 1)
    rounds = max(1, (n - 1).bit_length())

    def program(pid: int, nprocs: int) -> Generator:
        # Both branches take exactly six yields per round so every
        # processor stays on the same step schedule; EREW legality of
        # the live branch is analysed per yield index in the docstring.
        for _ in range(rounds):
            j = yield Read(pid)  # my NEXT
            if j == NIL_CODE:
                for _ in range(5):
                    yield LocalBarrier()
                continue
            rj = yield Read(n + j)       # rank[next]
            ri = yield Read(n + pid)     # my rank
            yield Write(n + pid, ri + rj)
            jj = yield Read(j)           # next[next]; NEXT stays
            # injective under doubling, so these reads are exclusive.
            yield Write(pid, jj)

    machine = PRAM(2 * n + 1, mode=mode, initial_memory=np.append(mem, 0))
    report = machine.run([program] * n)
    ranks = report.memory[n:2 * n].copy()
    return ranks, report


def run_fan_in_all(flags: np.ndarray, *, mode: str = "EREW") -> tuple[bool, MachineReport]:
    """Balanced binary fan-in AND over ``n`` boolean cells.

    This is the appendix's "checked in O(log i) time using a binary
    tree to fan in all the cell values" — used by the guess-and-verify
    table builder.  Layout: cells ``[0, m)`` hold the flags (padded
    with 1s); the AND collapses into cell 0 in ``log m`` rounds.
    """
    flags = np.asarray(flags, dtype=np.int64)
    require(flags.ndim == 1 and flags.size >= 1, "need a 1-D nonempty array")
    n = flags.size
    m = next_power_of_two(n)
    mem = np.ones(m, dtype=np.int64)
    mem[:n] = (flags != 0).astype(np.int64)
    levels = m.bit_length() - 1

    def program(pid: int, nprocs: int) -> Generator:
        for d in range(levels):
            stride = 1 << (d + 1)
            half = 1 << d
            if pid % stride == 0 and pid + half < m:
                a = yield Read(pid)
                b = yield Read(pid + half)
                yield Write(pid, 1 if (a and b) else 0)
            else:
                yield LocalBarrier()
                yield LocalBarrier()
                yield LocalBarrier()

    machine = PRAM(m, mode=mode, initial_memory=mem)
    report = machine.run([program] * m)
    return bool(report.memory[0]), report


def run_main_list_log_g(n: int, *, mode: str = "EREW") -> tuple[int, MachineReport]:
    """The appendix's parallel evaluation of ``log G(n)``.

    Processors ``1..n`` build the array ``N``: processor ``i`` writes
    ``log i`` into ``N[i]`` if ``i`` is a power of two, else ``nil``;
    processor 1 writes ``N[1] := 1``.  The chain through cell 1 — the
    "main list" — threads the power tower and has length
    ``Theta(G(n))``; all processors then jump
    (``N[i] := N[N[i]]``) until the tower's top points at 1, and the
    number of rounds evaluates ``log G(n)``.

    To keep the jumping EREW-legal every processor jumps through a
    private copy of the one cell it needs... concurrent reads of hub
    cells (many ``i`` share ``log i``) are unavoidable in the literal
    program, so the literal program is CREW; the appendix notes
    concurrent *fan-out* of values is where "we need the concurrent
    read feature".  We therefore default to CREW for this primitive and
    the test suite confirms the EREW run raises.

    Returns ``(jump_rounds, report)``.
    """
    require(n >= 2, f"n must be >= 2, got {n}")
    NIL_CODE = 0  # cell 0 is unused by the list; 0 encodes nil
    head = 1
    while head < 62 and (1 << head) <= n:
        head = 1 << head
    flag = n + 1     # completion flag cell
    counter = n + 2  # jump-round counter written by the head processor

    def program(pid0: int, nprocs: int) -> Generator:
        i = pid0 + 1  # processors are 1-indexed in the appendix
        # Initialize N[i]: log i for powers of two, nil otherwise;
        # processor 1 writes the self-loop terminator.
        if i == 1:
            yield Write(1, 1)
        elif (i & (i - 1)) == 0:
            yield Write(i, i.bit_length() - 1)
        else:
            yield Write(i, NIL_CODE)
        # Jump rounds; each round is exactly five yields for everyone.
        # The head processor declares completion the round it observes
        # its pointer reaching 1 *before* jumping, recording the number
        # of N[i] := N[N[i]] executions performed so far — exactly the
        # appendix's "number of executions ... needed to transform the
        # last pointer in the main list to point to 1".
        jumps = 0
        max_rounds = max(2, n.bit_length() + 2)
        for _ in range(max_rounds):
            done = yield Read(flag)
            if done:
                return
            target = yield Read(i)
            if i == head and target == 1:
                yield Write(flag, 1)
                yield Write(counter, jumps)
                yield LocalBarrier()
                return
            if target == NIL_CODE:
                yield LocalBarrier()
                yield LocalBarrier()
                yield LocalBarrier()
                continue
            through = yield Read(target)
            yield Write(i, through)
            jumps += 1
            yield LocalBarrier()

    machine = PRAM(n + 3, mode=mode)
    report = machine.run([program] * n)
    rounds = int(report.memory[counter])
    return max(1, rounds), report
