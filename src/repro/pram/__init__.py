"""PRAM substrate: the machine model the paper's bounds are stated on.

The paper's results are synchronous-PRAM step counts for ``p``
processors under EREW/CREW/CRCW memory rules.  Python cannot execute
true shared-memory lockstep parallelism (the GIL), so this subpackage
provides the two standard simulation tiers and cross-checks them:

- **Instruction level** (:mod:`repro.pram.machine`,
  :mod:`repro.pram.memory`, :mod:`repro.pram.program`): processors are
  Python generators yielding one shared-memory operation per
  synchronous step; the machine executes all processors in lockstep and
  *enforces* the memory model — an EREW run that ever has two
  processors touch one cell in one step raises
  :class:`repro.errors.MemoryConflictError`.  This tier is the ground
  truth for step counts and legality at small ``n``.

- **Cost-model level** (:mod:`repro.pram.cost`): algorithms execute
  vectorized in NumPy while a :class:`repro.pram.cost.CostModel`
  charges Brent-scheduled time — a parallel step of width ``m`` on
  ``p`` processors costs ``ceil(m/p)`` time units and ``m`` work.  This
  tier reproduces the complexity curves at ``n`` up to millions.

:mod:`repro.pram.primitives` holds PRAM programs for the subroutines
the paper leans on — pointer jumping, parallel prefix, balanced
fan-in — written for the instruction-level machine.
"""

from .cost import CostModel, CostReport, PhaseCost
from .machine import LockstepExecution, MachineReport, PRAM
from .memory import AccessMode, SharedMemory
from .program import Halt, LocalBarrier, Read, Write
from .faults import (
    BitFlip,
    DroppedWrite,
    Fault,
    FaultEvent,
    FaultPlan,
    ProcessorCrash,
)
from .checkpoint import (
    Checkpoint,
    CheckpointStore,
    RecoveryOutcome,
    run_with_recovery,
)
from .algorithms import (
    run_iterate_f,
    run_match1,
    run_match2,
    run_match3,
    run_match4,
    step_budget,
)
from .virtualize import run_virtualized, virtualize
from .trace import memory_heat, processor_activity, utilization

__all__ = [
    "run_iterate_f",
    "run_match1",
    "run_match2",
    "run_match3",
    "run_match4",
    "step_budget",
    "FaultPlan",
    "Fault",
    "FaultEvent",
    "ProcessorCrash",
    "BitFlip",
    "DroppedWrite",
    "Checkpoint",
    "CheckpointStore",
    "RecoveryOutcome",
    "run_with_recovery",
    "LockstepExecution",
    "virtualize",
    "run_virtualized",
    "processor_activity",
    "memory_heat",
    "utilization",
    "CostModel",
    "CostReport",
    "PhaseCost",
    "MachineReport",
    "PRAM",
    "AccessMode",
    "SharedMemory",
    "Halt",
    "LocalBarrier",
    "Read",
    "Write",
]
