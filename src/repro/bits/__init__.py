"""Bit-level machinery from the paper's appendix.

The appendix of Han (SPAA 1989) spends considerable care on making the
matching partition function *computable* on an EREW PRAM whose
processors lack a "count trailing zeros" instruction.  This subpackage
reproduces that machinery:

- :mod:`repro.bits.bitops` — most/least-significant-bit extraction,
  both as direct (vectorized NumPy) primitives and via the paper's
  unary-to-binary conversion trick; bit-reversal permutations.
- :mod:`repro.bits.tables` — the lookup tables the appendix describes:
  the unary→binary table ``T`` (with only ``log n`` useful entries) and
  the bit-reversal permutation table, together with their construction
  cost accounting.
- :mod:`repro.bits.iterated_log` — ``log^(i) n``, ``G(n)`` and
  ``log G(n)``: sequential procedures exactly following the appendix,
  plus the parallel pointer-jumping evaluation of ``log G(n)`` on the
  power-of-two "main list".
- :mod:`repro.bits.lookup` — construction of the lookup table for the
  iterated matching partition function ``f^(i)`` (used by Match3 and
  Match4's step 1): the direct recursive scheme, the appendix's
  guess-and-verify EREW scheme, and the shuffle-graph-coloring view.
- :mod:`repro.bits.bitlen_tables` — the 16-bit two-level bit-length /
  MSB / LSB lookup tables and the cached pair-label tables the
  vectorized backend engine (:mod:`repro.backends.engine`) evaluates
  whole PRAM rounds through.
"""

from .bitops import (
    bit_at,
    bit_reverse,
    lsb_index,
    lsb_index_scalar,
    msb_index,
    msb_index_scalar,
    unary_to_binary,
)
from .iterated_log import (
    G,
    big_g_sequential,
    ilog2,
    ilog2_int,
    log_G,
    log_g_pointer_jumping,
)
from .tables import BitReversalTable, UnaryToBinaryTable
from .lookup import (
    MatchingFunctionTable,
    build_table_direct,
    build_table_guess_and_verify,
    shuffle_graph,
)
from .bitlen_tables import (
    bit_length_table,
    lsb_index_table,
    msb_index_table,
    pair_label_table,
)

__all__ = [
    "bit_at",
    "bit_reverse",
    "lsb_index",
    "lsb_index_scalar",
    "msb_index",
    "msb_index_scalar",
    "unary_to_binary",
    "G",
    "big_g_sequential",
    "ilog2",
    "ilog2_int",
    "log_G",
    "log_g_pointer_jumping",
    "BitReversalTable",
    "UnaryToBinaryTable",
    "MatchingFunctionTable",
    "build_table_direct",
    "build_table_guess_and_verify",
    "shuffle_graph",
    "bit_length_table",
    "lsb_index_table",
    "msb_index_table",
    "pair_label_table",
]
