"""Iterated logarithms and the functions ``G(n)`` and ``log G(n)``.

The paper's complexity bounds are phrased in terms of

- ``log^(i) n``: the ``i``-times-iterated base-2 logarithm
  (``log^(1) n = log n``, ``log^(k) n = log(log^(k-1) n)``),
- ``G(n) = min{ k : log^(k) n < 1 }`` — essentially ``log* n``, the
  number of ``f`` rounds Match1 needs before labels reach constant
  size, and
- ``log G(n)`` — the number of pointer-doubling rounds Match3 needs.

The appendix insists these are *computable inside the algorithms'
budgets* and gives concrete procedures:

- a **sequential** evaluation of ``log n`` by bit-reversal +
  lowest-set-bit isolation + unary→binary conversion, iterated ``i``
  times for ``log^(i) n`` and to a constant for ``G(n)``;
- a **parallel** evaluation of ``log G(n)`` on an EREW PRAM: processors
  build the "main list" linking the powers of two below ``n`` and count
  its length by pointer jumping — the number of jumps is
  ``Theta(log G(n))``.

Both are reproduced here; the parallel procedure returns its jump count
so benchmarks can confirm the ``O(log G(n))`` claim (E10).
"""

from __future__ import annotations

import math

import numpy as np

from .._util import require
from ..errors import InvalidParameterError

__all__ = [
    "ilog2",
    "ilog2_int",
    "G",
    "log_G",
    "big_g_sequential",
    "log_g_pointer_jumping",
]


def ilog2(n: float, i: int = 1) -> float:
    """Real-valued iterated logarithm ``log^(i) n``.

    ``i = 0`` returns ``n`` itself.  Raises if any intermediate value is
    non-positive (i.e. if ``i >= G(n)`` would push below the domain of
    ``log``); callers probing near the boundary should use :func:`G`.
    """
    require(i >= 0, f"iteration count must be >= 0, got {i}")
    x = float(n)
    for _ in range(i):
        if x <= 0:
            raise InvalidParameterError(
                f"log^({i}) of {n} is undefined (intermediate value {x} <= 0)"
            )
        x = math.log2(x)
    return x


def ilog2_int(n: int, i: int = 1) -> int:
    """Integer iterated logarithm: ``i`` applications of
    ``x -> max(1, ceil(log2 x))``.

    This is the form algorithm code uses for row counts and set-count
    budgets: always at least 1, monotone in ``n``, and an upper bound on
    the real-valued :func:`ilog2` whenever the latter is ``>= 1``.
    """
    require(n >= 1, f"n must be >= 1, got {n}")
    require(i >= 0, f"iteration count must be >= 0, got {i}")
    x = int(n)
    for _ in range(i):
        x = max(1, (x - 1).bit_length())
    return x


def G(n: int) -> int:
    """``G(n) = min{ k : log^(k) n < 1 }`` (definition in section 1).

    ``G(1) = 0`` (already below 1 after zero applications... the paper
    defines ``log^(1)`` as the first application, so ``G(n) >= 1`` for
    ``n >= 2``; for ``n = 1``, ``log n = 0 < 1`` after one application).

    >>> [G(n) for n in (2, 4, 16, 65536)]
    [2, 3, 4, 5]
    """
    require(n >= 1, f"n must be >= 1, got {n}")
    x = float(n)
    k = 0
    while x >= 1.0:
        x = math.log2(x)
        k += 1
    return k


def log_G(n: int) -> int:
    """``ceil(log2 G(n))``, clamped below at 1 (used as a round count).

    Match3 runs its doubling loop ``log G(n)`` times; a round count of
    zero would leave labels un-concatenated, so the floor is 1.
    """
    return max(1, (G(n) - 1).bit_length() if G(n) > 1 else 1)


def big_g_sequential(n: int) -> tuple[int, int]:
    """Evaluate ``G(n)`` by the appendix's sequential procedure.

    Repeatedly applies the appendix's ``log`` evaluation — isolate the
    most significant bit via bit reversal, convert unary to binary —
    until the value drops to a constant, counting iterations.  Returns
    ``(G_value, steps)`` where ``steps`` is the number of constant-time
    iterations executed, confirming the quoted ``O(G(n))`` running time.

    The integer procedure computes ``bit_length``-style logs so its
    fixed point is 1; it stops one application short of the real-valued
    definition (which needs one more ``log`` to drop below 1), so the
    returned value is ``steps + 1``, which equals :func:`G` for all
    ``n >= 2``.
    """
    require(n >= 2, f"n must be >= 2, got {n}")
    x = int(n)
    steps = 0
    while x > 1:
        # log n  per the appendix: n' = bit_reverse(n); isolate lowest
        # set bit of n'; convert; logn = k - position.  Net effect: the
        # index of the most significant set bit, i.e. floor(log2 x).
        x = x.bit_length() - 1
        steps += 1
        if x == 0:
            x = 1
    return steps + 1, steps


def log_g_pointer_jumping(n: int) -> tuple[int, int]:
    """Evaluate ``log G(n)`` by the appendix's parallel procedure.

    Builds the array ``N[1..n]`` in which processor ``i`` writes
    ``log i`` when ``i`` is a power of two (``nil`` otherwise).  Each
    power of two ``2^k`` thus points at cell ``k``, so the only chain
    reaching cell 1 — the **main list** — threads the power tower
    ``... -> 65536 -> 16 -> 4 -> 2 -> 1``: exactly the values
    ``log^(j)``-reachable from ``n``, so its length is ``Theta(G(n))``
    ("We can evaluate G(n) by computing the length of the main list").
    Collapsing the main list by pointer jumping
    (``N[i] := N[N[i]]``) then takes ``Theta(log G(n))`` rounds, which
    is the appendix's evaluation of ``log G(n)``.

    Returns ``(jump_rounds, main_list_length)``.  This runs vectorized
    over the ``N`` array; the instruction-level PRAM version lives in
    :mod:`repro.pram.primitives` and is cross-checked in tests.
    """
    require(n >= 2, f"n must be >= 2, got {n}")
    size = int(n) + 1
    next_ = np.full(size, -1, dtype=np.int64)  # -1 is the appendix's nil
    idx = np.arange(size, dtype=np.int64)
    powers = idx[(idx > 0) & ((idx & (idx - 1)) == 0)]
    # Processor i (a power of two) sets N[i] := log i.
    logs = np.zeros_like(powers)
    logs[powers > 1] = np.log2(
        powers[powers > 1].astype(np.float64)
    ).astype(np.int64)
    next_[powers] = logs
    next_[1] = 1  # "Processor 1 sets N[1] := 1": self-loop terminator.
    # The main list's head is the largest tower value <= n: repeatedly
    # ask "which cell points at `head`?", i.e. i with log i == head.
    head = 1
    while head < 62 and (1 << head) <= n:
        head = 1 << head
    # Main list length: walk down from head (sequentially, for the
    # reported figure; the PRAM algorithm never needs this walk).
    length = 1
    v = head
    while v != 1:
        v = int(next_[v])
        length += 1
    # Collapse by pointer jumping, counting synchronous rounds.  Cells
    # holding nil do not jump (their processors idle).
    rounds = 0
    while int(next_[head]) != 1:
        live = next_ >= 0
        jumped = next_.copy()
        jumped[live] = next_[next_[live]]
        next_ = jumped
        rounds += 1
    return max(1, rounds), length
