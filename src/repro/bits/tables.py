"""Lookup tables from the paper's appendix, with construction costs.

Two tables appear in the appendix:

- **Unary-to-binary table** ``T``: maps an isolated power of two ``2^k``
  to its exponent ``k``.  "The table T has only log n entries which are
  useful."  On an EREW machine each processor needs its own copy;
  ``p`` copies can be created "using O(p log n) space and
  O(n/p + log p) time" — we account both figures so the preprocessing
  cost tables in E10 can be reproduced.
- **Bit-reversal permutation table**: maps a ``w``-bit value to its
  bit-reversed image, letting the MSB pipeline reuse the LSB pipeline.

Both classes index by a *compressed* key so the table really does hold
only the useful entries: the unary→binary table keys by exponent slot
(constant-time re-derivation of the slot from the value is part of the
conversion trick), and the bit-reversal table holds all ``2^w`` entries
for small ``w`` exactly as a tabulated instruction would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import as_index_array, ceil_div, require
from ..errors import InvalidParameterError
from .bitops import bit_reverse, unary_to_binary

__all__ = ["UnaryToBinaryTable", "BitReversalTable"]


@dataclass(frozen=True)
class TableCost:
    """Construction cost of a preprocessing table.

    Attributes
    ----------
    space:
        Total memory cells used across all processor-private copies.
    time:
        Synchronous PRAM steps to build the copies.
    copies:
        Number of processor-private copies built (EREW needs one per
        processor; CRCW models can share one).
    """

    space: int
    time: int
    copies: int


class UnaryToBinaryTable:
    """The appendix's table ``T``: ``2^k -> k`` for ``0 <= k < width``.

    Parameters
    ----------
    width:
        Number of useful entries, i.e. the number of distinct bit
        positions (``ceil(log2 n)`` for addresses below ``n``).
    copies:
        Number of EREW processor-private copies to account for.

    Notes
    -----
    Internally the entries are stored densely (``width`` cells per
    copy), matching the paper's observation that only ``log n`` entries
    are useful; the power-of-two key is reduced to its slot with the
    same exact ``log2`` primitive the direct path uses, so the class is
    a *faithful cost model* of the table while remaining O(log n) space.
    """

    def __init__(self, width: int, *, copies: int = 1) -> None:
        require(width >= 1, f"width must be >= 1, got {width}")
        require(width <= 53, f"width must be <= 53, got {width}")
        require(copies >= 1, f"copies must be >= 1, got {copies}")
        self.width = int(width)
        self.copies = int(copies)
        # The dense table: slot k holds k. Trivial contents, but the
        # object's value is the cost accounting and the domain checking.
        self._table = np.arange(self.width, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UnaryToBinaryTable(width={self.width}, copies={self.copies})"

    @property
    def construction_cost(self) -> TableCost:
        """EREW construction cost per the appendix.

        ``p`` copies of a ``log n``-entry table: O(p log n) space; the
        time to replicate by doubling is ``O(log p)`` plus the O(log n)
        to build the first copy sequentially per processor — the paper
        quotes ``O(n/p + log p)`` in the context of an n-sized input; we
        report the table-only terms.
        """
        logp = max(1, (self.copies - 1).bit_length())
        return TableCost(
            space=self.copies * self.width,
            time=self.width + logp,
            copies=self.copies,
        )

    def lookup(self, powers: np.ndarray) -> np.ndarray:
        """Convert an array of isolated powers of two to exponents.

        Raises
        ------
        InvalidParameterError
            If any value is not a power of two or is out of range for
            this table's width.
        """
        powers = as_index_array(powers, name="powers")
        slots = unary_to_binary(powers)
        if slots.size and int(slots.max()) >= self.width:
            raise InvalidParameterError(
                f"value 2^{int(slots.max())} exceeds table width {self.width}"
            )
        return self._table[slots]


class BitReversalTable:
    """Tabulated bit-reversal permutation for ``width``-bit values.

    Holds all ``2^width`` entries, exactly what the appendix means by
    "a bit reversal permutation table".  Kept for small widths (the
    paper applies it to values of magnitude ``O(log n)`` after the
    first crunching round; we cap at 22 bits = 4M entries).
    """

    MAX_WIDTH = 22

    def __init__(self, width: int) -> None:
        require(1 <= width <= self.MAX_WIDTH,
                f"width must be in [1, {self.MAX_WIDTH}], got {width}")
        self.width = int(width)
        self._table = bit_reverse(
            np.arange(1 << self.width, dtype=np.int64), self.width
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BitReversalTable(width={self.width})"

    def __len__(self) -> int:
        return 1 << self.width

    @property
    def construction_cost(self) -> TableCost:
        """One shared copy: ``2^width`` cells, built in one parallel step
        per cell (time ``ceil(2^width / p)`` for any ``p``; we report
        ``p = 2^width`` i.e. constant time, as the CRCW construction
        does)."""
        return TableCost(space=1 << self.width, time=1, copies=1)

    def lookup(self, values: np.ndarray) -> np.ndarray:
        """Return the bit-reversed image of each value."""
        values = as_index_array(values, name="values")
        if values.size and (int(values.min()) < 0
                            or int(values.max()) >= (1 << self.width)):
            raise InvalidParameterError(
                f"values must fit in {self.width} bits"
            )
        return self._table[values]
