"""Bit extraction primitives (paper appendix, first half).

The matching partition function ``f(<a,b>) = 2k + a_k`` needs ``k``: the
index of the most- (or least-) significant bit in which ``a`` and ``b``
differ.  The paper's appendix gives an O(1)-step recipe built from three
ingredients, all reproduced here:

1. ``c := a XOR b`` — isolate the differing bits.
2. ``c := c XOR (c - 1); c := (c + 1) / 2`` — isolate the *least*
   significant 1-bit as a power of two (the classic ``x & -x`` trick,
   written the way the paper writes it).
3. A **unary-to-binary conversion**: turn the power of two ``2^k`` into
   the exponent ``k``, either with a dedicated machine instruction or a
   lookup table (see :mod:`repro.bits.tables`).

For the *most* significant bit the appendix composes the same pipeline
with a **bit-reversal permutation table** so the MSB becomes the LSB.

This module provides both scalar reference implementations (pure
Python, ``int.bit_length``-based, used as oracles in tests) and
vectorized NumPy implementations used by the cost-model algorithm tier.
The vectorized forms are exact for all values ``0 <= x < 2**53`` — far
beyond any address or label this library manipulates — and guard that
domain explicitly.
"""

from __future__ import annotations

import numpy as np

from .._util import as_index_array
from ..errors import InvalidParameterError

__all__ = [
    "msb_index_scalar",
    "lsb_index_scalar",
    "msb_index",
    "lsb_index",
    "bit_at",
    "bit_reverse",
    "unary_to_binary",
]

#: Largest value for which float64-based log2 extraction is exact.
_EXACT_LIMIT = 1 << 53


def msb_index_scalar(x: int) -> int:
    """Index of the most significant set bit of ``x`` (bit 0 = LSB).

    Pure-Python reference used as the test oracle.

    >>> msb_index_scalar(1), msb_index_scalar(2), msb_index_scalar(12)
    (0, 1, 3)
    """
    if x <= 0:
        raise InvalidParameterError(f"msb_index requires a positive value, got {x}")
    return int(x).bit_length() - 1


def lsb_index_scalar(x: int) -> int:
    """Index of the least significant set bit of ``x`` (bit 0 = LSB).

    Implemented exactly as the appendix writes it::

        c := x XOR (x - 1)   -- ones up to and including the lowest set bit
        c := (c + 1) / 2     -- the isolated power of two, 2^k
        k := unary_to_binary(c)

    >>> lsb_index_scalar(1), lsb_index_scalar(8), lsb_index_scalar(12)
    (0, 3, 2)
    """
    if x <= 0:
        raise InvalidParameterError(f"lsb_index requires a positive value, got {x}")
    c = x ^ (x - 1)
    c = (c + 1) // 2
    return int(c).bit_length() - 1


def _check_domain(x: np.ndarray, *, name: str) -> None:
    if x.size and (int(x.min()) <= 0 or int(x.max()) >= _EXACT_LIMIT):
        bad_low = int(x.min()) <= 0
        raise InvalidParameterError(
            f"{name} requires values in [1, 2**53); got "
            f"{'non-positive' if bad_low else 'too-large'} entries "
            f"(min={int(x.min())}, max={int(x.max())})"
        )


def msb_index(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`msb_index_scalar` over an int64 array.

    Uses ``floor(log2(x))`` on float64, exact for the guarded domain
    ``1 <= x < 2**53`` because every such integer is representable and
    ``log2`` of it can never round across a power-of-two boundary
    upward (the nearest float64 to ``log2(2**k - eps)`` is below ``k``
    for this range).
    """
    x = as_index_array(x, name="x")
    _check_domain(x, name="msb_index")
    # np.log2 on exact float64 integers; floor gives the bit index.
    out = np.floor(np.log2(x.astype(np.float64))).astype(np.int64)
    # Defensive correction against any platform log2 quirk: exact check.
    too_high = (np.int64(1) << out) > x
    out[too_high] -= 1
    too_low = (np.int64(2) << out) <= x
    out[too_low] += 1
    return out


def lsb_index(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`lsb_index_scalar` over an int64 array.

    Isolates the lowest set bit with the appendix's XOR pipeline (which
    is exactly ``x & -x``), then converts the resulting power of two to
    its exponent.  Exact for ``1 <= x < 2**53``; the isolated bit of any
    such value is itself ``< 2**53`` so the conversion is exact too.
    """
    x = as_index_array(x, name="x")
    _check_domain(x, name="lsb_index")
    c = x ^ (x - 1)
    c = (c + 1) >> 1
    return np.log2(c.astype(np.float64)).astype(np.int64)


def bit_at(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Return bit ``k`` of each ``x`` (elementwise), as 0/1 int64.

    ``k`` may be a scalar or an array broadcastable against ``x``.
    """
    x = np.asarray(x, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    if np.any(k < 0) or np.any(k >= 63):
        raise InvalidParameterError("bit index must be in [0, 63)")
    return (x >> k) & 1


def unary_to_binary(x: np.ndarray) -> np.ndarray:
    """Convert isolated powers of two to their exponents, vectorized.

    This is the appendix's ``convert`` instruction: input values must
    each be exactly ``2^k`` for some ``k``; the output is ``k``.  It is
    the primitive the paper debates building into hardware versus
    looking up in a table (:class:`repro.bits.tables.UnaryToBinaryTable`
    implements the table form with its cost accounting).
    """
    x = as_index_array(x, name="x")
    _check_domain(x, name="unary_to_binary")
    if np.any(x & (x - 1)):
        raise InvalidParameterError("unary_to_binary requires powers of two")
    return np.log2(x.astype(np.float64)).astype(np.int64)


def bit_reverse(x: np.ndarray, width: int) -> np.ndarray:
    """Reverse the low ``width`` bits of each value, vectorized.

    The appendix uses a bit-reversal permutation table to turn the MSB
    problem into the LSB problem ("compute ``n' = a_1 a_2 ... a_k``, the
    bit reversal permutation of ``n``").  This is the direct arithmetic
    form; the table form lives in :class:`repro.bits.tables.BitReversalTable`.

    Values must fit in ``width`` bits.
    """
    x = as_index_array(x, name="x")
    if not 1 <= width <= 62:
        raise InvalidParameterError(f"width must be in [1, 62], got {width}")
    if x.size and (int(x.min()) < 0 or int(x.max()) >> width):
        raise InvalidParameterError(
            f"values must fit in {width} bits for bit_reverse"
        )
    out = np.zeros_like(x)
    v = x.copy()
    for _ in range(width):
        out <<= 1
        out |= v & 1
        v >>= 1
    return out
