"""Lookup tables for iterated matching partition functions (``f^(i)``).

Match3 finishes by replacing ``G(n)``-many applications of ``f`` with a
single table lookup: after crunching labels to ``b`` bits and
concatenating ``g = 2^r`` consecutive labels by pointer doubling, the
packed ``g*b``-bit word indexes a precomputed table whose entries are
the values of the iterated matching partition function
``f^(g)(a_1, ..., a_g)`` (definition in section 2 of the paper)::

    f^(2)(a_1, a_2)        = f(a_1, a_2)
    f^(k)(a_1, ..., a_k)   = f(f^(k-1)(a_1..a_{k-1}), f^(k-1)(a_2..a_k))

This module builds such tables three ways:

- :func:`build_table_direct` — bottom-up dynamic programming over all
  packed tuples, the practical scheme (the paper notes a copy of the
  table "can be constructed in constant time using n processors on the
  CRCW model when k is greater than 4"; our DP is its work-equivalent
  sequential simulation).
- :func:`build_table_guess_and_verify` — the appendix's EREW scheme: a
  triangular tableau of ``i(i+1)/2`` cells holding guessed values of
  every ``f^(q+1)`` sub-window, each verified locally against the two
  cells below it and combined by a binary fan-in in ``O(log i)`` time.
- :func:`shuffle_graph` — the graph-coloring view of [10]/[7]: vertices
  are ``i``-tuples, edges join consecutive windows, and any valid
  coloring *is* a matching partition function table.  Used by tests to
  certify tables independently.

Invalid tuples — those a real linked list can never produce, i.e.
windows whose elements are all equal or contain an adjacent equal pair
— map to the sentinel :data:`INVALID`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from .._util import ceil_div, require
from ..errors import InvalidParameterError

__all__ = [
    "INVALID",
    "MatchingFunctionTable",
    "build_table_direct",
    "build_table_guess_and_verify",
    "shuffle_graph",
    "verify_tableau",
]

#: Sentinel stored for tuples no valid linked list can produce.
INVALID = -1

#: A vectorized pairwise matching partition function: maps equal-length
#: int64 arrays (a, b) with a != b elementwise to int64 labels.
PairFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class MatchingFunctionTable:
    """A realized lookup table for ``f^(arity)`` over ``b``-bit labels.

    Attributes
    ----------
    arity:
        Number of concatenated labels ``g`` the table consumes.
    bits_per_arg:
        Width ``b`` of each label field in the packed key.
    table:
        Dense array of ``2**(arity*bits_per_arg)`` entries;
        ``table[key]`` is ``f^(arity)`` of the unpacked tuple, or
        :data:`INVALID` for impossible windows.
    max_label:
        Largest valid entry; the number of matching sets the table
        partitions into is at most ``max_label + 1``.
    """

    arity: int
    bits_per_arg: int
    table: np.ndarray
    max_label: int

    def __post_init__(self) -> None:
        require(self.arity >= 2, f"arity must be >= 2, got {self.arity}")
        require(self.bits_per_arg >= 1,
                f"bits_per_arg must be >= 1, got {self.bits_per_arg}")

    @property
    def size(self) -> int:
        """Number of table cells, ``2^(arity * bits_per_arg)`` — the
        quantity the paper bounds by ``n`` when sizing ``k``."""
        return int(self.table.size)

    def pack(self, args: np.ndarray) -> np.ndarray:
        """Pack a ``(m, arity)`` matrix of labels into lookup keys.

        Column 0 (the node's own label) lands in the most significant
        field, matching Match3's ``label[v] := label[v]label[NEXT[v]]``
        concatenation order.
        """
        args = np.asarray(args, dtype=np.int64)
        if args.ndim != 2 or args.shape[1] != self.arity:
            raise InvalidParameterError(
                f"expected shape (m, {self.arity}), got {args.shape}"
            )
        if args.size and (int(args.min()) < 0
                          or int(args.max()) >> self.bits_per_arg):
            raise InvalidParameterError(
                f"labels must fit in {self.bits_per_arg} bits"
            )
        b = self.bits_per_arg
        keys = np.zeros(args.shape[0], dtype=np.int64)
        for j in range(self.arity):
            keys = (keys << b) | args[:, j]
        return keys

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Table lookup on packed keys; propagates :data:`INVALID`."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (int(keys.min()) < 0 or int(keys.max()) >= self.size):
            raise InvalidParameterError("packed key out of table range")
        return self.table[keys].astype(np.int64)

    def lookup_tuple(self, args: Sequence[int]) -> int:
        """Scalar convenience: look up one unpacked tuple."""
        key = self.pack(np.asarray([list(args)], dtype=np.int64))[0]
        return int(self.table[key])


def _window_valid_mask(level: int, bits: int, size: int) -> np.ndarray:
    """Validity of each packed ``level``-tuple: no adjacent equal pair.

    Windows drawn from a linked list's label sequence always have
    adjacent labels distinct (``f`` is a matching partition function),
    so these are exactly the reachable windows.
    """
    keys = np.arange(size, dtype=np.int64)
    mask = np.ones(size, dtype=bool)
    field = (np.int64(1) << bits) - 1
    for j in range(level - 1):
        a = (keys >> (bits * j)) & field
        b = (keys >> (bits * (j + 1))) & field
        mask &= a != b
    return mask


def build_table_direct(
    pair_function: PairFunction,
    *,
    arity: int,
    bits_per_arg: int,
    memory_limit: int = 1 << 26,
) -> MatchingFunctionTable:
    """Build the ``f^(arity)`` table by bottom-up dynamic programming.

    Level ``j`` holds ``f^(j)`` of every packed ``j``-tuple; level
    ``j+1`` combines each tuple's prefix and suffix sub-values with one
    ``pair_function`` call, exactly following the recursive definition.
    Tuples whose sub-values coincide (possible only for windows no list
    can produce) and tuples with adjacent equal labels are
    :data:`INVALID`.

    Parameters
    ----------
    pair_function:
        Vectorized ``f``; see :data:`PairFunction`.
    arity:
        Tuple length ``g`` (>= 2).
    bits_per_arg:
        Label field width ``b``; the table has ``2^(g*b)`` cells.
    memory_limit:
        Refuse to build tables with more cells than this — mirroring
        the paper's requirement that the table be no larger than ``n``.
    """
    require(arity >= 2, f"arity must be >= 2, got {arity}")
    require(bits_per_arg >= 1, f"bits_per_arg must be >= 1, got {bits_per_arg}")
    cells = 1 << (arity * bits_per_arg)
    if cells > memory_limit:
        raise InvalidParameterError(
            f"table would need {cells} cells, exceeding the limit "
            f"{memory_limit}; crunch labels further (larger k) or reduce "
            f"the doubling depth"
        )
    b = bits_per_arg
    d = 1 << b
    # Level 2: f over all ordered pairs, INVALID on the diagonal.
    keys2 = np.arange(d * d, dtype=np.int64)
    a = keys2 >> b
    c = keys2 & (d - 1)
    level = np.full(d * d, INVALID, dtype=np.int64)
    ok = a != c
    level[ok] = pair_function(a[ok], c[ok])
    for j in range(3, arity + 1):
        size_j = 1 << (j * b)
        # For ascending keys, key >> b enumerates the previous level
        # with each entry repeated d times, and key & mask tiles it —
        # build the operand arrays directly instead of materializing
        # the key arrays (three size_j int64 temporaries saved).
        lo = np.repeat(level, d)
        hi = np.tile(level, d)
        nxt = np.full(size_j, INVALID, dtype=np.int64)
        ok = (lo != INVALID) & (hi != INVALID) & (lo != hi)
        nxt[ok] = pair_function(lo[ok], hi[ok])
        level = nxt
    valid = _window_valid_mask(arity, b, level.size)
    level[~valid] = INVALID
    max_label = int(level.max()) if np.any(level != INVALID) else INVALID
    return MatchingFunctionTable(
        arity=arity, bits_per_arg=b, table=level, max_label=max_label
    )


# ---------------------------------------------------------------------------
# The appendix's guess-and-verify EREW tableau.
# ---------------------------------------------------------------------------

def _tableau_cells(arity: int) -> Iterator[tuple[int, int]]:
    """Yield (start, length) for every sub-window cell of the tableau.

    The appendix labels cells ``a_p a_{p+1} ... a_{p+q}`` for
    ``1 <= p <= i`` and ``0 <= q <= i - p``: all contiguous windows of
    the argument tuple, ``i(i+1)/2`` in total.
    """
    for length in range(1, arity + 1):
        for start in range(arity - length + 1):
            yield start, length


def verify_tableau(
    pair_function: PairFunction,
    args: Sequence[int],
    tableau: dict[tuple[int, int], int],
) -> bool:
    """Verify one guessed tableau per the appendix, returning validity.

    Every cell ``(start, length)`` for ``length >= 2`` is checked
    against the two cells below it: its value must equal
    ``f(cell(start, length-1), cell(start+1, length-1))``.  Length-1
    cells must hold the arguments themselves.  All checks are
    independent (one verifying processor each, constant time); the
    conjunction is a binary fan-in of depth ``O(log i)`` — we return
    the conjunction, and the fan-in depth is what E10 accounts.
    """
    arity = len(args)
    checks: list[bool] = []
    for start, length in _tableau_cells(arity):
        if (start, length) not in tableau:
            return False
        if length == 1:
            checks.append(tableau[(start, 1)] == args[start])
            continue
        lo = tableau[(start, length - 1)]
        hi = tableau[(start + 1, length - 1)]
        if lo == hi:
            return False
        want = int(pair_function(
            np.asarray([lo], dtype=np.int64),
            np.asarray([hi], dtype=np.int64),
        )[0])
        checks.append(tableau[(start, length)] == want)
    return all(checks)


def build_table_guess_and_verify(
    pair_function: PairFunction,
    *,
    arity: int,
    bits_per_arg: int,
    memory_limit: int = 1 << 20,
) -> MatchingFunctionTable:
    """Build the ``f^(arity)`` table via the appendix's EREW scheme.

    For every packed tuple, fill the triangular tableau bottom-up (the
    simulation of "guessing" the unique correct value — the appendix
    enumerates all guesses in parallel; only the correct one verifies,
    and we construct exactly that one), then run :func:`verify_tableau`
    as the appendix's acceptance check.  Quadratically more work per
    entry than :func:`build_table_direct`, so the memory limit defaults
    lower; the point of this builder is fidelity, not speed, and tests
    assert it agrees cell-for-cell with the direct builder.
    """
    require(arity >= 2, f"arity must be >= 2, got {arity}")
    cells = 1 << (arity * bits_per_arg)
    if cells > memory_limit:
        raise InvalidParameterError(
            f"guess-and-verify table would need {cells} cells, exceeding "
            f"the limit {memory_limit}"
        )
    b = bits_per_arg
    field = (1 << b) - 1
    table = np.full(cells, INVALID, dtype=np.int64)
    for key in range(cells):
        args = [(key >> (b * (arity - 1 - j))) & field for j in range(arity)]
        if any(args[j] == args[j + 1] for j in range(arity - 1)):
            continue
        tableau: dict[tuple[int, int], int] = {}
        valid = True
        for start, length in _tableau_cells(arity):
            if length == 1:
                tableau[(start, 1)] = args[start]
                continue
            lo = tableau.get((start, length - 1))
            hi = tableau.get((start + 1, length - 1))
            if lo is None or hi is None or lo == hi:
                valid = False
                break
            tableau[(start, length)] = int(pair_function(
                np.asarray([lo], dtype=np.int64),
                np.asarray([hi], dtype=np.int64),
            )[0])
        if not valid:
            continue
        if not verify_tableau(pair_function, args, tableau):
            continue
        table[key] = tableau[(0, arity)]
    max_label = int(table.max()) if np.any(table != INVALID) else INVALID
    return MatchingFunctionTable(
        arity=arity, bits_per_arg=b, table=table, max_label=max_label
    )


def shuffle_graph(arity: int, domain: int):
    """Construct the shuffle graph of [10] used to certify tables.

    Vertices are all ``arity``-tuples over ``{0..domain-1}`` with no
    adjacent equal pair (the windows a list can realize).  Vertices
    ``(a_1..a_i)`` and ``(b_1..b_i)`` are adjacent iff
    ``a_j = b_{j+1}`` for all ``1 <= j < i`` — i.e. they can occur as
    *consecutive* windows of one label sequence.  A valid vertex
    coloring of this graph is precisely a matching partition function
    table (the paper's final appendix paragraph).

    Returns a ``networkx.Graph`` whose nodes are the tuples.  Intended
    for tiny parameters (tests/E10); the node count is ``domain^arity``.
    """
    import networkx as nx  # deferred: only tests/benches need it

    require(arity >= 2, f"arity must be >= 2, got {arity}")
    require(domain >= 2, f"domain must be >= 2, got {domain}")
    require(domain ** arity <= 1 << 18,
            "shuffle_graph is for small parameters only")
    g = nx.Graph()

    def windows() -> Iterator[tuple[int, ...]]:
        stack: list[tuple[int, ...]] = [(v,) for v in range(domain)]
        while stack:
            t = stack.pop()
            if len(t) == arity:
                yield t
                continue
            for v in range(domain):
                if v != t[-1]:
                    stack.append(t + (v,))

    nodes = list(windows())
    g.add_nodes_from(nodes)
    for t in nodes:
        # successors share the overlap: u = (t_2, ..., t_i, x)
        for x in range(domain):
            if x != t[-1]:
                u = t[1:] + (x,)
                if u != t:
                    g.add_edge(t, u)
    _ = ceil_div  # keep import referenced for linters
    return g
