"""Bit-length lookup tables — the appendix's table form, batch-sized.

The appendix computes ``k`` (the index of the most/least significant
set bit) either with a dedicated *convert* instruction or by table
lookup.  :mod:`repro.bits.tables` reproduces the paper's *per-value*
tables with their construction cost accounting; this module provides
the **whole-array** form the numpy backend engine uses: 16-bit-wide
lookup tables applied to entire ``a XOR b`` arrays with a single
gather, plus cached pair tables ``FT[a, b] = f(<a, b>)`` for the
bounded label domains reached after the first ``f`` round.

All tables are process-wide constants (a few tens of KiB); the pair
tables are built by calling the *reference* ``f`` implementations from
:mod:`repro.core.functions`, so the numpy backend agrees with the
paper-faithful oracle by construction.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError

__all__ = [
    "BITLEN16",
    "LSB16",
    "TWO_MSB16",
    "bit_length_table",
    "msb_index_table",
    "lsb_index_table",
    "pair_label_table",
]

#: Exclusive value bound the two-level 16-bit tables cover.
TABLE_LIMIT = 1 << 32

_MASK16 = np.int64(0xFFFF)


def _build_bitlen16() -> np.ndarray:
    t = np.zeros(1 << 16, dtype=np.int8)
    for k in range(16):
        t[1 << k: 1 << (k + 1)] = k + 1
    return t


def _build_lsb16() -> np.ndarray:
    # Indexed by an *isolated power of two* (the appendix's
    # ``(c XOR (c-1)) + 1) / 2``); only the 16 power slots are live.
    t = np.zeros(1 << 16, dtype=np.int8)
    for k in range(16):
        t[1 << k] = k
    return t


#: ``BITLEN16[v] = v.bit_length()`` for ``v < 2**16``.
BITLEN16: np.ndarray = _build_bitlen16()
#: ``LSB16[2**k] = k`` for ``k < 16`` (other slots are zero).
LSB16: np.ndarray = _build_lsb16()
#: ``TWO_MSB16[v] = 2 * (v.bit_length() - 1)`` for ``1 <= v < 2**16`` —
#: the ``2k`` term of ``f`` in one gather.
TWO_MSB16: np.ndarray = (2 * (BITLEN16.astype(np.int16) - 1)).astype(np.int8)

BITLEN16.setflags(write=False)
LSB16.setflags(write=False)
TWO_MSB16.setflags(write=False)


def _as_table_domain(x: np.ndarray, *, name: str) -> np.ndarray:
    x = np.asarray(x, dtype=np.int64)
    if x.size and (int(x.min()) < 0 or int(x.max()) >= TABLE_LIMIT):
        raise InvalidParameterError(
            f"{name} requires values in [0, 2**32); got min={int(x.min())}, "
            f"max={int(x.max())}"
        )
    return x


def bit_length_table(x: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` via the 16-bit table (two levels).

    Exact for ``0 <= x < 2**32``; ``bit_length(0) = 0``.
    """
    x = _as_table_domain(x, name="bit_length_table")
    hi = x >> 16
    return np.where(hi != 0, BITLEN16[hi] + np.int8(16), BITLEN16[x & _MASK16])


def msb_index_table(x: np.ndarray) -> np.ndarray:
    """Table-driven :func:`repro.bits.bitops.msb_index` for ``1 <= x < 2**32``."""
    x = _as_table_domain(x, name="msb_index_table")
    if x.size and int(x.min()) <= 0:
        raise InvalidParameterError("msb_index_table requires positive values")
    return np.asarray(bit_length_table(x), dtype=np.int64) - 1


def lsb_index_table(x: np.ndarray) -> np.ndarray:
    """Table-driven :func:`repro.bits.bitops.lsb_index` for ``1 <= x < 2**32``.

    Isolates the lowest set bit with the appendix's pipeline
    (``x & -x``) and converts the power to its exponent with one gather
    per 16-bit half.
    """
    x = _as_table_domain(x, name="lsb_index_table")
    if x.size and int(x.min()) <= 0:
        raise InvalidParameterError("lsb_index_table requires positive values")
    iso = x & -x
    lo = iso & _MASK16
    return np.asarray(
        np.where(lo != 0, LSB16[lo], LSB16[iso >> 16] + np.int8(16)),
        dtype=np.int64,
    )


_PAIR_TABLES: dict[tuple[str, int], np.ndarray] = {}


def pair_label_table(kind: str, m: int) -> np.ndarray:
    """Flat table ``FT[a * m + b] = f(<a, b>)`` for labels ``< m``.

    Built once per ``(kind, m)`` by evaluating the reference
    :func:`repro.core.functions.f_msb` / ``f_lsb`` on the full grid, so
    a table round of the numpy engine is bit-identical to an ``f``
    round of the reference tier.  Diagonal cells (``a == b`` is outside
    ``f``'s domain) are poisoned with ``-1``.
    """
    if m < 2:
        raise InvalidParameterError(f"pair table needs m >= 2, got {m}")
    if m > 4096:
        raise InvalidParameterError(
            f"pair table for m={m} would need {m * m} cells; labels this "
            f"large should go through the direct bit-length tables"
        )
    key = (kind, m)
    cached = _PAIR_TABLES.get(key)
    if cached is not None:
        return cached
    from ..core.functions import pair_function

    a = np.repeat(np.arange(m, dtype=np.int64), m)
    b = np.tile(np.arange(m, dtype=np.int64), m)
    diag = a == b
    vals = pair_function(kind)(a, np.where(diag, (b + 1) % m, b))
    table = vals.astype(np.int8)
    table[diag] = -1
    table.setflags(write=False)
    _PAIR_TABLES[key] = table
    return table
