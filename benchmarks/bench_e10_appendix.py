"""E10 — the appendix: evaluating the support functions inside budget.

Sub-tables:

1. ``G(n)`` by the sequential procedure: steps == G(n) - 1 (the
   appendix's "this sequential procedure takes O(G(n)) time").
2. ``log G(n)`` by parallel pointer jumping on the main list:
   jump rounds vs ``log G(n)``, instruction-level and vectorized tiers
   agreeing.
3. Table construction: direct DP vs the guess-and-verify EREW scheme —
   identical contents, wall-time ratio, and the fan-in depth
   (``O(log i)`` verification).
4. Preprocessing table costs: ``p`` copies of the unary→binary table
   (O(p log n) space), bit-reversal table sizes.
"""

import time

import numpy as np

from _common import pow2, write_result
from repro.analysis.report import format_table
from repro.bits.iterated_log import (
    G,
    big_g_sequential,
    log_G,
    log_g_pointer_jumping,
)
from repro.bits.lookup import build_table_direct, build_table_guess_and_verify
from repro.bits.tables import BitReversalTable, UnaryToBinaryTable
from repro.core.functions import f_msb
from repro.pram.primitives import run_main_list_log_g

NS = pow2(8, 20, 2)


def test_e10_g_evaluation(benchmark):
    rows = []
    for n in NS:
        value, steps = big_g_sequential(n)
        rows.append({"n": n, "G": G(n), "value": value, "steps": steps})
        assert value == G(n)
        assert steps == G(n) - 1
    text = format_table(
        rows,
        ["n", ("G", "G(n)"), ("value", "procedure"), "steps"],
        title="E10a: sequential evaluation of G(n) in O(G(n)) steps",
    )
    write_result("e10a_g_sequential.txt", text)

    benchmark(lambda: big_g_sequential(1 << 20))


def test_e10_log_g_parallel(benchmark):
    rows = []
    for n in (16, 256, 4096, 65536, 1 << 18):
        vec_rounds, length = log_g_pointer_jumping(n)
        pram_rounds, report = run_main_list_log_g(n, mode="CREW")
        rows.append({
            "n": n, "logG": log_G(n), "rounds": vec_rounds,
            "main_list_len": length, "pram_rounds": pram_rounds,
            "pram_steps": report.steps,
        })
        assert vec_rounds == pram_rounds
        assert abs(length - G(n)) <= 2
    text = format_table(
        rows,
        ["n", ("logG", "log G(n)"), ("rounds", "jump rounds"),
         ("main_list_len", "main list"), "pram_rounds", "pram_steps"],
        title="E10b: parallel log G(n) on the power-tower main list",
    )
    write_result("e10b_log_g_parallel.txt", text)

    benchmark(lambda: log_g_pointer_jumping(1 << 18))


def test_e10_table_construction(benchmark):
    rows = []
    for arity, bits in ((2, 3), (3, 2), (3, 3)):
        t0 = time.perf_counter()
        direct = build_table_direct(f_msb, arity=arity, bits_per_arg=bits)
        t_direct = time.perf_counter() - t0
        t0 = time.perf_counter()
        gv = build_table_guess_and_verify(
            f_msb, arity=arity, bits_per_arg=bits
        )
        t_gv = time.perf_counter() - t0
        assert np.array_equal(direct.table, gv.table)
        fan_in_depth = max(
            1, (arity * (arity + 1) // 2 - 1).bit_length()
        )
        rows.append({
            "arity": arity, "bits": bits, "cells": direct.size,
            "direct_ms": 1000 * t_direct, "gv_ms": 1000 * t_gv,
            "fanin_depth": fan_in_depth,
        })
    text = format_table(
        rows,
        ["arity", "bits", "cells", ("direct_ms", "direct (ms)"),
         ("gv_ms", "guess&verify (ms)"),
         ("fanin_depth", "O(log i) fan-in")],
        title="E10c: f^(i) table construction, direct vs guess-and-verify",
    )
    write_result("e10c_table_construction.txt", text)

    benchmark(lambda: build_table_direct(f_msb, arity=4, bits_per_arg=3))


def test_e10_preprocessing_table_costs(benchmark):
    rows = []
    for n in (1 << 10, 1 << 16, 1 << 20):
        width = (n - 1).bit_length()
        for copies in (1, 64, 4096):
            cost = UnaryToBinaryTable(width, copies=copies).construction_cost
            rows.append({
                "n": n, "copies": copies,
                "space": cost.space, "time": cost.time,
                "plogn": copies * width,
            })
            assert cost.space == copies * width  # O(p log n) space
    brt = BitReversalTable(12)
    rows.append({
        "n": 1 << 12, "copies": 1,
        "space": brt.construction_cost.space,
        "time": brt.construction_cost.time,
        "plogn": -1,
    })
    text = format_table(
        rows,
        ["n", "copies", "space", "time", ("plogn", "p*log n")],
        title="E10d: preprocessing table costs (appendix)",
    )
    write_result("e10d_preprocessing_tables.txt", text)

    benchmark(lambda: BitReversalTable(14))
