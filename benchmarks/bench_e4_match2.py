"""E4 — Lemma 4 / Match2: ``O(n/p + log n)``; the sort dominates.

Three sub-tables:

1. The ``(n, p)`` time curve for the EREW law against the bound.
2. Phase breakdown at ``p = n`` showing the sort's additive term
   dominating every other phase ("The time complexity of Step 2 in
   Match2 dominates the whole algorithm").
3. The three sort-cost laws side by side, reproducing the paper's
   ordering EREW > Reif > Cole–Vishkin and the widening optimal
   processor ranges ``n/log n < n·log^(3)n/log n < n·log^(2)n/log n``.
"""

from _common import pow2, write_result
from repro.analysis.complexity import match2_time_bound
from repro.analysis.experiments import powers_up_to, sweep_grid
from repro.analysis.report import format_table
from repro.core.match2 import match2
from repro.lists import random_list

NS = pow2(10, 20, 5)


def test_e4_match2_curve(benchmark):
    rows = sweep_grid(
        lambda n: random_list(n, rng=n),
        ns=NS,
        ps=lambda n: powers_up_to(n, base=16),
        algorithm="match2",
    )
    for row in rows:
        row["bound"] = match2_time_bound(row["n"], row["p"])
        row["ratio"] = row["time"] / row["bound"]
        assert 0.2 <= row["ratio"] <= 6.0, row
    text = format_table(
        rows,
        ["n", "p", "time", ("bound", "n/p+logn"), ("ratio", "t/bound"),
         ("work", "work")],
        title="E4a (Lemma 4): Match2 time vs O(n/p + log n), EREW sort",
    )
    write_result("e4a_match2_curve.txt", text)

    lst = random_list(1 << 16, rng=3)
    benchmark(lambda: match2(lst, p=256))


def test_e4_sort_dominates(benchmark):
    rows = []
    for n in NS:
        lst = random_list(n, rng=n)
        _, report, stats = match2(lst, p=n)
        phases = {ph.name: ph.time for ph in report.phases}
        rows.append({
            "n": n,
            "partition": phases["partition"],
            "sort": phases["sort"],
            "sweep": phases["sweep"],
            "total": report.time,
            "sort_frac": phases["sort"] / report.time,
        })
    for row in rows:
        assert row["sort"] >= row["partition"]
        assert row["sort"] >= row["sweep"]
    # domination grows with n (the sort's log n vs constants elsewhere)
    assert rows[-1]["sort_frac"] >= rows[0]["sort_frac"] - 0.05
    text = format_table(
        rows,
        ["n", "partition", "sort", "sweep", "total",
         ("sort_frac", "sort/total")],
        title="E4b: Match2 phase breakdown at p = n (sort dominates)",
    )
    write_result("e4b_match2_sort_dominates.txt", text)

    lst = random_list(1 << 14, rng=4)
    benchmark(lambda: match2(lst, p=1 << 14))


def test_e4_sort_law_variants(benchmark):
    rows = []
    for n in NS:
        lst = random_list(n, rng=n)
        for law in ("erew", "reif", "cole_vishkin"):
            _, report, stats = match2(lst, p=n, sort_law=law)
            rows.append({
                "n": n, "law": law, "time": report.time,
                "additive": stats.sort_additive,
            })
    for n in NS:
        by = {r["law"]: r for r in rows if r["n"] == n}
        if n >= 1 << 15:
            assert (by["cole_vishkin"]["additive"]
                    < by["reif"]["additive"]
                    < by["erew"]["additive"])
            assert by["cole_vishkin"]["time"] < by["erew"]["time"]
    text = format_table(
        rows,
        ["n", "law", "time", ("additive", "sort additive")],
        title=("E4c: Match2 sort-law variants at p = n "
               "(EREW log n / Reif log n/log(3)n / C-V log n/log(2)n)"),
    )
    write_result("e4c_match2_sort_laws.txt", text)

    lst = random_list(1 << 14, rng=5)
    benchmark(lambda: match2(lst, p=1 << 14, sort_law="cole_vishkin"))
