"""Open-loop synthetic traffic against the matching service.

A locust-style load generator for ``repro serve``: request arrival
times are drawn *up front* from a seeded exponential process (open
loop — a slow server does not slow the offered load, so overload
actually overloads), workloads mix sizes/layouts from a small seeded
pool (so the response cache sees realistic reuse), and every response
is bucketed by status.  The run's verdict:

- **latency** — p50/p95/p99 over successful responses (gated by
  ``--require-p99-ms`` where hardware warrants a bar);
- **shed accounting (strict)** — every request must be accounted for:
  200s + 429s + 503s + 504s + transport errors == offered, and in
  ``--spawn`` mode the server's final manifest ledger must agree with
  the client-side counts;
- **correctness (strict)** — a sample of successful responses is
  re-verified bit-identical against the reference tier (spec
  workloads are regenerable client-side);
- **error rate (strict)** — 5xx beyond ``--max-error-rate`` fails.

Run against a live server (``--url``) or let the bench own the whole
lifecycle (``--spawn``: start ``repro serve`` on a free port, load it,
SIGTERM it, and check the drain manifest)::

    PYTHONPATH=src python benchmarks/bench_service.py --spawn \\
        --requests 200 --rate 100 --seed 0 --json service-bench.json

Observability extensions (all ``--spawn``-only):

- ``--debug-probe`` — while the server is still up, fetch
  ``/debug/vars`` and one SSE frame from ``/debug/stream`` and check
  the server's rolling-window rates and SLO burn against what this
  client measured;
- ``--server-telemetry PATH`` — run the server under a JSONL span
  sink (the raw material for trace reconstruction);
- ``--trace-json PATH`` — after the run, reconstruct the first
  request's span tree from the server telemetry and write it as a
  Chrome Trace (``chrome://tracing`` / Perfetto);
- ``--feedback`` — enable the telemetry→planner loop on the server,
  then re-load the feedback records it wrote and verify the planner
  now cites measured history (``rule=history``) for a workload the
  service actually served.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.service.client import get, post_json

DEFAULT_SIZES = (64, 256, 1024, 4096)
DEFAULT_LAYOUTS = ("random", "sequential", "sawtooth")


def plan_requests(args) -> list[dict]:
    """The seeded open-loop schedule: one dict per request, in order."""
    rng = random.Random(args.seed)
    sizes = [int(s) for s in args.sizes.split(",")]
    layouts = args.layouts.split(",")
    plan = []
    t = 0.0
    for i in range(args.requests):
        if i >= args.burst:  # the first ``burst`` requests arrive at t=0
            t += rng.expovariate(args.rate)
        plan.append({
            "at": t,
            "body": {
                "n": rng.choice(sizes),
                "layout": rng.choice(layouts),
                "seed": rng.randrange(args.seed_pool),
                "deadline_ms": args.deadline_ms,
                "cache": not args.no_cache,
            },
        })
    return plan


async def fire(host: str, port: int, item: dict, results: list) -> None:
    await asyncio.sleep(item["at"])
    t0 = time.perf_counter()
    try:
        resp = await post_json(host, port, "/v1/match", item["body"],
                               timeout=item["body"]["deadline_ms"] / 1000.0
                               + 30.0)
    except Exception as exc:  # noqa: BLE001 - transport failure bucket
        results.append({
            "status": 0, "latency_ms": (time.perf_counter() - t0) * 1e3,
            "error": f"{type(exc).__name__}: {exc}", "body": item["body"],
        })
        return
    entry = {
        "status": resp.status,
        "latency_ms": (time.perf_counter() - t0) * 1e3,
        "body": item["body"],
    }
    if resp.status == 200:
        data = resp.json()
        entry["cache"] = data.get("cache")
        entry["served_by"] = data.get("served_by")
        entry["degraded"] = data.get("degraded")
        entry["tails"] = data.get("tails")
    results.append(entry)


async def run_load(host: str, port: int, plan: list[dict]) -> list[dict]:
    results: list[dict] = []
    await asyncio.gather(*(fire(host, port, item, results)
                           for item in plan))
    return results


def quantiles(values: list[float]) -> dict:
    if not values:
        return {"p50": None, "p95": None, "p99": None}
    ordered = sorted(values)

    def at(q: float) -> float:
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return round(ordered[rank], 3)

    return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}


def verify_sample(results: list[dict], sample: int, seed: int) -> int:
    """Recompute ``sample`` successful responses on the reference tier
    and require bit-identical tails.  Returns the number verified."""
    from repro.core.maximal_matching import maximal_matching
    from repro.service.workload import LAYOUTS

    ok = [r for r in results if r["status"] == 200 and r.get("tails")
          is not None]
    rng = random.Random(seed)
    picked = rng.sample(ok, min(sample, len(ok)))
    for r in picked:
        body = r["body"]
        lst = LAYOUTS[body["layout"]](body["n"], body["seed"])
        expect = maximal_matching(lst, algorithm="match4",
                                  backend="reference").matching
        got = np.asarray(r["tails"], dtype=np.int64)
        if not np.array_equal(np.sort(got), np.sort(expect.tails)):
            raise AssertionError(
                f"response for {body} is not bit-identical to reference"
            )
    return len(picked)


def summarize(results: list[dict], verified: int) -> dict:
    by_status: dict[str, int] = {}
    for r in results:
        key = str(r["status"])
        by_status[key] = by_status.get(key, 0) + 1
    total = len(results)
    oks = [r for r in results if r["status"] == 200]
    hits = sum(1 for r in oks if r.get("cache") == "hit")
    degraded = sum(1 for r in oks if r.get("degraded"))
    errors = sum(1 for r in results if 500 <= r["status"] < 600
                 or r["status"] == 0)
    shed = by_status.get("429", 0) + by_status.get("503", 0)
    return {
        "offered": total,
        "by_status": dict(sorted(by_status.items())),
        "latency_ms": quantiles([r["latency_ms"] for r in oks]),
        "latency_ms_all": quantiles([r["latency_ms"] for r in results]),
        "shed_rate": round(shed / total, 4) if total else 0.0,
        "timeout_rate": round(by_status.get("504", 0) / total, 4)
        if total else 0.0,
        "error_rate": round(errors / total, 4) if total else 0.0,
        "cache_hit_rate": round(hits / len(oks), 4) if oks else 0.0,
        "degraded": degraded,
        "verified_bit_identical": verified,
    }


def spawn_server(args, manifest: Path) -> tuple[subprocess.Popen, int]:
    cmd = [sys.executable, "-m", "repro"]
    if args.server_telemetry:
        cmd += ["--telemetry", f"jsonl:{args.server_telemetry}"]
    cmd += [
        "serve", "--port", "0",
        "--max-queue", str(args.max_queue),
        "--max-batch-items", str(args.max_batch_items),
        "--deadline-ms", str(args.deadline_ms),
        "--record", str(manifest),
        "--seed", str(args.seed),
    ]
    if args.server_workers:
        cmd += ["--workers", str(args.server_workers)]
    if args.feedback:
        cmd += ["--feedback", "--feedback-sample", "1",
                "--feedback-path", str(args.feedback_path)]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    assert proc.stdout is not None
    banner = proc.stdout.readline().strip()
    if "http://" not in banner:
        proc.kill()
        raise SystemExit(f"server failed to start: {banner!r}")
    port = int(banner.rsplit(":", 1)[1])
    return proc, port


def probe_debug(host: str, port: int) -> dict:
    """Hit ``/debug/vars`` + one SSE frame while the server is up."""
    from repro.service.client import fetch_json, fetch_sse

    base = f"http://{host}:{port}"
    status, vars_doc = fetch_json(base + "/debug/vars")
    if status != 200 or not isinstance(vars_doc, dict):
        raise AssertionError(f"/debug/vars probe failed: status {status}")
    sse_status, frames = fetch_sse(base + "/debug/stream?frames=1",
                                   max_frames=1)
    if sse_status != 200 or not frames:
        raise AssertionError(
            f"/debug/stream yielded no SSE frames (status {sse_status})")
    live = vars_doc["live"]
    return {
        "count": live["count"],
        "latency_ms": live["latency_ms"],
        "rates": live["rates"],
        "slo": live["slo"],
        "served": vars_doc["totals"]["served"],
        "sse_frames": len(frames),
        "sse_count": frames[0]["live"]["count"],
    }


def check_debug_probe(probe: dict, summary: dict) -> list[str]:
    """The server's rolling window must agree with the client's books.

    Only enforced when the window still covers the whole run (live
    count == every request the server actually saw); transport errors
    (status 0) never reach the server so they are excluded.
    """
    problems = []
    reached = summary["offered"] - summary["by_status"].get("0", 0)
    if probe["count"] != reached:
        return problems  # window rolled past part of the run: no gate
    for live_key, bench_key in (("shed", "shed_rate"),
                                ("timeout", "timeout_rate")):
        got, want = probe["rates"][live_key], summary[bench_key]
        if abs(got - want) > 0.02:
            problems.append(
                f"live {live_key} rate {got} != measured {want}")
    # SLO burn: the bad fraction must at least cover every shed and
    # timeout the client saw (server-side latency can only add badness,
    # never remove it).
    floor = (summary["shed_rate"] + summary["timeout_rate"]) * 0.98
    if probe["slo"]["bad_rate"] + 1e-9 < floor:
        problems.append(
            f"SLO bad rate {probe['slo']['bad_rate']} below the "
            f"shed+timeout floor {round(floor, 4)}")
    return problems


def check_feedback(path: Path) -> dict:
    """Re-load the server's feedback records and re-plan from them.

    The acceptance bar for the telemetry→planner loop: a fresh planner
    seeded only from what the service recorded must price a workload
    regime the service actually served from *measured history*
    (``rule=history``), not cold-start priors.
    """
    from repro.planner import PlanContext, Planner
    from repro.telemetry import read_records

    records = [r for r in read_records(path)
               if (r.extra or {}).get("source") == "service-feedback"]
    if not records:
        raise AssertionError(f"--feedback wrote no records to {path}")
    planner = Planner(history=path)
    # Re-plan every regime the service served, largest lists first: the
    # measured history must (a) be priced into the candidates
    # everywhere and (b) win the decision outright somewhere (at small
    # n the reference tier's cold-start prior legitimately stays ahead
    # of any measured engine time — that is the planner working, not
    # the loop failing).
    regimes = sorted({(r.n, (r.extra or {}).get("layout"), r.algorithm)
                      for r in records}, reverse=True)
    winner = None
    for n, layout, algorithm in regimes:
        decision = planner.decide(PlanContext(
            algorithm=algorithm, n=n, p=1, layout=layout,
            model=planner.model,
        ))
        if not any(c.source == "history" for c in decision.candidates):
            raise AssertionError(
                f"no history-priced candidate for n={n} layout={layout} "
                f"despite {len(records)} feedback records")
        if winner is None and decision.rule == "history":
            winner = (n, decision)
    if winner is None:
        raise AssertionError(
            f"planner never cited rule=history across {len(regimes)} "
            f"served regimes ({len(records)} feedback records)")
    n, decision = winner
    return {
        "records": len(records),
        "n": n,
        "backend": decision.backend,
        "rule": decision.rule,
        "score_s": decision.plan.score,
    }


def write_trace_json(telemetry: Path, out: Path) -> dict:
    """Reconstruct the first request's span tree as a Chrome Trace."""
    from repro.telemetry import (
        request_trace_events,
        request_trace_ids,
        spans_from_jsonl,
    )

    spans = spans_from_jsonl(telemetry)
    ids = request_trace_ids(spans)
    if not ids:
        raise AssertionError(
            f"no request traces found in {telemetry} — was the server "
            "running with telemetry enabled?")
    events = request_trace_events(spans, ids[0])
    out.write_text(json.dumps({"traceEvents": events}, indent=2) + "\n")
    return {"traces": len(ids), "trace_id": ids[0], "events": len(events),
            "path": str(out)}


def check_manifest_ledger(manifest: Path, summary: dict) -> dict:
    """Strict shed accounting: the server's final ledger must agree
    with what the client observed."""
    lines = manifest.read_text().splitlines()
    record = json.loads(lines[-1])
    extra = record["extra"]
    server_shed = sum(extra.get("shed", {}).values())
    client_shed = (summary["by_status"].get("429", 0)
                   + summary["by_status"].get("503", 0))
    problems = []
    if extra.get("errors", 0) != sum(
            v for k, v in summary["by_status"].items()
            if k.isdigit() and 500 <= int(k) < 600):
        problems.append(
            f"server errors {extra.get('errors')} != client 5xx count")
    if server_shed != client_shed:
        problems.append(
            f"server shed {server_shed} != client shed {client_shed}")
    served = summary["by_status"].get("200", 0)
    if extra.get("served", 0) != served:
        problems.append(
            f"server served {extra.get('served')} != client 200s {served}")
    if problems:
        raise AssertionError("manifest ledger mismatch: "
                             + "; ".join(problems))
    return {"kind": record["kind"], "drain": extra.get("drain"),
            "served": extra.get("served"), "shed": extra.get("shed"),
            "cache": extra.get("cache")}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="",
                        help="target service (http://host:port); "
                             "mutually exclusive with --spawn")
    parser.add_argument("--spawn", action="store_true",
                        help="start/drain a repro serve subprocess")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--rate", type=float, default=100.0,
                        help="mean offered arrivals per second")
    parser.add_argument("--burst", type=int, default=0,
                        help="this many requests arrive at t=0 "
                             "(admission-pressure injection)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)))
    parser.add_argument("--layouts", default=",".join(DEFAULT_LAYOUTS))
    parser.add_argument("--seed-pool", type=int, default=8,
                        help="distinct workload seeds (cache reuse)")
    parser.add_argument("--deadline-ms", type=float, default=5000.0,
                        help="per-request deadline (small values inject "
                             "timeouts)")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--verify", type=int, default=8,
                        help="responses to re-verify against reference")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="--spawn: server admission depth")
    parser.add_argument("--max-batch-items", type=int, default=16)
    parser.add_argument("--server-workers", type=int, default=0,
                        help="--spawn: shard batches across N processes")
    parser.add_argument("--manifest", default="service-runs.jsonl",
                        help="--spawn: server RunRecord manifest path")
    parser.add_argument("--json", default="",
                        help="write the summary JSON here")
    parser.add_argument("--require-p99-ms", type=float, default=0.0,
                        help="fail if success p99 exceeds this (0: off)")
    parser.add_argument("--max-error-rate", type=float, default=0.0,
                        help="fail beyond this 5xx/transport rate "
                             "(default 0: strict)")
    parser.add_argument("--max-shed-rate", type=float, default=1.0,
                        help="fail beyond this 429/503 rate (default: off)")
    parser.add_argument("--debug-probe", action="store_true",
                        help="--spawn: probe /debug/vars + one SSE frame "
                             "and cross-check the live rates")
    parser.add_argument("--server-telemetry", default="",
                        help="--spawn: run the server with a JSONL span "
                             "sink at this path")
    parser.add_argument("--trace-json", default="",
                        help="write the first request's reconstructed "
                             "span tree here (needs --server-telemetry)")
    parser.add_argument("--feedback", action="store_true",
                        help="--spawn: enable the telemetry→planner "
                             "loop and verify rule=history afterwards")
    parser.add_argument("--feedback-path", default="service-feedback.jsonl",
                        help="--feedback: planner history records land "
                             "here")
    args = parser.parse_args(argv)

    spawn_only = [name for name, on in (
        ("--debug-probe", args.debug_probe),
        ("--server-telemetry", bool(args.server_telemetry)),
        ("--feedback", args.feedback),
    ) if on and not args.spawn]
    if spawn_only:
        raise SystemExit(f"{', '.join(spawn_only)} require --spawn")
    if args.trace_json and not args.server_telemetry:
        raise SystemExit("--trace-json needs --server-telemetry")

    plan = plan_requests(args)
    proc = None
    manifest = Path(args.manifest)
    if args.spawn:
        proc, port = spawn_server(args, manifest)
        host = "127.0.0.1"
    elif args.url:
        host, _, port_s = args.url.removeprefix("http://").partition(":")
        port = int(port_s)
    else:
        raise SystemExit("pass --spawn or --url")

    probe = None
    try:
        # Readiness: the spawned server prints its banner before the
        # first accept, so one probe round-trip suffices.
        asyncio.run(get(host, port, "/readyz"))
        results = asyncio.run(run_load(host, port, plan))
        if args.debug_probe:
            probe = probe_debug(host, port)
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)

    verified = verify_sample(results, args.verify, args.seed)
    summary = summarize(results, verified)
    summary["config"] = {
        "requests": args.requests, "rate": args.rate, "burst": args.burst,
        "seed": args.seed, "sizes": args.sizes, "layouts": args.layouts,
        "seed_pool": args.seed_pool, "deadline_ms": args.deadline_ms,
        "cache": not args.no_cache, "spawn": args.spawn,
    }
    if args.spawn:
        summary["manifest"] = check_manifest_ledger(manifest, summary)

    failures = []
    if probe is not None:
        summary["debug_probe"] = probe
        failures += check_debug_probe(probe, summary)
    if args.feedback:
        summary["feedback"] = check_feedback(Path(args.feedback_path))
    if args.trace_json:
        summary["trace"] = write_trace_json(Path(args.server_telemetry),
                                            Path(args.trace_json))

    print(json.dumps({k: v for k, v in summary.items() if k != "config"},
                     indent=2))
    if args.json:
        Path(args.json).write_text(json.dumps(summary, indent=2) + "\n")

    if summary["error_rate"] > args.max_error_rate:
        failures.append(
            f"error rate {summary['error_rate']} > {args.max_error_rate}")
    if summary["shed_rate"] > args.max_shed_rate:
        failures.append(
            f"shed rate {summary['shed_rate']} > {args.max_shed_rate}")
    p99 = summary["latency_ms"]["p99"]
    if args.require_p99_ms and p99 is not None and p99 > args.require_p99_ms:
        failures.append(f"p99 {p99}ms > {args.require_p99_ms}ms")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(f"OK: {summary['by_status'].get('200', 0)}/{summary['offered']} "
          f"served, shed rate {summary['shed_rate']}, "
          f"p99 {p99}ms, {verified} verified bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
