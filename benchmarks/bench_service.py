"""Open-loop synthetic traffic against the matching service.

A locust-style load generator for ``repro serve``: request arrival
times are drawn *up front* from a seeded exponential process (open
loop — a slow server does not slow the offered load, so overload
actually overloads), workloads mix sizes/layouts from a small seeded
pool (so the response cache sees realistic reuse), and every response
is bucketed by status.  The run's verdict:

- **latency** — p50/p95/p99 over successful responses (gated by
  ``--require-p99-ms`` where hardware warrants a bar);
- **shed accounting (strict)** — every request must be accounted for:
  200s + 429s + 503s + 504s + transport errors == offered, and in
  ``--spawn`` mode the server's final manifest ledger must agree with
  the client-side counts;
- **correctness (strict)** — a sample of successful responses is
  re-verified bit-identical against the reference tier (spec
  workloads are regenerable client-side);
- **error rate (strict)** — 5xx beyond ``--max-error-rate`` fails.

Run against a live server (``--url``) or let the bench own the whole
lifecycle (``--spawn``: start ``repro serve`` on a free port, load it,
SIGTERM it, and check the drain manifest)::

    PYTHONPATH=src python benchmarks/bench_service.py --spawn \\
        --requests 200 --rate 100 --seed 0 --json service-bench.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.service.client import get, post_json

DEFAULT_SIZES = (64, 256, 1024, 4096)
DEFAULT_LAYOUTS = ("random", "sequential", "sawtooth")


def plan_requests(args) -> list[dict]:
    """The seeded open-loop schedule: one dict per request, in order."""
    rng = random.Random(args.seed)
    sizes = [int(s) for s in args.sizes.split(",")]
    layouts = args.layouts.split(",")
    plan = []
    t = 0.0
    for i in range(args.requests):
        if i >= args.burst:  # the first ``burst`` requests arrive at t=0
            t += rng.expovariate(args.rate)
        plan.append({
            "at": t,
            "body": {
                "n": rng.choice(sizes),
                "layout": rng.choice(layouts),
                "seed": rng.randrange(args.seed_pool),
                "deadline_ms": args.deadline_ms,
                "cache": not args.no_cache,
            },
        })
    return plan


async def fire(host: str, port: int, item: dict, results: list) -> None:
    await asyncio.sleep(item["at"])
    t0 = time.perf_counter()
    try:
        resp = await post_json(host, port, "/v1/match", item["body"],
                               timeout=item["body"]["deadline_ms"] / 1000.0
                               + 30.0)
    except Exception as exc:  # noqa: BLE001 - transport failure bucket
        results.append({
            "status": 0, "latency_ms": (time.perf_counter() - t0) * 1e3,
            "error": f"{type(exc).__name__}: {exc}", "body": item["body"],
        })
        return
    entry = {
        "status": resp.status,
        "latency_ms": (time.perf_counter() - t0) * 1e3,
        "body": item["body"],
    }
    if resp.status == 200:
        data = resp.json()
        entry["cache"] = data.get("cache")
        entry["served_by"] = data.get("served_by")
        entry["degraded"] = data.get("degraded")
        entry["tails"] = data.get("tails")
    results.append(entry)


async def run_load(host: str, port: int, plan: list[dict]) -> list[dict]:
    results: list[dict] = []
    await asyncio.gather(*(fire(host, port, item, results)
                           for item in plan))
    return results


def quantiles(values: list[float]) -> dict:
    if not values:
        return {"p50": None, "p95": None, "p99": None}
    ordered = sorted(values)

    def at(q: float) -> float:
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return round(ordered[rank], 3)

    return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}


def verify_sample(results: list[dict], sample: int, seed: int) -> int:
    """Recompute ``sample`` successful responses on the reference tier
    and require bit-identical tails.  Returns the number verified."""
    from repro.core.maximal_matching import maximal_matching
    from repro.service.workload import LAYOUTS

    ok = [r for r in results if r["status"] == 200 and r.get("tails")
          is not None]
    rng = random.Random(seed)
    picked = rng.sample(ok, min(sample, len(ok)))
    for r in picked:
        body = r["body"]
        lst = LAYOUTS[body["layout"]](body["n"], body["seed"])
        expect = maximal_matching(lst, algorithm="match4",
                                  backend="reference").matching
        got = np.asarray(r["tails"], dtype=np.int64)
        if not np.array_equal(np.sort(got), np.sort(expect.tails)):
            raise AssertionError(
                f"response for {body} is not bit-identical to reference"
            )
    return len(picked)


def summarize(results: list[dict], verified: int) -> dict:
    by_status: dict[str, int] = {}
    for r in results:
        key = str(r["status"])
        by_status[key] = by_status.get(key, 0) + 1
    total = len(results)
    oks = [r for r in results if r["status"] == 200]
    hits = sum(1 for r in oks if r.get("cache") == "hit")
    degraded = sum(1 for r in oks if r.get("degraded"))
    errors = sum(1 for r in results if 500 <= r["status"] < 600
                 or r["status"] == 0)
    shed = by_status.get("429", 0) + by_status.get("503", 0)
    return {
        "offered": total,
        "by_status": dict(sorted(by_status.items())),
        "latency_ms": quantiles([r["latency_ms"] for r in oks]),
        "latency_ms_all": quantiles([r["latency_ms"] for r in results]),
        "shed_rate": round(shed / total, 4) if total else 0.0,
        "timeout_rate": round(by_status.get("504", 0) / total, 4)
        if total else 0.0,
        "error_rate": round(errors / total, 4) if total else 0.0,
        "cache_hit_rate": round(hits / len(oks), 4) if oks else 0.0,
        "degraded": degraded,
        "verified_bit_identical": verified,
    }


def spawn_server(args, manifest: Path) -> tuple[subprocess.Popen, int]:
    cmd = [
        sys.executable, "-m", "repro", "serve", "--port", "0",
        "--max-queue", str(args.max_queue),
        "--max-batch-items", str(args.max_batch_items),
        "--deadline-ms", str(args.deadline_ms),
        "--record", str(manifest),
        "--seed", str(args.seed),
    ]
    if args.server_workers:
        cmd += ["--workers", str(args.server_workers)]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    assert proc.stdout is not None
    banner = proc.stdout.readline().strip()
    if "http://" not in banner:
        proc.kill()
        raise SystemExit(f"server failed to start: {banner!r}")
    port = int(banner.rsplit(":", 1)[1])
    return proc, port


def check_manifest_ledger(manifest: Path, summary: dict) -> dict:
    """Strict shed accounting: the server's final ledger must agree
    with what the client observed."""
    lines = manifest.read_text().splitlines()
    record = json.loads(lines[-1])
    extra = record["extra"]
    server_shed = sum(extra.get("shed", {}).values())
    client_shed = (summary["by_status"].get("429", 0)
                   + summary["by_status"].get("503", 0))
    problems = []
    if extra.get("errors", 0) != sum(
            v for k, v in summary["by_status"].items()
            if k.isdigit() and 500 <= int(k) < 600):
        problems.append(
            f"server errors {extra.get('errors')} != client 5xx count")
    if server_shed != client_shed:
        problems.append(
            f"server shed {server_shed} != client shed {client_shed}")
    served = summary["by_status"].get("200", 0)
    if extra.get("served", 0) != served:
        problems.append(
            f"server served {extra.get('served')} != client 200s {served}")
    if problems:
        raise AssertionError("manifest ledger mismatch: "
                             + "; ".join(problems))
    return {"kind": record["kind"], "drain": extra.get("drain"),
            "served": extra.get("served"), "shed": extra.get("shed"),
            "cache": extra.get("cache")}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="",
                        help="target service (http://host:port); "
                             "mutually exclusive with --spawn")
    parser.add_argument("--spawn", action="store_true",
                        help="start/drain a repro serve subprocess")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--rate", type=float, default=100.0,
                        help="mean offered arrivals per second")
    parser.add_argument("--burst", type=int, default=0,
                        help="this many requests arrive at t=0 "
                             "(admission-pressure injection)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)))
    parser.add_argument("--layouts", default=",".join(DEFAULT_LAYOUTS))
    parser.add_argument("--seed-pool", type=int, default=8,
                        help="distinct workload seeds (cache reuse)")
    parser.add_argument("--deadline-ms", type=float, default=5000.0,
                        help="per-request deadline (small values inject "
                             "timeouts)")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--verify", type=int, default=8,
                        help="responses to re-verify against reference")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="--spawn: server admission depth")
    parser.add_argument("--max-batch-items", type=int, default=16)
    parser.add_argument("--server-workers", type=int, default=0,
                        help="--spawn: shard batches across N processes")
    parser.add_argument("--manifest", default="service-runs.jsonl",
                        help="--spawn: server RunRecord manifest path")
    parser.add_argument("--json", default="",
                        help="write the summary JSON here")
    parser.add_argument("--require-p99-ms", type=float, default=0.0,
                        help="fail if success p99 exceeds this (0: off)")
    parser.add_argument("--max-error-rate", type=float, default=0.0,
                        help="fail beyond this 5xx/transport rate "
                             "(default 0: strict)")
    parser.add_argument("--max-shed-rate", type=float, default=1.0,
                        help="fail beyond this 429/503 rate (default: off)")
    args = parser.parse_args(argv)

    plan = plan_requests(args)
    proc = None
    manifest = Path(args.manifest)
    if args.spawn:
        proc, port = spawn_server(args, manifest)
        host = "127.0.0.1"
    elif args.url:
        host, _, port_s = args.url.removeprefix("http://").partition(":")
        port = int(port_s)
    else:
        raise SystemExit("pass --spawn or --url")

    try:
        # Readiness: the spawned server prints its banner before the
        # first accept, so one probe round-trip suffices.
        asyncio.run(get(host, port, "/readyz"))
        results = asyncio.run(run_load(host, port, plan))
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)

    verified = verify_sample(results, args.verify, args.seed)
    summary = summarize(results, verified)
    summary["config"] = {
        "requests": args.requests, "rate": args.rate, "burst": args.burst,
        "seed": args.seed, "sizes": args.sizes, "layouts": args.layouts,
        "seed_pool": args.seed_pool, "deadline_ms": args.deadline_ms,
        "cache": not args.no_cache, "spawn": args.spawn,
    }
    if args.spawn:
        summary["manifest"] = check_manifest_ledger(manifest, summary)

    print(json.dumps({k: v for k, v in summary.items() if k != "config"},
                     indent=2))
    if args.json:
        Path(args.json).write_text(json.dumps(summary, indent=2) + "\n")

    failures = []
    if summary["error_rate"] > args.max_error_rate:
        failures.append(
            f"error rate {summary['error_rate']} > {args.max_error_rate}")
    if summary["shed_rate"] > args.max_shed_rate:
        failures.append(
            f"shed rate {summary['shed_rate']} > {args.max_shed_rate}")
    p99 = summary["latency_ms"]["p99"]
    if args.require_p99_ms and p99 is not None and p99 > args.require_p99_ms:
        failures.append(f"p99 {p99}ms > {args.require_p99_ms}ms")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(f"OK: {summary['by_status'].get('200', 0)}/{summary['offered']} "
          f"served, shed rate {summary['shed_rate']}, "
          f"p99 {p99}ms, {verified} verified bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
