"""E2 — Lemma 2: ``f^(k)`` yields ``2 log^(k-1) n (1 + o(1))`` sets.

Sweeps the iteration depth ``k`` from 1 to ``G(n) + 1`` and tabulates
the measured set count against the explicit-constant bound sequence
(``label_bound_sequence``) and the asymptotic form.  Shape claims: the
bound holds at every depth, the count collapses to a constant (< 6) by
depth ``G(n)``, and each extra round shrinks the count roughly
logarithmically until the fixed point.
"""

import numpy as np

from _common import pow2, write_result
from repro.analysis.report import format_table
from repro.bits.iterated_log import G, ilog2
from repro.core.functions import iterate_f, label_bound_sequence
from repro.lists import random_list

NS = pow2(10, 20, 5)


def _rows():
    rows = []
    for n in NS:
        lst = random_list(n, rng=n)
        depth = G(n) + 1
        history = iterate_f(lst, depth, return_history=True)
        bounds = label_bound_sequence(n, depth)
        for k, labels in enumerate(history):
            if k == 0:
                continue
            sets = int(np.unique(labels).size)
            try:
                asym = 2 * max(1.0, ilog2(n, k - 1)) if k > 1 else float(n)
            except Exception:
                asym = 6.0
            rows.append({
                "n": n, "k": k, "sets": sets,
                "bound": bounds[k],
                "asym": asym,
            })
    return rows


def test_e2_lemma2_iterated_shrinkage(benchmark):
    rows = _rows()
    for row in rows:
        assert row["sets"] <= row["bound"], row
    # collapse to constant by G(n)
    for n in NS:
        final = [r for r in rows if r["n"] == n and r["k"] == G(n)]
        assert final and final[0]["sets"] <= 6
    text = format_table(
        rows,
        ["n", "k", "sets", ("bound", "2ceil(log)..."),
         ("asym", "2log^(k-1)n")],
        title="E2 (Lemma 2): matching sets after k applications of f",
    )
    write_result("e2_lemma2.txt", text)

    lst = random_list(1 << 16, rng=1)
    benchmark(lambda: iterate_f(lst, G(1 << 16)))
