"""E5 — Lemma 5 / Match3: ``O(n log G(n)/p + log G(n))`` + table sizing.

Two sub-tables:

1. The ``(n, p)`` time curve against the bound.
2. The feasibility table behind "the adjustable parameter k can be
   adjusted so that the number of processors needed for constructing
   the table is less than n": for each ``(n, k)``, the packed-field
   width ``b``, the table cell count ``2^(g·b)``, and whether it fits
   under ``n`` — reproducing the claim that ``k > 4`` suffices.
"""

import pytest

from _common import pow2, write_result
from repro.analysis.complexity import match3_time_bound
from repro.analysis.experiments import powers_up_to
from repro.analysis.report import format_table
from repro.bits.iterated_log import log_G
from repro.core.functions import max_label_after
from repro.core.match3 import match3, plan_match3
from repro.lists import random_list

NS = pow2(10, 20, 5)


def test_e5_match3_curve(benchmark):
    from repro.bits.lookup import build_table_direct
    from repro.core.functions import pair_function

    rows = []
    for n in NS:
        lst = random_list(n, rng=n)
        plan = plan_match3(n)
        table = build_table_direct(
            pair_function("msb"),
            arity=plan.arity, bits_per_arg=plan.bits_per_arg,
        )
        for p in powers_up_to(n, base=16):
            matching, report, _ = match3(lst, p=p, plan=plan, table=table)
            assert matching.is_maximal
            rows.append({
                "n": n, "p": p, "time": report.time, "work": report.work,
            })
    for row in rows:
        row["bound"] = match3_time_bound(row["n"], row["p"])
        row["ratio"] = row["time"] / row["bound"]
        assert 0.2 <= row["ratio"] <= 8.0, row
    text = format_table(
        rows,
        ["n", "p", "time", ("bound", "nlogG/p+logG"),
         ("ratio", "t/bound")],
        title="E5a (Lemma 5): Match3 time vs O(n log G(n)/p + log G(n))",
    )
    write_result("e5a_match3_curve.txt", text)

    lst = random_list(1 << 16, rng=6)
    plan = plan_match3(1 << 16)
    table = build_table_direct(
        pair_function("msb"),
        arity=plan.arity, bits_per_arg=plan.bits_per_arg,
    )
    benchmark(lambda: match3(lst, p=256, plan=plan, table=table))


def test_e5_table_feasibility(benchmark):
    # The paper's formula sizes the table at 2^(G(n) * log^(k) n):
    # arity exactly G(n).  (The implementation's pointer doubling
    # rounds the arity up to 2^ceil(log2 G(n)) and lets the memory
    # budget clamp the depth — plan_match3 — so this table reports the
    # paper's own formula.)
    from repro.bits.iterated_log import G

    rows = []
    for n in NS:
        arity = G(n)
        for k in (1, 2, 3, 4, 5, 6):
            bound = max_label_after(n, k)
            b = max(1, (bound - 1).bit_length())
            bits = arity * b
            cells = float(2 ** bits)
            rows.append({
                "n": n, "k": k, "b": b, "g": arity,
                "cells_log2": bits,
                "fits_n": "yes" if cells <= n else "no",
            })
    # the paper's claim: k > 4 always fits (at the literal log G(n)
    # doubling depth) for every n in the sweep
    for row in rows:
        if row["k"] >= 5 and row["n"] >= 1 << 15:
            assert row["fits_n"] == "yes", row
    # and small k overflows at large n
    assert any(r["fits_n"] == "no" and r["k"] <= 2 for r in rows)
    text = format_table(
        rows,
        ["n", "k", ("b", "bits/label"), ("g", "arity"),
         ("cells_log2", "log2(cells)"), ("fits_n", "cells<=n")],
        title="E5b: Match3 lookup-table sizing (2^(G(n)log^(k)n) vs n)",
    )
    write_result("e5b_match3_table_sizing.txt", text)

    benchmark(lambda: plan_match3(1 << 20))


@pytest.mark.parametrize("k", [3, 4, 5])
def test_e5_crunch_depth_ablation(benchmark, k):
    """DESIGN.md ablation: deeper crunch -> smaller table, same output."""
    n = 1 << 14
    lst = random_list(n, rng=7)
    plan = plan_match3(n, crunch_rounds=k)
    matching, report, stats = match3(lst, plan=plan, p=256)
    assert matching.is_maximal
    rows = [{
        "k": k, "cells": plan.table_cells, "time": report.time,
        "final_max": stats.final_label_max,
    }]
    write_result(
        f"e5c_match3_crunch_k{k}.txt",
        format_table(rows, ["k", "cells", "time", "final_max"],
                     title=f"E5c: Match3 crunch-depth ablation (k={k})"),
    )
    benchmark(lambda: match3(lst, plan=plan, p=256))
