"""Multiprocess scaling curve: sharded batch vs serial numpy.

Times the same ``batch_maximal_matching`` call on one process and on
the ``repro.parallel`` sharded executor at several worker counts,
checking first that every configuration produces bit-identical
matchings.  This is the acceptance measurement for the parallel tier:
at 64 lists of ``n = 2**14`` the 4-worker batch must beat the serial
numpy batch by >= 2x.

Run standalone (prints the scaling table, appends RunRecords)::

    PYTHONPATH=src python benchmarks/bench_parallel.py \\
        [--lists 64] [--n 16384] [--workers 1,2,4,8] [--require 2.0]

or under pytest-benchmark::

    pytest benchmarks/bench_parallel.py --benchmark-json=out.json
"""

import argparse
import json
import os
import sys
import time

import numpy as np
import pytest

from repro.backends.batch import batch_maximal_matching
from repro.lists import random_list

NUM_LISTS = int(os.environ.get("REPRO_BENCH_LISTS", 64))
N = int(os.environ.get("REPRO_BENCH_N", 1 << 14))
WORKERS = (1, 2, 4, 8)
REPS = 5
SEED = 2024


def _make_lists(num_lists: int, n: int):
    return [random_list(n, rng=SEED + i) for i in range(num_lists)]


@pytest.fixture(scope="module")
def lists():
    return _make_lists(min(NUM_LISTS, 16), min(N, 1 << 12))


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_batch_wallclock(benchmark, lists, workers):
    res = benchmark(
        lambda: batch_maximal_matching(lists, algorithm="match4",
                                       workers=workers))
    assert len(res.matchings) == len(lists)


def _time_min(fn, reps: int = REPS) -> float:
    """Best-of-``reps`` wall time in seconds (min filters scheduler
    noise, the standard practice for microbenchmarks)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _record(result, *, wall_s: float, workers: int) -> None:
    """Append one scaling point to the run manifest.

    The batch driver returns a :class:`BatchMatchResult`, not a
    ``MatchResult``, so the record is built field-by-field: ``n`` is
    the total node count and ``workers`` rides in ``extra`` (part of
    the comparison key, so worker counts never diff against each
    other).
    """
    from _common import run_log_path

    from repro.telemetry.runrecord import RunRecord, append_record

    record = RunRecord(
        algorithm=result.algorithm,
        backend=result.backend,
        n=int(result.stats.total_nodes),
        p=int(result.report.p),
        time=int(result.report.time),
        work=int(result.report.work),
        seed=SEED,
        wall_s=wall_s,
        phases=tuple((ph.name, int(ph.time), int(ph.work), int(ph.steps))
                     for ph in result.report.phases),
        extra={"bench": "bench_parallel", "workers": workers,
               "num_lists": result.stats.num_lists},
    )
    append_record(run_log_path(), record)


def measure(num_lists: int, n: int, workers: tuple, reps: int = REPS) -> dict:
    """Time the serial batch and each sharded configuration."""
    lls = _make_lists(num_lists, n)
    serial = batch_maximal_matching(lls, algorithm="match4")
    t_serial = _time_min(
        lambda: batch_maximal_matching(lls, algorithm="match4"), reps)
    _record(serial, wall_s=t_serial, workers=0)

    out = {"num_lists": num_lists, "n": n, "reps": reps,
           "serial_s": t_serial, "results": {}}
    for w in workers:
        got = batch_maximal_matching(lls, algorithm="match4", workers=w)
        for i, (sm, pm) in enumerate(zip(serial.matchings, got.matchings)):
            if not np.array_equal(sm.tails, pm.tails):
                raise AssertionError(
                    f"workers={w}: list {i} diverged from serial")
        t_w = _time_min(
            lambda: batch_maximal_matching(lls, algorithm="match4",
                                           workers=w), reps)
        _record(got, wall_s=t_w, workers=w)
        out["results"][w] = {"wall_s": t_w, "speedup": t_serial / t_w}
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lists", type=int, default=NUM_LISTS)
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--workers", default=",".join(map(str, WORKERS)),
                        help="comma-separated worker counts to sweep")
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--json", default="",
                        help="also write the measurement to this file")
    parser.add_argument("--require", type=float, default=0.0,
                        help="fail unless the best sharded speedup "
                             "meets this bar")
    args = parser.parse_args(argv)
    workers = tuple(int(w) for w in args.workers.split(","))

    out = measure(args.lists, args.n, workers, args.reps)
    print(f"{out['num_lists']} lists x n={out['n']}, "
          f"best of {out['reps']}")
    print(f"  serial    : {out['serial_s'] * 1e3:8.3f} ms")
    for w, r in out["results"].items():
        print(f"  workers={w:>2}: {r['wall_s'] * 1e3:8.3f} ms   "
              f"speedup {r['speedup']:6.2f}x")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(out, fh, indent=2)
        print(f"wrote {args.json}")
    if args.require:
        best = max(r["speedup"] for r in out["results"].values())
        if best < args.require:
            print(f"FAIL: best speedup {best:.2f}x < {args.require}x")
            return 1
        print(f"OK: best speedup {best:.2f}x >= {args.require}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
