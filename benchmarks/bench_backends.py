"""Backend speedup measurement: numpy engine vs the reference tier.

Times the *same* ``maximal_matching`` call (API defaults, ``p=256``)
on both backends and reports the speedup, checking first that the
matchings are bit-identical.  This is the acceptance measurement for
the vectorized engine: at ``n = 2**16`` the numpy backend must beat
the reference tier by >= 10x on ``match4``.

Run standalone (prints a table and writes JSON next to nothing)::

    PYTHONPATH=src python benchmarks/bench_backends.py [--n 65536]

or under pytest-benchmark together with the E9 suite::

    pytest benchmarks/bench_backends.py --benchmark-json=out.json
"""

import argparse
import json
import os
import sys
import time

import numpy as np
import pytest

from repro.core.maximal_matching import maximal_matching
from repro.lists import random_list

N = int(os.environ.get("REPRO_BENCH_N", 1 << 16))
REPS = 7


@pytest.fixture(scope="module")
def lst():
    return random_list(N, rng=2024)


@pytest.mark.parametrize("algorithm", ["match1", "match4"])
@pytest.mark.parametrize("backend", ["reference", "numpy"])
def test_backend_wallclock(benchmark, lst, algorithm, backend):
    res = benchmark(
        lambda: maximal_matching(
            lst, algorithm=algorithm, backend=backend, p=256)
    )
    assert res.matching.is_maximal


def _time_min(fn, reps: int = REPS) -> float:
    """Best-of-``reps`` wall time in seconds (min filters scheduler
    noise, the standard practice for microbenchmarks)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(n: int, reps: int = REPS) -> dict:
    """Time both backends on both engine-supported algorithms."""
    from _common import record_run

    lst = random_list(n, rng=2024)
    out = {"n": n, "reps": reps, "results": {}}
    for algorithm in ("match1", "match4"):
        ref = maximal_matching(
            lst, algorithm=algorithm, backend="reference", p=256)
        vec = maximal_matching(
            lst, algorithm=algorithm, backend="numpy", p=256)
        if not np.array_equal(ref.matching.tails, vec.matching.tails):
            raise AssertionError(f"{algorithm}: backends disagree")
        if ref.report != vec.report:
            raise AssertionError(f"{algorithm}: cost reports diverge")
        t_ref = _time_min(
            lambda: maximal_matching(
                lst, algorithm=algorithm, backend="reference", p=256),
            reps)
        t_vec = _time_min(
            lambda: maximal_matching(
                lst, algorithm=algorithm, backend="numpy", p=256),
            reps)
        record_run(ref, seed=2024, wall_s=t_ref, bench="bench_backends")
        record_run(vec, seed=2024, wall_s=t_vec, bench="bench_backends")
        out["results"][algorithm] = {
            "reference_s": t_ref,
            "numpy_s": t_vec,
            "speedup": t_ref / t_vec,
        }
    return out


def plan_check(manifest: str, measured: dict, *,
               log_path: str = "") -> bool:
    """Gate the planner against this run's measured winners.

    Feeds ``manifest`` (a ``runs.jsonl`` from a *previous* bench run)
    to the planner and asks what ``backend="auto"`` would pick for each
    measured algorithm.  The pick must cite measured history and agree
    with the backend this run just measured as fastest — the
    end-to-end proof that recorded manifests actually steer decisions.
    Writes a JSON decision log (every candidate, rule, and wall) to
    ``log_path`` when given; returns overall pass/fail.
    """
    from repro.planner import ExecutionPolicy, decide_for

    n = measured["n"]
    log = {"manifest": str(manifest), "n": n, "checks": []}
    ok = True
    for algorithm, r in measured["results"].items():
        winner = ("reference" if r["reference_s"] <= r["numpy_s"]
                  else "numpy")
        decision = decide_for(
            ExecutionPolicy(history=str(manifest)),
            algorithm=algorithm, n=n, p=256,
        )
        agrees = decision.backend == winner
        from_history = decision.source == "history"
        ok = ok and agrees and from_history
        log["checks"].append({
            "algorithm": algorithm,
            "measured_winner": winner,
            "measured": {"reference_s": r["reference_s"],
                         "numpy_s": r["numpy_s"]},
            "planned": decision.backend,
            "rule": decision.rule,
            "source": decision.source,
            "agrees": agrees,
            "candidates": [c.to_dict() for c in decision.candidates],
        })
        flag = "ok" if agrees and from_history else "MISMATCH"
        print(f"  plan-check {algorithm}: measured winner {winner}, "
              f"auto picks {decision.backend} "
              f"(rule={decision.rule}) [{flag}]")
    log["passed"] = ok
    if log_path:
        with open(log_path, "w") as fh:
            json.dump(log, fh, indent=2)
        print(f"wrote {log_path}")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--json", default="",
                        help="also write the measurement to this file")
    parser.add_argument("--require", type=float, default=0.0,
                        help="fail unless match4's speedup meets this bar")
    parser.add_argument("--plan-check", default="", metavar="MANIFEST",
                        help="gate backend='auto' against this run: the "
                             "planner, fed MANIFEST (a prior run's "
                             "runs.jsonl), must pick each algorithm's "
                             "measured winner")
    parser.add_argument("--decision-log", default="", metavar="PATH",
                        help="with --plan-check: write the full decision "
                             "log (candidates, rules, walls) to PATH")
    parser.add_argument("--profile", default="", metavar="DIR",
                        help="also profile one match4/numpy run at this n "
                             "(Perfetto trace, profile JSON, metrics, "
                             "RunRecord) into DIR")
    args = parser.parse_args(argv)

    # Honor REPRO_RESOURCES like the CLI does, so the CI disabled-vs-
    # ledger overhead A/B measures the accounting actually switched on.
    from repro.telemetry import configure_resources_from_env
    configure_resources_from_env()

    out = measure(args.n, args.reps)
    print(f"n = {out['n']}, best of {out['reps']}")
    for algorithm, r in out["results"].items():
        print(f"  {algorithm}: reference {r['reference_s'] * 1e3:8.3f} ms   "
              f"numpy {r['numpy_s'] * 1e3:8.3f} ms   "
              f"speedup {r['speedup']:6.2f}x")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(out, fh, indent=2)
        print(f"wrote {args.json}")
    if args.require:
        got = out["results"]["match4"]["speedup"]
        if got < args.require:
            print(f"FAIL: match4 speedup {got:.2f}x < {args.require}x")
            return 1
    if args.plan_check:
        if not plan_check(args.plan_check, out,
                          log_path=args.decision_log):
            print("FAIL: planner picks diverge from measured winners")
            return 1
    if args.profile:
        from repro.cli import main as repro_cli

        rc = repro_cli(["profile", "match4", "--n", str(args.n),
                        "--backend", "numpy", "--out", args.profile])
        if rc:
            return rc
    return 0


if __name__ == "__main__":
    sys.exit(main())
