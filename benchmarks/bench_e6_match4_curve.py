"""E6 — Theorems 1–2 / Match4: the paper's headline curve.

Four sub-tables:

1. **Theorem 2 curve**: time vs ``O(n log i/p + log^(i) n + log i)``
   over an ``(n, p, i)`` grid.
2. **Theorem 1 optimal region**: efficiency ``T_1 / (p·T)`` as ``p``
   grows — flat (within a constant band) up to ``p ~ n/log^(i) n``,
   then decaying; larger ``i`` extends the flat region.
3. **Additive-term growth**: at ``p = n``, Match2's additive term grows
   like ``log n`` while Match4's stays ``~log^(i) n`` — the crossover
   structure behind "the application of our scheduling technique".
4. **Ablation** (DESIGN.md): local column sort (Match4) vs global sort
   (Match2) phase costs at the optimal processor count, and the
   step-1 strategy ablation (iterate vs table).
"""

from _common import pow2, write_result
from repro.analysis.complexity import (
    match4_time_bound,
    optimal_processor_bound,
)
from repro.analysis.experiments import powers_up_to
from repro.analysis.report import format_table
from repro.core.match2 import match2
from repro.core.match4 import match4, plan_rows
from repro.lists import random_list

NS = pow2(12, 20, 4)
IS = (1, 2, 3, 4)


def test_e6_theorem2_curve(benchmark):
    rows = []
    for n in NS:
        lst = random_list(n, rng=n)
        for i in IS:
            for p in powers_up_to(n, base=16):
                _, report, _ = match4(lst, p=p, i=i, check=False)
                bound = match4_time_bound(n, p, i)
                rows.append({
                    "n": n, "i": i, "p": p, "time": report.time,
                    "bound": bound, "ratio": report.time / bound,
                })
    for row in rows:
        assert 0.1 <= row["ratio"] <= 12.0, row
    text = format_table(
        rows,
        ["n", "i", "p", "time", ("bound", "nlogi/p+log(i)n+logi"),
         ("ratio", "t/bound")],
        title="E6a (Theorem 2): Match4 time vs the paper's curve",
    )
    write_result("e6a_match4_theorem2.txt", text)

    lst = random_list(1 << 16, rng=8)
    benchmark(lambda: match4(lst, p=256, i=2, check=False))


def test_e6_theorem1_optimal_region(benchmark):
    n = 1 << 18
    lst = random_list(n, rng=9)
    t1 = n  # sequential greedy walk
    rows = []
    for i in (1, 2, 3):
        p_star = optimal_processor_bound(n, i)
        for p in powers_up_to(n, base=4):
            _, report, _ = match4(lst, p=p, i=i, check=False)
            eff = t1 / (p * report.time)
            rows.append({
                "i": i, "p": p, "time": report.time,
                "eff": eff,
                "in_region": "yes" if p <= p_star else "no",
            })
    # Efficiency stays within a constant band through the optimal
    # region for p well inside it.
    for i in (1, 2, 3):
        region = [r for r in rows
                  if r["i"] == i and r["p"] <= n // (16 * plan_rows(n, i))]
        assert all(r["eff"] >= 0.04 for r in region), i
        # and decays past p = n (time floor is the additive term)
        tail = [r for r in rows if r["i"] == i and r["p"] == n]
        assert tail[0]["eff"] < region[-1]["eff"]
    text = format_table(
        rows,
        ["i", "p", "time", ("eff", "T1/(p*T)"),
         ("in_region", "p<=n/log(i)n")],
        title="E6b (Theorem 1): Match4 efficiency across p (n = 2^18)",
    )
    write_result("e6b_match4_theorem1.txt", text)

    benchmark(lambda: match4(lst, p=optimal_processor_bound(n, 2), i=2,
                             check=False))


def test_e6_additive_growth_vs_match2(benchmark):
    # At p = n the time is dominated by the additive terms: Match2's
    # grows like log n; Match4's (fixed i) stays ~log^(i) n, i.e. the
    # growth from n=2^12 to n=2^20 is large for Match2 and tiny for
    # Match4 — who wins asymptotically, and where, is the paper's
    # processor-scheduling argument.
    rows = []
    for n in NS:
        lst = random_list(n, rng=n + 1)
        _, r2, _ = match2(lst, p=n)
        rows.append({"algorithm": "match2", "n": n, "time_at_p_n": r2.time})
        for i in (2, 3):
            _, r4, _ = match4(lst, p=n, i=i, check=False)
            rows.append({
                "algorithm": f"match4(i={i})", "n": n,
                "time_at_p_n": r4.time,
            })
    first, last = NS[0], NS[-1]

    def growth(alg):
        a = [r for r in rows if r["algorithm"] == alg and r["n"] == first]
        b = [r for r in rows if r["algorithm"] == alg and r["n"] == last]
        return b[0]["time_at_p_n"] / a[0]["time_at_p_n"]

    assert growth("match2") > 1.4          # log n growth: 12 -> 20
    assert growth("match4(i=3)") < 1.35    # log^(3) n: essentially flat
    text = format_table(
        rows,
        ["algorithm", "n", ("time_at_p_n", "time at p=n")],
        title="E6c: additive-term growth, Match2 (log n) vs Match4 (log^(i) n)",
    )
    write_result("e6c_additive_growth.txt", text)

    lst = random_list(1 << 16, rng=10)
    benchmark(lambda: match4(lst, p=1 << 16, i=3, check=False))


def test_e6_ablation_local_vs_global_sort(benchmark):
    # DESIGN.md ablation: the per-column local sort replaces the global
    # sort; compare the sort phases at each algorithm's optimal p.
    rows = []
    for n in NS:
        lst = random_list(n, rng=n + 2)
        x = plan_rows(n, 3)
        p4 = max(1, n // x)
        _, r4, _ = match4(lst, p=p4, i=3, check=False)
        p2 = max(1, n // max(1, (n - 1).bit_length()))
        _, r2, _ = match2(lst, p=p2)
        rows.append({
            "n": n,
            "m4_sort": r4.phase("sort").time,
            "m4_p": p4,
            "m2_sort": r2.phase("sort").time,
            "m2_p": p2,
        })
    for row in rows:
        # local sort is O(x) = O(log^(3) n); global is O(n/p + log n):
        # at their own optimal p both are small, but the local sort's
        # cost is independent of n.
        assert row["m4_sort"] <= 2 * plan_rows(row["n"], 3)
    text = format_table(
        rows,
        ["n", ("m4_sort", "Match4 col-sort"), ("m4_p", "p"),
         ("m2_sort", "Match2 global sort"), ("m2_p", "p")],
        title="E6d: ablation - Match4 local column sort vs Match2 global sort",
    )
    write_result("e6d_sort_ablation.txt", text)

    lst = random_list(1 << 16, rng=11)
    benchmark(lambda: match4(lst, p=1 << 10, i=3, check=False))


def test_e6_step1_strategy_ablation(benchmark):
    rows = []
    n = 1 << 16
    lst = random_list(n, rng=12)
    for i in (1, 2, 3):
        for strategy in ("iterate", "table"):
            m, report, stats = match4(lst, p=256, i=i, strategy=strategy)
            assert m.is_maximal
            rows.append({
                "i": i, "strategy": strategy, "x": stats.x,
                "time": report.time,
                "partition_time": report.phase("partition").time,
            })
    text = format_table(
        rows,
        ["i", "strategy", ("x", "rows"), "time",
         ("partition_time", "step-1 time")],
        title="E6e: ablation - Match4 step-1 strategy (Lemma 3 vs Lemma 5)",
    )
    write_result("e6e_step1_strategy.txt", text)

    benchmark(lambda: match4(lst, p=256, i=2, strategy="table",
                             check=False))


def test_e6_figures(benchmark):
    # "Figure" artifacts: the time-vs-p and efficiency-vs-p curves as
    # ASCII plots (the paper is analytic; these are the plots its
    # curves describe).
    from repro.analysis.ascii_plot import ascii_plot
    from repro.core.match1 import match1
    from repro.core.match3 import match3

    n = 1 << 16
    lst = random_list(n, rng=20)
    rows = []
    for p in powers_up_to(n, base=4):
        row = {"p": p}
        _, r1, _ = match1(lst, p=p)
        _, r2, _ = match2(lst, p=p)
        _, r3, _ = match3(lst, p=p)
        _, r4, _ = match4(lst, p=p, i=3, check=False)
        row["match1"] = r1.time
        row["match2"] = r2.time
        row["match3"] = r3.time
        row["match4"] = r4.time
        for alg, rep in (("match1", r1), ("match2", r2),
                         ("match3", r3), ("match4", r4)):
            row[f"{alg}_eff"] = n / (p * rep.time)
        rows.append(row)
    fig_time = ascii_plot(
        rows, x="p", series=["match1", "match2", "match3", "match4"],
        title=f"Figure E6-i: PRAM time vs p (n = 2^16)",
        logx=True, logy=True,
    )
    fig_eff = ascii_plot(
        rows, x="p",
        series=["match1_eff", "match2_eff", "match3_eff", "match4_eff"],
        title=f"Figure E6-ii: efficiency T1/(p*T) vs p (n = 2^16)",
        logx=True, logy=True,
    )
    write_result("fig_e6_time_vs_p.txt", fig_time + "\n\n" + fig_eff)
    # the time curves must be visibly decreasing (monotone data)
    for alg in ("match1", "match2", "match3", "match4"):
        series = [r[alg] for r in rows]
        assert series == sorted(series, reverse=True)

    benchmark(lambda: match4(lst, p=1 << 10, i=3, check=False))
