"""E8 — the applications the paper names: 3-coloring, MIS, ranking.

Three sub-tables:

1. 3-coloring: rounds and time across ``n``; color histogram.
2. MIS sizes from both routes (coloring / matching).
3. List ranking: work/n for contraction (flat, Theta(n)) vs Wyllie
   (``log n``), plus time at the optimal processor count.
"""

import numpy as np

from _common import pow2, write_result
from repro.analysis.report import format_table
from repro.apps.coloring import three_coloring
from repro.apps.mis import mis_from_coloring, mis_from_matching
from repro.apps.ranking import contraction_ranks
from repro.baselines.wyllie import wyllie_ranks
from repro.bits.iterated_log import G
from repro.core.match4 import match4
from repro.lists import random_list

NS = pow2(10, 18, 4)


def test_e8_three_coloring(benchmark):
    rows = []
    for n in NS:
        lst = random_list(n, rng=n)
        colors, report = three_coloring(lst, p=n)
        hist = np.bincount(colors, minlength=3)
        rows.append({
            "n": n, "time": report.time, "G": G(n),
            "c0": int(hist[0]), "c1": int(hist[1]), "c2": int(hist[2]),
        })
        assert report.time <= 3 * G(n) + 10
    text = format_table(
        rows,
        ["n", "time", ("G", "G(n)"), "c0", "c1", "c2"],
        title="E8a: 3-coloring time at p=n and color histogram",
    )
    write_result("e8a_three_coloring.txt", text)

    lst = random_list(1 << 16, rng=0)
    benchmark(lambda: three_coloring(lst, p=256))


def test_e8_mis_sizes(benchmark):
    rows = []
    for n in NS:
        lst = random_list(n, rng=n + 1)
        colors, _ = three_coloring(lst)
        mis_c, _ = mis_from_coloring(lst, colors)
        matching, _, _ = match4(lst)
        mis_m, _ = mis_from_matching(lst, matching)
        rows.append({
            "n": n,
            "mis_coloring": int(mis_c.sum()),
            "mis_matching": int(mis_m.sum()),
            "lower": (n + 2) // 3,
            "upper": (n + 1) // 2,
        })
    for row in rows:
        assert row["lower"] <= row["mis_coloring"] <= row["upper"]
        assert row["lower"] <= row["mis_matching"] <= row["upper"]
    text = format_table(
        rows,
        ["n", ("mis_coloring", "|MIS| via coloring"),
         ("mis_matching", "|MIS| via matching"),
         ("lower", "n/3"), ("upper", "n/2")],
        title="E8b: maximal independent set sizes (both routes)",
    )
    write_result("e8b_mis_sizes.txt", text)

    lst = random_list(1 << 14, rng=2)
    colors, _ = three_coloring(lst)
    benchmark(lambda: mis_from_coloring(lst, colors))


def test_e8_ranking_work_shape(benchmark):
    rows = []
    for n in NS:
        lst = random_list(n, rng=n + 2)
        _, rep_c, stats = contraction_ranks(lst, matcher="match4")
        _, rep_w = wyllie_ranks(lst)
        rows.append({
            "n": n,
            "contr_work_per_n": rep_c.work / n,
            "wyllie_work_per_n": rep_w.work / n,
            "levels": stats.levels,
        })
    # contraction flat, Wyllie growing like log n
    c = [r["contr_work_per_n"] for r in rows]
    w = [r["wyllie_work_per_n"] for r in rows]
    assert max(c) <= 1.5 * min(c)
    assert w == [float(max(1, (n - 1).bit_length())) for n in NS]
    text = format_table(
        rows,
        ["n", ("contr_work_per_n", "contraction work/n"),
         ("wyllie_work_per_n", "Wyllie work/n"), "levels"],
        title=("E8c: list-ranking work per node — contraction Theta(n) "
               "vs Wyllie Theta(n log n)"),
    )
    write_result("e8c_ranking_work.txt", text)

    lst = random_list(1 << 14, rng=3)
    benchmark(lambda: contraction_ranks(lst, matcher="match4"))
