"""Churn scaling: amortized local repair vs from-scratch recompute.

Drives the same seeded edit stream (``repro.dynamic.churn``) through a
maintained :class:`~repro.dynamic.DynamicList` and through an
unmaintained twin that recomputes every component's matching from
scratch after each edit, at several list sizes.  Checks first that the
two arms apply bit-identical edit traces and both end maximal, then
reports wall time per edit, amortized matching moves per edit, and the
worst single-edit move count — the dynamic tier's acceptance number:
``max_moves_per_edit`` must stay below a size-independent constant
(:data:`MOVE_BOUND`) while the recompute arm's per-edit moves grow
with ``n``.

Run standalone (prints the scaling table, writes the JSON twin)::

    PYTHONPATH=src python benchmarks/bench_churn.py \\
        [--sizes 256,1024,4096] [--rate 0.5] [--seed 7] \\
        [--json churn-scaling.json]

or under pytest-benchmark::

    pytest benchmarks/bench_churn.py --benchmark-json=out.json
"""

import argparse
import json
import os
import sys
import time

import numpy as np
import pytest

from repro.core import verify_maximal_matching
from repro.dynamic import ChurnConfig, ChurnSession

# Empirically the worklist repair never exceeds 4 moves / 6 touched
# per edit (see docs/dynamic.md); 8 leaves slack without letting a
# linear regression hide.
MOVE_BOUND = 8

SIZES = tuple(int(s) for s in os.environ.get(
    "REPRO_BENCH_CHURN_SIZES", "256,1024,4096").split(","))
RATE = float(os.environ.get("REPRO_BENCH_CHURN_RATE", 0.5))
SEED = 7
LAYOUT = "random"


def _config(n: int, rate: float, seed: int) -> ChurnConfig:
    return ChurnConfig(
        steps=max(1, int(n * rate)), seed=seed, n_initial=n,
        layout=LAYOUT, burstiness=0.2, burst_len=8, hotspot=0.5)


def _run_repair(cfg: ChurnConfig) -> tuple[ChurnSession, float]:
    sess = ChurnSession(cfg)
    t0 = time.perf_counter()
    sess.run()
    return sess, time.perf_counter() - t0


def _run_recompute(cfg: ChurnConfig) -> tuple[ChurnSession, float]:
    sess = ChurnSession(cfg, maintain=False)
    t0 = time.perf_counter()
    sess.run(on_edit=lambda s, k, op: s.dyn.recompute())
    return sess, time.perf_counter() - t0


def _verify_maximal(sess: ChurnSession) -> None:
    sess.dyn.verify()
    for snap in sess.dyn.components():
        verify_maximal_matching(snap.lst, snap.tails)


def measure(n: int, rate: float, seed: int) -> dict:
    """One scaling point: both arms on the identical edit stream."""
    cfg = _config(n, rate, seed)
    repair, repair_s = _run_repair(cfg)
    recomp, recomp_s = _run_recompute(cfg)
    if repair.trace != recomp.trace:
        raise AssertionError(
            f"n={n}: repair and recompute arms diverged on the edit "
            f"trace — the stream is no longer maintenance-independent")
    _verify_maximal(repair)
    _verify_maximal(recomp)

    led_rep = repair.dyn.ledger
    led_rec = recomp.dyn.ledger
    edits = led_rep.edits
    if led_rep.max_moves_per_edit > MOVE_BOUND:
        raise AssertionError(
            f"n={n}: repair made {led_rep.max_moves_per_edit} moves in "
            f"one edit, over the O(1) bound {MOVE_BOUND}")
    return {
        "n": n,
        "steps": cfg.steps,
        "edits": edits,
        "repair": {
            "wall_s": repair_s,
            "per_edit_us": repair_s / edits * 1e6,
            "moves": led_rep.moves,
            "amortized_moves": led_rep.amortized_moves(),
            "max_moves_per_edit": led_rep.max_moves_per_edit,
            "max_touched_per_edit": led_rep.max_touched_per_edit,
        },
        "recompute": {
            "wall_s": recomp_s,
            "per_edit_us": recomp_s / edits * 1e6,
            "moves": led_rec.maintenance_moves,
            "amortized_moves": led_rec.maintenance_moves / edits,
            "recomputes": led_rec.recomputes,
        },
        "speedup": recomp_s / repair_s,
    }


def sweep(sizes, rate: float, seed: int) -> dict:
    rows = [measure(n, rate, seed) for n in sizes]
    return {"bench": "bench_churn", "layout": LAYOUT, "rate": rate,
            "seed": seed, "move_bound": MOVE_BOUND, "rows": rows}


# -- pytest-benchmark hooks ----------------------------------------------


@pytest.fixture(scope="module")
def small_cfg():
    return _config(min(SIZES), RATE, SEED)


def test_churn_repair_wallclock(benchmark, small_cfg):
    sess = benchmark(lambda: _run_repair(small_cfg)[0])
    _verify_maximal(sess)
    assert sess.dyn.ledger.max_moves_per_edit <= MOVE_BOUND


def test_churn_recompute_wallclock(benchmark, small_cfg):
    sess = benchmark(lambda: _run_recompute(small_cfg)[0])
    _verify_maximal(sess)


# -- CLI -----------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default=",".join(map(str, SIZES)),
                        help="comma-separated initial list sizes")
    parser.add_argument("--rate", type=float, default=RATE,
                        help="edits per initial node (churn rate)")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--json", default="",
                        help="also write the measurement to this file")
    args = parser.parse_args(argv)
    sizes = tuple(int(s) for s in args.sizes.split(","))

    out = sweep(sizes, args.rate, args.seed)
    print(f"churn rate {args.rate} edits/node, layout={LAYOUT}, "
          f"seed={args.seed}")
    print(f"{'n':>7} {'edits':>6} {'repair us/edit':>14} "
          f"{'recomp us/edit':>14} {'speedup':>8} {'amort mv':>8} "
          f"{'max mv':>6}")
    for row in out["rows"]:
        rep, rec = row["repair"], row["recompute"]
        print(f"{row['n']:>7} {row['edits']:>6} "
              f"{rep['per_edit_us']:>14.1f} {rec['per_edit_us']:>14.1f} "
              f"{row['speedup']:>8.1f} {rep['amortized_moves']:>8.2f} "
              f"{rep['max_moves_per_edit']:>6}")
    worst = max(r["repair"]["max_moves_per_edit"] for r in out["rows"])
    print(f"worst single-edit repair: {worst} moves "
          f"(bound {MOVE_BOUND}); recompute cost grows with n, "
          f"repair cost does not")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(out, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
