"""E3 — Lemma 3 / Match1: time ``O(n G(n)/p + G(n))``; not optimal.

Sweeps ``(n, p)`` and tabulates measured PRAM time against the bound
with unit constants.  Shape claims: the measured/bound ratio stays in a
constant band across the grid; the work is ``Theta(n G(n))`` — i.e.
work/n grows with ``G(n)``, certifying the paper's statement that
Match1 is *not* optimal.
"""

from _common import pow2, write_result
from repro.analysis.complexity import match1_time_bound
from repro.analysis.experiments import powers_up_to, sweep_grid
from repro.analysis.report import format_table
from repro.bits.iterated_log import G
from repro.core.match1 import match1
from repro.lists import random_list

NS = pow2(10, 20, 5)


def _rows():
    rows = sweep_grid(
        lambda n: random_list(n, rng=n),
        ns=NS,
        ps=lambda n: powers_up_to(n, base=16),
        algorithm="match1",
    )
    for row in rows:
        row["bound"] = match1_time_bound(row["n"], row["p"])
        row["ratio"] = row["time"] / row["bound"]
        row["work_per_n"] = row["work"] / row["n"]
    return rows


def test_e3_match1_curve(benchmark):
    rows = _rows()
    for row in rows:
        assert 0.2 <= row["ratio"] <= 4.0, row
    # non-optimality: work/n tracks G(n) (within 2x)
    for n in NS:
        wpn = [r["work_per_n"] for r in rows if r["n"] == n][0]
        assert G(n) <= wpn <= 2.5 * G(n) + 3
    text = format_table(
        rows,
        ["n", "p", "time", ("bound", "nG/p+G"), ("ratio", "t/bound"),
         ("work_per_n", "work/n"), "matched"],
        title="E3 (Lemma 3): Match1 time vs O(nG(n)/p + G(n))",
    )
    write_result("e3_match1.txt", text)

    lst = random_list(1 << 16, rng=2)
    benchmark(lambda: match1(lst, p=256))
