"""E1 — Lemma 1: ``f`` partitions ``n`` pointers into ≤ ``2 log n`` sets.

Reproduces, for both function variants and for the benign and
adversarial layouts, the measured number of matching sets after one
application of ``f`` against the ``2 ceil(log2 n)`` bound.  Shape
claims asserted: the bound always holds, and the sawtooth layout
(engineered to cross the coarsest bisector on every pointer) stays
within it too.
"""

import numpy as np

from _common import pow2, write_result
from repro.analysis.report import format_table
from repro.core.functions import iterate_f
from repro.lists import random_list, sawtooth_list, sequential_list

NS = pow2(8, 20, 3)


def _rows():
    rows = []
    for n in NS:
        for layout, make in (
            ("random", lambda m: random_list(m, rng=m)),
            ("sawtooth", sawtooth_list),
            ("sequential", sequential_list),
        ):
            lst = make(n)
            for kind in ("msb", "lsb"):
                labels = iterate_f(lst, 1, kind=kind)
                sets = int(np.unique(labels).size)
                bound = 2 * (n - 1).bit_length()
                rows.append({
                    "n": n, "layout": layout, "kind": kind,
                    "sets": sets, "bound": bound,
                    "ratio": sets / bound,
                })
    return rows


def test_e1_lemma1_set_counts(benchmark):
    rows = _rows()
    for row in rows:
        assert row["sets"] <= row["bound"], row
    # Random layouts use a constant fraction of the budget at scale.
    big_random = [r for r in rows
                  if r["layout"] == "random" and r["n"] >= 1 << 14]
    assert all(r["ratio"] > 0.5 for r in big_random)
    text = format_table(
        rows,
        ["n", "layout", "kind", "sets", ("bound", "2logn"),
         ("ratio", "sets/bound")],
        title="E1 (Lemma 1): matching sets after one f application",
    )
    write_result("e1_lemma1.txt", text)

    lst = random_list(1 << 16, rng=0)
    benchmark(lambda: iterate_f(lst, 1))
