"""E9 — wall-clock benchmarks of the vectorized implementations.

Unlike E1–E8 (which measure simulated PRAM steps), these time the
actual Python/NumPy execution with pytest-benchmark: the four paper
algorithms, the two baselines, and the flagship applications, at a
common size.  The shape claim here is modest — all vectorized
algorithms complete within a small constant of the sequential walk's
wall time despite doing the full PRAM choreography — and the numbers
feed EXPERIMENTS.md's E9 table.

``REPRO_BENCH_N`` overrides the common size (CI smoke runs use a small
one); the backend-parametrized benches compare the reference tier with
the vectorized numpy engine through the same ``maximal_matching``
calls (see also ``bench_backends.py`` for the standalone speedup
measurement).
"""

import os

import pytest

from repro.apps.ranking import contraction_ranks
from repro.baselines.random_mate import random_mate_matching
from repro.baselines.sequential import sequential_matching
from repro.baselines.wyllie import wyllie_ranks
from repro.core.match1 import match1
from repro.core.match2 import match2
from repro.core.match3 import match3, plan_match3
from repro.core.match4 import match4
from repro.core.maximal_matching import maximal_matching
from repro.lists import random_list

N = int(os.environ.get("REPRO_BENCH_N", 1 << 16))


@pytest.fixture(scope="module")
def lst():
    return random_list(N, rng=2024)


def test_wallclock_match1(benchmark, lst):
    m = benchmark(lambda: match1(lst, p=256)[0])
    assert m.is_maximal


def test_wallclock_match2(benchmark, lst):
    m = benchmark(lambda: match2(lst, p=256)[0])
    assert m.is_maximal


def test_wallclock_match3(benchmark, lst):
    from repro.bits.lookup import build_table_direct
    from repro.core.functions import pair_function

    plan = plan_match3(N)
    table = build_table_direct(  # preprocessing, amortized across runs
        pair_function("msb"),
        arity=plan.arity, bits_per_arg=plan.bits_per_arg,
    )
    m = benchmark(lambda: match3(lst, p=256, plan=plan, table=table)[0])
    assert m.is_maximal


def test_wallclock_match4(benchmark, lst):
    m = benchmark(lambda: match4(lst, p=256, check=False)[0])
    assert m.is_maximal


def test_wallclock_match4_table_strategy(benchmark, lst):
    m = benchmark(
        lambda: match4(lst, p=256, strategy="table", check=False)[0]
    )
    assert m.is_maximal


def test_wallclock_sequential_baseline(benchmark, lst):
    m = benchmark(lambda: sequential_matching(lst)[0])
    assert m.is_maximal


def test_wallclock_random_mate(benchmark, lst):
    m = benchmark(lambda: random_mate_matching(lst, rng=0)[0])
    assert m.is_maximal


def test_wallclock_wyllie_ranking(benchmark, lst):
    ranks, _ = benchmark(lambda: wyllie_ranks(lst))
    assert ranks[lst.head] == N - 1


def test_wallclock_contraction_ranking(benchmark, lst):
    ranks = benchmark(lambda: contraction_ranks(lst)[0])
    assert ranks[lst.head] == N - 1


# ---------------------------------------------------------------------------
# Backend comparison: the same maximal_matching call on both backends.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["reference", "numpy"])
def test_wallclock_backend_match1(benchmark, lst, backend):
    m = benchmark(
        lambda: maximal_matching(
            lst, algorithm="match1", backend=backend, p=256).matching
    )
    assert m.is_maximal


@pytest.mark.parametrize("backend", ["reference", "numpy"])
def test_wallclock_backend_match4(benchmark, lst, backend):
    m = benchmark(
        lambda: maximal_matching(
            lst, algorithm="match4", backend=backend, p=256).matching
    )
    assert m.is_maximal


# ---------------------------------------------------------------------------
# Substrate micro-benchmarks: where the vectorized milliseconds go.
# ---------------------------------------------------------------------------

def test_wallclock_micro_iterate_f_round(benchmark, lst):
    from repro.core.functions import apply_f

    import numpy as np

    labels = np.arange(N, dtype=np.int64)
    cnext = lst.circular_next()
    benchmark(lambda: apply_f(labels, cnext))


def test_wallclock_micro_build_layout(benchmark, lst):
    from repro.core.functions import iterate_f, max_label_after
    from repro.core.layout import build_layout

    labels = iterate_f(lst, 2)
    x = max(2, max_label_after(N, 2))
    benchmark(lambda: build_layout(lst, labels, x))


def test_wallclock_micro_walkdowns(benchmark, lst):
    import numpy as np

    from repro.core.functions import iterate_f, max_label_after
    from repro.core.layout import build_layout
    from repro.core.partition import NO_POINTER
    from repro.core.walkdown import walkdown1, walkdown2

    labels = iterate_f(lst, 2)
    x = max(2, max_label_after(N, 2))
    layout = build_layout(lst, labels, x)
    intra, inter = layout.classify_pointers(lst)

    def run():
        labels6 = np.full(N, NO_POINTER, dtype=np.int64)
        walkdown1(lst, layout, inter, labels6, check=False)
        walkdown2(lst, layout, intra, labels6, check=False)
        return labels6

    benchmark(run)


def test_wallclock_micro_cutwalk(benchmark, lst):
    from repro.bits.iterated_log import G
    from repro.core.cutwalk import cut_and_walk
    from repro.core.functions import iterate_f

    labels = iterate_f(lst, G(N))
    benchmark(lambda: cut_and_walk(lst, labels))


def test_wallclock_ring(benchmark):
    from repro.core.rings import ring_maximal_matching
    from repro.lists.ring import random_ring

    ring = random_ring(N, rng=5)
    tails = benchmark(lambda: ring_maximal_matching(ring)[0])
    assert tails.size > N // 4


def test_wallclock_forest(benchmark):
    from repro.core.forests import forest_maximal_matching
    from repro.lists.forest import random_forest

    forest = random_forest(N, 64, rng=6)
    tails = benchmark(lambda: forest_maximal_matching(forest)[0])
    assert tails.size > N // 4
