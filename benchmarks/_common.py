"""Shared plumbing for the experiment benches.

Every bench computes its experiment table once (module- or
session-cached), asserts the paper's shape claims, writes the table to
``benchmarks/results/``, and hands pytest-benchmark a representative
kernel so wall-clock numbers land in the benchmark report too.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Write a reproduced table and return its path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


def pow2(lo: int, hi: int, step: int = 2) -> list[int]:
    """``[2^lo, 2^(lo+step), ..., 2^hi]``."""
    return [1 << e for e in range(lo, hi + 1, step)]
