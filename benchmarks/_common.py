"""Shared plumbing for the experiment benches.

Every bench computes its experiment table once (module- or
session-cached), asserts the paper's shape claims, writes the table to
``benchmarks/results/`` — as the human-readable ``.txt`` and a
machine-readable ``.json`` twin — and hands pytest-benchmark a
representative kernel so wall-clock numbers land in the benchmark
report too.

Benches that time individual runs can also call :func:`record_run` to
append a :class:`repro.telemetry.RunRecord` to the run manifest
(``benchmarks/results/runs.jsonl`` by default, ``REPRO_RUN_LOG`` to
override), which ``benchmarks/compare.py`` diffs against a committed
baseline to gate regressions.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"


def parse_table(text: str) -> list[dict[str, Any]]:
    """Parse :func:`repro.analysis.report.format_table` output back
    into rows.

    Column boundaries come from the dashed rule under the header, so
    headers and cells containing spaces survive.  Multiple tables in
    one blob (figure files) are concatenated; non-table lines are
    ignored.  Cells parse as int, then float, with ``-`` -> ``None``.
    """
    rows: list[dict[str, Any]] = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if i == 0 or not line.strip():
            continue
        if set(line) - set("- "):  # not a dashed rule
            continue
        # [start, end) spans of each dash run = column extents
        spans: list[tuple[int, int]] = []
        j = 0
        while j < len(line):
            if line[j] == "-":
                k = j
                while k < len(line) and line[k] == "-":
                    k += 1
                spans.append((j, k))
                j = k
            else:
                j += 1
        headers = [lines[i - 1][a:b].strip() for a, b in spans]
        if not all(headers):
            continue
        for body_line in lines[i + 1:]:
            if not body_line.strip() or not (set(body_line) - set("- ")):
                break
            cells = [body_line[a:b].strip() for a, b in spans]
            rows.append(dict(zip(headers, (_parse_cell(c) for c in cells))))
    return rows


def _parse_cell(cell: str) -> Any:
    if cell in ("", "-"):
        return None
    for conv in (int, float):
        try:
            return conv(cell)
        except ValueError:
            pass
    return cell


def write_result(name: str, text: str) -> Path:
    """Write a reproduced table and return its path.

    Besides the ``.txt``, a ``.json`` twin is written with the parsed
    rows and the producing build, so downstream tooling never has to
    scrape the monospace layout.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    rows = parse_table(text)
    if rows:
        from repro._buildinfo import build_info

        twin = path.with_suffix(".json")
        twin.write_text(json.dumps(
            {"name": name, **build_info(), "rows": rows}, indent=2,
        ) + "\n")
    return path


def run_log_path() -> Path:
    """Where :func:`record_run` appends (``REPRO_RUN_LOG`` overrides)."""
    override = os.environ.get("REPRO_RUN_LOG", "").strip()
    return Path(override) if override else RESULTS_DIR / "runs.jsonl"


def record_run(result, *, seed: int | None = None,
               wall_s: float | None = None, **extra: Any) -> Path:
    """Append one measured run to the run manifest as a RunRecord."""
    from repro.telemetry.runrecord import RunRecord, append_record

    record = RunRecord.from_result(result, seed=seed, wall_s=wall_s, **extra)
    return append_record(run_log_path(), record)


def pow2(lo: int, hi: int, step: int = 2) -> list[int]:
    """``[2^lo, 2^(lo+step), ..., 2^hi]``."""
    return [1 << e for e in range(lo, hi + 1, step)]
